// Figure 11 (paper §5.3): workload with heavy disk compaction (RocksDB's
// benchmark [10]). The paper bulk-loads 1 billion items sequentially, then
// runs 1 billion uniform updates; compaction runs virtually all the time
// and Cm regularly fills before C'm finishes merging, so client writes
// throttle on the merge. Scaled down here: the dataset is shrunk but the
// dataset : write-buffer ratio is kept huge so the same throttling paths
// execute.
//
// Expected shape (paper): both cLSM and RocksDB keep scaling to 16 worker
// threads despite the compaction load, converging to similar throughput at
// 16 (RocksDB's multi-threaded compaction being orthogonal to cLSM's
// in-memory parallelism).
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "bench/bench_common.h"

using namespace clsm;

namespace {

// One cell of the compaction_threads sweep. Opens cLSM directly (instead of
// going through RunCell) so the stall/slowdown accounting properties can be
// read off the live DB before it closes.
struct CompactionSweepResult {
  int compaction_threads = 0;
  double ops_per_sec = 0;
  double p99_put_micros = 0;
  uint64_t stall_micros = 0;
  bool ok = false;
};

CompactionSweepResult RunCompactionThreadsCell(const WorkloadSpec& spec, int client_threads,
                                               const BenchConfig& config, Options options,
                                               int compaction_threads) {
  CompactionSweepResult out;
  out.compaction_threads = compaction_threads;
  options.compaction_threads = compaction_threads;

  std::string dir = FreshDbDir("clsm-ct" + std::to_string(compaction_threads));
  DB* raw = nullptr;
  Status s = OpenDb(DbVariant::kClsm, options, dir, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open clsm (ct=%d) failed: %s\n", compaction_threads, s.ToString().c_str());
    return out;
  }
  std::unique_ptr<DB> db(raw);
  s = LoadKeySpace(db.get(), config.preload_keys, spec.key_size, spec.value_size);
  if (!s.ok()) {
    fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
    return out;
  }
  db->WaitForMaintenance();

  DriverResult r = RunWorkload(db.get(), spec, client_threads, config.duration_ms);
  // Stall time accrued during the measured window (preload stalls are
  // negligible: WaitForMaintenance drained the pipeline before the run).
  out.stall_micros = strtoull(db->GetProperty("clsm.stall-micros").c_str(), nullptr, 10);
  out.ops_per_sec = r.ops_per_sec;
  out.p99_put_micros = r.latency_micros.Percentile(99);
  out.ok = true;
  db->WaitForMaintenance();
  return out;
}

}  // namespace

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Figure 11", "heavy disk-compaction updates (RocksDB benchmark)", config);

  // Small write buffer + large key count => constant compaction pressure.
  Options options = FigureOptions(config);
  options.write_buffer_size = config.scale == "paper" ? (8 << 20) : (256 << 10);
  options.l0_slowdown_trigger = 8;
  options.l0_stop_trigger = 12;

  BenchConfig cell_config = config;
  cell_config.preload_keys = config.scale == "paper" ? 4'000'000 : 100'000;

  WorkloadSpec spec;
  spec.write_fraction = 1.0;  // 100% updates of existing keys
  spec.distribution = KeyDist::kUniform;
  spec.num_keys = cell_config.preload_keys;
  spec.key_size = 10;    // paper: 10-byte keys
  spec.value_size = 400; // paper: 400-byte values

  ResultTable table("updates/sec", config.thread_counts);
  for (DbVariant v : {DbVariant::kRocksDb, DbVariant::kClsm}) {
    for (int threads : config.thread_counts) {
      DriverResult r = RunCell(v, spec, threads, cell_config, options);
      table.AddResult(v, threads, r);
    }
  }

  printf("\n--- Fig 11: update throughput under continuous compaction ---\n");
  table.Print();
  table.WriteJson("fig11_compaction", config);
  printf("\n(paper shape: both systems scale to 16 threads and converge at 16)\n");

  // --- Parallel compaction scheduler sweep (§5.3): same update-heavy
  // workload, cLSM only, varying the number of compaction workers. More
  // workers should raise throughput and/or cut write-stall time. Results go
  // to bench_results/ as JSON so regressions are diffable.
  const int client_threads = std::min(4, config.thread_counts.back());
  printf("\n--- compaction_threads sweep (cLSM, %d client threads) ---\n", client_threads);
  printf("%-20s %14s %16s %14s\n", "compaction_threads", "updates/sec", "p99 put (us)",
         "stall (ms)");
  std::vector<CompactionSweepResult> sweep;
  for (int ct : {1, 2, 4}) {
    CompactionSweepResult r = RunCompactionThreadsCell(spec, client_threads, cell_config, options, ct);
    if (r.ok) {
      printf("%-20d %14.0f %16.1f %14.2f\n", r.compaction_threads, r.ops_per_sec,
             r.p99_put_micros, r.stall_micros / 1000.0);
      sweep.push_back(r);
    }
  }

  std::filesystem::create_directories("bench_results");
  const std::string json_path = "bench_results/fig11_compaction_threads.json";
  std::ofstream json(json_path);
  json << "{\n  \"figure\": \"fig11_compaction_threads\",\n  \"scale\": \"" << config.scale
       << "\",\n  \"client_threads\": " << client_threads << ",\n  \"duration_ms\": "
       << cell_config.duration_ms << ",\n  \"preload_keys\": " << cell_config.preload_keys
       << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < sweep.size(); i++) {
    const CompactionSweepResult& r = sweep[i];
    json << "    {\"compaction_threads\": " << r.compaction_threads
         << ", \"updates_per_sec\": " << static_cast<uint64_t>(r.ops_per_sec)
         << ", \"p99_put_micros\": " << r.p99_put_micros
         << ", \"stall_micros\": " << r.stall_micros << "}"
         << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  json.close();
  printf("\n(wrote %s)\n", json_path.c_str());
  return 0;
}
