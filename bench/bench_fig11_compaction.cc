// Figure 11 (paper §5.3): workload with heavy disk compaction (RocksDB's
// benchmark [10]). The paper bulk-loads 1 billion items sequentially, then
// runs 1 billion uniform updates; compaction runs virtually all the time
// and Cm regularly fills before C'm finishes merging, so client writes
// throttle on the merge. Scaled down here: the dataset is shrunk but the
// dataset : write-buffer ratio is kept huge so the same throttling paths
// execute.
//
// Expected shape (paper): both cLSM and RocksDB keep scaling to 16 worker
// threads despite the compaction load, converging to similar throughput at
// 16 (RocksDB's multi-threaded compaction being orthogonal to cLSM's
// in-memory parallelism).
#include "bench/bench_common.h"

using namespace clsm;

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Figure 11", "heavy disk-compaction updates (RocksDB benchmark)", config);

  // Small write buffer + large key count => constant compaction pressure.
  Options options = FigureOptions(config);
  options.write_buffer_size = config.scale == "paper" ? (8 << 20) : (256 << 10);
  options.l0_slowdown_trigger = 8;
  options.l0_stop_trigger = 12;

  BenchConfig cell_config = config;
  cell_config.preload_keys = config.scale == "paper" ? 4'000'000 : 100'000;

  WorkloadSpec spec;
  spec.write_fraction = 1.0;  // 100% updates of existing keys
  spec.distribution = KeyDist::kUniform;
  spec.num_keys = cell_config.preload_keys;
  spec.key_size = 10;    // paper: 10-byte keys
  spec.value_size = 400; // paper: 400-byte values

  ResultTable table("updates/sec", config.thread_counts);
  for (DbVariant v : {DbVariant::kRocksDb, DbVariant::kClsm}) {
    for (int threads : config.thread_counts) {
      DriverResult r = RunCell(v, spec, threads, cell_config, options);
      table.Add(v, threads, r.ops_per_sec);
    }
  }

  printf("\n--- Fig 11: update throughput under continuous compaction ---\n");
  table.Print();
  printf("\n(paper shape: both systems scale to 16 threads and converge at 16)\n");
  return 0;
}
