// Figure 1 (paper §2.2): resource-shared vs resource-isolated scalability.
// The resource-isolated configuration runs LevelDB / HyperLevelDB as 4
// separate partitions, each fed by a distinct production-like log and
// served by a dedicated quarter of the worker threads. The resource-shared
// configuration runs cLSM as one big partition — the union of the four
// logs — served by all worker threads.
//
// Expected shape (paper): cLSM's single big partition scales better than
// the partitioned competitors, peaking ~25% above them — supporting the
// consolidation argument (bigger consistent scans, less partition
// metadata) of §2.2.
#include <thread>
#include <vector>

#include "bench/bench_common.h"

using namespace clsm;

namespace {

// Runs `total_threads` distributed round-robin over `dbs[i]` with that
// db's trace spec; returns aggregate ops/sec.
double RunPartitioned(const std::vector<DB*>& dbs, const std::vector<TraceSpec>& specs,
                      int total_threads, int duration_ms) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < total_threads; t++) {
    workers.emplace_back([&, t] {
      const size_t p = t % dbs.size();
      DB* db = dbs[p];
      TraceGenerator gen(specs[p], 1000 + t);
      std::string key, value;
      WriteOptions wo;
      ReadOptions ro;
      uint64_t ops = 0;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_relaxed)) {
        if (gen.NextOpType() == TraceOpType::kGet) {
          gen.NextKey(&key);
          db->Get(ro, key, &value);
        } else {
          gen.NextKey(&key);
          db->Put(wo, key, gen.NextValue());
        }
        ops++;
      }
      total_ops.fetch_add(ops);
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  auto t1 = std::chrono::steady_clock::now();
  return total_ops.load() / std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Figure 1",
                    "resource-isolated (4 partitions) vs resource-shared (1 big partition)",
                    config);

  uint64_t keys_per_partition = config.scale == "paper" ? 500'000 : 12'000;
  std::vector<TraceSpec> specs = ProductionTraceSpecs(keys_per_partition);

  struct JsonCell {
    std::string system;
    int threads;
    double ops_per_sec;
    std::string stats_json;  // empty for multi-DB configs
  };
  std::vector<JsonCell> json_cells;

  printf("\n%-28s", "config \\ threads");
  for (int t : config.thread_counts) {
    printf("%12d", t);
  }
  printf("\n");

  // Resource-isolated: LevelDB and HyperLevelDB, 4 partitions each.
  for (DbVariant v : {DbVariant::kLevelDb, DbVariant::kHyperLevelDb}) {
    printf("%-28s", (std::string(VariantName(v)) + " x4 partitions").c_str());
    for (int threads : config.thread_counts) {
      std::vector<std::unique_ptr<DB>> owners;
      std::vector<DB*> dbs;
      Options options = FigureOptions(config);
      // Split the memory budget across the partitions, as a real deployment
      // would.
      options.write_buffer_size = std::max<size_t>(64 << 10, options.write_buffer_size / 4);
      bool ok = true;
      for (size_t p = 0; p < specs.size(); p++) {
        std::string dir =
            FreshDbDir(std::string(VariantName(v)) + "-part" + std::to_string(p));
        DB* raw = nullptr;
        Status s = OpenDb(v, options, dir, &raw);
        if (!s.ok()) {
          ok = false;
          break;
        }
        owners.emplace_back(raw);
        dbs.push_back(raw);
        if (!LoadTraceKeySpace(raw, specs[p]).ok()) {
          ok = false;
          break;
        }
        raw->WaitForMaintenance();
      }
      if (!ok) {
        printf("%12s", "-");
        continue;
      }
      double ops = RunPartitioned(dbs, specs, threads, config.duration_ms);
      printf("%12.0f", ops);
      fflush(stdout);
      json_cells.push_back(
          {std::string(VariantName(v)) + "_x4_partitions", threads, ops, std::string()});
    }
    printf("\n");
  }

  // Resource-shared: cLSM, one big partition holding the union. Each
  // worker thread draws from one of the four logs (round-robin), all
  // hitting the same store; key spaces are disjoint via an index offset
  // encoded in the per-partition key prefix.
  {
    printf("%-28s", "clsm 1 big partition");
    for (int threads : config.thread_counts) {
      std::string dir = FreshDbDir("clsm-big");
      DB* raw = nullptr;
      Options options = FigureOptions(config);
      Status s = OpenDb(DbVariant::kClsm, options, dir, &raw);
      if (!s.ok()) {
        printf("%12s", "-");
        continue;
      }
      std::unique_ptr<DB> db(raw);
      // Union load: all four key spaces (disjoint because TraceGenerator
      // seeds differ => same index space; emulate disjointness by loading
      // once with 4x keys).
      TraceSpec union_spec = specs[0];
      union_spec.num_keys = keys_per_partition * 4;
      if (!LoadTraceKeySpace(db.get(), union_spec).ok()) {
        printf("%12s", "-");
        continue;
      }
      db->WaitForMaintenance();
      std::vector<DB*> dbs(specs.size(), db.get());
      std::vector<TraceSpec> big_specs = specs;
      for (auto& sp : big_specs) {
        sp.num_keys = keys_per_partition * 4;
      }
      double ops = RunPartitioned(dbs, big_specs, threads, config.duration_ms);
      printf("%12.0f", ops);
      fflush(stdout);
      db->WaitForMaintenance();
      json_cells.push_back(
          {"clsm_1_big_partition", threads, ops, db->GetProperty("clsm.stats.json")});
    }
    printf("\n");
  }

  printf("\n(paper shape: the resource-shared cLSM configuration peaks ~25%% above\n"
         " the partitioned LevelDB/HyperLevelDB configurations)\n");

  // Same bench-result schema as ResultTable::WriteJson ("stats" is null for
  // the partitioned configs: four DBs, no single snapshot).
  int rc = system("mkdir -p bench_results");
  (void)rc;
  FILE* f = fopen("bench_results/fig1_partitioning.json", "w");
  if (f != nullptr) {
    fprintf(f, "{\"figure\":\"fig1_partitioning\",\"metric\":\"ops/sec\",\"scale\":\"%s\","
               "\"duration_ms\":%d,\n\"cells\":[",
            config.scale.c_str(), config.duration_ms);
    for (size_t i = 0; i < json_cells.size(); i++) {
      const JsonCell& c = json_cells[i];
      fprintf(f, "%s\n{\"system\":\"%s\",\"threads\":%d,\"ops_per_sec\":%.1f,\"stats\":%s}",
              i == 0 ? "" : ",", c.system.c_str(), c.threads, c.ops_per_sec,
              c.stats_json.empty() ? "null" : c.stats_json.c_str());
    }
    fprintf(f, "\n]}\n");
    fclose(f);
    printf("wrote bench_results/fig1_partitioning.json\n");
  }
  return 0;
}
