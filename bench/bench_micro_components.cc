// Micro-benchmarks (google-benchmark) of the concurrency substrates the
// cLSM algorithm is built from: the lock-free skip list, the shared-
// exclusive lock, the Active timestamp set, the MPSC logging queue and the
// concurrent arena. These quantify the "multiprocessor-friendly data
// structures" claim (§1) at the component level.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "src/arena/arena.h"
#include "src/core/clsm_db.h"
#include "src/obs/metrics.h"
#include "src/queue/mpsc_queue.h"
#include "src/skiplist/concurrent_skiplist.h"
#include "src/sync/active_set.h"
#include "src/sync/shared_exclusive_lock.h"
#include "src/sync/time_counter.h"
#include "src/util/coding.h"
#include "src/util/random.h"

namespace clsm {
namespace {

struct U64Comparator {
  int operator()(const char* a, const char* b) const {
    uint64_t va = DecodeFixed64(a);
    uint64_t vb = DecodeFixed64(b);
    return va < vb ? -1 : (va > vb ? 1 : 0);
  }
};

void BM_SkipListInsert(benchmark::State& state) {
  static ConcurrentArena* arena = nullptr;
  static ConcurrentSkipList<const char*, U64Comparator>* list = nullptr;
  static std::atomic<uint64_t>* counter = nullptr;
  if (state.thread_index() == 0) {
    arena = new ConcurrentArena;
    list = new ConcurrentSkipList<const char*, U64Comparator>(U64Comparator(), arena);
    counter = new std::atomic<uint64_t>(0);
  }
  for (auto _ : state) {
    uint64_t v = counter->fetch_add(1, std::memory_order_relaxed);
    char* key = arena->AllocateAligned(8);
    EncodeFixed64(key, v * 2654435761u);  // scatter
    list->Insert(key);
  }
  if (state.thread_index() == 0) {
    delete list;
    delete arena;
    delete counter;
  }
}
BENCHMARK(BM_SkipListInsert)->ThreadRange(1, 8)->UseRealTime();

void BM_SkipListContains(benchmark::State& state) {
  static ConcurrentArena* arena = nullptr;
  static ConcurrentSkipList<const char*, U64Comparator>* list = nullptr;
  if (state.thread_index() == 0) {
    arena = new ConcurrentArena;
    list = new ConcurrentSkipList<const char*, U64Comparator>(U64Comparator(), arena);
    for (uint64_t i = 0; i < 100000; i++) {
      char* key = arena->AllocateAligned(8);
      EncodeFixed64(key, i);
      list->Insert(key);
    }
  }
  Random64 rnd(state.thread_index() + 1);
  char probe[8];
  for (auto _ : state) {
    EncodeFixed64(probe, rnd.Uniform(100000));
    benchmark::DoNotOptimize(list->Contains(probe));
  }
  if (state.thread_index() == 0) {
    delete list;
    delete arena;
  }
}
BENCHMARK(BM_SkipListContains)->ThreadRange(1, 8)->UseRealTime();

void BM_SharedLockAcquire(benchmark::State& state) {
  static SharedExclusiveLock lock;
  for (auto _ : state) {
    lock.LockShared();
    lock.UnlockShared();
  }
}
BENCHMARK(BM_SharedLockAcquire)->ThreadRange(1, 8)->UseRealTime();

void BM_ActiveSetAddRemove(benchmark::State& state) {
  static ActiveTimestampSet set;
  static TimeCounter counter;
  for (auto _ : state) {
    uint64_t ts = counter.IncAndGet();
    set.Add(ts);
    set.Remove(ts);
  }
}
BENCHMARK(BM_ActiveSetAddRemove)->ThreadRange(1, 8)->UseRealTime();

void BM_ActiveSetFindMin(benchmark::State& state) {
  static ActiveTimestampSet set;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.FindMin());
  }
}
BENCHMARK(BM_ActiveSetFindMin)->ThreadRange(1, 4)->UseRealTime();

void BM_MpscEnqueue(benchmark::State& state) {
  static MpscQueue<uint64_t>* queue = nullptr;
  static std::atomic<bool>* stop = nullptr;
  static std::thread* consumer = nullptr;
  if (state.thread_index() == 0) {
    queue = new MpscQueue<uint64_t>;
    stop = new std::atomic<bool>(false);
    consumer = new std::thread([] {
      while (!stop->load(std::memory_order_acquire)) {
        if (!queue->Dequeue().has_value()) {
          std::this_thread::yield();
        }
      }
      while (queue->Dequeue().has_value()) {
      }
    });
  }
  uint64_t i = 0;
  for (auto _ : state) {
    queue->Enqueue(i++);
  }
  if (state.thread_index() == 0) {
    stop->store(true, std::memory_order_release);
    consumer->join();
    delete consumer;
    delete queue;
    delete stop;
  }
}
BENCHMARK(BM_MpscEnqueue)->ThreadRange(1, 8)->UseRealTime();

// --- Observability overhead (PR-2 acceptance: <5% on Put/Get) ---

// One relaxed record into the sharded registry (the whole marginal cost a
// metrics-on op pays beyond its clock reads).
void BM_StatsRegistryRecord(benchmark::State& state) {
  static StatsRegistry* registry = nullptr;
  if (state.thread_index() == 0) {
    registry = new StatsRegistry;
  }
  uint64_t fake_nanos = 1000 + state.thread_index();
  for (auto _ : state) {
    registry->Record(OpMetric::kPut, fake_nanos);
    fake_nanos += 37;
  }
  if (state.thread_index() == 0) {
    delete registry;
    registry = nullptr;
  }
}
BENCHMARK(BM_StatsRegistryRecord)->ThreadRange(1, 8)->UseRealTime();

// Full DB Put/Get with Options::latency_metrics on vs off. Compare the
// /metrics:1 and /metrics:0 series of the same benchmark: the acceptance
// bound is <5% between them.
class InstrumentationFixture {
 public:
  explicit InstrumentationFixture(bool metrics_on) {
    std::string dir = "/tmp/clsm-bench-obs-" + std::to_string(metrics_on ? 1 : 0);
    std::string cmd = "rm -rf " + dir;
    int rc = system(cmd.c_str());
    (void)rc;
    Options options;
    options.latency_metrics = metrics_on;
    options.write_buffer_size = 64 << 20;  // avoid rolls: isolate the op path
    DB* raw = nullptr;
    Status s = ClsmDb::Open(options, dir, &raw);
    if (s.ok()) {
      db_.reset(raw);
      // A small resident key space so Gets hit the memtable.
      WriteOptions wo;
      char key[16];
      std::string value(256, 'v');
      for (uint64_t i = 0; i < 10000; i++) {
        EncodeFixed64(key, i);
        db_->Put(wo, Slice(key, 8), value);
      }
    }
  }
  DB* db() { return db_.get(); }

 private:
  std::unique_ptr<DB> db_;
};

template <bool kMetricsOn>
void BM_DbPutInstrumentation(benchmark::State& state) {
  static InstrumentationFixture* fixture = nullptr;
  if (state.thread_index() == 0) {
    fixture = new InstrumentationFixture(kMetricsOn);
  }
  WriteOptions wo;
  char key[16];
  std::string value(256, 'v');
  uint64_t i = state.thread_index() * 1000003;
  for (auto _ : state) {
    EncodeFixed64(key, (i++ * 2654435761u) % 10000);
    fixture->db()->Put(wo, Slice(key, 8), value);
  }
  if (state.thread_index() == 0) {
    delete fixture;
    fixture = nullptr;
  }
}
BENCHMARK_TEMPLATE(BM_DbPutInstrumentation, false)
    ->Name("BM_DbPut/metrics:0")->ThreadRange(1, 4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_DbPutInstrumentation, true)
    ->Name("BM_DbPut/metrics:1")->ThreadRange(1, 4)->UseRealTime();

template <bool kMetricsOn>
void BM_DbGetInstrumentation(benchmark::State& state) {
  static InstrumentationFixture* fixture = nullptr;
  if (state.thread_index() == 0) {
    fixture = new InstrumentationFixture(kMetricsOn);
  }
  ReadOptions ro;
  char key[16];
  std::string value;
  Random64 rnd(state.thread_index() + 1);
  for (auto _ : state) {
    EncodeFixed64(key, rnd.Uniform(10000));
    benchmark::DoNotOptimize(fixture->db()->Get(ro, Slice(key, 8), &value));
  }
  if (state.thread_index() == 0) {
    delete fixture;
    fixture = nullptr;
  }
}
BENCHMARK_TEMPLATE(BM_DbGetInstrumentation, false)
    ->Name("BM_DbGet/metrics:0")->ThreadRange(1, 4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_DbGetInstrumentation, true)
    ->Name("BM_DbGet/metrics:1")->ThreadRange(1, 4)->UseRealTime();

void BM_ConcurrentArenaAllocate(benchmark::State& state) {
  static ConcurrentArena* arena = nullptr;
  if (state.thread_index() == 0) {
    arena = new ConcurrentArena;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena->AllocateAligned(48));
  }
  if (state.thread_index() == 0) {
    delete arena;
  }
}
BENCHMARK(BM_ConcurrentArenaAllocate)->ThreadRange(1, 8)->UseRealTime();

}  // namespace
}  // namespace clsm

BENCHMARK_MAIN();
