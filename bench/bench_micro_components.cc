// Micro-benchmarks (google-benchmark) of the concurrency substrates the
// cLSM algorithm is built from: the lock-free skip list, the shared-
// exclusive lock, the Active timestamp set, the MPSC logging queue and the
// concurrent arena. These quantify the "multiprocessor-friendly data
// structures" claim (§1) at the component level.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "src/arena/arena.h"
#include "src/queue/mpsc_queue.h"
#include "src/skiplist/concurrent_skiplist.h"
#include "src/sync/active_set.h"
#include "src/sync/shared_exclusive_lock.h"
#include "src/sync/time_counter.h"
#include "src/util/coding.h"
#include "src/util/random.h"

namespace clsm {
namespace {

struct U64Comparator {
  int operator()(const char* a, const char* b) const {
    uint64_t va = DecodeFixed64(a);
    uint64_t vb = DecodeFixed64(b);
    return va < vb ? -1 : (va > vb ? 1 : 0);
  }
};

void BM_SkipListInsert(benchmark::State& state) {
  static ConcurrentArena* arena = nullptr;
  static ConcurrentSkipList<const char*, U64Comparator>* list = nullptr;
  static std::atomic<uint64_t>* counter = nullptr;
  if (state.thread_index() == 0) {
    arena = new ConcurrentArena;
    list = new ConcurrentSkipList<const char*, U64Comparator>(U64Comparator(), arena);
    counter = new std::atomic<uint64_t>(0);
  }
  for (auto _ : state) {
    uint64_t v = counter->fetch_add(1, std::memory_order_relaxed);
    char* key = arena->AllocateAligned(8);
    EncodeFixed64(key, v * 2654435761u);  // scatter
    list->Insert(key);
  }
  if (state.thread_index() == 0) {
    delete list;
    delete arena;
    delete counter;
  }
}
BENCHMARK(BM_SkipListInsert)->ThreadRange(1, 8)->UseRealTime();

void BM_SkipListContains(benchmark::State& state) {
  static ConcurrentArena* arena = nullptr;
  static ConcurrentSkipList<const char*, U64Comparator>* list = nullptr;
  if (state.thread_index() == 0) {
    arena = new ConcurrentArena;
    list = new ConcurrentSkipList<const char*, U64Comparator>(U64Comparator(), arena);
    for (uint64_t i = 0; i < 100000; i++) {
      char* key = arena->AllocateAligned(8);
      EncodeFixed64(key, i);
      list->Insert(key);
    }
  }
  Random64 rnd(state.thread_index() + 1);
  char probe[8];
  for (auto _ : state) {
    EncodeFixed64(probe, rnd.Uniform(100000));
    benchmark::DoNotOptimize(list->Contains(probe));
  }
  if (state.thread_index() == 0) {
    delete list;
    delete arena;
  }
}
BENCHMARK(BM_SkipListContains)->ThreadRange(1, 8)->UseRealTime();

void BM_SharedLockAcquire(benchmark::State& state) {
  static SharedExclusiveLock lock;
  for (auto _ : state) {
    lock.LockShared();
    lock.UnlockShared();
  }
}
BENCHMARK(BM_SharedLockAcquire)->ThreadRange(1, 8)->UseRealTime();

void BM_ActiveSetAddRemove(benchmark::State& state) {
  static ActiveTimestampSet set;
  static TimeCounter counter;
  for (auto _ : state) {
    uint64_t ts = counter.IncAndGet();
    set.Add(ts);
    set.Remove(ts);
  }
}
BENCHMARK(BM_ActiveSetAddRemove)->ThreadRange(1, 8)->UseRealTime();

void BM_ActiveSetFindMin(benchmark::State& state) {
  static ActiveTimestampSet set;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.FindMin());
  }
}
BENCHMARK(BM_ActiveSetFindMin)->ThreadRange(1, 4)->UseRealTime();

void BM_MpscEnqueue(benchmark::State& state) {
  static MpscQueue<uint64_t>* queue = nullptr;
  static std::atomic<bool>* stop = nullptr;
  static std::thread* consumer = nullptr;
  if (state.thread_index() == 0) {
    queue = new MpscQueue<uint64_t>;
    stop = new std::atomic<bool>(false);
    consumer = new std::thread([] {
      while (!stop->load(std::memory_order_acquire)) {
        if (!queue->Dequeue().has_value()) {
          std::this_thread::yield();
        }
      }
      while (queue->Dequeue().has_value()) {
      }
    });
  }
  uint64_t i = 0;
  for (auto _ : state) {
    queue->Enqueue(i++);
  }
  if (state.thread_index() == 0) {
    stop->store(true, std::memory_order_release);
    consumer->join();
    delete consumer;
    delete queue;
    delete stop;
  }
}
BENCHMARK(BM_MpscEnqueue)->ThreadRange(1, 8)->UseRealTime();

void BM_ConcurrentArenaAllocate(benchmark::State& state) {
  static ConcurrentArena* arena = nullptr;
  if (state.thread_index() == 0) {
    arena = new ConcurrentArena;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena->AllocateAligned(48));
  }
  if (state.thread_index() == 0) {
    delete arena;
  }
}
BENCHMARK(BM_ConcurrentArenaAllocate)->ThreadRange(1, 8)->UseRealTime();

}  // namespace
}  // namespace clsm

BENCHMARK_MAIN();
