// Figure 5 (paper §5.1): write performance. 100% put workload, keys drawn
// uniformly at random, value size 256B, key size 8B. Fig 5a plots
// throughput vs worker threads for all five systems; Fig 5b plots
// throughput vs 90th-percentile latency.
//
// Expected shape (paper): LevelDB, bLSM and RocksDB are bounded by their
// single-writer architectures and do not scale (throughput can even drop
// as threads contend on the writer queue). HyperLevelDB gains ~33% up to 4
// threads. cLSM scales ~2.5x, saturating around 8 threads, peak ~1.8x the
// best competitor.
#include "bench/bench_common.h"

using namespace clsm;

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Figure 5", "write throughput and latency, 100% uniform puts", config);

  WorkloadSpec spec;
  spec.write_fraction = 1.0;
  spec.distribution = KeyDist::kUniform;
  spec.num_keys = config.num_keys;

  std::vector<DbVariant> systems = {DbVariant::kRocksDb, DbVariant::kBlsm, DbVariant::kLevelDb,
                                    DbVariant::kHyperLevelDb, DbVariant::kClsm};

  ResultTable table("writes/sec", config.thread_counts);
  Options options = FigureOptions(config);
  for (DbVariant v : systems) {
    for (int threads : config.thread_counts) {
      DriverResult r = RunCell(v, spec, threads, config, options);
      table.AddResult(v, threads, r);
    }
  }

  printf("\n--- Fig 5a: write throughput (ops/sec) ---\n");
  table.Print();
  printf("\n--- Fig 5b: throughput vs 90th-percentile latency ---\n");
  table.PrintLatencyView();
  table.WriteJson("fig5_write", config);
  return 0;
}
