// Shared harness for the per-figure benchmark binaries. Each binary
// reproduces one table/figure of the paper's evaluation (§5): it sweeps
// worker-thread counts over the systems under test and prints the series
// the figure plots.
//
// Scale knobs (environment variables):
//   CLSM_BENCH_SCALE   "smoke" (default: seconds-per-cell suitable for CI),
//                      "paper" (minutes-per-cell, larger datasets)
//   CLSM_BENCH_THREADS comma list overriding the thread sweep, e.g. "1,2,4"
//   CLSM_BENCH_STATS_DUMP_SEC  period of the in-DB StatsReporter thread
//                      (0 = off); interval deltas + JSON go to stderr
//   CLSM_BENCH_PERF_LEVEL  per-op attribution depth for every opened DB:
//                      "off" (default), "counts", or "timers"
//                      (= counts+timers). When enabled, each JSON cell
//                      gains a "perf" field with a post-run probe-read's
//                      full PerfContext snapshot.
//
// NOTE on hardware: the paper runs on a 16-hardware-thread Xeon. On hosts
// with fewer cores the sweep still runs — oversubscribed — and measures
// synchronization overhead rather than parallel speedup; EXPERIMENTS.md
// discusses how to read the results in that regime.
#ifndef CLSM_BENCH_BENCH_COMMON_H_
#define CLSM_BENCH_BENCH_COMMON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/factory.h"
#include "src/workload/driver.h"
#include "src/workload/trace.h"

namespace clsm {

struct BenchConfig {
  // Duration of each measured cell in milliseconds.
  int duration_ms = 1000;
  // Number of distinct keys in the store (scaled-down stand-in for the
  // paper's 150 GB dataset; ratios to the memtable size are preserved).
  uint64_t num_keys = 200'000;
  uint64_t preload_keys = 100'000;
  size_t write_buffer_size = 4 << 20;
  std::vector<int> thread_counts = {1, 2, 4, 8, 16};
  std::string scale = "smoke";
  // Periodic stats dump inside each opened DB (0 = off).
  unsigned stats_dump_period_sec = 0;
  // Per-op attribution depth (CLSM_BENCH_PERF_LEVEL).
  PerfLevel perf_level = PerfLevel::kDisabled;
};

// Reads CLSM_BENCH_SCALE / CLSM_BENCH_THREADS and returns the config.
BenchConfig LoadBenchConfig();

// Prints the standard header for a figure reproduction.
void PrintFigureHeader(const std::string& figure_id, const std::string& description,
                       const BenchConfig& config);

// One measured cell: opens a fresh DB of `variant`, preloads
// config.preload_keys, runs spec with `threads` workers, returns the result.
DriverResult RunCell(DbVariant variant, const WorkloadSpec& spec, int threads,
                     const BenchConfig& config, const Options& base_options);

// Formats a throughput table: rows = systems, columns = thread counts.
class ResultTable {
 public:
  ResultTable(const std::string& metric, std::vector<int> thread_counts);
  void Add(DbVariant variant, int threads, double value);
  // Attach latency info for the latency-vs-throughput view (Figs 5b/6b).
  void AddLatency(DbVariant variant, int threads, double p90_micros);
  // Record a whole cell (throughput + latency percentiles + the DB's stats
  // snapshot) so WriteJson can emit the machine-readable series.
  void AddResult(DbVariant variant, int threads, const DriverResult& result);
  void Print() const;
  void PrintLatencyView() const;
  double Get(DbVariant variant, int threads) const;

  // Writes bench_results/<figure_id>.json:
  // { "figure": id, "metric": ..., "scale": ..., "duration_ms": N,
  //   "cells": [ { "system": name, "threads": T, "ops_per_sec": X,
  //                "p50_us":..,"p90_us":..,"p99_us":..,"p999_us":..,
  //                "stats": <the cell's clsm.stats.json snapshot>,
  //                "perf": <probe-read clsm.perf.json, null when off> }, ... ] }
  // Returns true on success (creates bench_results/ if needed).
  bool WriteJson(const std::string& figure_id, const BenchConfig& config) const;

 private:
  std::string metric_;
  std::vector<int> thread_counts_;
  struct Cell {
    double value = 0;
    double p90 = 0;
    double p50 = 0, p99 = 0, p999 = 0;
    std::string stats_json;
    std::string perf_json;
    bool set = false;
  };
  std::map<std::string, std::map<int, Cell>> rows_;
};

// Runs a production-like trace (§5.2) against an already-open DB with
// `threads` workers for duration_ms. Each worker gets an independent
// deterministic TraceGenerator seeded from seed_base.
DriverResult RunTraceWorkload(DB* db, const TraceSpec& spec, int threads, int duration_ms,
                              uint64_t seed_base);

// Preloads the keys of a trace's key space into db (values of the trace's
// value size).
Status LoadTraceKeySpace(DB* db, const TraceSpec& spec);

// Returns a scratch database directory (removed and recreated).
std::string FreshDbDir(const std::string& tag);

// Default options used by every figure unless it overrides them: paper §5
// setup scaled to the host (WAL on with asynchronous logging, Bloom
// filters, block cache).
Options FigureOptions(const BenchConfig& config);

}  // namespace clsm

#endif  // CLSM_BENCH_BENCH_COMMON_H_
