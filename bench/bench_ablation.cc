// Ablation studies of cLSM's design choices (beyond the paper's figures):
//   A1. asynchronous vs synchronous logging vs no WAL (write throughput) —
//       quantifies §4's "writes occur at memory speed" claim.
//   A2. Bloom filters on/off (read throughput on a disk-resident set).
//   A3. block cache size sweep (read throughput).
//   A4. dedicated flush thread on/off under compaction pressure (§5.3).
//   A5. serializable vs linearizable snapshot acquisition under write
//       churn (getSnap cost of the stronger guarantee, §3.2.1).
#include <chrono>

#include "bench/bench_common.h"
#include "src/core/clsm_db.h"

using namespace clsm;

namespace {

DriverResult RunWithOptions(const Options& options, const WorkloadSpec& spec, int threads,
                            const BenchConfig& config, const std::string& tag) {
  std::string dir = FreshDbDir("ablation-" + tag);
  DB* raw = nullptr;
  Status s = OpenDb(DbVariant::kClsm, options, dir, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return DriverResult();
  }
  std::unique_ptr<DB> db(raw);
  LoadKeySpace(db.get(), config.preload_keys, spec.key_size, spec.value_size);
  db->WaitForMaintenance();
  DriverResult r = RunWorkload(db.get(), spec, threads, config.duration_ms);
  db->WaitForMaintenance();
  return r;
}

}  // namespace

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Ablations", "cLSM design-choice studies", config);
  const int kThreads = 4;

  {
    printf("\n--- A1: logging mode (100%% writes, %d threads) ---\n", kThreads);
    WorkloadSpec spec;
    spec.write_fraction = 1.0;
    spec.num_keys = config.num_keys;
    struct Mode {
      const char* name;
      bool sync;
      bool disable;
    };
    for (Mode m : {Mode{"async-wal (paper default)", false, false},
                   Mode{"sync-wal (every put fsyncs)", true, false},
                   Mode{"no-wal", false, true}}) {
      Options options = FigureOptions(config);
      options.sync_logging = m.sync;
      options.disable_wal = m.disable;
      DriverResult r = RunWithOptions(options, spec, kThreads, config, "log");
      printf("%-30s %12.0f writes/sec  p90=%.1fus\n", m.name, r.ops_per_sec,
             r.latency_micros.Percentile(90));
    }
  }

  {
    printf("\n--- A2: Bloom filters (uniform reads, 50%% absent keys) ---\n");
    WorkloadSpec spec;
    // Half the probed key space was never written: filters shine on misses
    // (and on multi-level probes), not on hits.
    spec.num_keys = config.preload_keys * 2;
    spec.distribution = KeyDist::kUniform;  // cache-hostile: filters matter
    for (int bits : {0, 10}) {
      Options options = FigureOptions(config);
      options.bloom_bits_per_key = bits;
      options.block_cache_size = 1 << 20;  // small cache: force block reads
      DriverResult r = RunWithOptions(options, spec, kThreads, config, "bloom");
      printf("bloom_bits_per_key=%-2d %16.0f reads/sec  p90=%.1fus\n", bits, r.ops_per_sec,
             r.latency_micros.Percentile(90));
    }
  }

  {
    printf("\n--- A3: block cache size (hot-block reads) ---\n");
    WorkloadSpec spec;
    spec.num_keys = config.preload_keys;
    spec.distribution = KeyDist::kHotBlock;
    for (size_t cache : {size_t{0}, size_t{1} << 20, size_t{8} << 20, size_t{64} << 20}) {
      Options options = FigureOptions(config);
      options.block_cache_size = cache;
      DriverResult r = RunWithOptions(options, spec, kThreads, config, "cache");
      printf("block_cache=%-10zu %13.0f reads/sec  p90=%.1fus\n", cache, r.ops_per_sec,
             r.latency_micros.Percentile(90));
    }
  }

  {
    printf("\n--- A4: dedicated flush thread under compaction pressure ---\n");
    WorkloadSpec spec;
    spec.write_fraction = 1.0;
    spec.num_keys = config.preload_keys;
    spec.value_size = 400;
    for (bool dedicated : {false, true}) {
      Options options = FigureOptions(config);
      options.write_buffer_size = 256 << 10;  // constant flush+compaction load
      options.dedicated_flush_thread = dedicated;
      DriverResult r = RunWithOptions(options, spec, kThreads, config, "flushthread");
      printf("dedicated_flush_thread=%-5s %10.0f writes/sec  p90=%.1fus\n",
             dedicated ? "true" : "false", r.ops_per_sec, r.latency_micros.Percentile(90));
    }
  }

  {
    printf("\n--- A5: snapshot acquisition mode under write churn ---\n");
    for (bool linearizable : {false, true}) {
      Options options = FigureOptions(config);
      options.linearizable_snapshots = linearizable;
      std::string dir = FreshDbDir("ablation-snap");
      DB* raw = nullptr;
      if (!OpenDb(DbVariant::kClsm, options, dir, &raw).ok()) {
        continue;
      }
      std::unique_ptr<DB> db(raw);
      LoadKeySpace(db.get(), 10'000, 8, 64);

      std::atomic<bool> stop{false};
      std::vector<std::thread> writers;
      for (int w = 0; w < 3; w++) {
        writers.emplace_back([&, w] {
          WriteOptions wo;
          ValueGenerator values(64, w);
          UniformGenerator keys(10'000, w * 77 + 1);
          std::string key;
          while (!stop.load()) {
            EncodeWorkloadKey(keys.Next(), 8, &key);
            db->Put(wo, key, values.Next());
          }
        });
      }
      Histogram snap_latency;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(config.duration_ms);
      uint64_t snaps = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        auto t0 = std::chrono::steady_clock::now();
        const Snapshot* snap = db->GetSnapshot();
        auto t1 = std::chrono::steady_clock::now();
        db->ReleaseSnapshot(snap);
        snap_latency.Add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1000.0);
        snaps++;
      }
      stop = true;
      for (auto& w : writers) {
        w.join();
      }
      printf("linearizable=%-5s getSnap: %llu acquired, p50=%.2fus p99=%.2fus max=%.0fus\n",
             linearizable ? "true" : "false", static_cast<unsigned long long>(snaps),
             snap_latency.Percentile(50), snap_latency.Percentile(99), snap_latency.Max());
    }
  }

  return 0;
}
