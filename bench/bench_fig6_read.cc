// Figure 6 (paper §5.1): read performance. 100% gets with locality: 90% of
// keys picked from popular blocks comprising 10% of the database; the rest
// uniform. The paper sweeps 1..128 threads (beyond hardware parallelism,
// since some threads block on disk reads).
//
// Expected shape (paper): LevelDB and HyperLevelDB stop scaling at ~8
// threads (reads block on the global mutex); cLSM and RocksDB scale all the
// way to 128 threads; cLSM peaks ~2.3x the best competitor, and RocksDB
// pays an order of magnitude more latency for its throughput.
#include "bench/bench_common.h"

using namespace clsm;

int main() {
  BenchConfig config = LoadBenchConfig();
  // Reads scale past hardware threads; extend the sweep like the paper.
  if (getenv("CLSM_BENCH_THREADS") == nullptr) {
    config.thread_counts = {1, 2, 4, 8, 16, 32, 64, 128};
  }
  PrintFigureHeader("Figure 6", "read throughput and latency, 90%/10% hot-block gets", config);

  WorkloadSpec spec;
  spec.write_fraction = 0.0;
  spec.distribution = KeyDist::kHotBlock;
  spec.hot_key_fraction = 0.10;
  spec.hot_op_fraction = 0.90;
  spec.num_keys = config.preload_keys;  // read existing keys only

  std::vector<DbVariant> systems = {DbVariant::kRocksDb, DbVariant::kBlsm, DbVariant::kLevelDb,
                                    DbVariant::kHyperLevelDb, DbVariant::kClsm};

  ResultTable table("reads/sec", config.thread_counts);
  Options options = FigureOptions(config);
  for (DbVariant v : systems) {
    for (int threads : config.thread_counts) {
      DriverResult r = RunCell(v, spec, threads, config, options);
      table.AddResult(v, threads, r);
    }
  }

  printf("\n--- Fig 6a: read throughput (ops/sec) ---\n");
  table.Print();
  printf("\n--- Fig 6b: throughput vs 90th-percentile latency ---\n");
  table.PrintLatencyView();
  table.WriteJson("fig6_read", config);
  return 0;
}
