// Figure 9 (paper §5.1): atomic read-modify-write throughput, put-if-absent
// flavor, with locality, sweeping writer threads. Baseline: LevelDB
// augmented with textbook lock-striping RMW (Gray & Reuter), the
// implementation the paper measures cLSM's optimistic RMW at ~2.5x.
#include "bench/bench_common.h"

using namespace clsm;

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Figure 9", "100% read-modify-write (put-if-absent) throughput", config);

  WorkloadSpec spec;
  spec.rmw_fraction = 1.0;
  spec.distribution = KeyDist::kHotBlock;
  spec.num_keys = config.num_keys;  // beyond preload so many RMWs insert

  ResultTable table("rmw/sec", config.thread_counts);
  Options options = FigureOptions(config);
  for (DbVariant v : {DbVariant::kStripedRmw, DbVariant::kClsm}) {
    for (int threads : config.thread_counts) {
      DriverResult r = RunCell(v, spec, threads, config, options);
      table.AddResult(v, threads, r);
    }
  }

  printf("\n--- Fig 9: RMW throughput (ops/sec) ---\n");
  table.Print();
  printf("\n(paper shape: cLSM ~2.5x the lock-striping baseline, close to its\n"
         " pure-write peak)\n");
  table.WriteJson("fig9_rmw", config);
  return 0;
}
