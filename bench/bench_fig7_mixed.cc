// Figure 7 (paper §5.1): mixed workloads.
//   Fig 7a: 50% reads / 50% writes (ops/sec).
//   Fig 7b: 50% scans / 50% writes where each scan covers 10-20 keys, so
//           scan *operations* are ~15x rarer than writes to balance the
//           number of keys written and scanned; throughput is keys/sec.
//
// Expected shape (paper): LevelDB fails to scale even at 50% writes;
// HyperLevelDB slightly better; cLSM exploits all threads (~730K ops/s at
// 16 in the paper). For scans, competitors trail cLSM by more than 60%.
// bLSM is excluded from 7b (no consistent scans in the original).
#include "bench/bench_common.h"

using namespace clsm;

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Figure 7", "mixed read/write and scan/write throughput", config);

  Options options = FigureOptions(config);

  {
    WorkloadSpec spec;
    spec.write_fraction = 0.5;
    spec.distribution = KeyDist::kHotBlock;
    spec.num_keys = config.preload_keys;

    std::vector<DbVariant> systems = {DbVariant::kRocksDb, DbVariant::kBlsm, DbVariant::kLevelDb,
                                      DbVariant::kHyperLevelDb, DbVariant::kClsm};
    ResultTable table("ops/sec", config.thread_counts);
    for (DbVariant v : systems) {
      for (int threads : config.thread_counts) {
        DriverResult r = RunCell(v, spec, threads, config, options);
        table.AddResult(v, threads, r);
      }
    }
    printf("\n--- Fig 7a: 50%% read / 50%% write (ops/sec) ---\n");
    table.Print();
    table.WriteJson("fig7a_mixed_rw", config);
  }

  {
    // Keys scanned per op ~15, so scans are 1/16 of operations to keep keys
    // written ≈ keys scanned, as in the paper.
    WorkloadSpec spec;
    spec.write_fraction = 15.0 / 16.0;
    spec.scan_fraction = 1.0 / 16.0;
    spec.distribution = KeyDist::kHotBlock;
    spec.num_keys = config.preload_keys;

    std::vector<DbVariant> systems = {DbVariant::kRocksDb, DbVariant::kLevelDb,
                                      DbVariant::kHyperLevelDb, DbVariant::kClsm};
    ResultTable table("keys/sec", config.thread_counts);
    for (DbVariant v : systems) {
      for (int threads : config.thread_counts) {
        DriverResult r = RunCell(v, spec, threads, config, options);
        table.AddResult(v, threads, r);
        table.Add(v, threads, r.keys_per_sec);  // figure metric is keys/sec
      }
    }
    printf("\n--- Fig 7b: 50%% scan / 50%% write (keys/sec; bLSM excluded) ---\n");
    table.Print();
    table.WriteJson("fig7b_scan_write", config);
  }
  return 0;
}
