#include "bench/bench_common.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/workload/generator.h"

namespace clsm {

BenchConfig LoadBenchConfig() {
  BenchConfig config;
  const char* scale = getenv("CLSM_BENCH_SCALE");
  if (scale != nullptr && strcmp(scale, "paper") == 0) {
    config.scale = "paper";
    config.duration_ms = 10'000;
    config.num_keys = 5'000'000;
    config.preload_keys = 2'000'000;
    config.write_buffer_size = 64 << 20;
  }
  const char* threads = getenv("CLSM_BENCH_THREADS");
  if (threads != nullptr) {
    config.thread_counts.clear();
    const char* p = threads;
    while (*p != '\0') {
      config.thread_counts.push_back(atoi(p));
      const char* comma = strchr(p, ',');
      if (comma == nullptr) {
        break;
      }
      p = comma + 1;
    }
  }
  const char* duration = getenv("CLSM_BENCH_DURATION_MS");
  if (duration != nullptr) {
    config.duration_ms = atoi(duration);
  }
  const char* dump_sec = getenv("CLSM_BENCH_STATS_DUMP_SEC");
  if (dump_sec != nullptr) {
    config.stats_dump_period_sec = static_cast<unsigned>(atoi(dump_sec));
  }
  const char* perf = getenv("CLSM_BENCH_PERF_LEVEL");
  if (perf != nullptr) {
    if (strcmp(perf, "counts") == 0) {
      config.perf_level = PerfLevel::kEnableCounts;
    } else if (strcmp(perf, "timers") == 0 || strcmp(perf, "counts+timers") == 0) {
      config.perf_level = PerfLevel::kEnableTimers;
    } else if (strcmp(perf, "off") != 0) {
      fprintf(stderr, "CLSM_BENCH_PERF_LEVEL '%s' not recognized (off|counts|timers)\n", perf);
    }
  }
  return config;
}

void PrintFigureHeader(const std::string& figure_id, const std::string& description,
                       const BenchConfig& config) {
  printf("==================================================================\n");
  printf("%s — %s\n", figure_id.c_str(), description.c_str());
  printf("scale=%s  cell=%dms  keys=%llu  hw_threads=%u\n", config.scale.c_str(),
         config.duration_ms, static_cast<unsigned long long>(config.num_keys),
         std::thread::hardware_concurrency());
  printf("==================================================================\n");
  fflush(stdout);
}

Options FigureOptions(const BenchConfig& config) {
  Options options;
  options.write_buffer_size = config.write_buffer_size;  // the "128MB" knob, scaled
  options.sync_logging = false;                          // paper default: async logging
  options.stats_dump_period_sec = config.stats_dump_period_sec;
  options.perf_level = config.perf_level;
  return options;
}

std::string FreshDbDir(const std::string& tag) {
  std::string dir = "/tmp/clsm-bench-" + tag;
  std::string cmd = "rm -rf " + dir;
  int rc = system(cmd.c_str());
  (void)rc;
  return dir;
}

DriverResult RunCell(DbVariant variant, const WorkloadSpec& spec, int threads,
                     const BenchConfig& config, const Options& base_options) {
  std::string dir = FreshDbDir(std::string(VariantName(variant)));
  DB* raw = nullptr;
  Status s = OpenDb(variant, base_options, dir, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open %s failed: %s\n", VariantName(variant), s.ToString().c_str());
    return DriverResult();
  }
  std::unique_ptr<DB> db(raw);
  s = LoadKeySpace(db.get(), config.preload_keys, spec.key_size, spec.value_size);
  if (!s.ok()) {
    fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
    return DriverResult();
  }
  db->WaitForMaintenance();
  DriverResult result = RunWorkload(db.get(), spec, threads, config.duration_ms);
  db->WaitForMaintenance();
  result.stats_json = db->GetProperty("clsm.stats.json");
  if (base_options.perf_level != PerfLevel::kDisabled) {
    // PerfContext is thread-local, so the workers' contexts died with them;
    // issue one probe read from this thread to capture a representative
    // attributed operation against the store's post-run shape.
    std::string probe_key, value;
    EncodeWorkloadKey(0, spec.key_size, &probe_key);
    db->Get(ReadOptions(), probe_key, &value);
    result.perf_json = db->GetProperty("clsm.perf.json");
  }
  return result;
}

DriverResult RunTraceWorkload(DB* db, const TraceSpec& spec, int threads, int duration_ms,
                              uint64_t seed_base) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  struct ThreadStats {
    uint64_t ops = 0, reads = 0, writes = 0;
    Histogram latency;
  };
  std::vector<ThreadStats> stats(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      TraceGenerator gen(spec, seed_base + t * 131);
      ThreadStats& my = stats[t];
      std::string key, value;
      WriteOptions wo;
      ReadOptions ro;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_relaxed)) {
        TraceOpType op = gen.NextOpType();
        gen.NextKey(&key);
        auto t0 = std::chrono::steady_clock::now();
        if (op == TraceOpType::kGet) {
          db->Get(ro, key, &value);
          my.reads++;
        } else {
          db->Put(wo, key, gen.NextValue());
          my.writes++;
        }
        auto t1 = std::chrono::steady_clock::now();
        my.latency.Add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1000.0);
        my.ops++;
      }
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  auto t1 = std::chrono::steady_clock::now();

  DriverResult result;
  result.duration_secs = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& s : stats) {
    result.total_ops += s.ops;
    result.reads += s.reads;
    result.writes += s.writes;
    result.latency_micros.Merge(s.latency);
  }
  result.ops_per_sec = result.total_ops / result.duration_secs;
  result.keys_per_sec = result.ops_per_sec;
  return result;
}

Status LoadTraceKeySpace(DB* db, const TraceSpec& spec) {
  return LoadKeySpace(db, spec.num_keys, spec.key_size, spec.value_size);
}

ResultTable::ResultTable(const std::string& metric, std::vector<int> thread_counts)
    : metric_(metric), thread_counts_(std::move(thread_counts)) {}

void ResultTable::Add(DbVariant variant, int threads, double value) {
  Cell& cell = rows_[VariantName(variant)][threads];
  cell.value = value;
  cell.set = true;
}

void ResultTable::AddLatency(DbVariant variant, int threads, double p90_micros) {
  rows_[VariantName(variant)][threads].p90 = p90_micros;
}

void ResultTable::AddResult(DbVariant variant, int threads, const DriverResult& result) {
  Cell& cell = rows_[VariantName(variant)][threads];
  cell.value = result.ops_per_sec;
  cell.p50 = result.latency_micros.Percentile(50);
  cell.p90 = result.latency_micros.Percentile(90);
  cell.p99 = result.latency_micros.Percentile(99);
  cell.p999 = result.latency_micros.Percentile(99.9);
  cell.stats_json = result.stats_json;
  cell.perf_json = result.perf_json;
  cell.set = true;
}

bool ResultTable::WriteJson(const std::string& figure_id, const BenchConfig& config) const {
  int rc = system("mkdir -p bench_results");
  (void)rc;
  const std::string path = "bench_results/" + figure_id + ".json";
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\"figure\":\"%s\",\"metric\":\"%s\",\"scale\":\"%s\",\"duration_ms\":%d,\n",
          figure_id.c_str(), metric_.c_str(), config.scale.c_str(), config.duration_ms);
  fprintf(f, "\"cells\":[");
  bool first = true;
  for (const auto& [name, cells] : rows_) {
    for (int t : thread_counts_) {
      auto it = cells.find(t);
      if (it == cells.end() || !it->second.set) {
        continue;
      }
      const Cell& c = it->second;
      fprintf(f, "%s\n{\"system\":\"%s\",\"threads\":%d,\"ops_per_sec\":%.1f,"
                 "\"p50_us\":%.2f,\"p90_us\":%.2f,\"p99_us\":%.2f,\"p999_us\":%.2f,"
                 "\"stats\":%s,\"perf\":%s}",
              first ? "" : ",", name.c_str(), t, c.value, c.p50, c.p90, c.p99, c.p999,
              c.stats_json.empty() ? "null" : c.stats_json.c_str(),
              c.perf_json.empty() ? "null" : c.perf_json.c_str());
      first = false;
    }
  }
  fprintf(f, "\n]}\n");
  fclose(f);
  printf("wrote %s\n", path.c_str());
  return true;
}

double ResultTable::Get(DbVariant variant, int threads) const {
  auto row = rows_.find(VariantName(variant));
  if (row == rows_.end()) {
    return 0;
  }
  auto cell = row->second.find(threads);
  return cell == row->second.end() ? 0 : cell->second.value;
}

void ResultTable::Print() const {
  printf("\n%-16s", (metric_ + " \\ threads").c_str());
  for (int t : thread_counts_) {
    printf("%12d", t);
  }
  printf("\n");
  for (const auto& [name, cells] : rows_) {
    printf("%-16s", name.c_str());
    for (int t : thread_counts_) {
      auto it = cells.find(t);
      if (it != cells.end() && it->second.set) {
        printf("%12.0f", it->second.value);
      } else {
        printf("%12s", "-");
      }
    }
    printf("\n");
  }
  fflush(stdout);
}

void ResultTable::PrintLatencyView() const {
  printf("\n%-16s %10s %14s %14s\n", "system", "threads", metric_.c_str(), "p90-lat(us)");
  for (const auto& [name, cells] : rows_) {
    for (int t : thread_counts_) {
      auto it = cells.find(t);
      if (it != cells.end() && it->second.set) {
        printf("%-16s %10d %14.0f %14.1f\n", name.c_str(), t, it->second.value, it->second.p90);
      }
    }
  }
  fflush(stdout);
}

}  // namespace clsm
