// Scalability summary (paper §1/§5 headline claims): for each system and
// each canonical workload, report the peak throughput, the thread count at
// which it peaks, and the speedup over its own single-thread throughput.
// The paper's claims: cLSM improves throughput 1.5x-2.5x over the best
// competitor and exploits at least twice as many threads.
#include "bench/bench_common.h"

using namespace clsm;

namespace {

struct Summary {
  double best_ops = 0;
  int best_threads = 1;
  double one_thread_ops = 0;
};

}  // namespace

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Scalability summary", "peak thread count and self-speedup per system",
                    config);

  struct Mix {
    const char* name;
    WorkloadSpec spec;
  };
  WorkloadSpec writes;
  writes.write_fraction = 1.0;
  writes.distribution = KeyDist::kUniform;
  WorkloadSpec reads;
  reads.distribution = KeyDist::kHotBlock;
  WorkloadSpec mixed;
  mixed.write_fraction = 0.5;
  mixed.distribution = KeyDist::kHotBlock;

  std::vector<Mix> mixes = {{"100% write", writes}, {"100% read", reads}, {"50/50 mix", mixed}};
  std::vector<DbVariant> systems = {DbVariant::kRocksDb, DbVariant::kBlsm, DbVariant::kLevelDb,
                                    DbVariant::kHyperLevelDb, DbVariant::kClsm};

  Options options = FigureOptions(config);
  for (const Mix& mix : mixes) {
    WorkloadSpec spec = mix.spec;
    spec.num_keys = config.preload_keys;
    printf("\n--- workload: %s ---\n", mix.name);
    printf("%-16s %14s %14s %14s\n", "system", "peak ops/sec", "peak threads", "self-speedup");
    for (DbVariant v : systems) {
      Summary summary;
      for (int threads : config.thread_counts) {
        DriverResult r = RunCell(v, spec, threads, config, options);
        if (threads == config.thread_counts.front()) {
          summary.one_thread_ops = r.ops_per_sec;
        }
        if (r.ops_per_sec > summary.best_ops) {
          summary.best_ops = r.ops_per_sec;
          summary.best_threads = threads;
        }
      }
      printf("%-16s %14.0f %14d %14.2fx\n", VariantName(v), summary.best_ops,
             summary.best_threads,
             summary.one_thread_ops > 0 ? summary.best_ops / summary.one_thread_ops : 0.0);
      fflush(stdout);
    }
  }
  return 0;
}
