// Figure 10 (paper §5.2): production web-serving workloads — four
// representative datasets from a personalized-content/ad serving system.
// The paper's logs are proprietary; we substitute deterministic synthetic
// traces matched to the published statistics (read ratios 93/85/96/86%,
// ~40B keys, ~1KiB values, heavy-tail popularity: top 10% of keys ≈ 75%+
// of requests, top 1-2% ≈ 50%). See DESIGN.md "Substitutions".
//
// Expected shape (paper): cLSM is slower at 1 thread but scales much
// better, winning clearly at 8-16 threads; the margin is smaller than in
// §5.1 because larger keys/values dilute synchronization overhead.
#include "bench/bench_common.h"

using namespace clsm;

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Figure 10", "production-like traces (synthetic stand-ins)", config);

  uint64_t trace_keys = config.scale == "paper" ? 1'000'000 : 20'000;
  std::vector<DbVariant> systems = {DbVariant::kRocksDb, DbVariant::kLevelDb,
                                    DbVariant::kHyperLevelDb, DbVariant::kClsm};

  for (const TraceSpec& spec : ProductionTraceSpecs(trace_keys)) {
    printf("\n--- %s (%.0f%% reads, zipf theta=%.2f) ---\n", spec.name.c_str(),
           spec.read_fraction * 100, spec.zipf_theta);
    ResultTable table("ops/sec", config.thread_counts);
    for (DbVariant v : systems) {
      for (int threads : config.thread_counts) {
        std::string dir = FreshDbDir(std::string(VariantName(v)) + "-" + spec.name);
        DB* raw = nullptr;
        Options options = FigureOptions(config);
        Status s = OpenDb(v, options, dir, &raw);
        if (!s.ok()) {
          fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
          continue;
        }
        std::unique_ptr<DB> db(raw);
        if (!LoadTraceKeySpace(db.get(), spec).ok()) {
          continue;
        }
        db->WaitForMaintenance();
        DriverResult r = RunTraceWorkload(db.get(), spec, threads, config.duration_ms, 17);
        db->WaitForMaintenance();
        r.stats_json = db->GetProperty("clsm.stats.json");
        table.AddResult(v, threads, r);
      }
    }
    table.Print();
    table.WriteJson("fig10_" + spec.name, config);
  }
  return 0;
}
