// Figure 8 (paper §5.1): benefit from the memory component size. Mixed
// 50/50 read-write workload with 8 worker threads, sweeping the write
// buffer (in-memory component) size.
//
// Expected shape (paper): LevelDB performs nearly the same beyond 16MB (it
// cannot exploit a larger buffer — its single writer is the bottleneck);
// cLSM keeps improving up to 512MB because its parallel in-memory path
// masks the deeper-skiplist latency. Sizes here are scaled down with the
// same ratios (dataset : buffer).
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace clsm;

int main() {
  BenchConfig config = LoadBenchConfig();
  PrintFigureHeader("Figure 8", "mixed r/w throughput vs memory component size (8 threads)",
                    config);

  // Paper sweep: 1..512 MB with a 150GB dataset. Scaled sweep keeps the
  // buffer : preload-bytes ratios roughly matched.
  std::vector<size_t> buffer_sizes;
  if (config.scale == "paper") {
    for (size_t mb : {1, 16, 32, 64, 128, 256, 512}) {
      buffer_sizes.push_back(mb << 20);
    }
  } else {
    for (size_t kb : {64, 256, 1024, 4096, 16384}) {
      buffer_sizes.push_back(kb << 10);
    }
  }

  const int kThreads = 8;
  WorkloadSpec spec;
  spec.write_fraction = 0.5;
  spec.distribution = KeyDist::kHotBlock;
  spec.num_keys = config.preload_keys;

  printf("\n%-16s", "buffer-bytes");
  for (size_t b : buffer_sizes) {
    printf("%12zu", b);
  }
  printf("\n");

  struct Cell {
    std::string system;
    size_t buffer_bytes;
    DriverResult result;
  };
  std::vector<Cell> cells;
  for (DbVariant v : {DbVariant::kLevelDb, DbVariant::kClsm}) {
    printf("%-16s", VariantName(v));
    for (size_t buffer : buffer_sizes) {
      Options options = FigureOptions(config);
      options.write_buffer_size = buffer;
      DriverResult r = RunCell(v, spec, kThreads, config, options);
      printf("%12.0f", r.ops_per_sec);
      fflush(stdout);
      cells.push_back({VariantName(v), buffer, std::move(r)});
    }
    printf("\n");
  }
  printf("\n(values are ops/sec; paper shape: cLSM keeps gaining with buffer size,\n"
         " LevelDB flattens early)\n");

  // Same bench-result schema as ResultTable::WriteJson, with the sweep
  // variable (buffer_bytes) added per cell.
  int rc = system("mkdir -p bench_results");
  (void)rc;
  FILE* f = fopen("bench_results/fig8_memsize.json", "w");
  if (f != nullptr) {
    fprintf(f, "{\"figure\":\"fig8_memsize\",\"metric\":\"ops/sec\",\"scale\":\"%s\","
               "\"duration_ms\":%d,\n\"cells\":[",
            config.scale.c_str(), config.duration_ms);
    for (size_t i = 0; i < cells.size(); i++) {
      const Cell& c = cells[i];
      fprintf(f, "%s\n{\"system\":\"%s\",\"threads\":%d,\"buffer_bytes\":%zu,"
                 "\"ops_per_sec\":%.1f,\"p50_us\":%.2f,\"p90_us\":%.2f,\"p99_us\":%.2f,"
                 "\"p999_us\":%.2f,\"stats\":%s}",
              i == 0 ? "" : ",", c.system.c_str(), kThreads, c.buffer_bytes,
              c.result.ops_per_sec, c.result.latency_micros.Percentile(50),
              c.result.latency_micros.Percentile(90), c.result.latency_micros.Percentile(99),
              c.result.latency_micros.Percentile(99.9),
              c.result.stats_json.empty() ? "null" : c.result.stats_json.c_str());
    }
    fprintf(f, "\n]}\n");
    fclose(f);
    printf("wrote bench_results/fig8_memsize.json\n");
  }
  return 0;
}
