#include <gtest/gtest.h>

#include <memory>

#include "src/lsm/storage_engine.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : dir_("engine") {
    options_.write_buffer_size = 64 * 1024;
    options_.target_file_size = 64 * 1024;
    options_.level1_max_bytes = 256 * 1024;
  }

  void Open() {
    engine_ = std::make_unique<StorageEngine>(options_, dir_.path() + "/db");
    MemTable* recovered = nullptr;
    SequenceNumber max_seq = 0;
    ASSERT_TRUE(engine_->Open(&recovered, &max_seq).ok());
    if (recovered != nullptr) {
      recovered->Unref();
    }
  }

  // Builds a memtable with n entries starting at sequence base and flushes
  // it to level 0.
  void FlushBatch(int n, SequenceNumber base, const std::string& value_tag) {
    MemTable* mem = new MemTable(*engine_->icmp());
    for (int i = 0; i < n; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%07d", i);
      mem->Add(base + i, kTypeValue, key, value_tag + std::to_string(i));
    }
    ASSERT_TRUE(engine_->FlushMemTable(mem, engine_->versions()->LogNumber()).ok());
    mem->Unref();
  }

  std::string Get(const std::string& key, SequenceNumber seq) {
    LookupKey lkey(key, seq);
    std::string value;
    ReadOptions ro;
    Status s = engine_->Get(ro, lkey, &value);
    return s.ok() ? value : "NOTFOUND";
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(EngineTest, FlushCreatesLevel0File) {
  Open();
  EXPECT_EQ(0, engine_->NumLevelFiles(0));
  FlushBatch(1000, 1, "v");
  EXPECT_EQ(1, engine_->NumLevelFiles(0));
  EXPECT_EQ("v42", Get("key0000042", kMaxSequenceNumber));
  EXPECT_EQ("NOTFOUND", Get("key9999999", kMaxSequenceNumber));
}

TEST_F(EngineTest, NewestVersionWinsAcrossFiles) {
  Open();
  FlushBatch(100, 1, "old");
  FlushBatch(100, 1000, "new");
  EXPECT_EQ(2, engine_->NumLevelFiles(0));
  EXPECT_EQ("new7", Get("key0000007", kMaxSequenceNumber));
  // Snapshot reads below the second batch see the first.
  EXPECT_EQ("old7", Get("key0000007", 500));
}

TEST_F(EngineTest, CompactionMergesToLevel1) {
  Open();
  for (int batch = 0; batch < 6; batch++) {
    FlushBatch(2000, 1 + batch * 10000, "b" + std::to_string(batch) + "-");
  }
  ASSERT_TRUE(engine_->NeedsCompaction());
  bool did_work = true;
  while (engine_->NeedsCompaction() && did_work) {
    ASSERT_TRUE(engine_->CompactOnce(kMaxSequenceNumber, &did_work).ok());
  }
  EXPECT_LT(engine_->NumLevelFiles(0), 4);
  int deeper_files = 0;
  for (int level = 1; level < kNumLevels; level++) {
    deeper_files += engine_->NumLevelFiles(level);
  }
  EXPECT_GT(deeper_files, 0);
  // Every key still readable with the newest value.
  EXPECT_EQ("b5-123", Get("key0000123", kMaxSequenceNumber));
}

TEST_F(EngineTest, CompactionDropsObsoleteVersions) {
  Open();
  // Two batches of the same keys; after compaction with no snapshots, the
  // old versions must be gone (observable via snapshot reads at low seq).
  FlushBatch(500, 1, "old");
  FlushBatch(500, 10000, "new");
  FlushBatch(500, 20000, "newer");
  FlushBatch(500, 30000, "newest");
  bool did_work = true;
  while (engine_->NeedsCompaction() && did_work) {
    ASSERT_TRUE(engine_->CompactOnce(kMaxSequenceNumber, &did_work).ok());
  }
  // Reading at a pre-"new" snapshot: the old version was GC'd during the
  // merge (smallest_snapshot = max), so the key is simply absent at seq 500.
  EXPECT_EQ("NOTFOUND", Get("key0000001", 500));
  EXPECT_EQ("newest1", Get("key0000001", kMaxSequenceNumber));
}

TEST_F(EngineTest, CompactionPreservesSnapshotVersions) {
  Open();
  FlushBatch(500, 1, "old");
  FlushBatch(500, 10000, "new");
  FlushBatch(500, 20000, "newer");
  FlushBatch(500, 30000, "newest");
  bool did_work = true;
  // smallest_snapshot = 5000: versions at seq <= 5000 that are the newest
  // at-or-below 5000 must survive (paper §3.2.1's GC rule).
  while (engine_->NeedsCompaction() && did_work) {
    ASSERT_TRUE(engine_->CompactOnce(5000, &did_work).ok());
  }
  EXPECT_EQ("old1", Get("key0000001", 5000));
  EXPECT_EQ("newest1", Get("key0000001", kMaxSequenceNumber));
}

TEST_F(EngineTest, DeletionMarkersDropOnlyAtBaseLevel) {
  Open();
  FlushBatch(200, 1, "v");
  // Delete half the keys in a second batch.
  MemTable* mem = new MemTable(*engine_->icmp());
  for (int i = 0; i < 200; i += 2) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%07d", i);
    mem->Add(1000 + i, kTypeDeletion, key, "");
  }
  ASSERT_TRUE(engine_->FlushMemTable(mem, engine_->versions()->LogNumber()).ok());
  mem->Unref();

  bool did_work = true;
  while (engine_->NeedsCompaction() && did_work) {
    ASSERT_TRUE(engine_->CompactOnce(kMaxSequenceNumber, &did_work).ok());
  }
  EXPECT_EQ("NOTFOUND", Get("key0000000", kMaxSequenceNumber));
  EXPECT_EQ("v1", Get("key0000001", kMaxSequenceNumber));
}

TEST_F(EngineTest, ManifestRecoveryRestoresLevels) {
  Open();
  for (int batch = 0; batch < 5; batch++) {
    FlushBatch(1000, 1 + batch * 10000, "b" + std::to_string(batch) + "-");
  }
  bool did_work = true;
  while (engine_->NeedsCompaction() && did_work) {
    ASSERT_TRUE(engine_->CompactOnce(kMaxSequenceNumber, &did_work).ok());
  }
  std::string summary_before = engine_->versions()->LevelSummary();
  SequenceNumber last_seq = engine_->versions()->LastSequence();

  engine_.reset();
  Open();
  EXPECT_EQ(summary_before, engine_->versions()->LevelSummary());
  EXPECT_EQ(last_seq, engine_->versions()->LastSequence());
  EXPECT_EQ("b4-77", Get("key0000077", kMaxSequenceNumber));
}

TEST_F(EngineTest, VersionIteratorsSeeMergedView) {
  Open();
  FlushBatch(100, 1, "old");
  FlushBatch(100, 1000, "new");
  ReadOptions ro;
  std::vector<Iterator*> iters;
  Version* v = engine_->AddVersionIterators(ro, &iters);
  EXPECT_GE(iters.size(), 2u);
  size_t total = 0;
  for (Iterator* it : iters) {
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      total++;
    }
    delete it;
  }
  v->Unref();
  EXPECT_EQ(200u, total);  // both versions of every key
}

TEST_F(EngineTest, CreateIfMissingFalseFails) {
  options_.create_if_missing = false;
  StorageEngine engine(options_, dir_.path() + "/absent");
  MemTable* recovered = nullptr;
  SequenceNumber max_seq = 0;
  Status s = engine.Open(&recovered, &max_seq);
  EXPECT_FALSE(s.ok());
}

TEST_F(EngineTest, ErrorIfExistsFails) {
  Open();
  engine_.reset();
  options_.error_if_exists = true;
  StorageEngine engine(options_, dir_.path() + "/db");
  MemTable* recovered = nullptr;
  SequenceNumber max_seq = 0;
  Status s = engine.Open(&recovered, &max_seq);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace clsm
