// Tests of the EventListener hook interface (Options::listeners): hook
// ordering (Begin strictly before End, roll before the flush it feeds),
// stall bracketing (every OnStallBegin matched by exactly one OnStallEnd on
// the same thread), and the bundled TraceEventListener's Chrome trace dump.
// Run under TSan in CI: listeners fire from maintenance threads, compaction
// workers, the WAL logger and stalled writers concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/factory.h"
#include "src/obs/event_listener.h"
#include "src/obs/trace_listener.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

// Records every hook invocation with a global order index; asserts the
// listener contract from the inside (each hook sees consistent info).
class CollectingListener : public EventListener {
 public:
  struct Event {
    std::string kind;
    std::thread::id tid;
    int level = -1;
    uint64_t arg = 0;
  };

  void OnMemtableRoll(uint64_t memtable_bytes) override {
    Push({"roll", std::this_thread::get_id(), -1, memtable_bytes});
  }
  void OnFlushBegin(const FlushJobInfo& info) override {
    Push({"flush_begin", std::this_thread::get_id(), -1, info.memtable_entries});
  }
  void OnFlushEnd(const FlushJobInfo& info) override {
    Push({"flush_end", std::this_thread::get_id(), -1, info.output_file_size});
  }
  void OnCompactionBegin(const CompactionJobInfo& info) override {
    Push({"compact_begin", std::this_thread::get_id(), info.level, info.bytes_read});
  }
  void OnCompactionEnd(const CompactionJobInfo& info) override {
    Push({"compact_end", std::this_thread::get_id(), info.level, info.bytes_written});
  }
  void OnStallBegin(StallReason reason) override {
    Push({"stall_begin", std::this_thread::get_id(), static_cast<int>(reason), 0});
  }
  void OnStallEnd(StallReason reason, uint64_t micros) override {
    Push({"stall_end", std::this_thread::get_id(), static_cast<int>(reason), micros});
  }
  void OnWalSync(const WalSyncInfo& info) override {
    Push({"wal_sync", std::this_thread::get_id(), -1, info.records});
  }

  std::vector<Event> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  uint64_t Count(const std::string& kind) const {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t n = 0;
    for (const Event& e : events_) {
      n += e.kind == kind ? 1 : 0;
    }
    return n;
  }

 private:
  void Push(Event e) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(e));
  }

  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

class EventListenerTest : public ::testing::TestWithParam<DbVariant> {
 protected:
  EventListenerTest() : dir_("listener"), listener_(std::make_shared<CollectingListener>()) {}

  std::unique_ptr<DB> OpenFresh(Options options) {
    options.listeners.push_back(listener_);
    DB* raw = nullptr;
    Status s = OpenDb(GetParam(), options, dir_.path() + "/db", &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(raw);
  }

  ScratchDir dir_;
  std::shared_ptr<CollectingListener> listener_;
};

// Enough writes through a tiny buffer to force rolls, flushes and at least
// one compaction; then check pairing and ordering invariants.
TEST_P(EventListenerTest, FlushAndCompactionHooksPairAndOrder) {
  Options options;
  options.write_buffer_size = 64 * 1024;
  options.target_file_size = 64 * 1024;
  std::unique_ptr<DB> db = OpenFresh(options);

  WriteOptions wo;
  std::string value(512, 'v');
  char key[32];
  int next_key = 0;
  auto write_block = [&](int n) {
    for (int i = 0; i < n; i++) {
      snprintf(key, sizeof(key), "key-%06d", next_key++);
      ASSERT_TRUE(db->Put(wo, key, value).ok());
    }
  };
  write_block(4000);
  db->WaitForMaintenance();
  // Compaction scheduling is asynchronous; keep feeding L0 until one runs.
  for (int round = 0; round < 50 && listener_->Count("compact_begin") == 0; round++) {
    write_block(1000);
    db->WaitForMaintenance();
  }
  db.reset();  // all hooks quiesced

  std::vector<CollectingListener::Event> events = listener_->Snapshot();
  ASSERT_FALSE(events.empty());

  uint64_t rolls = 0, flush_begins = 0, flush_ends = 0;
  uint64_t compact_begins = 0, compact_ends = 0;
  int open_flushes = 0, open_compactions = 0;
  for (const auto& e : events) {
    if (e.kind == "roll") {
      rolls++;
    } else if (e.kind == "flush_begin") {
      flush_begins++;
      open_flushes++;
      // Only one immutable memtable exists at a time: flushes serialize.
      EXPECT_LE(open_flushes, 1);
    } else if (e.kind == "flush_end") {
      flush_ends++;
      open_flushes--;
      EXPECT_GE(open_flushes, 0) << "flush_end without flush_begin";
    } else if (e.kind == "compact_begin") {
      compact_begins++;
      open_compactions++;
      EXPECT_GE(e.level, 0);
    } else if (e.kind == "compact_end") {
      compact_ends++;
      open_compactions--;
      EXPECT_GE(open_compactions, 0) << "compact_end without compact_begin";
    }
  }
  // ~2MB through a 64KB buffer: rolls and flushes are guaranteed; every
  // begin got its end (WaitForMaintenance + close drained the pipeline).
  EXPECT_GE(rolls, 4u);
  EXPECT_GE(flush_begins, 4u);
  EXPECT_EQ(flush_begins, flush_ends);
  EXPECT_EQ(compact_begins, compact_ends);
  EXPECT_GE(compact_begins, 1u);  // 64KB L0 files past the trigger
  // Rolls feed flushes: the flush pipeline can't outrun the roll count.
  EXPECT_GE(rolls, flush_begins);
}

TEST_P(EventListenerTest, StallEventsBracketOnWriterThread) {
  Options options;
  // Aggressive backpressure: stall quickly and often.
  options.write_buffer_size = 32 * 1024;
  options.target_file_size = 32 * 1024;
  options.l0_slowdown_trigger = 2;
  options.l0_stop_trigger = 4;
  std::unique_ptr<DB> db = OpenFresh(options);

  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&db, t] {
      WriteOptions wo;
      std::string value(512, 'w');
      char key[32];
      for (int i = 0; i < 1000; i++) {
        snprintf(key, sizeof(key), "s%02d-%06d", t, i);
        ASSERT_TRUE(db->Put(wo, key, value).ok());
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  db->WaitForMaintenance();
  db.reset();

  // Per-thread bracketing: on any single thread, stall events strictly
  // alternate begin/end with matching reasons (stalls never nest).
  std::map<std::thread::id, std::vector<CollectingListener::Event>> by_thread;
  for (const auto& e : listener_->Snapshot()) {
    if (e.kind == "stall_begin" || e.kind == "stall_end") {
      by_thread[e.tid].push_back(e);
    }
  }
  uint64_t total_stalls = 0;
  for (const auto& [tid, seq] : by_thread) {
    for (size_t i = 0; i < seq.size(); i++) {
      if (i % 2 == 0) {
        EXPECT_EQ(seq[i].kind, "stall_begin");
      } else {
        EXPECT_EQ(seq[i].kind, "stall_end");
        EXPECT_EQ(seq[i].level, seq[i - 1].level) << "reason mismatch across a stall pair";
      }
    }
    EXPECT_EQ(seq.size() % 2, 0u) << "unterminated stall on a writer thread";
    total_stalls += seq.size() / 2;
  }
  // 2MB through a 32KB buffer with triggers at 2/4 must have stalled.
  EXPECT_GE(total_stalls, 1u);
}

TEST_P(EventListenerTest, WalSyncHookFires) {
  Options options;
  std::unique_ptr<DB> db = OpenFresh(options);
  WriteOptions sync_wo;
  sync_wo.sync = true;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Put(sync_wo, "k" + std::to_string(i), "v").ok());
  }
  db.reset();
  EXPECT_GE(listener_->Count("wal_sync"), 1u);
}

INSTANTIATE_TEST_SUITE_P(Variants, EventListenerTest,
                         ::testing::Values(DbVariant::kClsm, DbVariant::kLevelDb),
                         [](const ::testing::TestParamInfo<DbVariant>& info) {
                           return std::string(VariantName(info.param));
                         });

// ---------------------------------------------------------------------------
// TraceEventListener
// ---------------------------------------------------------------------------

TEST(TraceEventListenerTest, DumpsChromeTraceOfFlushCompactionCascade) {
  ScratchDir dir("trace");
  auto tracer = std::make_shared<TraceEventListener>();
  Options options;
  options.write_buffer_size = 64 * 1024;
  options.target_file_size = 64 * 1024;
  options.listeners.push_back(tracer);
  DB* raw = nullptr;
  ASSERT_TRUE(OpenDb(DbVariant::kClsm, options, dir.path() + "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  WriteOptions wo;
  std::string value(512, 't');
  char key[32];
  int next_key = 0;
  auto write_block = [&](int n) {
    for (int i = 0; i < n; i++) {
      snprintf(key, sizeof(key), "key-%06d", next_key++);
      ASSERT_TRUE(db->Put(wo, key, value).ok());
    }
  };
  write_block(4000);
  db->WaitForMaintenance();
  // Whether a compaction has run by now is a scheduling race; keep feeding
  // the tree until one lands (bounded: each round adds ~8 more 64KB L0
  // files, far past the trigger).
  for (int round = 0;
       round < 50 && tracer->DumpChromeTrace().find("\"compact") == std::string::npos;
       round++) {
    write_block(1000);
    db->WaitForMaintenance();
  }
  db.reset();

  EXPECT_GT(tracer->NumRecorded(), 0u);
  EXPECT_LE(tracer->NumRetained(), tracer->NumRecorded());

  std::string json = tracer->DumpChromeTrace();
  // Chrome trace_event envelope with paired duration events for the
  // flush -> compaction cascade the workload forced.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"flush\""), std::string::npos);
  EXPECT_NE(json.find("\"compact"), std::string::npos);
  // Every event names pid/tid/ts as the trace viewer requires.
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
}

TEST(TraceEventListenerTest, RingBufferBoundsRetention) {
  TraceEventListener tracer(/*capacity=*/8);
  for (int i = 0; i < 100; i++) {
    tracer.OnMemtableRoll(static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tracer.NumRecorded(), 100u);
  EXPECT_EQ(tracer.NumRetained(), 8u);
  std::string json = tracer.DumpChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

}  // namespace
}  // namespace clsm
