#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "src/arena/arena.h"
#include "src/util/random.h"

namespace clsm {
namespace {

TEST(ArenaTest, Empty) { Arena arena; }

TEST(ArenaTest, ManyAllocations) {
  std::vector<std::pair<size_t, char*>> allocated;
  Arena arena;
  const int N = 100000;
  size_t bytes = 0;
  Random rnd(301);
  for (int i = 0; i < N; i++) {
    size_t s;
    if (i % (N / 10) == 0) {
      s = i;
    } else {
      s = rnd.OneIn(4000) ? rnd.Uniform(6000) : (rnd.OneIn(10) ? rnd.Uniform(100) : rnd.Uniform(20));
    }
    if (s == 0) {
      s = 1;
    }
    char* r;
    if (rnd.OneIn(10)) {
      r = arena.AllocateAligned(s);
    } else {
      r = arena.Allocate(s);
    }
    for (size_t b = 0; b < s; b++) {
      r[b] = static_cast<char>(i % 256);
    }
    bytes += s;
    allocated.push_back(std::make_pair(s, r));
    ASSERT_GE(arena.MemoryUsage(), bytes);
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; b++) {
      ASSERT_EQ(static_cast<int>(p[b]) & 0xff, static_cast<int>(i % 256));
    }
  }
}

TEST(ConcurrentArenaTest, AlignmentInvariant) {
  ConcurrentArena arena;
  for (int i = 1; i < 200; i++) {
    char* p = arena.AllocateAligned(i);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) & 7u) << "allocation of " << i;
  }
}

TEST(ConcurrentArenaTest, LargeAllocations) {
  ConcurrentArena arena;
  char* p = arena.AllocateAligned(10 * 1024 * 1024);
  memset(p, 0xab, 10 * 1024 * 1024);
  // The arena is still usable afterwards.
  char* q = arena.AllocateAligned(64);
  memset(q, 0xcd, 64);
  EXPECT_GE(arena.MemoryUsage(), 10u * 1024 * 1024);
}

// Property: concurrent allocations never overlap — each thread writes a
// distinct pattern into its blocks and verifies them afterwards.
TEST(ConcurrentArenaTest, ConcurrentDisjointness) {
  ConcurrentArena arena;
  constexpr int kThreads = 8;
  constexpr int kAllocsPerThread = 20000;
  std::vector<std::vector<std::pair<char*, size_t>>> blocks(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Random rnd(1000 + t);
      for (int i = 0; i < kAllocsPerThread; i++) {
        size_t n = 1 + rnd.Uniform(96);
        char* p = arena.AllocateAligned(n);
        memset(p, t + 1, n);
        blocks[t].push_back({p, n});
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; t++) {
    for (auto [p, n] : blocks[t]) {
      for (size_t b = 0; b < n; b++) {
        ASSERT_EQ(t + 1, p[b]) << "cross-thread overwrite detected";
      }
    }
  }
}

}  // namespace
}  // namespace clsm
