// Tests of atomic read-modify-write (Algorithm 3), for cLSM's lock-free
// implementation and for the lock-striping baseline — both must provide the
// same atomicity guarantees (the paper compares only their performance).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/baselines/factory.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class RmwTest : public ::testing::TestWithParam<DbVariant> {
 protected:
  RmwTest() : dir_("rmw") {
    options_.write_buffer_size = 1 << 20;
    DB* db = nullptr;
    Status s = OpenDb(GetParam(), options_, dir_.path() + "/db", &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(RmwTest, BasicTransform) {
  WriteOptions wo;
  ReadOptions ro;
  bool performed = false;
  ASSERT_TRUE(db_->ReadModifyWrite(
                    wo, "k",
                    [](const std::optional<Slice>& cur) -> std::optional<std::string> {
                      EXPECT_FALSE(cur.has_value());
                      return "init";
                    },
                    &performed)
                  .ok());
  EXPECT_TRUE(performed);
  std::string v;
  ASSERT_TRUE(db_->Get(ro, "k", &v).ok());
  EXPECT_EQ("init", v);

  ASSERT_TRUE(db_->ReadModifyWrite(
                    wo, "k",
                    [](const std::optional<Slice>& cur) -> std::optional<std::string> {
                      EXPECT_TRUE(cur.has_value());
                      return cur->ToString() + "+more";
                    },
                    &performed)
                  .ok());
  ASSERT_TRUE(db_->Get(ro, "k", &v).ok());
  EXPECT_EQ("init+more", v);
}

TEST_P(RmwTest, NulloptMeansNoWrite) {
  WriteOptions wo;
  ReadOptions ro;
  ASSERT_TRUE(db_->Put(wo, "present", "original").ok());
  bool performed = true;
  ASSERT_TRUE(db_->ReadModifyWrite(
                    wo, "present",
                    [](const std::optional<Slice>& cur) -> std::optional<std::string> {
                      return std::nullopt;  // put-if-absent observing a value
                    },
                    &performed)
                  .ok());
  EXPECT_FALSE(performed);
  std::string v;
  ASSERT_TRUE(db_->Get(ro, "present", &v).ok());
  EXPECT_EQ("original", v);
}

TEST_P(RmwTest, SeesDeletionAsAbsent) {
  WriteOptions wo;
  ASSERT_TRUE(db_->Put(wo, "gone", "v").ok());
  ASSERT_TRUE(db_->Delete(wo, "gone").ok());
  bool saw_absent = false;
  ASSERT_TRUE(db_->ReadModifyWrite(wo, "gone",
                                   [&](const std::optional<Slice>& cur)
                                       -> std::optional<std::string> {
                                     saw_absent = !cur.has_value();
                                     return "revived";
                                   })
                  .ok());
  EXPECT_TRUE(saw_absent);
  std::string v;
  ASSERT_TRUE(db_->Get(ReadOptions(), "gone", &v).ok());
  EXPECT_EQ("revived", v);
}

TEST_P(RmwTest, ReadsThroughDiskComponent) {
  WriteOptions wo;
  ASSERT_TRUE(db_->Put(wo, "old-key", "disk-value").ok());
  // Push the key out of the memory component.
  for (int i = 0; i < 30000; i++) {
    ASSERT_TRUE(db_->Put(wo, "fill" + std::to_string(i), std::string(64, 'f')).ok());
  }
  db_->WaitForMaintenance();

  std::string observed;
  ASSERT_TRUE(db_->ReadModifyWrite(wo, "old-key",
                                   [&](const std::optional<Slice>& cur)
                                       -> std::optional<std::string> {
                                     observed = cur.has_value() ? cur->ToString() : "(absent)";
                                     return "updated";
                                   })
                  .ok());
  EXPECT_EQ("disk-value", observed);
  std::string v;
  ASSERT_TRUE(db_->Get(ReadOptions(), "old-key", &v).ok());
  EXPECT_EQ("updated", v);
}

// The central atomicity property: concurrent increments never lose an
// update. With a non-atomic read+put this test fails immediately.
TEST_P(RmwTest, ConcurrentIncrementsLoseNothing) {
  WriteOptions wo;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; i++) {
        ASSERT_TRUE(db_->ReadModifyWrite(wo, "counter",
                                         [](const std::optional<Slice>& cur)
                                             -> std::optional<std::string> {
                                           int v = cur ? std::stoi(cur->ToString()) : 0;
                                           return std::to_string(v + 1);
                                         })
                        .ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::string v;
  ASSERT_TRUE(db_->Get(ReadOptions(), "counter", &v).ok());
  EXPECT_EQ(kThreads * kIncrements, std::stoi(v));
}

// Put-if-absent (the paper's Fig 9 flavor): exactly one of N racing
// writers must win for each key.
TEST_P(RmwTest, PutIfAbsentExactlyOneWinner) {
  WriteOptions wo;
  constexpr int kThreads = 4;
  constexpr int kKeys = 500;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeys; k++) {
        bool performed = false;
        std::string mine = "winner-" + std::to_string(t);
        ASSERT_TRUE(db_->ReadModifyWrite(
                          wo, "race-key-" + std::to_string(k),
                          [&](const std::optional<Slice>& cur) -> std::optional<std::string> {
                            if (cur.has_value()) {
                              return std::nullopt;
                            }
                            return mine;
                          },
                          &performed)
                        .ok());
        if (performed) {
          wins.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(kKeys, wins.load()) << "put-if-absent must have exactly one winner per key";
  // And each key's value is one of the contenders' values.
  for (int k = 0; k < kKeys; k += 37) {
    std::string v;
    ASSERT_TRUE(db_->Get(ReadOptions(), "race-key-" + std::to_string(k), &v).ok());
    EXPECT_EQ(0u, v.find("winner-"));
  }
}

// RMW vs plain Put on the same key: the RMW result must always be derived
// from some committed value (no frankenstein states).
TEST_P(RmwTest, RmwVsPutAtomicity) {
  WriteOptions wo;
  ASSERT_TRUE(db_->Put(wo, "k", "p0").ok());
  std::atomic<bool> stop{false};
  std::thread putter([&] {
    for (int i = 1; i < 50000 && !stop.load(); i++) {
      db_->Put(wo, "k", "p" + std::to_string(i));
    }
  });
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->ReadModifyWrite(wo, "k",
                                     [](const std::optional<Slice>& cur)
                                         -> std::optional<std::string> {
                                       EXPECT_TRUE(cur.has_value());
                                       // Tag the observed value.
                                       return "rmw(" + cur->ToString() + ")";
                                     })
                    .ok());
  }
  stop = true;
  putter.join();
  std::string v;
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &v).ok());
  // Value is either a put value or an rmw-wrapped put value (nesting of
  // rmw over rmw is possible but every layer wraps a committed state).
  EXPECT_TRUE(v[0] == 'p' || v.substr(0, 4) == "rmw(") << v;
}

INSTANTIATE_TEST_SUITE_P(ClsmAndStriped, RmwTest,
                         ::testing::Values(DbVariant::kClsm, DbVariant::kStripedRmw,
                                           DbVariant::kLevelDb),
                         [](const ::testing::TestParamInfo<DbVariant>& info) {
                           std::string name = VariantName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace clsm
