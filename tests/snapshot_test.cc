// Tests of the Algorithm-2 snapshot protocol: the timeCounter / Active-set
// / snapTime machinery and the serializability guarantees it provides,
// including the Figure 3 and Figure 4 race scenarios.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/core/clsm_db.h"
#include "src/core/write_batch.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : dir_("snap") {
    options_.write_buffer_size = 1 << 20;
    DB* db = nullptr;
    Status s = ClsmDb::Open(options_, dir_.path() + "/db", &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  ClsmDb* clsm() { return static_cast<ClsmDb*>(db_.get()); }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(SnapshotTest, ScanTimestampExcludesActivePuts) {
  // With no concurrent activity, a fresh scan timestamp equals the time
  // counter; after k puts it is at least k.
  WriteOptions wo;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db_->Put(wo, "k" + std::to_string(i), "v").ok());
  }
  SequenceNumber ts = clsm()->AcquireScanTimestampForTest();
  EXPECT_GE(ts, 10u);
}

TEST_F(SnapshotTest, SnapTimeNeverMovesBackward) {
  WriteOptions wo;
  SequenceNumber prev = 0;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(wo, "k", "v" + std::to_string(i)).ok());
    SequenceNumber ts = clsm()->AcquireScanTimestampForTest();
    EXPECT_GE(ts, prev);
    prev = ts;
  }
}

TEST_F(SnapshotTest, SnapshotSeesAllPriorPuts) {
  // Sequential consistency of the handle: everything written before
  // GetSnapshot must be visible through it (the Figure 3 guarantee in the
  // absence of in-flight puts).
  WriteOptions wo;
  ReadOptions ro;
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(wo, "key" + std::to_string(i), "v" + std::to_string(i)).ok());
    const Snapshot* snap = db_->GetSnapshot();
    ro.snapshot = snap;
    std::string value;
    Status s = db_->Get(ro, "key" + std::to_string(i), &value);
    ASSERT_TRUE(s.ok()) << "snapshot missed a completed put";
    EXPECT_EQ("v" + std::to_string(i), value);
    db_->ReleaseSnapshot(snap);
  }
}

// The Figure 3/4 serializability property, stress-tested: a writer updates
// two keys with a fixed invariant (a == b); every snapshot scan must
// observe the invariant — a snapshot that saw one write but not the other
// would be non-serializable.
TEST_F(SnapshotTest, ConcurrentSnapshotsAreSerializable) {
  WriteOptions wo;
  ASSERT_TRUE(db_->Put(wo, "a", "0").ok());
  ASSERT_TRUE(db_->Put(wo, "b", "0").ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    // Keep a == b via an atomic batch (exclusive-mode write, §4).
    for (int i = 1; i < 100000 && !stop.load(); i++) {
      WriteBatch batch;
      batch.Put("a", std::to_string(i));
      batch.Put("b", std::to_string(i));
      db_->Write(wo, &batch);
    }
  });

  std::vector<std::thread> scanners;
  for (int t = 0; t < 3; t++) {
    scanners.emplace_back([&] {
      for (int round = 0; round < 400 && !failed.load(); round++) {
        const Snapshot* snap = db_->GetSnapshot();
        ReadOptions ro;
        ro.snapshot = snap;
        std::string va, vb;
        Status sa = db_->Get(ro, "a", &va);
        Status sb = db_->Get(ro, "b", &vb);
        if (!sa.ok() || !sb.ok() || va != vb) {
          failed = true;
        }
        db_->ReleaseSnapshot(snap);
      }
    });
  }
  for (auto& th : scanners) {
    th.join();
  }
  stop = true;
  writer.join();
  EXPECT_FALSE(failed.load()) << "snapshot observed a torn batch (serializability violation)";
}

// Concurrent single-key puts vs snapshots: a snapshot must never observe a
// value that a later snapshot does not (monotone prefix property of the
// version chain under one writer per key).
TEST_F(SnapshotTest, SnapshotsObserveMonotonePrefix) {
  WriteOptions wo;
  ASSERT_TRUE(db_->Put(wo, "counter", "0").ok());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 1; i < 200000 && !stop.load(); i++) {
      db_->Put(wo, "counter", std::to_string(i));
    }
  });

  long long prev = -1;
  for (int i = 0; i < 2000; i++) {
    const Snapshot* snap = db_->GetSnapshot();
    ReadOptions ro;
    ro.snapshot = snap;
    std::string v;
    ASSERT_TRUE(db_->Get(ro, "counter", &v).ok());
    long long cur = std::stoll(v);
    ASSERT_GE(cur, prev) << "later snapshot observed an earlier state";
    prev = cur;
    db_->ReleaseSnapshot(snap);
  }
  stop = true;
  writer.join();
}

TEST_F(SnapshotTest, ReleaseUnblocksGc) {
  WriteOptions wo;
  const Snapshot* snap = db_->GetSnapshot();
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put(wo, "k" + std::to_string(i), "v").ok());
  }
  // Releasing must not crash GC bookkeeping and later scans still work.
  db_->ReleaseSnapshot(snap);
  db_->WaitForMaintenance();
  std::string v;
  EXPECT_TRUE(db_->Get(ReadOptions(), "k1", &v).ok());
}

}  // namespace
}  // namespace clsm
