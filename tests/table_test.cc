#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/table/block.h"
#include "src/table/block_builder.h"
#include "src/table/bloom.h"
#include "src/table/cache.h"
#include "src/table/filter_block.h"
#include "src/table/merging_iterator.h"
#include "src/table/table.h"
#include "src/table/table_builder.h"
#include "src/util/coding.h"
#include "src/util/env.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

TEST(BlockTest, EmptyBlock) {
  Options options;
  BlockBuilder builder(&options, BytewiseComparator());
  Slice raw = builder.Finish();
  std::string copy = raw.ToString();
  BlockContents contents{Slice(copy), false, false};
  Block block(contents);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

class BlockRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockRoundTripTest, RoundTripWithRestartInterval) {
  Options options;
  options.block_restart_interval = GetParam();
  BlockBuilder builder(&options, BytewiseComparator());

  std::map<std::string, std::string> model;
  Random rnd(GetParam());
  for (int i = 0; i < 1000; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i * 3);
    std::string value(rnd.Uniform(64), static_cast<char>('a' + (i % 26)));
    model[key] = value;
  }
  for (const auto& [k, v] : model) {
    builder.Add(k, v);
  }
  std::string copy = builder.Finish().ToString();
  BlockContents contents{Slice(copy), false, false};
  Block block(contents);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));

  // Full forward scan.
  iter->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, iter->key().ToString());
    EXPECT_EQ(v, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Seeks, including between-keys probes.
  iter->Seek("key000300");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key000300", iter->key().ToString());
  iter->Seek("key0003000");  // between key000300 and key000303
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key000303", iter->key().ToString());
  iter->Seek("zzz");
  EXPECT_FALSE(iter->Valid());

  // Backward scan.
  iter->SeekToLast();
  for (auto it = model.rbegin(); it != model.rend(); ++it) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(it->first, iter->key().ToString());
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockRoundTripTest, ::testing::Values(1, 2, 16, 128));

TEST(BloomTest, EmptyFilter) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::string filter;
  policy->CreateFilter(nullptr, 0, &filter);
  EXPECT_FALSE(policy->KeyMayMatch("hello", filter));
}

TEST(BloomTest, NoFalseNegatives) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<std::string> keys;
  std::vector<Slice> key_slices;
  for (int i = 0; i < 10000; i++) {
    keys.push_back("bloom-key-" + std::to_string(i * 7));
  }
  for (const auto& k : keys) {
    key_slices.push_back(Slice(k));
  }
  std::string filter;
  policy->CreateFilter(key_slices.data(), static_cast<int>(key_slices.size()), &filter);
  for (const auto& k : keys) {
    EXPECT_TRUE(policy->KeyMayMatch(k, filter)) << "false negative for " << k;
  }
}

TEST(BloomTest, FalsePositiveRateIsReasonable) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<std::string> keys;
  std::vector<Slice> key_slices;
  for (int i = 0; i < 10000; i++) {
    keys.push_back("member-" + std::to_string(i));
  }
  for (const auto& k : keys) {
    key_slices.push_back(Slice(k));
  }
  std::string filter;
  policy->CreateFilter(key_slices.data(), static_cast<int>(key_slices.size()), &filter);
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    std::string probe = "nonmember-" + std::to_string(i);
    if (policy->KeyMayMatch(probe, filter)) {
      false_positives++;
    }
  }
  // 10 bits/key gives ~1% theoretical; allow generous slack.
  EXPECT_LT(false_positives, 400);
}

TEST(FilterBlockTest, SingleChunk) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(policy.get());
  builder.StartBlock(100);
  builder.AddKey("foo");
  builder.AddKey("bar");
  builder.AddKey("box");
  builder.StartBlock(200);
  builder.AddKey("box");
  builder.StartBlock(300);
  builder.AddKey("hello");
  Slice block = builder.Finish();
  FilterBlockReader reader(policy.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(100, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "bar"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "box"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "hello"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "missing"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "other"));
}

TEST(CacheTest, HitAndMiss) {
  std::unique_ptr<Cache> cache(NewLRUCache(1000));
  auto encode_key = [](int k) {
    std::string s;
    PutFixed32(&s, k);
    return s;
  };
  auto insert = [&](int key, int value, int charge = 1) {
    std::string k = encode_key(key);
    cache->Release(cache->Insert(k, reinterpret_cast<void*>(static_cast<intptr_t>(value)), charge,
                                 [](const Slice&, void*) {}));
  };
  auto lookup = [&](int key) -> int {
    std::string k = encode_key(key);
    Cache::Handle* h = cache->Lookup(k);
    if (h == nullptr) {
      return -1;
    }
    int v = static_cast<int>(reinterpret_cast<intptr_t>(cache->Value(h)));
    cache->Release(h);
    return v;
  };

  EXPECT_EQ(-1, lookup(100));
  insert(100, 101);
  EXPECT_EQ(101, lookup(100));
  insert(100, 102);  // overwrite
  EXPECT_EQ(102, lookup(100));
  cache->Erase(encode_key(100));
  EXPECT_EQ(-1, lookup(100));
}

TEST(CacheTest, EvictionRespectsPins) {
  std::unique_ptr<Cache> cache(NewLRUCache(16));  // tiny per-shard capacity
  std::string pinned_key;
  PutFixed32(&pinned_key, 7);
  Cache::Handle* pinned =
      cache->Insert(pinned_key, reinterpret_cast<void*>(intptr_t{7}), 1, [](const Slice&, void*) {});
  // Flood the cache far past capacity.
  for (int i = 100; i < 400; i++) {
    std::string k;
    PutFixed32(&k, i);
    cache->Release(cache->Insert(k, reinterpret_cast<void*>(static_cast<intptr_t>(i)), 1,
                                 [](const Slice&, void*) {}));
  }
  // The pinned entry must still be retrievable through its handle.
  EXPECT_EQ(7, static_cast<int>(reinterpret_cast<intptr_t>(cache->Value(pinned))));
  cache->Release(pinned);
}

class TableRoundTripTest : public ::testing::Test {
 protected:
  TableRoundTripTest() : dir_("table"), env_(Env::Default()) {}

  ScratchDir dir_;
  Env* env_;
};

TEST_F(TableRoundTripTest, BuildOpenIterateGet) {
  Options options;
  options.block_size = 1024;  // force many blocks
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));

  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08d", i * 2);
    model[key] = "value-" + std::to_string(i);
  }

  std::string fname = dir_.path() + "/t.sst";
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    TableBuilder builder(options, BytewiseComparator(), policy.get(), file.get());
    for (const auto& [k, v] : model) {
      builder.Add(k, v);
    }
    ASSERT_TRUE(builder.Finish().ok());
    EXPECT_EQ(model.size(), builder.NumEntries());
    ASSERT_TRUE(file->Close().ok());
  }

  uint64_t file_size;
  ASSERT_TRUE(env_->GetFileSize(fname, &file_size).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
  std::unique_ptr<Cache> block_cache(NewLRUCache(1 << 20));

  Table* table_raw = nullptr;
  ASSERT_TRUE(Table::Open(options, BytewiseComparator(), policy.get(), block_cache.get(),
                          file.get(), file_size, &table_raw)
                  .ok());
  std::unique_ptr<Table> table(table_raw);

  // Full scan matches the model.
  ReadOptions ro;
  {
    std::unique_ptr<Iterator> iter(table->NewIterator(ro));
    iter->SeekToFirst();
    for (const auto& [k, v] : model) {
      ASSERT_TRUE(iter->Valid());
      EXPECT_EQ(k, iter->key().ToString());
      EXPECT_EQ(v, iter->value().ToString());
      iter->Next();
    }
    EXPECT_FALSE(iter->Valid());
  }

  // Point gets through InternalGet.
  struct Result {
    bool found = false;
    std::string key, value;
  };
  auto handler = [](void* arg, const Slice& k, const Slice& v) {
    Result* r = reinterpret_cast<Result*>(arg);
    r->found = true;
    r->key = k.ToString();
    r->value = v.ToString();
  };
  for (int i = 0; i < 5000; i += 97) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08d", i * 2);
    Result r;
    ASSERT_TRUE(table->InternalGet(ro, key, &r, handler).ok());
    ASSERT_TRUE(r.found);
    EXPECT_EQ(key, r.key);
    EXPECT_EQ(model[key], r.value);
  }

  // Reads served twice hit the block cache (usage grows then stabilizes).
  size_t usage_after = block_cache->TotalCharge();
  EXPECT_GT(usage_after, 0u);
}

TEST_F(TableRoundTripTest, CorruptFooterIsRejected) {
  std::string fname = dir_.path() + "/bad.sst";
  ASSERT_TRUE(WriteStringToFileSync(env_, std::string(2000, 'g'), fname).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
  Options options;
  Table* table = nullptr;
  Status s = Table::Open(options, BytewiseComparator(), nullptr, nullptr, file.get(), 2000, &table);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(nullptr, table);
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  Options options;
  options.block_restart_interval = 4;
  // Build three blocks with interleaved keys and merge their iterators.
  std::vector<std::string> storage;
  std::vector<Iterator*> children;
  for (int c = 0; c < 3; c++) {
    BlockBuilder builder(&options, BytewiseComparator());
    for (int i = 0; i < 100; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%05d", i * 3 + c);
      builder.Add(key, "v");
    }
    storage.push_back(builder.Finish().ToString());
  }
  std::vector<std::unique_ptr<Block>> blocks;
  for (auto& s : storage) {
    BlockContents contents{Slice(s), false, false};
    blocks.push_back(std::make_unique<Block>(contents));
    children.push_back(blocks.back()->NewIterator(BytewiseComparator()));
  }
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(BytewiseComparator(), children.data(), 3));
  merged->SeekToFirst();
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(merged->Valid());
    char key[32];
    std::snprintf(key, sizeof(key), "key%05d", i);
    EXPECT_EQ(key, merged->key().ToString());
    merged->Next();
  }
  EXPECT_FALSE(merged->Valid());

  // Directional switches.
  merged->Seek("key00150");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("key00150", merged->key().ToString());
  merged->Prev();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("key00149", merged->key().ToString());
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("key00150", merged->key().ToString());
}

}  // namespace
}  // namespace clsm
