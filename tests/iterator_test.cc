// DBIter behavior against a model: version filtering, deletion hiding, and
// direction switches — the trickiest state machine in the read path.
// Property-style: random op sequences compared against a std::map model,
// parameterized over snapshot positions.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/core/db_iter.h"
#include "src/lsm/memtable.h"
#include "src/util/random.h"

namespace clsm {
namespace {

// Builds a memtable with a scripted history and hands out DB iterators at
// chosen sequence numbers.
class DbIterTest : public ::testing::Test {
 protected:
  DbIterTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {}
  ~DbIterTest() override { mem_->Unref(); }

  void Put(SequenceNumber seq, const std::string& k, const std::string& v) {
    mem_->Add(seq, kTypeValue, k, v);
    history_[seq] = {k, v, false};
  }
  void Del(SequenceNumber seq, const std::string& k) {
    mem_->Add(seq, kTypeDeletion, k, "");
    history_[seq] = {k, "", true};
  }

  // Model view at a snapshot.
  std::map<std::string, std::string> ModelAt(SequenceNumber snap) const {
    std::map<std::string, std::string> model;
    for (const auto& [seq, op] : history_) {  // ascending seq
      if (seq > snap) {
        break;
      }
      if (op.deleted) {
        model.erase(op.key);
      } else {
        model[op.key] = op.value;
      }
    }
    return model;
  }

  Iterator* NewIter(SequenceNumber snap) {
    return NewDBIterator(icmp_.user_comparator(), mem_->NewIterator(), snap);
  }

  void CheckForwardEquals(SequenceNumber snap) {
    auto model = ModelAt(snap);
    std::unique_ptr<Iterator> it(NewIter(snap));
    it->SeekToFirst();
    for (const auto& [k, v] : model) {
      ASSERT_TRUE(it->Valid()) << "snap=" << snap << " missing " << k;
      EXPECT_EQ(k, it->key().ToString());
      EXPECT_EQ(v, it->value().ToString());
      it->Next();
    }
    EXPECT_FALSE(it->Valid());
  }

  void CheckBackwardEquals(SequenceNumber snap) {
    auto model = ModelAt(snap);
    std::unique_ptr<Iterator> it(NewIter(snap));
    it->SeekToLast();
    for (auto rit = model.rbegin(); rit != model.rend(); ++rit) {
      ASSERT_TRUE(it->Valid()) << "snap=" << snap << " missing " << rit->first;
      EXPECT_EQ(rit->first, it->key().ToString());
      EXPECT_EQ(rit->second, it->value().ToString());
      it->Prev();
    }
    EXPECT_FALSE(it->Valid());
  }

  struct Op {
    std::string key, value;
    bool deleted;
  };
  InternalKeyComparator icmp_;
  MemTable* mem_;
  std::map<SequenceNumber, Op> history_;
};

TEST_F(DbIterTest, VersionFilteringAcrossSnapshots) {
  Put(1, "a", "a1");
  Put(2, "b", "b2");
  Put(3, "a", "a3");
  Del(4, "b");
  Put(5, "c", "c5");
  Put(6, "b", "b6");

  for (SequenceNumber snap : {0, 1, 2, 3, 4, 5, 6, 100}) {
    CheckForwardEquals(snap);
    CheckBackwardEquals(snap);
  }
}

TEST_F(DbIterTest, SeekLandsOnVisibleVersion) {
  Put(1, "apple", "old");
  Put(5, "apple", "new");
  Del(3, "banana");
  Put(2, "banana", "b");
  Put(4, "cherry", "c");

  {
    std::unique_ptr<Iterator> it(NewIter(5));
    it->Seek("apple");
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("new", it->value().ToString());
    it->Seek("b");
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("cherry", it->key().ToString());  // banana deleted at seq 3
  }
  {
    std::unique_ptr<Iterator> it(NewIter(2));
    it->Seek("apple");
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("old", it->value().ToString());
    it->Seek("b");
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("banana", it->key().ToString());  // visible before the delete
  }
}

TEST_F(DbIterTest, DirectionSwitchesAtEveryPosition) {
  for (int i = 0; i < 20; i++) {
    Put(i + 1, "key" + std::to_string(i % 10), "v" + std::to_string(i));
  }
  auto model = ModelAt(100);
  // Walk forward to every position, flip to Prev, verify, flip back.
  std::unique_ptr<Iterator> it(NewIter(100));
  int pos = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next(), pos++) {
    std::string here = it->key().ToString();
    it->Prev();
    if (pos == 0) {
      EXPECT_FALSE(it->Valid());
      it->SeekToFirst();
    } else {
      ASSERT_TRUE(it->Valid());
      EXPECT_LT(it->key().ToString(), here);
      it->Next();
    }
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(here, it->key().ToString());
  }
  EXPECT_EQ(model.size(), static_cast<size_t>(pos));
}

TEST_F(DbIterTest, AllDeletedYieldsEmpty) {
  for (int i = 0; i < 50; i++) {
    Put(i + 1, "k" + std::to_string(i), "v");
  }
  for (int i = 0; i < 50; i++) {
    Del(100 + i, "k" + std::to_string(i));
  }
  std::unique_ptr<Iterator> it(NewIter(1000));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->SeekToLast();
  EXPECT_FALSE(it->Valid());
  it->Seek("k25");
  EXPECT_FALSE(it->Valid());
  // But a pre-deletion snapshot still sees everything.
  CheckForwardEquals(50);
}

class DbIterRandomTest : public DbIterTest, public ::testing::WithParamInterface<int> {};

// Property sweep: random histories, checked at random snapshots in both
// directions, plus random seeks.
TEST_P(DbIterRandomTest, MatchesModel) {
  Random rnd(GetParam());
  SequenceNumber seq = 1;
  for (int i = 0; i < 400; i++) {
    std::string key = "key" + std::to_string(rnd.Uniform(40));
    if (rnd.OneIn(4)) {
      Del(seq++, key);
    } else {
      Put(seq++, key, "v" + std::to_string(i));
    }
  }
  for (int probe = 0; probe < 10; probe++) {
    SequenceNumber snap = rnd.Uniform(static_cast<int>(seq) + 10);
    CheckForwardEquals(snap);
    CheckBackwardEquals(snap);

    auto model = ModelAt(snap);
    std::unique_ptr<Iterator> it(NewIter(snap));
    for (int s = 0; s < 20; s++) {
      std::string target = "key" + std::to_string(rnd.Uniform(45));
      it->Seek(target);
      auto mit = model.lower_bound(target);
      if (mit == model.end()) {
        EXPECT_FALSE(it->Valid());
      } else {
        ASSERT_TRUE(it->Valid());
        EXPECT_EQ(mit->first, it->key().ToString());
        EXPECT_EQ(mit->second, it->value().ToString());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbIterRandomTest, ::testing::Values(7, 42, 301, 9999));

}  // namespace
}  // namespace clsm
