// Robustness under on-disk corruption: random byte flips in SSTables and
// WALs must never crash the process; with verify_checksums every corrupted
// read surfaces as Corruption (or the entry simply isn't found), and
// unaffected data stays readable.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/clsm_db.h"
#include "src/lsm/filename.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() : dir_("robust") {
    options_.write_buffer_size = 64 * 1024;
  }

  std::string DbPath() const { return dir_.path() + "/db"; }

  std::unique_ptr<DB> Open() {
    DB* raw = nullptr;
    Status s = ClsmDb::Open(options_, DbPath(), &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(raw);
  }

  // Flips `flips` random bytes in every file of the given type.
  void CorruptFiles(FileType target, int flips, Random* rnd) {
    Env* env = Env::Default();
    std::vector<std::string> files;
    ASSERT_TRUE(env->GetChildren(DbPath(), &files).ok());
    for (const std::string& f : files) {
      uint64_t number;
      FileType type;
      if (!ParseFileName(f, &number, &type) || type != target) {
        continue;
      }
      std::string path = DbPath() + "/" + f;
      std::string contents;
      ASSERT_TRUE(ReadFileToString(env, path, &contents).ok());
      if (contents.size() < 16) {
        continue;
      }
      for (int i = 0; i < flips; i++) {
        size_t pos = rnd->Uniform(static_cast<int>(contents.size()));
        contents[pos] ^= 1 << rnd->Uniform(8);
      }
      ASSERT_TRUE(WriteStringToFileSync(env, contents, path).ok());
    }
  }

  ScratchDir dir_;
  Options options_;
};

TEST_F(RobustnessTest, CorruptTableNeverCrashes) {
  {
    auto db = Open();
    WriteOptions wo;
    for (int i = 0; i < 10000; i++) {
      ASSERT_TRUE(db->Put(wo, "key" + std::to_string(i), std::string(40, 'v')).ok());
    }
    db->WaitForMaintenance();
  }
  Random rnd(301);
  CorruptFiles(kTableFile, 20, &rnd);

  DB* raw = nullptr;
  Status open_status = ClsmDb::Open(options_, DbPath(), &raw);
  if (!open_status.ok()) {
    // Acceptable: corruption detected at open (e.g. a table that recovery
    // had to read). The requirement is no crash and a clear status.
    EXPECT_EQ(nullptr, raw);
    return;
  }
  std::unique_ptr<DB> db(raw);
  ReadOptions ro;
  ro.verify_checksums = true;
  std::string v;
  int ok = 0, corrupt = 0, notfound = 0;
  for (int i = 0; i < 10000; i += 37) {
    Status s = db->Get(ro, "key" + std::to_string(i), &v);
    if (s.ok()) {
      ok++;
    } else if (s.IsCorruption() || s.IsIOError()) {
      corrupt++;
    } else if (s.IsNotFound()) {
      notfound++;
    }
  }
  // With verify_checksums on, corrupted blocks must be *detected*, not
  // silently served; plenty of untouched data should still read fine.
  fprintf(stderr, "corrupt-table reads: ok=%d corrupt=%d notfound=%d\n", ok, corrupt, notfound);
  SUCCEED();
}

TEST_F(RobustnessTest, CorruptTableScanSurfacesStatus) {
  {
    auto db = Open();
    WriteOptions wo;
    for (int i = 0; i < 10000; i++) {
      ASSERT_TRUE(db->Put(wo, "key" + std::to_string(i), std::string(40, 'v')).ok());
    }
    db->WaitForMaintenance();
  }
  Random rnd(99);
  CorruptFiles(kTableFile, 50, &rnd);

  DB* raw = nullptr;
  if (!ClsmDb::Open(options_, DbPath(), &raw).ok()) {
    return;  // detected at open; fine
  }
  std::unique_ptr<DB> db(raw);
  ReadOptions ro;
  ro.verify_checksums = true;
  std::unique_ptr<Iterator> it(db->NewIterator(ro));
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    n++;
    if (n > 100000) {
      FAIL() << "corruption produced an unbounded scan";
    }
  }
  // Either the scan completed over intact data or it stopped with a status;
  // both are legal — crashing or looping is not.
  fprintf(stderr, "corrupt-table scan: n=%d status=%s\n", n, it->status().ToString().c_str());
  SUCCEED();
}

TEST_F(RobustnessTest, CorruptWalRecoversPrefix) {
  {
    auto db = Open();
    WriteOptions sync_wo;
    sync_wo.sync = true;
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(db->Put(sync_wo, "wal" + std::to_string(i), "v").ok());
    }
    // Leak-free abrupt end: destructor drains, so the WAL is complete; we
    // then corrupt its middle to simulate media damage.
  }
  Random rnd(7);
  CorruptFiles(kLogFile, 3, &rnd);

  DB* raw = nullptr;
  Status s = ClsmDb::Open(options_, DbPath(), &raw);
  if (!s.ok()) {
    // Detected corruption at recovery is acceptable.
    return;
  }
  std::unique_ptr<DB> db(raw);
  ReadOptions ro;
  std::string v;
  int recovered = 0;
  for (int i = 0; i < 200; i++) {
    if (db->Get(ro, "wal" + std::to_string(i), &v).ok()) {
      recovered++;
    }
  }
  fprintf(stderr, "corrupt-wal: recovered %d/200 records\n", recovered);
  // The store must be usable for new writes regardless.
  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "fresh", "write").ok());
  ASSERT_TRUE(db->Get(ro, "fresh", &v).ok());
}

TEST_F(RobustnessTest, TruncatedTableDetected) {
  {
    auto db = Open();
    WriteOptions wo;
    for (int i = 0; i < 10000; i++) {
      ASSERT_TRUE(db->Put(wo, "key" + std::to_string(i), std::string(40, 'v')).ok());
    }
    db->WaitForMaintenance();
  }
  // Chop the tail (footer!) off every table.
  Env* env = Env::Default();
  std::vector<std::string> files;
  ASSERT_TRUE(env->GetChildren(DbPath(), &files).ok());
  for (const std::string& f : files) {
    uint64_t number;
    FileType type;
    if (ParseFileName(f, &number, &type) && type == kTableFile) {
      std::string path = DbPath() + "/" + f;
      std::string contents;
      ASSERT_TRUE(ReadFileToString(env, path, &contents).ok());
      contents.resize(contents.size() / 2);
      ASSERT_TRUE(WriteStringToFileSync(env, contents, path).ok());
    }
  }

  DB* raw = nullptr;
  Status s = ClsmDb::Open(options_, DbPath(), &raw);
  std::unique_ptr<DB> db(raw);
  if (s.ok()) {
    ReadOptions ro;
    std::string v;
    Status g = db->Get(ro, "key5000", &v);
    EXPECT_FALSE(g.ok()) << "read from a truncated table silently succeeded";
  }
  // Either way: no crash, explicit error.
  SUCCEED();
}

}  // namespace
}  // namespace clsm
