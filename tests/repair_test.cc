// RepairDb: reconstructing a store whose manifest/CURRENT were destroyed.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/clsm_db.h"
#include "src/lsm/filename.h"
#include "src/lsm/repair.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  RepairTest() : dir_("repair") {
    options_.write_buffer_size = 64 * 1024;
  }

  std::string DbPath() const { return dir_.path() + "/db"; }

  std::unique_ptr<DB> Open() {
    DB* raw = nullptr;
    Status s = ClsmDb::Open(options_, DbPath(), &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(raw);
  }

  void DestroyMetadata() {
    Env* env = Env::Default();
    std::vector<std::string> files;
    ASSERT_TRUE(env->GetChildren(DbPath(), &files).ok());
    for (const std::string& f : files) {
      uint64_t number;
      FileType type;
      if (ParseFileName(f, &number, &type) &&
          (type == kDescriptorFile || type == kCurrentFile)) {
        ASSERT_TRUE(env->RemoveFile(DbPath() + "/" + f).ok());
      }
    }
  }

  ScratchDir dir_;
  Options options_;
};

TEST_F(RepairTest, RecoversTablesAfterManifestLoss) {
  {
    auto db = Open();
    WriteOptions wo;
    for (int i = 0; i < 20000; i++) {
      ASSERT_TRUE(db->Put(wo, "key" + std::to_string(i), "value" + std::to_string(i)).ok());
    }
    db->WaitForMaintenance();  // data now in tables across levels
  }
  DestroyMetadata();

  // Without repair the store is unopenable.
  {
    DB* raw = nullptr;
    Options no_create = options_;
    no_create.create_if_missing = false;
    EXPECT_FALSE(ClsmDb::Open(no_create, DbPath(), &raw).ok());
  }

  ASSERT_TRUE(RepairDb(options_, DbPath()).ok());

  auto db = Open();
  ReadOptions ro;
  std::string v;
  for (int i = 0; i < 20000; i += 501) {
    ASSERT_TRUE(db->Get(ro, "key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ("value" + std::to_string(i), v);
  }
}

TEST_F(RepairTest, NewestVersionWinsAfterRepair) {
  {
    auto db = Open();
    WriteOptions wo;
    // Several overwrite generations, each flushed, so versions of the same
    // key live in different tables (including compacted ones).
    for (int gen = 0; gen < 4; gen++) {
      for (int i = 0; i < 4000; i++) {
        ASSERT_TRUE(
            db->Put(wo, "key" + std::to_string(i), "gen" + std::to_string(gen)).ok());
      }
      db->WaitForMaintenance();
    }
  }
  DestroyMetadata();
  ASSERT_TRUE(RepairDb(options_, DbPath()).ok());

  auto db = Open();
  ReadOptions ro;
  std::string v;
  for (int i = 0; i < 4000; i += 97) {
    ASSERT_TRUE(db->Get(ro, "key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ("gen3", v) << "repair resurrected a stale version for key " << i;
  }
}

TEST_F(RepairTest, SalvagesWalOnlyData) {
  {
    auto db = Open();
    WriteOptions sync_wo;
    sync_wo.sync = true;
    // Small enough to stay in the memtable: only the WAL has it.
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Put(sync_wo, "wal-only" + std::to_string(i), "w").ok());
    }
    // Abandon without clean close semantics: release and leak nothing —
    // the destructor drains the WAL, which is fine; the point is the data
    // never reached a table.
  }
  DestroyMetadata();
  ASSERT_TRUE(RepairDb(options_, DbPath()).ok());

  auto db = Open();
  ReadOptions ro;
  std::string v;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Get(ro, "wal-only" + std::to_string(i), &v).ok()) << i;
  }
}

TEST_F(RepairTest, DeletionsSurviveRepair) {
  {
    auto db = Open();
    WriteOptions wo;
    ASSERT_TRUE(db->Put(wo, "kept", "v").ok());
    ASSERT_TRUE(db->Put(wo, "killed", "v").ok());
    db->WaitForMaintenance();
    ASSERT_TRUE(db->Delete(wo, "killed").ok());
    WriteOptions sync_wo;
    sync_wo.sync = true;
    ASSERT_TRUE(db->Put(sync_wo, "barrier", "1").ok());
  }
  DestroyMetadata();
  ASSERT_TRUE(RepairDb(options_, DbPath()).ok());

  auto db = Open();
  ReadOptions ro;
  std::string v;
  EXPECT_TRUE(db->Get(ro, "kept", &v).ok());
  EXPECT_TRUE(db->Get(ro, "killed", &v).IsNotFound())
      << "repair resurrected a deleted key";
}

TEST_F(RepairTest, RepairedStoreKeepsWorking) {
  {
    auto db = Open();
    WriteOptions wo;
    for (int i = 0; i < 5000; i++) {
      ASSERT_TRUE(db->Put(wo, "old" + std::to_string(i), "v").ok());
    }
    db->WaitForMaintenance();
  }
  DestroyMetadata();
  ASSERT_TRUE(RepairDb(options_, DbPath()).ok());

  auto db = Open();
  WriteOptions wo;
  ReadOptions ro;
  // Normal operation after repair: writes, flushes, compactions.
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db->Put(wo, "new" + std::to_string(i), std::string(32, 'n')).ok());
  }
  db->WaitForMaintenance();
  std::string v;
  ASSERT_TRUE(db->Get(ro, "old123", &v).ok());
  ASSERT_TRUE(db->Get(ro, "new19999", &v).ok());
}

}  // namespace
}  // namespace clsm
