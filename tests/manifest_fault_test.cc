// Manifest/metadata fault coverage: torn MANIFEST tails, failed
// CURRENT-pointer renames, unwritable directories and read faults during
// recovery. The invariants:
//
//  * a torn manifest tail (unsynced last block lost in a power cut) is a
//    clean end-of-log — reopen succeeds and replays the WALs the
//    truncated prefix points at (with paranoid_checks, it is refused as
//    Corruption instead);
//  * metadata faults during open fail the open with a clean Status — no
//    crash, no partially-constructed DB — and the store opens fine once
//    the fault is healed, because CURRENT is only repointed after the new
//    manifest is durable.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/clsm_db.h"
#include "src/lsm/filename.h"
#include "src/util/fault_env.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class ManifestFaultTest : public ::testing::Test {
 protected:
  ManifestFaultTest() : dir_("manifault"), fault_env_(Env::Default()) {
    options_.env = &fault_env_;
  }

  // Creates a store with `n` keys made durable by a final sync write,
  // then closes it cleanly. Returns the db path.
  std::string Seed(const std::string& name, int n) {
    const std::string path = dir_.path() + "/" + name;
    DB* raw = nullptr;
    Status s = ClsmDb::Open(options_, path, &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::unique_ptr<DB> db(raw);
    WriteOptions wo;
    for (int i = 0; i < n; i++) {
      EXPECT_TRUE(db->Put(wo, Key(i), "v" + std::to_string(i)).ok());
    }
    WriteOptions sync_wo;
    sync_wo.sync = true;
    EXPECT_TRUE(db->Put(sync_wo, "barrier", "1").ok());
    return path;
  }

  static std::string Key(int i) { return "key" + std::to_string(i); }

  std::vector<std::string> FindFiles(const std::string& path, FileType want) {
    std::vector<std::string> children;
    EXPECT_TRUE(Env::Default()->GetChildren(path, &children).ok());
    std::vector<std::string> out;
    for (const auto& f : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(f, &number, &type) && type == want) {
        out.push_back(path + "/" + f);
      }
    }
    return out;
  }

  void ExpectAllReadable(DB* db, int n) {
    ReadOptions ro;
    std::string v;
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db->Get(ro, Key(i), &v).ok()) << Key(i);
      EXPECT_EQ("v" + std::to_string(i), v);
    }
    ASSERT_TRUE(db->Get(ro, "barrier", &v).ok());
  }

  ScratchDir dir_;
  FaultInjectionEnv fault_env_;
  Options options_;
};

TEST_F(ManifestFaultTest, TornManifestTailIsCleanEndOfLog) {
  const std::string path = Seed("torn", 200);

  // Tear a few bytes off the manifest tail — the shape a power cut leaves
  // when the last descriptor block was only partially persisted.
  std::vector<std::string> manifests = FindFiles(path, kDescriptorFile);
  ASSERT_EQ(1u, manifests.size());
  ASSERT_TRUE(TruncateFileTail(Env::Default(), manifests[0], 5).ok());

  // Reopen tolerates the torn tail: the truncated record is dropped, the
  // surviving prefix points at an older log number, and recovery replays
  // every WAL from there — nothing synced is lost.
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options_, path, &raw);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::unique_ptr<DB> db(raw);
  ExpectAllReadable(db.get(), 200);
  WriteOptions wo;
  EXPECT_TRUE(db->Put(wo, "fresh", "f").ok());
}

TEST_F(ManifestFaultTest, ParanoidChecksRefuseCorruptManifestRecord) {
  const std::string path = Seed("paranoid", 50);
  std::vector<std::string> manifests = FindFiles(path, kDescriptorFile);
  ASSERT_EQ(1u, manifests.size());

  // Flip a byte inside the last record: unlike a torn tail (clean
  // end-of-log), a checksum mismatch is reported as corruption.
  std::string data;
  ASSERT_TRUE(ReadFileToString(Env::Default(), manifests[0], &data).ok());
  ASSERT_GT(data.size(), 3u);
  data[data.size() - 3] ^= 0x40;
  ASSERT_TRUE(WriteStringToFileSync(Env::Default(), data, manifests[0]).ok());

  Options paranoid = options_;
  paranoid.paranoid_checks = true;
  DB* raw = nullptr;
  Status s = ClsmDb::Open(paranoid, path, &raw);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, raw);

  // The default configuration still opens the same store.
  ASSERT_TRUE(ClsmDb::Open(options_, path, &raw).ok());
  std::unique_ptr<DB> db(raw);
  ExpectAllReadable(db.get(), 50);
}

TEST_F(ManifestFaultTest, CurrentRenameFaultFailsOpenCleanlyThenHeals) {
  const std::string path = Seed("rename", 100);

  // Reopening writes a fresh manifest and repoints CURRENT via rename;
  // fail the rename. The open must fail with a clean status (no crash, no
  // half-open DB) and must not have clobbered the old CURRENT.
  fault_env_.FailRenames(true);
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options_, path, &raw);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, raw);

  fault_env_.Heal();
  ASSERT_TRUE(ClsmDb::Open(options_, path, &raw).ok());
  std::unique_ptr<DB> db(raw);
  ExpectAllReadable(db.get(), 100);
}

TEST_F(ManifestFaultTest, CreateDirFaultFailsFreshOpenCleanly) {
  fault_env_.FailCreateDir(true);
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options_, dir_.path() + "/nodir", &raw);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, raw);
  fault_env_.Heal();

  ASSERT_TRUE(ClsmDb::Open(options_, dir_.path() + "/nodir", &raw).ok());
  delete raw;
}

TEST_F(ManifestFaultTest, ReadFaultDuringRecoveryFailsOpenCleanly) {
  const std::string path = Seed("readfault", 100);

  fault_env_.FailReads(true);
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options_, path, &raw);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, raw);

  fault_env_.Heal();
  ASSERT_TRUE(ClsmDb::Open(options_, path, &raw).ok());
  std::unique_ptr<DB> db(raw);
  ExpectAllReadable(db.get(), 100);
}

}  // namespace
}  // namespace clsm
