#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "src/queue/mpsc_queue.h"

namespace clsm {
namespace {

TEST(MpscQueueTest, FifoSingleThread) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(q.Dequeue().has_value());
  for (int i = 0; i < 100; i++) {
    q.Enqueue(i);
  }
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(100u, q.ApproxSize());
  for (int i = 0; i < 100; i++) {
    auto v = q.Dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(i, *v);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(MpscQueueTest, MoveOnlyPayload) {
  MpscQueue<std::unique_ptr<int>> q;
  q.Enqueue(std::make_unique<int>(7));
  auto v = q.Dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(7, **v);
}

TEST(MpscQueueTest, DestructionReleasesPending) {
  // Elements left in the queue must be destroyed with it (no leaks under
  // ASAN, no crashes otherwise).
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) {
        (*c)++;
      }
    }
  };
  {
    MpscQueue<Probe> q;
    for (int i = 0; i < 10; i++) {
      q.Enqueue(Probe{counter});
    }
  }
  EXPECT_GE(*counter, 10);
}

// Property: with many producers and one consumer, every enqueued element is
// dequeued exactly once, and per-producer order is preserved.
TEST(MpscQueueTest, ManyProducersTotalityAndOrder) {
  MpscQueue<std::pair<int, int>> q;  // (producer, sequence)
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; i++) {
        q.Enqueue({p, i});
      }
    });
  }

  std::map<int, int> next_expected;
  int total = 0;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (total < kProducers * kPerProducer) {
      auto v = q.Dequeue();
      if (!v.has_value()) {
        std::this_thread::yield();
        continue;
      }
      auto [p, i] = *v;
      ASSERT_EQ(next_expected[p], i) << "per-producer FIFO violated";
      next_expected[p] = i + 1;
      total++;
    }
    done = true;
  });

  for (auto& t : producers) {
    t.join();
  }
  consumer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(kProducers * kPerProducer, total);
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace clsm
