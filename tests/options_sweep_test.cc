// Configuration-space sweep: the same black-box workload must pass under
// every meaningful combination of tuning knobs — tiny blocks, restart
// interval 1, no Bloom filters, no block cache, synchronous logging, WAL
// disabled, dedicated flush thread, linearizable snapshots. Catches
// configuration-dependent bugs that default-options tests never see.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/core/clsm_db.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

struct SweepCase {
  const char* name;
  Options options;
};

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> cases;
  {
    SweepCase c{"defaults", Options()};
    cases.push_back(c);
  }
  {
    SweepCase c{"tiny_blocks", Options()};
    c.options.block_size = 256;
    c.options.block_restart_interval = 1;
    cases.push_back(c);
  }
  {
    SweepCase c{"no_bloom_no_cache", Options()};
    c.options.bloom_bits_per_key = 0;
    c.options.block_cache_size = 0;
    cases.push_back(c);
  }
  {
    SweepCase c{"sync_logging", Options()};
    c.options.sync_logging = true;
    cases.push_back(c);
  }
  {
    SweepCase c{"no_wal", Options()};
    c.options.disable_wal = true;
    cases.push_back(c);
  }
  {
    SweepCase c{"dedicated_flush", Options()};
    c.options.dedicated_flush_thread = true;
    cases.push_back(c);
  }
  {
    SweepCase c{"linearizable_snapshots", Options()};
    c.options.linearizable_snapshots = true;
    cases.push_back(c);
  }
  {
    SweepCase c{"tiny_everything", Options()};
    c.options.write_buffer_size = 16 * 1024;
    c.options.target_file_size = 16 * 1024;
    c.options.level1_max_bytes = 48 * 1024;
    c.options.block_size = 512;
    c.options.l0_compaction_trigger = 2;
    cases.push_back(c);
  }
  {
    SweepCase c{"paranoid_checks", Options()};
    c.options.paranoid_checks = true;
    cases.push_back(c);
  }
  return cases;
}

class OptionsSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OptionsSweepTest, BlackBoxContractHolds) {
  ScratchDir dir("sweep");
  Options options = GetParam().options;
  if (options.write_buffer_size > 256 * 1024) {
    options.write_buffer_size = 256 * 1024;  // keep the test quick
  }
  DB* raw = nullptr;
  ASSERT_TRUE(ClsmDb::Open(options, dir.path() + "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  WriteOptions wo;
  ReadOptions ro;
  std::map<std::string, std::string> model;
  // Enough churn for rolls/flushes/compactions under the tiny configs.
  for (int i = 0; i < 8000; i++) {
    std::string k = "key" + std::to_string(i % 900);
    std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, k, v).ok()) << GetParam().name;
    model[k] = v;
    if (i % 10 == 3) {
      std::string dk = "key" + std::to_string((i * 7) % 900);
      ASSERT_TRUE(db->Delete(wo, dk).ok());
      model.erase(dk);
    }
  }
  db->WaitForMaintenance();

  std::string v;
  for (const auto& [k, mv] : model) {
    ASSERT_TRUE(db->Get(ro, k, &v).ok()) << GetParam().name << " lost " << k;
    ASSERT_EQ(mv, v) << GetParam().name;
  }
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    it->SeekToFirst();
    for (const auto& [k, mv] : model) {
      ASSERT_TRUE(it->Valid()) << GetParam().name;
      ASSERT_EQ(k, it->key().ToString()) << GetParam().name;
      it->Next();
    }
    ASSERT_FALSE(it->Valid()) << GetParam().name;
  }

  // RMW works in every configuration.
  ASSERT_TRUE(db->ReadModifyWrite(wo, "rmw-key",
                                  [](const std::optional<Slice>& cur)
                                      -> std::optional<std::string> {
                                    return cur ? cur->ToString() + "+1" : "1";
                                  })
                  .ok());

  // Persistence (skipped when the WAL is off and nothing was flushed —
  // disable_wal explicitly trades durability for speed).
  db.reset();
  ASSERT_TRUE(ClsmDb::Open(options, dir.path() + "/db", &raw).ok());
  db.reset(raw);
  if (!options.disable_wal) {
    for (const auto& [k, mv] : model) {
      ASSERT_TRUE(db->Get(ro, k, &v).ok()) << GetParam().name << " lost " << k << " on reopen";
      ASSERT_EQ(mv, v) << GetParam().name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, OptionsSweepTest, ::testing::ValuesIn(SweepCases()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace clsm
