// Tests of the workload generators: distribution shape properties must
// match the statistics the paper reports for its inputs (§5.1-§5.2), since
// the benchmark conclusions depend on them.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/baselines/factory.h"
#include "src/workload/driver.h"
#include "src/workload/generator.h"
#include "src/workload/trace.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

TEST(KeyEncodingTest, OrderPreserving) {
  std::string a, b;
  for (uint64_t i = 0; i < 2000; i += 37) {
    EncodeWorkloadKey(i, 8, &a);
    EncodeWorkloadKey(i + 1, 8, &b);
    EXPECT_LT(Slice(a).compare(Slice(b)), 0) << i;
    EXPECT_EQ(8u, a.size());
  }
  // Larger key sizes pad but keep the ordering prefix.
  EncodeWorkloadKey(5, 40, &a);
  EncodeWorkloadKey(6, 40, &b);
  EXPECT_EQ(40u, a.size());
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
}

TEST(UniformGeneratorTest, CoversRangeRoughlyEvenly) {
  UniformGenerator gen(100, 42);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; i++) {
    uint64_t k = gen.Next();
    ASSERT_LT(k, 100u);
    counts[k]++;
  }
  auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*min_it, 700);
  EXPECT_LT(*max_it, 1300);
}

TEST(HotBlockGeneratorTest, NinetyTenShape) {
  // Paper §5.1: 90% of keys from popular blocks comprising 10% of the DB.
  const uint64_t n = 100000;
  HotBlockGenerator gen(n, 0.10, 0.90, 7);
  std::map<uint64_t, int> counts;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; i++) {
    counts[gen.Next()]++;
  }
  // Sort keys by frequency; the top 10% of the keyspace must absorb ~90%.
  std::vector<int> freqs;
  for (auto& [k, c] : counts) {
    freqs.push_back(c);
  }
  std::sort(freqs.rbegin(), freqs.rend());
  long hot = 0, total = 0;
  for (size_t i = 0; i < freqs.size(); i++) {
    if (i < n / 10) {
      hot += freqs[i];
    }
    total += freqs[i];
  }
  double hot_fraction = static_cast<double>(hot) / total;
  EXPECT_GT(hot_fraction, 0.85);
}

TEST(ZipfianGeneratorTest, HeavyTailMatchesProductionStats) {
  // Paper §5.2: ~10% of keys account for 75%+ of requests; the most popular
  // 1-2% account for ~50%.
  const uint64_t n = 100000;
  ZipfianGenerator gen(n, 0.99, 123);
  std::map<uint64_t, int> counts;
  const int kSamples = 500000;
  for (int i = 0; i < kSamples; i++) {
    uint64_t k = gen.Next();
    ASSERT_LT(k, n);
    counts[k]++;
  }
  std::vector<int> freqs;
  for (auto& [k, c] : counts) {
    freqs.push_back(c);
  }
  std::sort(freqs.rbegin(), freqs.rend());
  auto share_of_top = [&](double fraction) {
    size_t limit = static_cast<size_t>(n * fraction);
    long top = 0, total = 0;
    for (size_t i = 0; i < freqs.size(); i++) {
      if (i < limit) {
        top += freqs[i];
      }
      total += freqs[i];
    }
    return static_cast<double>(top) / total;
  };
  EXPECT_GT(share_of_top(0.10), 0.70);
  EXPECT_GT(share_of_top(0.02), 0.40);
}

TEST(ZipfianGeneratorTest, ScrambleSpreadsPopularKeys) {
  const uint64_t n = 10000;
  ZipfianGenerator gen(n, 0.99, 5, /*scramble=*/true);
  // The two most popular keys should not be adjacent indices (rank 0/1
  // without scrambling).
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[gen.Next()]++;
  }
  uint64_t top_key = 0;
  int top_count = 0;
  for (auto& [k, c] : counts) {
    if (c > top_count) {
      top_count = c;
      top_key = k;
    }
  }
  EXPECT_NE(0u, top_key) << "rank-0 key should be scrambled away from index 0";
}

TEST(ValueGeneratorTest, SizesAndVariety) {
  ValueGenerator gen(256, 9);
  std::set<std::string> seen;
  for (int i = 0; i < 100; i++) {
    Slice v = gen.Next();
    EXPECT_EQ(256u, v.size());
    seen.insert(v.ToString());
  }
  EXPECT_GT(seen.size(), 50u) << "values should vary";
}

TEST(TraceTest, ProductionSpecsMatchFigure10) {
  auto specs = ProductionTraceSpecs(10000);
  ASSERT_EQ(4u, specs.size());
  EXPECT_NEAR(specs[0].read_fraction, 0.93, 1e-9);
  EXPECT_NEAR(specs[1].read_fraction, 0.85, 1e-9);
  EXPECT_NEAR(specs[2].read_fraction, 0.96, 1e-9);
  EXPECT_NEAR(specs[3].read_fraction, 0.86, 1e-9);
  for (const auto& spec : specs) {
    EXPECT_EQ(40u, spec.key_size);
    EXPECT_EQ(1024u, spec.value_size);
  }
}

TEST(TraceTest, GeneratorHonorsReadFraction) {
  TraceSpec spec = ProductionTraceSpecs(1000)[1];  // 85% reads
  TraceGenerator gen(spec, 11);
  int reads = 0;
  const int kOps = 50000;
  for (int i = 0; i < kOps; i++) {
    if (gen.NextOpType() == TraceOpType::kGet) {
      reads++;
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / kOps, 0.85, 0.02);
  std::string key;
  gen.NextKey(&key);
  EXPECT_EQ(40u, key.size());
  EXPECT_EQ(1024u, gen.NextValue().size());
}

TEST(DriverTest, RunsMixAndCounts) {
  ScratchDir dir("driver");
  Options options;
  options.write_buffer_size = 1 << 20;
  DB* raw = nullptr;
  ASSERT_TRUE(OpenDb(DbVariant::kClsm, options, dir.path() + "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  ASSERT_TRUE(LoadKeySpace(db.get(), 2000, 8, 64).ok());

  WorkloadSpec spec;
  spec.num_keys = 2000;
  spec.write_fraction = 0.5;
  spec.scan_fraction = 0.1;
  spec.rmw_fraction = 0.1;
  spec.value_size = 64;
  DriverResult result = RunWorkload(db.get(), spec, 2, 300);

  EXPECT_GT(result.total_ops, 100u);
  EXPECT_EQ(result.total_ops, result.reads + result.writes + result.scans + result.rmws);
  EXPECT_GT(result.writes, 0u);
  EXPECT_GT(result.scans, 0u);
  EXPECT_GT(result.rmws, 0u);
  EXPECT_GT(result.ops_per_sec, 0.0);
  EXPECT_GE(result.keys_per_sec, result.ops_per_sec * 0.9);
  EXPECT_GT(result.latency_micros.Num(), 0.0);
  EXPECT_FALSE(result.Summary().empty());
}

}  // namespace
}  // namespace clsm
