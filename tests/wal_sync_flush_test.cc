// Regression test for the WAL-sync-swallowed-at-flush data-loss bug.
//
// The retired WAL's final drain/sync/close happens at the flush boundary
// (FlushImmutable). Before the fix, ~AsyncLogger discarded the Sync()/
// Close() status and FlushImmutable proceeded to build the table and
// delete the log regardless — an I/O error on the last chance to make the
// log durable was silently swallowed while the recovery source for the
// immutable memtable was removed. The fix routes the close status out of
// the logger, aborts the flush, and latches a hard background error
// BEFORE the memtable is flushed and the log deleted.
//
// Assertions (all of which fail against the pre-fix code):
//  1. the flush aborts and a background error latches (reason wal_sync);
//  2. the next write is rejected with the latched error;
//  3. reads, iterators and snapshots keep working (degraded read-only);
//  4. after Heal + reopen, every acked synchronous write is readable.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "src/baselines/factory.h"
#include "src/core/clsm_db.h"
#include "src/util/fault_env.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class WalSyncFlushTest : public ::testing::Test {
 protected:
  WalSyncFlushTest() : dir_("walsyncflush"), fault_env_(Env::Default()) {
    options_.env = &fault_env_;
    options_.write_buffer_size = 64 * 1024;
  }

  std::unique_ptr<DB> Open(DbVariant variant, const std::string& name) {
    DB* raw = nullptr;
    Status s = OpenDb(variant, options_, dir_.path() + "/" + name, &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(raw);
  }

  // Polls the background-error property until it latches (or times out).
  static std::string WaitForBgError(DB* db) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    std::string bg = db->GetProperty("clsm.background-error");
    while (bg == "OK" && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      bg = db->GetProperty("clsm.background-error");
    }
    return bg;
  }

  // The shared scenario, parameterized over the DB variant: ack ten
  // synchronous writes, arm a single Sync failure, then drive async churn
  // until the memtable rolls and the flush boundary tries to retire the
  // old WAL. The churn puts never sync on their own (they are async) and
  // the table build's sync comes after the WAL close, so the armed
  // failure lands exactly on the final sync of the retired log.
  void RunScenario(DbVariant variant, const std::string& name) {
    auto db = Open(variant, name);
    WriteOptions wo;
    WriteOptions sync_wo;
    sync_wo.sync = true;
    ReadOptions ro;

    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(db->Put(sync_wo, "acked" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    db->WaitForMaintenance();

    fault_env_.FailSyncs(1);
    for (int i = 0; i < 50000; i++) {
      if (db->GetProperty("clsm.background-error") != "OK") {
        break;
      }
      if (!db->Put(wo, "churn" + std::to_string(i), std::string(64, 'c')).ok()) {
        break;
      }
    }

    // (1) The failed final sync of the retired WAL must latch, not be
    // swallowed by the flush.
    const std::string bg = WaitForBgError(db.get());
    ASSERT_NE("OK", bg) << "WAL sync failure at the flush boundary was swallowed";
    EXPECT_NE(std::string::npos, bg.find("wal_sync")) << bg;
    EXPECT_NE(std::string::npos, bg.find("hard")) << bg;

    // (2) Writes fail fast with the latched error.
    Status put_status = db->Put(wo, "rejected", "x");
    EXPECT_FALSE(put_status.ok()) << "write accepted after durability was lost";
    EXPECT_FALSE(db->Delete(wo, "acked0").ok());

    // (3) Degraded mode: reads, iterators and snapshots still serve the
    // accepted data.
    std::string v;
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(db->Get(ro, "acked" + std::to_string(i), &v).ok()) << i;
      EXPECT_EQ("v" + std::to_string(i), v);
    }
    const Snapshot* snap = db->GetSnapshot();
    ReadOptions snap_ro;
    snap_ro.snapshot = snap;
    EXPECT_TRUE(db->Get(snap_ro, "acked0", &v).ok());
    db->ReleaseSnapshot(snap);
    {
      std::unique_ptr<Iterator> it(db->NewIterator(ro));
      it->Seek("acked0");
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ("acked0", it->key().ToString());
    }

    // (4) Heal + reopen: recovery replays the retained WALs; every acked
    // synchronous write must be readable and service fully restored.
    fault_env_.Heal();
    db.reset();
    db = Open(variant, name);
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(db->Get(ro, "acked" + std::to_string(i), &v).ok())
          << "acked sync write lost across reopen: acked" << i;
      EXPECT_EQ("v" + std::to_string(i), v);
    }
    EXPECT_TRUE(db->Put(wo, "fresh-after-reopen", "y").ok());
    EXPECT_TRUE(db->Get(ro, "fresh-after-reopen", &v).ok());
  }

  ScratchDir dir_;
  FaultInjectionEnv fault_env_;
  Options options_;
};

TEST_F(WalSyncFlushTest, ClsmSyncFailureAtFlushLatchesBeforeLogRemoval) {
  RunScenario(DbVariant::kClsm, "clsm");
}

TEST_F(WalSyncFlushTest, BaselineSyncFailureAtFlushLatchesBeforeLogRemoval) {
  RunScenario(DbVariant::kLevelDb, "leveldb");
}

}  // namespace
}  // namespace clsm
