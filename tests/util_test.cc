#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "src/util/coding.h"
#include "src/util/comparator.h"
#include "src/util/crc32c.h"
#include "src/util/hash.h"
#include "src/util/histogram.h"
#include "src/util/random.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace clsm {
namespace {

TEST(SliceTest, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());
  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("hello!"));

  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  // Unsigned byte comparison.
  EXPECT_LT(Slice("a").compare(Slice("\xff")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(StatusTest, OkIsCheap) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ("OK", ok.ToString());
}

TEST(StatusTest, ErrorsCarryMessages) {
  Status s = Status::NotFound("key", "k42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ("NotFound: key: k42", s.ToString());

  Status c = Status::Corruption("bad block");
  EXPECT_TRUE(c.IsCorruption());
  Status io = Status::IOError("disk");
  EXPECT_TRUE(io.IsIOError());
  // Copying preserves the code.
  Status copy = io;
  EXPECT_TRUE(copy.IsIOError());
}

TEST(CodingTest, Fixed32) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 7777) {
    PutFixed32(&s, v);
  }
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v += 7777) {
    EXPECT_EQ(v, DecodeFixed32(p));
    p += 4;
  }
}

TEST(CodingTest, Fixed64) {
  std::string s;
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    PutFixed64(&s, v - 1);
    PutFixed64(&s, v);
    PutFixed64(&s, v + 1);
  }
  const char* p = s.data();
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    EXPECT_EQ(v - 1, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v + 1, DecodeFixed64(p));
    p += 8;
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32 * 32; i++) {
    uint32_t v = (i / 32) << (i % 32);
    values.push_back(v);
    PutVarint32(&s, v);
  }
  Slice input(s);
  for (uint32_t expected : values) {
    uint32_t actual;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::vector<uint64_t> values = {0, 100, ~static_cast<uint64_t>(0), ~static_cast<uint64_t>(0) - 1};
  for (uint32_t k = 0; k < 64; k++) {
    const uint64_t power = 1ull << k;
    values.push_back(power);
    values.push_back(power - 1);
    values.push_back(power + 1);
  }
  std::string s;
  for (uint64_t v : values) {
    PutVarint64(&s, v);
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint32Truncation) {
  uint32_t large_value = (1u << 31) + 100;
  std::string s;
  PutVarint32(&s, large_value);
  uint32_t result;
  for (size_t len = 0; len + 1 < s.size(); len++) {
    EXPECT_EQ(nullptr, GetVarint32Ptr(s.data(), s.data() + len, &result));
  }
  EXPECT_NE(nullptr, GetVarint32Ptr(s.data(), s.data() + s.size(), &result));
  EXPECT_EQ(large_value, result);
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("foo"));
  PutLengthPrefixedSlice(&s, Slice(std::string(10000, 'x')));
  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(10000, 'x'), v.ToString());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(CodingTest, VarintLength) {
  EXPECT_EQ(1, VarintLength(0));
  EXPECT_EQ(1, VarintLength(127));
  EXPECT_EQ(2, VarintLength(128));
  EXPECT_EQ(5, VarintLength(0xffffffffull));
  EXPECT_EQ(10, VarintLength(~0ull));
}

TEST(Crc32cTest, StandardVectors) {
  // From RFC 3720 / the CRC32C test suite.
  char buf[32];
  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, crc32c::Value(buf, sizeof(buf)));
  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, crc32c::Value(buf, sizeof(buf)));
  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(i);
  }
  EXPECT_EQ(0x46dd794eu, crc32c::Value(buf, sizeof(buf)));
}

TEST(Crc32cTest, Values) {
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("foo", 3));
}

TEST(Crc32cTest, Extend) {
  EXPECT_EQ(crc32c::Value("hello world", 11),
            crc32c::Extend(crc32c::Value("hello ", 6), "world", 5));
}

TEST(Crc32cTest, Mask) {
  uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Unmask(crc32c::Mask(crc32c::Mask(crc)))));
}

TEST(HashTest, SignedUnsignedIssue) {
  const uint8_t data1[1] = {0x62};
  const uint8_t data2[2] = {0xc3, 0x97};
  const uint8_t data3[3] = {0xe2, 0x99, 0xa5};
  const uint8_t data4[4] = {0xe1, 0x80, 0xb9, 0x32};
  // Stability: same input, same seed => same hash (values pinned so cache
  // sharding and bloom filters stay compatible across builds).
  EXPECT_EQ(Hash(nullptr, 0, 0xbc9f1d34), Hash(nullptr, 0, 0xbc9f1d34));
  EXPECT_EQ(Hash(reinterpret_cast<const char*>(data1), sizeof(data1), 0xbc9f1d34),
            Hash(reinterpret_cast<const char*>(data1), sizeof(data1), 0xbc9f1d34));
  EXPECT_NE(Hash(reinterpret_cast<const char*>(data2), sizeof(data2), 0xbc9f1d34),
            Hash(reinterpret_cast<const char*>(data3), sizeof(data3), 0xbc9f1d34));
  EXPECT_NE(Hash(reinterpret_cast<const char*>(data3), sizeof(data3), 0xbc9f1d34),
            Hash(reinterpret_cast<const char*>(data4), sizeof(data4), 0xbc9f1d34));
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Add(i);
  }
  EXPECT_EQ(1000, h.Num());
  EXPECT_NEAR(h.Average(), 500.5, 1.0);
  EXPECT_NEAR(h.Percentile(50), 500, 50);
  EXPECT_NEAR(h.Percentile(90), 900, 60);
  EXPECT_NEAR(h.Percentile(99), 990, 60);
  EXPECT_EQ(1, h.Min());
  EXPECT_EQ(1000, h.Max());
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  for (int i = 0; i < 100; i++) {
    a.Add(10);
    b.Add(1000);
  }
  a.Merge(b);
  EXPECT_EQ(200, a.Num());
  EXPECT_NEAR(a.Average(), 505, 1);
  EXPECT_EQ(10, a.Min());
  EXPECT_EQ(1000, a.Max());
}

TEST(RandomTest, Determinism) {
  Random a(301), b(301);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Random64 c(99), d(99);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(c.Next(), d.Next());
  }
}

TEST(RandomTest, UniformRange) {
  Random64 r(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(r.Uniform(17), 17u);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ComparatorTest, Bytewise) {
  const Comparator* cmp = BytewiseComparator();
  EXPECT_LT(cmp->Compare("abc", "abd"), 0);
  EXPECT_EQ(cmp->Compare("abc", "abc"), 0);

  std::string start = "abcdef";
  cmp->FindShortestSeparator(&start, "abzzzz");
  EXPECT_LT(Slice("abcdef").compare(start), 0);
  EXPECT_LT(Slice(start).compare("abzzzz"), 0);
  EXPECT_LE(start.size(), 6u);

  std::string key = "abc";
  cmp->FindShortSuccessor(&key);
  EXPECT_LE(Slice("abc").compare(key), 0);

  // All-0xff keys stay unchanged.
  std::string ff = "\xff\xff";
  cmp->FindShortSuccessor(&ff);
  EXPECT_EQ("\xff\xff", ff);
}

}  // namespace
}  // namespace clsm
