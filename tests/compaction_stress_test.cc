// Compaction-focused stress: drive the storage engine until data spreads
// across several levels, then verify (a) every visible version is correct,
// (b) obsolete-version GC honored live snapshots, (c) level invariants hold
// (disjoint ranges above level 0), (d) file-lifetime management never
// strands or prematurely deletes table files.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/core/clsm_db.h"
#include "src/lsm/filename.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class CompactionStressTest : public ::testing::Test {
 protected:
  CompactionStressTest() : dir_("compstress") {
    options_.write_buffer_size = 24 * 1024;
    options_.target_file_size = 24 * 1024;
    options_.level1_max_bytes = 64 * 1024;
    options_.l0_compaction_trigger = 2;
    Open();
  }

  void Open() {
    db_.reset();
    DB* raw = nullptr;
    ASSERT_TRUE(ClsmDb::Open(options_, dir_.path() + "/db", &raw).ok());
    db_.reset(raw);
  }

  int LevelFiles(int level) {
    std::string summary = db_->GetProperty("clsm.levels");  // "files[a b c ...]"
    size_t pos = summary.find('[');
    std::vector<int> counts;
    while (pos != std::string::npos && pos + 1 < summary.size()) {
      counts.push_back(atoi(summary.c_str() + pos + 1));
      pos = summary.find(' ', pos + 1);
    }
    return level < static_cast<int>(counts.size()) ? counts[level] : 0;
  }

  int DeepFiles() {
    int total = 0;
    for (int level = 1; level < kNumLevels; level++) {
      total += LevelFiles(level);
    }
    return total;
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(CompactionStressTest, MultiLevelSpreadKeepsNewestVersions) {
  WriteOptions wo;
  ReadOptions ro;
  std::map<std::string, std::string> model;
  Random rnd(99);
  // Many overwrite rounds with small buffers => deep level spread.
  for (int round = 0; round < 12; round++) {
    for (int i = 0; i < 800; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%05u", rnd.Uniform(2000));
      std::string value = "r" + std::to_string(round) + "-" + std::to_string(i);
      ASSERT_TRUE(db_->Put(wo, key, value).ok());
      model[key] = value;
    }
    db_->WaitForMaintenance();
  }
  EXPECT_GT(DeepFiles(), 0) << db_->GetProperty("clsm.levels");

  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(db_->Get(ro, k, &got).ok()) << k;
    ASSERT_EQ(v, got) << k;
  }

  // Ordered scan sees exactly the model.
  std::unique_ptr<Iterator> it(db_->NewIterator(ro));
  it->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid());
    ASSERT_EQ(k, it->key().ToString());
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(CompactionStressTest, SnapshotSurvivesDeepCompaction) {
  WriteOptions wo;
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(wo, "snap-key" + std::to_string(i), "generation-0").ok());
  }
  db_->WaitForMaintenance();
  const Snapshot* snap = db_->GetSnapshot();

  // Bury generation-0 under many newer generations and compactions.
  for (int gen = 1; gen <= 8; gen++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(
          db_->Put(wo, "snap-key" + std::to_string(i), "generation-" + std::to_string(gen)).ok());
    }
    db_->WaitForMaintenance();
  }

  ReadOptions rs;
  rs.snapshot = snap;
  std::string v;
  for (int i = 0; i < 500; i += 13) {
    ASSERT_TRUE(db_->Get(rs, "snap-key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ("generation-0", v) << "GC dropped a version a live snapshot needed";
  }
  ReadOptions ro;
  ASSERT_TRUE(db_->Get(ro, "snap-key13", &v).ok());
  EXPECT_EQ("generation-8", v);
  db_->ReleaseSnapshot(snap);

  // After release, further churn may GC generation-0; the store stays sane.
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(wo, "snap-key" + std::to_string(i), "generation-9").ok());
  }
  db_->WaitForMaintenance();
  ASSERT_TRUE(db_->Get(ro, "snap-key13", &v).ok());
  EXPECT_EQ("generation-9", v);
}

TEST_F(CompactionStressTest, NoStrandedOrMissingTableFiles) {
  WriteOptions wo;
  Random rnd(7);
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 600; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%05u", rnd.Uniform(3000));
      ASSERT_TRUE(db_->Put(wo, key, std::string(40, 'a' + round)).ok());
    }
    db_->WaitForMaintenance();
  }
  // Close cleanly; reopen sweeps obsolete files and recovers the manifest.
  Open();
  db_->WaitForMaintenance();

  // Every table file on disk is either referenced (openable via a scan) or
  // would have been deleted; conversely the scan must not hit missing
  // files. A full scan exercising every level proves both.
  ReadOptions ro;
  std::unique_ptr<Iterator> it(db_->NewIterator(ro));
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    n++;
  }
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  EXPECT_GT(n, 1000);

  // Directory hygiene: no temp files; exactly one CURRENT and it resolves.
  Env* env = Env::Default();
  std::vector<std::string> files;
  ASSERT_TRUE(env->GetChildren(dir_.path() + "/db", &files).ok());
  int temps = 0;
  for (const auto& f : files) {
    uint64_t number;
    FileType type;
    if (ParseFileName(f, &number, &type) && type == kTempFile) {
      temps++;
    }
  }
  EXPECT_EQ(0, temps);
  std::string current;
  ASSERT_TRUE(ReadFileToString(env, dir_.path() + "/db/CURRENT", &current).ok());
  current.pop_back();  // newline
  EXPECT_TRUE(env->FileExists(dir_.path() + "/db/" + current)) << current;
}

TEST_F(CompactionStressTest, DeleteHeavyWorkloadShrinks) {
  WriteOptions wo;
  ReadOptions ro;
  // Insert then delete everything, churn compactions, verify emptiness.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(wo, "victim" + std::to_string(i), std::string(64, 'v')).ok());
  }
  db_->WaitForMaintenance();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Delete(wo, "victim" + std::to_string(i)).ok());
  }
  db_->WaitForMaintenance();
  // Push the tombstones down with more (disjoint) churn.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(wo, "zz-filler" + std::to_string(i), std::string(64, 'f')).ok());
  }
  db_->WaitForMaintenance();

  std::unique_ptr<Iterator> it(db_->NewIterator(ro));
  it->Seek("victim");
  if (it->Valid()) {
    EXPECT_FALSE(it->key().starts_with("victim")) << it->key().ToString();
  }
  std::string v;
  EXPECT_TRUE(db_->Get(ro, "victim1500", &v).IsNotFound());
}

// Parallel compaction: several writers race against a pool of compaction
// workers. Verifies (a) in-flight compactions never share an input file
// (the engine counts violations of its disjointness invariant), (b) reads
// and iterators stay consistent while compactions overlap, and (c) the
// final state matches a sequential model.
TEST_F(CompactionStressTest, ParallelCompactionsDisjointAndConsistent) {
  options_.compaction_threads = 4;
  options_.l0_slowdown_trigger = 6;
  options_.l0_stop_trigger = 10;
  Open();

  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 600;
  constexpr int kRounds = 6;
  WriteOptions wo;

  auto key_of = [](int w, int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "w%d-key%05d", w, i);
    return std::string(buf);
  };
  auto value_of = [&](int w, int i, int round) {
    return key_of(w, i) + "-r" + std::to_string(round) + std::string(30, 'p');
  };

  std::atomic<bool> writers_done{false};
  std::atomic<int> put_failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; round++) {
        for (int i = 0; i < kKeysPerWriter; i++) {
          if (!db_->Put(wo, key_of(w, i), value_of(w, i, round)).ok()) {
            put_failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }

  // Readers: every value observed for a key must be one this key's writer
  // actually wrote (some round's value), never a torn or foreign value.
  std::atomic<int> read_violations{0};
  std::thread reader([&] {
    ReadOptions ro;
    Random rnd(301);
    while (!writers_done.load(std::memory_order_acquire)) {
      const int w = static_cast<int>(rnd.Uniform(kWriters));
      const int i = static_cast<int>(rnd.Uniform(kKeysPerWriter));
      const std::string k = key_of(w, i);
      std::string v;
      Status s = db_->Get(ro, k, &v);
      if (s.ok()) {
        if (v.compare(0, k.size(), k) != 0 || v.find("-r", k.size()) != k.size()) {
          read_violations.fetch_add(1);
        }
      } else if (!s.IsNotFound()) {
        read_violations.fetch_add(1);
      }
    }
  });

  // Iterator: a scan taken while compactions churn must stay sorted and
  // error-free.
  std::atomic<int> scan_violations{0};
  std::thread scanner([&] {
    ReadOptions ro;
    while (!writers_done.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ro));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        const std::string k = it->key().ToString();
        if (!prev.empty() && !(prev < k)) {
          scan_violations.fetch_add(1);
        }
        prev = k;
      }
      if (!it->status().ok()) {
        scan_violations.fetch_add(1);
      }
    }
  });

  for (auto& t : writers) {
    t.join();
  }
  writers_done.store(true, std::memory_order_release);
  reader.join();
  scanner.join();
  ASSERT_EQ(0, put_failures.load());
  EXPECT_EQ(0, read_violations.load());
  EXPECT_EQ(0, scan_violations.load());

  db_->WaitForMaintenance();
  // (a) Disjointness invariant never tripped.
  EXPECT_EQ("0", db_->GetProperty("clsm.compaction-overlaps"));

  // (c) Final state equals the sequential model: last round's value wins
  // for every key, and a full scan sees exactly the model's keys.
  ReadOptions ro;
  for (int w = 0; w < kWriters; w++) {
    for (int i = 0; i < kKeysPerWriter; i++) {
      std::string v;
      ASSERT_TRUE(db_->Get(ro, key_of(w, i), &v).ok()) << key_of(w, i);
      ASSERT_EQ(value_of(w, i, kRounds - 1), v) << key_of(w, i);
    }
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ro));
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    n++;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(kWriters * kKeysPerWriter, n);

  // The pool actually compacted in parallel-capable mode and the backpressure
  // accounting is wired: the property parses as a number.
  EXPECT_GT(DeepFiles(), 0) << db_->GetProperty("clsm.levels");
  const std::string stalls = db_->GetProperty("clsm.stall-micros");
  EXPECT_FALSE(stalls.empty());
  EXPECT_TRUE(stalls.find_first_not_of("0123456789") == std::string::npos) << stalls;
}

}  // namespace
}  // namespace clsm
