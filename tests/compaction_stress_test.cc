// Compaction-focused stress: drive the storage engine until data spreads
// across several levels, then verify (a) every visible version is correct,
// (b) obsolete-version GC honored live snapshots, (c) level invariants hold
// (disjoint ranges above level 0), (d) file-lifetime management never
// strands or prematurely deletes table files.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "src/core/clsm_db.h"
#include "src/lsm/filename.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class CompactionStressTest : public ::testing::Test {
 protected:
  CompactionStressTest() : dir_("compstress") {
    options_.write_buffer_size = 24 * 1024;
    options_.target_file_size = 24 * 1024;
    options_.level1_max_bytes = 64 * 1024;
    options_.l0_compaction_trigger = 2;
    Open();
  }

  void Open() {
    db_.reset();
    DB* raw = nullptr;
    ASSERT_TRUE(ClsmDb::Open(options_, dir_.path() + "/db", &raw).ok());
    db_.reset(raw);
  }

  int LevelFiles(int level) {
    std::string summary = db_->GetProperty("clsm.levels");  // "files[a b c ...]"
    size_t pos = summary.find('[');
    std::vector<int> counts;
    while (pos != std::string::npos && pos + 1 < summary.size()) {
      counts.push_back(atoi(summary.c_str() + pos + 1));
      pos = summary.find(' ', pos + 1);
    }
    return level < static_cast<int>(counts.size()) ? counts[level] : 0;
  }

  int DeepFiles() {
    int total = 0;
    for (int level = 1; level < kNumLevels; level++) {
      total += LevelFiles(level);
    }
    return total;
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(CompactionStressTest, MultiLevelSpreadKeepsNewestVersions) {
  WriteOptions wo;
  ReadOptions ro;
  std::map<std::string, std::string> model;
  Random rnd(99);
  // Many overwrite rounds with small buffers => deep level spread.
  for (int round = 0; round < 12; round++) {
    for (int i = 0; i < 800; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%05u", rnd.Uniform(2000));
      std::string value = "r" + std::to_string(round) + "-" + std::to_string(i);
      ASSERT_TRUE(db_->Put(wo, key, value).ok());
      model[key] = value;
    }
    db_->WaitForMaintenance();
  }
  EXPECT_GT(DeepFiles(), 0) << db_->GetProperty("clsm.levels");

  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(db_->Get(ro, k, &got).ok()) << k;
    ASSERT_EQ(v, got) << k;
  }

  // Ordered scan sees exactly the model.
  std::unique_ptr<Iterator> it(db_->NewIterator(ro));
  it->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid());
    ASSERT_EQ(k, it->key().ToString());
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(CompactionStressTest, SnapshotSurvivesDeepCompaction) {
  WriteOptions wo;
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(wo, "snap-key" + std::to_string(i), "generation-0").ok());
  }
  db_->WaitForMaintenance();
  const Snapshot* snap = db_->GetSnapshot();

  // Bury generation-0 under many newer generations and compactions.
  for (int gen = 1; gen <= 8; gen++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(
          db_->Put(wo, "snap-key" + std::to_string(i), "generation-" + std::to_string(gen)).ok());
    }
    db_->WaitForMaintenance();
  }

  ReadOptions rs;
  rs.snapshot = snap;
  std::string v;
  for (int i = 0; i < 500; i += 13) {
    ASSERT_TRUE(db_->Get(rs, "snap-key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ("generation-0", v) << "GC dropped a version a live snapshot needed";
  }
  ReadOptions ro;
  ASSERT_TRUE(db_->Get(ro, "snap-key13", &v).ok());
  EXPECT_EQ("generation-8", v);
  db_->ReleaseSnapshot(snap);

  // After release, further churn may GC generation-0; the store stays sane.
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(wo, "snap-key" + std::to_string(i), "generation-9").ok());
  }
  db_->WaitForMaintenance();
  ASSERT_TRUE(db_->Get(ro, "snap-key13", &v).ok());
  EXPECT_EQ("generation-9", v);
}

TEST_F(CompactionStressTest, NoStrandedOrMissingTableFiles) {
  WriteOptions wo;
  Random rnd(7);
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 600; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%05u", rnd.Uniform(3000));
      ASSERT_TRUE(db_->Put(wo, key, std::string(40, 'a' + round)).ok());
    }
    db_->WaitForMaintenance();
  }
  // Close cleanly; reopen sweeps obsolete files and recovers the manifest.
  Open();
  db_->WaitForMaintenance();

  // Every table file on disk is either referenced (openable via a scan) or
  // would have been deleted; conversely the scan must not hit missing
  // files. A full scan exercising every level proves both.
  ReadOptions ro;
  std::unique_ptr<Iterator> it(db_->NewIterator(ro));
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    n++;
  }
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  EXPECT_GT(n, 1000);

  // Directory hygiene: no temp files; exactly one CURRENT and it resolves.
  Env* env = Env::Default();
  std::vector<std::string> files;
  ASSERT_TRUE(env->GetChildren(dir_.path() + "/db", &files).ok());
  int temps = 0;
  for (const auto& f : files) {
    uint64_t number;
    FileType type;
    if (ParseFileName(f, &number, &type) && type == kTempFile) {
      temps++;
    }
  }
  EXPECT_EQ(0, temps);
  std::string current;
  ASSERT_TRUE(ReadFileToString(env, dir_.path() + "/db/CURRENT", &current).ok());
  current.pop_back();  // newline
  EXPECT_TRUE(env->FileExists(dir_.path() + "/db/" + current)) << current;
}

TEST_F(CompactionStressTest, DeleteHeavyWorkloadShrinks) {
  WriteOptions wo;
  ReadOptions ro;
  // Insert then delete everything, churn compactions, verify emptiness.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(wo, "victim" + std::to_string(i), std::string(64, 'v')).ok());
  }
  db_->WaitForMaintenance();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Delete(wo, "victim" + std::to_string(i)).ok());
  }
  db_->WaitForMaintenance();
  // Push the tombstones down with more (disjoint) churn.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(wo, "zz-filler" + std::to_string(i), std::string(64, 'f')).ok());
  }
  db_->WaitForMaintenance();

  std::unique_ptr<Iterator> it(db_->NewIterator(ro));
  it->Seek("victim");
  if (it->Valid()) {
    EXPECT_FALSE(it->key().starts_with("victim")) << it->key().ToString();
  }
  std::string v;
  EXPECT_TRUE(db_->Get(ro, "victim1500", &v).IsNotFound());
}

}  // namespace
}  // namespace clsm
