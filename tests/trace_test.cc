// Tests of the operation trace pipeline (src/obs/op_trace.h +
// src/obs/trace_replay.h): the TraceWriter listener records every public
// op in completion order; TraceReader decodes the binary format
// bit-for-bit; SummarizeTrace reports the exact op mix; ReplayTrace
// reproduces the mix and every per-op found/not-found outcome against a
// fresh store of any variant.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/factory.h"
#include "src/core/write_batch.h"
#include "src/obs/op_trace.h"
#include "src/obs/trace_replay.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

std::unique_ptr<DB> OpenFresh(DbVariant variant, Options options, const std::string& dir) {
  DB* raw = nullptr;
  Status s = OpenDb(variant, options, dir, &raw);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return std::unique_ptr<DB>(raw);
}

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "trace-key-%06d", i);
  return buf;
}

// A deterministic self-contained workload (starts from an empty store, so
// a replay from empty reproduces every outcome): misses before puts, hits
// after, deletes turning hits back into misses, RMWs that write and RMWs
// that decline.
struct WorkloadShape {
  uint64_t puts = 0, deletes = 0, gets = 0, writes = 0, rmws = 0;
  uint64_t get_hits = 0, get_misses = 0;
};

WorkloadShape RunMixedWorkload(DB* db) {
  WorkloadShape shape;
  WriteOptions wo;
  ReadOptions ro;
  std::string value;
  for (int i = 0; i < 50; i++) {
    // Miss first: the key does not exist yet.
    Status s = db->Get(ro, Key(i), &value);
    EXPECT_TRUE(s.IsNotFound());
    shape.gets++;
    shape.get_misses++;

    EXPECT_TRUE(db->Put(wo, Key(i), "value-" + std::to_string(i)).ok());
    shape.puts++;

    s = db->Get(ro, Key(i), &value);
    EXPECT_TRUE(s.ok());
    shape.gets++;
    shape.get_hits++;
  }
  for (int i = 0; i < 10; i++) {
    EXPECT_TRUE(db->Delete(wo, Key(i)).ok());
    shape.deletes++;
    Status s = db->Get(ro, Key(i), &value);
    EXPECT_TRUE(s.IsNotFound());
    shape.gets++;
    shape.get_misses++;
  }
  // RMW that writes (append to an existing value) and RMW that declines
  // (put-if-absent observing a present key).
  for (int i = 20; i < 30; i++) {
    bool performed = false;
    EXPECT_TRUE(db->ReadModifyWrite(wo, Key(i),
                                    [](const std::optional<Slice>& cur) {
                                      std::string next = cur ? cur->ToString() : "";
                                      next += "+rmw";
                                      return std::optional<std::string>(next);
                                    },
                                    &performed)
                    .ok());
    EXPECT_TRUE(performed);
    shape.rmws++;
    EXPECT_TRUE(db->ReadModifyWrite(wo, Key(i),
                                    [](const std::optional<Slice>& cur)
                                        -> std::optional<std::string> {
                                      if (cur) {
                                        return std::nullopt;  // present: decline
                                      }
                                      return std::string("absent");
                                    },
                                    &performed)
                    .ok());
    EXPECT_FALSE(performed);
    shape.rmws++;
  }
  // One atomic batch (kWrite records carry no keys; replay skips them).
  WriteBatch batch;
  batch.Put(Key(60), "batch-a");
  batch.Put(Key(61), "batch-b");
  batch.Delete(Key(60));
  EXPECT_TRUE(db->Write(wo, &batch).ok());
  shape.writes++;
  return shape;
}

class TraceRoundTripTest : public ::testing::Test {
 protected:
  TraceRoundTripTest() : dir_("optrace") { trace_path_ = dir_.path() + "/ops.trc"; }

  ScratchDir dir_;
  std::string trace_path_;
};

TEST_F(TraceRoundTripTest, WriterReaderRoundTripAndExactSummary) {
  auto writer = std::make_shared<TraceWriter>(trace_path_);
  WorkloadShape shape;
  {
    Options options;
    options.listeners.push_back(writer);
    std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir_.path() + "/db");
    shape = RunMixedWorkload(db.get());
  }
  ASSERT_TRUE(writer->Finish().ok());
  const uint64_t expected_records =
      shape.puts + shape.deletes + shape.gets + shape.writes + shape.rmws;
  EXPECT_EQ(writer->records_written(), expected_records);

  // Decode every record; the workload is single-threaded so completion
  // order is program order and we can walk the two in lockstep.
  TraceReader reader;
  ASSERT_TRUE(reader.Open(Env::Default(), trace_path_).ok());
  TraceRecord rec;
  uint64_t n = 0, last_ts = 0;
  WorkloadShape decoded;
  while (reader.Next(&rec)) {
    n++;
    EXPECT_GE(rec.ts_micros, last_ts) << "timestamps must be monotone";
    last_ts = rec.ts_micros;
    EXPECT_EQ(rec.thread_id, 0u) << "single recording thread gets dense id 0";
    switch (rec.op) {
      case DbOpType::kPut:
        decoded.puts++;
        EXPECT_EQ(rec.outcome, OpOutcome::kOk);
        EXPECT_GT(rec.value_size, 0u);
        break;
      case DbOpType::kDelete:
        decoded.deletes++;
        break;
      case DbOpType::kGet:
        decoded.gets++;
        if (rec.outcome == OpOutcome::kOk) {
          decoded.get_hits++;
          EXPECT_GT(rec.value_size, 0u);
        } else {
          EXPECT_EQ(rec.outcome, OpOutcome::kNotFound);
          decoded.get_misses++;
        }
        break;
      case DbOpType::kWrite:
        decoded.writes++;
        EXPECT_TRUE(rec.key.empty()) << "batch records carry no key";
        EXPECT_GT(rec.value_size, 0u) << "batch records carry the payload size";
        break;
      case DbOpType::kRmw:
        decoded.rmws++;
        break;
    }
    if (rec.op != DbOpType::kWrite) {
      EXPECT_EQ(rec.key.compare(0, 10, "trace-key-"), 0) << rec.key;
    }
  }
  ASSERT_TRUE(reader.status().ok()) << reader.status().ToString();
  EXPECT_EQ(n, expected_records);
  EXPECT_EQ(decoded.puts, shape.puts);
  EXPECT_EQ(decoded.deletes, shape.deletes);
  EXPECT_EQ(decoded.gets, shape.gets);
  EXPECT_EQ(decoded.get_hits, shape.get_hits);
  EXPECT_EQ(decoded.get_misses, shape.get_misses);
  EXPECT_EQ(decoded.writes, shape.writes);
  EXPECT_EQ(decoded.rmws, shape.rmws);

  TraceSummary summary;
  ASSERT_TRUE(SummarizeTrace(Env::Default(), trace_path_, &summary).ok());
  EXPECT_EQ(summary.records, expected_records);
  EXPECT_EQ(summary.ops_by_type[static_cast<int>(DbOpType::kPut)], shape.puts);
  EXPECT_EQ(summary.ops_by_type[static_cast<int>(DbOpType::kDelete)], shape.deletes);
  EXPECT_EQ(summary.ops_by_type[static_cast<int>(DbOpType::kGet)], shape.gets);
  EXPECT_EQ(summary.ops_by_type[static_cast<int>(DbOpType::kWrite)], shape.writes);
  EXPECT_EQ(summary.ops_by_type[static_cast<int>(DbOpType::kRmw)], shape.rmws);
  EXPECT_EQ(summary.threads, 1u);
  EXPECT_GT(summary.distinct_keys, 0u);
  EXPECT_FALSE(summary.ToString().empty());

  // The dump format renders one JSON object per record.
  std::string json = TraceRecordToJson(rec);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"op\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\""), std::string::npos);
}

TEST_F(TraceRoundTripTest, ReplayReproducesMixAndOutcomes) {
  auto writer = std::make_shared<TraceWriter>(trace_path_);
  WorkloadShape shape;
  {
    Options options;
    options.listeners.push_back(writer);
    std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir_.path() + "/rec");
    shape = RunMixedWorkload(db.get());
  }
  ASSERT_TRUE(writer->Finish().ok());

  // Replay against a fresh store of every variant the factory offers: the
  // trace is the portable workload artifact, not tied to the recorder.
  for (DbVariant variant : {DbVariant::kClsm, DbVariant::kLevelDb}) {
    SCOPED_TRACE(VariantName(variant));
    std::unique_ptr<DB> db = OpenFresh(
        variant, Options(), dir_.path() + "/replay-" + std::string(VariantName(variant)));
    ReplayOptions opts;  // compressed timing, verify outcomes
    ReplayResult result;
    ASSERT_TRUE(ReplayTrace(db.get(), Env::Default(), trace_path_, opts, &result).ok());
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.outcome_mismatches, 0u)
        << "replayed found/not-found must match the recording bit-for-bit";
    EXPECT_EQ(result.ops_by_type[static_cast<int>(DbOpType::kPut)], shape.puts);
    EXPECT_EQ(result.ops_by_type[static_cast<int>(DbOpType::kDelete)], shape.deletes);
    EXPECT_EQ(result.ops_by_type[static_cast<int>(DbOpType::kGet)], shape.gets);
    EXPECT_EQ(result.ops_by_type[static_cast<int>(DbOpType::kRmw)], shape.rmws);
    EXPECT_EQ(result.skipped_writes, shape.writes);
    EXPECT_EQ(result.ops, shape.puts + shape.deletes + shape.gets + shape.rmws);
    EXPECT_EQ(static_cast<uint64_t>(result.latency_micros.Num()), result.ops);
  }
}

TEST_F(TraceRoundTripTest, MultiThreadedRecordingGetsDenseThreadIds) {
  auto writer = std::make_shared<TraceWriter>(trace_path_);
  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 200;
  {
    Options options;
    options.listeners.push_back(writer);
    std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir_.path() + "/mt");
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++) {
      workers.emplace_back([&db, t] {
        WriteOptions wo;
        char key[32];
        for (int i = 0; i < kOpsPerThread; i++) {
          snprintf(key, sizeof(key), "t%d-%06d", t, i);
          ASSERT_TRUE(db->Put(wo, key, "v").ok());
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_EQ(writer->records_written(), static_cast<uint64_t>(kThreads * kOpsPerThread));

  TraceSummary summary;
  ASSERT_TRUE(SummarizeTrace(Env::Default(), trace_path_, &summary).ok());
  EXPECT_EQ(summary.records, static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(summary.threads, static_cast<uint32_t>(kThreads));

  // Dense ids: exactly [0, kThreads).
  TraceReader reader;
  ASSERT_TRUE(reader.Open(Env::Default(), trace_path_).ok());
  TraceRecord rec;
  std::map<uint32_t, uint64_t> per_thread;
  while (reader.Next(&rec)) {
    per_thread[rec.thread_id]++;
  }
  ASSERT_TRUE(reader.status().ok());
  ASSERT_EQ(per_thread.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, count] : per_thread) {
    EXPECT_LT(tid, static_cast<uint32_t>(kThreads));
    EXPECT_EQ(count, static_cast<uint64_t>(kOpsPerThread));
  }
}

TEST_F(TraceRoundTripTest, ReaderRejectsCorruptMagic) {
  ASSERT_TRUE(WriteStringToFileSync(Env::Default(), "NOTATRACE-at-all", trace_path_).ok());
  TraceReader reader;
  Status s = reader.Open(Env::Default(), trace_path_);
  EXPECT_FALSE(s.ok());
}

TEST_F(TraceRoundTripTest, FinishIsIdempotentAndDropsLateRecords) {
  auto writer = std::make_shared<TraceWriter>(trace_path_);
  OperationInfo info;
  info.op = DbOpType::kPut;
  info.key = Slice("k");
  info.value_size = 1;
  writer->OnOperation(info);
  ASSERT_TRUE(writer->Finish().ok());
  ASSERT_TRUE(writer->Finish().ok());
  writer->OnOperation(info);  // after Finish: dropped, not crashed
  EXPECT_EQ(writer->records_written(), 1u);
}

}  // namespace
}  // namespace clsm
