// Tests of the periodic StatsReporter (src/obs/stats_reporter.h): the
// dump actually fires, period 0 spawns nothing, Stop() returns promptly
// mid-interval, and the deltas mode (reset_fn) resets the counters after
// every dump. Also covers the DB-level reset surface the reporter builds
// on: DB::ResetStats and the "clsm.stats.reset" property.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "src/baselines/factory.h"
#include "src/obs/stats_reporter.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

using Clock = std::chrono::steady_clock;

TEST(StatsReporterTest, PeriodicDumpFires) {
  std::atomic<uint64_t> samples{0};
  std::atomic<uint64_t> renders{0};
  StatsReporter reporter(
      "test", /*period_sec=*/1,
      [&] {
        samples++;
        return ReporterCounters{};
      },
      [&] {
        renders++;
        return std::string("{}");
      });
  // One initial baseline sample happens at construction; the dump itself
  // lands after the first period. Poll generously (CI machines stall).
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (reporter.NumDumps() == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(reporter.NumDumps(), 1u);
  reporter.Stop();
  EXPECT_GE(samples.load(), 2u);  // baseline + at least one interval
  EXPECT_GE(renders.load(), 1u);
}

TEST(StatsReporterTest, PeriodZeroSpawnsNothing) {
  std::atomic<uint64_t> samples{0};
  {
    StatsReporter reporter(
        "test", /*period_sec=*/0,
        [&] {
          samples++;
          return ReporterCounters{};
        },
        [] { return std::string("{}"); });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(reporter.NumDumps(), 0u);
    reporter.Stop();  // must be a safe no-op
  }
  EXPECT_EQ(samples.load(), 0u) << "disabled reporter must not touch its callbacks";
}

TEST(StatsReporterTest, StopReturnsPromptlyMidInterval) {
  StatsReporter reporter(
      "test", /*period_sec=*/600, [] { return ReporterCounters{}; },
      [] { return std::string("{}"); });
  // Give the thread a moment to enter its interval wait, then interrupt.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = Clock::now();
  reporter.Stop();
  const auto elapsed = Clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "Stop() must not wait out the interval";
  EXPECT_EQ(reporter.NumDumps(), 0u);
  reporter.Stop();  // idempotent
}

TEST(StatsReporterTest, ResetFnRunsAfterEveryDumpAndResamples) {
  std::atomic<uint64_t> live_writes{0};
  std::atomic<uint64_t> resets{0};
  std::atomic<uint64_t> baseline_after_reset{~0ull};
  StatsReporter reporter(
      "test", /*period_sec=*/1,
      [&] {
        ReporterCounters c;
        c.writes = live_writes.load();
        return c;
      },
      [] { return std::string("{}"); },
      [&] {
        resets++;
        live_writes.store(0);  // the deltas contract: counters restart
        baseline_after_reset.store(0);
      });
  live_writes.store(1000);
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (reporter.NumDumps() == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  reporter.Stop();
  ASSERT_GE(reporter.NumDumps(), 1u);
  EXPECT_EQ(resets.load(), reporter.NumDumps());
  EXPECT_EQ(baseline_after_reset.load(), 0u);
}

// ---------------------------------------------------------------------------
// The DB-level reset surface the deltas mode drives.
// ---------------------------------------------------------------------------

class ResetStatsTest : public ::testing::TestWithParam<DbVariant> {};

TEST_P(ResetStatsTest, ResetClearsCountersAndLatencies) {
  ScratchDir dir("reset");
  DB* raw = nullptr;
  ASSERT_TRUE(OpenDb(GetParam(), Options(), dir.path() + "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  std::string value;
  for (int i = 0; i < 25; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
    db->Get(ReadOptions(), "k" + std::to_string(i), &value);
  }
  std::string stats = db->GetProperty("clsm.stats.json");
  EXPECT_NE(stats.find("\"puts_total\":25"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"gets_total\":25"), std::string::npos) << stats;

  db->ResetStats();
  stats = db->GetProperty("clsm.stats.json");
  EXPECT_NE(stats.find("\"puts_total\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"gets_total\":0"), std::string::npos) << stats;

  // Post-reset activity accumulates from zero — reset is not a latch.
  ASSERT_TRUE(db->Put(WriteOptions(), "after", "v").ok());
  stats = db->GetProperty("clsm.stats.json");
  EXPECT_NE(stats.find("\"puts_total\":1"), std::string::npos) << stats;
}

TEST_P(ResetStatsTest, ResetPropertyIsAnAlias) {
  ScratchDir dir("resetprop");
  DB* raw = nullptr;
  ASSERT_TRUE(OpenDb(GetParam(), Options(), dir.path() + "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
  EXPECT_EQ(db->GetProperty("clsm.stats.reset"), "OK");
  const std::string stats = db->GetProperty("clsm.stats.json");
  EXPECT_NE(stats.find("\"puts_total\":0"), std::string::npos) << stats;
}

INSTANTIATE_TEST_SUITE_P(Variants, ResetStatsTest,
                         ::testing::Values(DbVariant::kClsm, DbVariant::kLevelDb),
                         [](const ::testing::TestParamInfo<DbVariant>& info) {
                           return std::string(VariantName(info.param));
                         });

// End-to-end: a DB opened with stats_dump_period_sec + stats_dump_deltas
// runs its reporter in deltas mode and shuts down cleanly mid-interval.
TEST(StatsReporterTest, DbIntegrationDeltasModeClosesCleanly) {
  ScratchDir dir("reporter-db");
  Options options;
  options.stats_dump_period_sec = 1;
  options.stats_dump_deltas = true;
  DB* raw = nullptr;
  ASSERT_TRUE(OpenDb(DbVariant::kClsm, options, dir.path() + "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  const auto deadline = Clock::now() + std::chrono::milliseconds(2500);
  int i = 0;
  while (Clock::now() < deadline) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i++), "v").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // If the reporter's reset ran, the cumulative counter is already below
  // the true put count. Either way the close below must not hang or race
  // the reporter thread (run under TSan in CI).
  db.reset();
}

}  // namespace
}  // namespace clsm
