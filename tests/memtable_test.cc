#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/lsm/memtable.h"

namespace clsm {
namespace {

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {}
  ~MemTableTest() override { mem_->Unref(); }

  // Convenience wrapper: returns (found, status, value, seq).
  struct GetResult {
    bool found;
    Status status;
    std::string value;
    SequenceNumber seq;
  };
  GetResult Get(const Slice& key, SequenceNumber snapshot_seq) {
    GetResult r{false, Status::OK(), "", 0};
    LookupKey lkey(key, snapshot_seq);
    r.found = mem_->Get(lkey, &r.value, &r.status, &r.seq);
    return r;
  }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, EmptyGet) {
  GetResult r = Get("missing", kMaxSequenceNumber);
  EXPECT_FALSE(r.found);
}

TEST_F(MemTableTest, AddThenGet) {
  mem_->Add(1, kTypeValue, "key1", "value1");
  GetResult r = Get("key1", kMaxSequenceNumber);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ("value1", r.value);
  EXPECT_EQ(1u, r.seq);
}

TEST_F(MemTableTest, MultiVersionReadsAtSnapshot) {
  mem_->Add(10, kTypeValue, "k", "v10");
  mem_->Add(20, kTypeValue, "k", "v20");
  mem_->Add(30, kTypeValue, "k", "v30");

  // A read at sequence s sees the newest version with ts <= s (§3.2).
  EXPECT_EQ("v10", Get("k", 10).value);
  EXPECT_EQ("v10", Get("k", 19).value);
  EXPECT_EQ("v20", Get("k", 20).value);
  EXPECT_EQ("v30", Get("k", 1000).value);
  EXPECT_FALSE(Get("k", 9).found);
}

TEST_F(MemTableTest, DeletionMarkerReturnsNotFound) {
  mem_->Add(1, kTypeValue, "k", "v");
  mem_->Add(2, kTypeDeletion, "k", "");
  GetResult r = Get("k", kMaxSequenceNumber);
  ASSERT_TRUE(r.found);  // found the marker
  EXPECT_TRUE(r.status.IsNotFound());
  // The older snapshot still sees the value.
  EXPECT_EQ("v", Get("k", 1).value);
}

TEST_F(MemTableTest, SimilarKeysDoNotAlias) {
  mem_->Add(1, kTypeValue, "abc", "1");
  mem_->Add(2, kTypeValue, "abcd", "2");
  mem_->Add(3, kTypeValue, "ab", "3");
  EXPECT_EQ("1", Get("abc", kMaxSequenceNumber).value);
  EXPECT_EQ("2", Get("abcd", kMaxSequenceNumber).value);
  EXPECT_EQ("3", Get("ab", kMaxSequenceNumber).value);
  EXPECT_FALSE(Get("abcde", kMaxSequenceNumber).found);
}

TEST_F(MemTableTest, IteratorYieldsInternalOrder) {
  mem_->Add(5, kTypeValue, "b", "b5");
  mem_->Add(6, kTypeValue, "a", "a6");
  mem_->Add(7, kTypeValue, "b", "b7");

  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  iter->SeekToFirst();
  // Order: user key asc, then timestamp desc.
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", ExtractUserKey(iter->key()).ToString());
  EXPECT_EQ(6u, ExtractSequence(iter->key()));
  iter->Next();
  EXPECT_EQ("b", ExtractUserKey(iter->key()).ToString());
  EXPECT_EQ(7u, ExtractSequence(iter->key()));
  EXPECT_EQ("b7", iter->value().ToString());
  iter->Next();
  EXPECT_EQ(5u, ExtractSequence(iter->key()));
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(MemTableTest, AddIfNoConflictSucceedsWhenUnchanged) {
  mem_->Add(10, kTypeValue, "k", "v10");
  // Read saw ts=10; no newer version: insert at 20 succeeds.
  EXPECT_TRUE(mem_->AddIfNoConflict(20, kTypeValue, "k", "v20", 10));
  EXPECT_EQ("v20", Get("k", kMaxSequenceNumber).value);
}

TEST_F(MemTableTest, AddIfNoConflictDetectsIntermediateVersion) {
  mem_->Add(10, kTypeValue, "k", "v10");
  mem_->Add(15, kTypeValue, "k", "v15");  // landed after our read at ts=10
  EXPECT_FALSE(mem_->AddIfNoConflict(20, kTypeValue, "k", "v20", 10));
  EXPECT_EQ("v15", Get("k", kMaxSequenceNumber).value);
}

TEST_F(MemTableTest, AddIfNoConflictDetectsNewerThanOwnTs) {
  // Algorithm 3 line 6: a version even newer than our own timestamp exists
  // (another writer got ts=30 and already inserted).
  mem_->Add(10, kTypeValue, "k", "v10");
  mem_->Add(30, kTypeValue, "k", "v30");
  EXPECT_FALSE(mem_->AddIfNoConflict(20, kTypeValue, "k", "v20", 10));
  EXPECT_EQ("v30", Get("k", kMaxSequenceNumber).value);
}

TEST_F(MemTableTest, AddIfNoConflictOnAbsentKey) {
  // read_seq = 0 encodes "key was absent at read time".
  EXPECT_TRUE(mem_->AddIfNoConflict(5, kTypeValue, "fresh", "v", 0));
  // A second put-if-absent with stale read must now conflict.
  EXPECT_FALSE(mem_->AddIfNoConflict(6, kTypeValue, "fresh", "v2", 0));
  EXPECT_EQ("v", Get("fresh", kMaxSequenceNumber).value);
}

TEST_F(MemTableTest, AddIfNoConflictDifferentKeysIndependent) {
  mem_->Add(10, kTypeValue, "aaa", "v");
  mem_->Add(11, kTypeValue, "ccc", "v");
  // A conflict on neighbors of different user keys must not be reported.
  EXPECT_TRUE(mem_->AddIfNoConflict(20, kTypeValue, "bbb", "vb", 0));
}

TEST_F(MemTableTest, ConcurrentAddsAllVisible) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> seq{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        uint64_t s = seq.fetch_add(1) + 1;
        std::string key = "key-" + std::to_string(t) + "-" + std::to_string(i);
        mem_->Add(s, kTypeValue, key, "v");
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(static_cast<size_t>(kThreads * kPerThread), mem_->NumEntries());
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 117) {
      std::string key = "key-" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE(Get(key, kMaxSequenceNumber).found) << key;
    }
  }
}

// Property sweep: counter increments via AddIfNoConflict from many threads
// must never lose an update (the essence of Algorithm 3).
TEST_F(MemTableTest, ConcurrentConditionalInsertLosesNoUpdate) {
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 2500;
  std::atomic<uint64_t> ts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; i++) {
        while (true) {
          GetResult r{false, Status::OK(), "", 0};
          LookupKey lkey("counter", kMaxSequenceNumber);
          r.found = mem_->Get(lkey, &r.value, &r.status, &r.seq);
          int current = r.found ? std::stoi(r.value) : 0;
          uint64_t my_ts = ts.fetch_add(1) + 1;
          if (mem_->AddIfNoConflict(my_ts, kTypeValue, "counter",
                                    std::to_string(current + 1), r.found ? r.seq : 0)) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  GetResult r = Get("counter", kMaxSequenceNumber);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(kThreads * kIncrementsPerThread, std::stoi(r.value));
}

}  // namespace
}  // namespace clsm
