// Failure injection: disk errors during flush/compaction/logging must
// surface as status errors (or background errors halting maintenance), and
// must never corrupt data that was already durable.
#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/factory.h"
#include "src/core/clsm_db.h"
#include "src/util/fault_env.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : dir_("fault"), fault_env_(Env::Default()) {
    options_.env = &fault_env_;
    options_.write_buffer_size = 128 * 1024;
  }

  std::unique_ptr<DB> Open() {
    DB* raw = nullptr;
    Status s = ClsmDb::Open(options_, dir_.path() + "/db", &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(raw);
  }

  ScratchDir dir_;
  FaultInjectionEnv fault_env_;
  Options options_;
};

TEST_F(FaultTest, OpenFailsCleanlyWhenDirectoryUnwritable) {
  fault_env_.FailNewFiles(true);
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options_, dir_.path() + "/db2", &raw);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, raw);
  fault_env_.Heal();
}

TEST_F(FaultTest, DataSurvivesTransientFlushFailures) {
  auto db = Open();
  WriteOptions wo;
  ReadOptions ro;

  // Write some baseline data and make it durable before arming the faults:
  // a synchronous put is a durability barrier for everything before it
  // (asynchronously logged records still in flight are legitimately lost
  // when the disk starts failing — that is the async-logging contract).
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put(wo, "safe" + std::to_string(i), "v").ok());
  }
  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db->Put(sync_wo, "safe-barrier", "1").ok());
  db->WaitForMaintenance();

  // Inject write failures, then produce churn that triggers flushes and
  // compactions in the background. The maintenance path may record a
  // background error; reads of already-written data must keep succeeding
  // and the process must not crash.
  fault_env_.FailAfterWrites(100);
  for (int i = 0; i < 20000; i++) {
    db->Put(wo, "churn" + std::to_string(i), std::string(32, 'c'));
  }
  // Give maintenance a chance to hit the fault.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GT(fault_env_.write_failures(), 0u) << "fault was never exercised";

  std::string v;
  for (int i = 0; i < 2000; i += 111) {
    EXPECT_TRUE(db->Get(ro, "safe" + std::to_string(i), &v).ok()) << i;
  }

  // Background errors latch (as in LevelDB): once maintenance has failed,
  // writers either succeed (if the pipeline still had room) or fail with
  // the latched error — they must never hang. Reads always keep working.
  fault_env_.Heal();
  Status put_status = db->Put(wo, "after-heal", "v");
  if (put_status.ok()) {
    EXPECT_TRUE(db->Get(ro, "after-heal", &v).ok());
  } else {
    EXPECT_TRUE(put_status.IsIOError()) << put_status.ToString();
  }

  // Reopening clears the latched error and fully restores service.
  db.reset();
  db = Open();
  EXPECT_TRUE(db->Put(wo, "fresh-after-reopen", "v").ok());
  EXPECT_TRUE(db->Get(ro, "fresh-after-reopen", &v).ok());
  for (int i = 0; i < 2000; i += 111) {
    EXPECT_TRUE(db->Get(ro, "safe" + std::to_string(i), &v).ok()) << i;
  }
}

TEST_F(FaultTest, SyncWriteReportsInjectedError) {
  auto db = Open();
  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db->Put(sync_wo, "ok", "v").ok());

  fault_env_.FailAfterWrites(1);
  // The failing sync surfaces on some subsequent synchronous write (the
  // logger latches its first error).
  Status s;
  for (int i = 0; i < 10 && s.ok(); i++) {
    s = db->Put(sync_wo, "failing" + std::to_string(i), "v");
  }
  EXPECT_FALSE(s.ok()) << "injected WAL failure was swallowed";
  fault_env_.Heal();
}

TEST_F(FaultTest, RecoveryAfterFaultyRun) {
  {
    auto db = Open();
    WriteOptions wo;
    for (int i = 0; i < 5000; i++) {
      ASSERT_TRUE(db->Put(wo, "pre" + std::to_string(i), "v").ok());
    }
    WriteOptions sync_wo;
    sync_wo.sync = true;
    ASSERT_TRUE(db->Put(sync_wo, "pre-barrier", "1").ok());
    db->WaitForMaintenance();
    fault_env_.FailAfterWrites(50);
    for (int i = 0; i < 5000; i++) {
      db->Put(wo, "post" + std::to_string(i), "v");
    }
    fault_env_.Heal();
    // Clean close after healing.
  }
  auto db = Open();
  ReadOptions ro;
  std::string v;
  for (int i = 0; i < 5000; i += 501) {
    EXPECT_TRUE(db->Get(ro, "pre" + std::to_string(i), &v).ok()) << i;
  }
}

}  // namespace
}  // namespace clsm
