#include <gtest/gtest.h>

#include "src/lsm/dbformat.h"
#include "src/lsm/filename.h"
#include "src/lsm/version_edit.h"
#include "src/lsm/version_set.h"

namespace clsm {
namespace {

TEST(DbFormatTest, InternalKeyEncodingRoundTrip) {
  ParsedInternalKey k("user-key", 777, kTypeValue);
  std::string encoded;
  AppendInternalKey(&encoded, k);
  EXPECT_EQ(k.user_key.size() + 8, encoded.size());

  ParsedInternalKey decoded;
  ASSERT_TRUE(ParseInternalKey(encoded, &decoded));
  EXPECT_EQ("user-key", decoded.user_key.ToString());
  EXPECT_EQ(777u, decoded.sequence);
  EXPECT_EQ(kTypeValue, decoded.type);

  EXPECT_EQ("user-key", ExtractUserKey(encoded).ToString());
  EXPECT_EQ(777u, ExtractSequence(encoded));
}

TEST(DbFormatTest, ParseRejectsMalformed) {
  ParsedInternalKey out;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &out));
  // Bad type tag.
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey("k", 1, kTypeValue));
  encoded[encoded.size() - 8] = 0x7f;
  EXPECT_FALSE(ParseInternalKey(encoded, &out));
}

TEST(DbFormatTest, InternalKeyOrdering) {
  InternalKeyComparator icmp(BytewiseComparator());
  auto ikey = [](const std::string& k, SequenceNumber s) {
    std::string r;
    AppendInternalKey(&r, ParsedInternalKey(k, s, kTypeValue));
    return r;
  };
  // User key ascending dominates.
  EXPECT_LT(icmp.Compare(ikey("a", 1), ikey("b", 100)), 0);
  // Same user key: higher sequence sorts FIRST (newest-first).
  EXPECT_LT(icmp.Compare(ikey("a", 100), ikey("a", 1)), 0);
  EXPECT_GT(icmp.Compare(ikey("a", 1), ikey("a", 100)), 0);
  EXPECT_EQ(icmp.Compare(ikey("a", 5), ikey("a", 5)), 0);
}

TEST(DbFormatTest, LookupKeyViews) {
  LookupKey lkey("the-user-key", 42);
  EXPECT_EQ("the-user-key", lkey.user_key().ToString());
  Slice ik = lkey.internal_key();
  EXPECT_EQ("the-user-key", ExtractUserKey(ik).ToString());
  EXPECT_EQ(42u, ExtractSequence(ik));
  // Memtable key = varint length prefix + internal key.
  Slice mk = lkey.memtable_key();
  uint32_t len;
  Slice tmp = mk;
  ASSERT_TRUE(GetVarint32(&tmp, &len));
  EXPECT_EQ(ik.size(), len);

  // Long keys take the heap path.
  std::string long_key(500, 'q');
  LookupKey lk2(long_key, 7);
  EXPECT_EQ(long_key, lk2.user_key().ToString());
}

TEST(VersionEditTest, EncodeDecodeRoundTrip) {
  VersionEdit edit;
  edit.SetComparatorName("clsm.BytewiseComparator");
  edit.SetLogNumber(42);
  edit.SetNextFile(100);
  edit.SetLastSequence(999999);
  edit.SetCompactPointer(2, InternalKey("pivot", 55, kTypeValue));
  edit.AddFile(1, 10, 2048, InternalKey("a", 1, kTypeValue), InternalKey("m", 2, kTypeValue));
  edit.AddFile(3, 11, 4096, InternalKey("n", 3, kTypeValue), InternalKey("z", 4, kTypeValue));
  edit.RemoveFile(2, 5);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());

  std::string encoded2;
  decoded.EncodeTo(&encoded2);
  EXPECT_EQ(encoded, encoded2);
  EXPECT_NE(decoded.DebugString().find("LogNumber: 42"), std::string::npos);
  EXPECT_NE(decoded.DebugString().find("AddFile: L1 #10"), std::string::npos);
  EXPECT_NE(decoded.DebugString().find("RemoveFile: L2 #5"), std::string::npos);
}

TEST(VersionEditTest, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\x09garbage-tag")).ok());
}

TEST(FileNameTest, ConstructionAndParsing) {
  struct Case {
    std::string fname;
    uint64_t number;
    FileType type;
  };
  Case cases[] = {
      {"000003.log", 3, kLogFile},
      {"000100.sst", 100, kTableFile},
      {"MANIFEST-000002", 2, kDescriptorFile},
      {"CURRENT", 0, kCurrentFile},
      {"LOCK", 0, kDBLockFile},
      {"000077.dbtmp", 77, kTempFile},
  };
  for (const Case& c : cases) {
    uint64_t number;
    FileType type;
    ASSERT_TRUE(ParseFileName(c.fname, &number, &type)) << c.fname;
    EXPECT_EQ(c.number, number) << c.fname;
    EXPECT_EQ(c.type, type) << c.fname;
  }
  for (const char* bad : {"", "foo", "foo-dx-100.log", ".log", "manifest-3", "100", "100.unknown"}) {
    uint64_t number;
    FileType type;
    EXPECT_FALSE(ParseFileName(bad, &number, &type)) << bad;
  }

  EXPECT_EQ("/db/000007.log", LogFileName("/db", 7));
  EXPECT_EQ("/db/000008.sst", TableFileName("/db", 8));
  EXPECT_EQ("/db/MANIFEST-000009", DescriptorFileName("/db", 9));
  EXPECT_EQ("/db/CURRENT", CurrentFileName("/db"));
}

TEST(FindFileTest, BinarySearchSemantics) {
  InternalKeyComparator icmp(BytewiseComparator());
  std::vector<FileRef> files;
  auto add = [&](const std::string& smallest, const std::string& largest) {
    auto f = std::make_shared<FileMetaData>();
    f->number = files.size() + 1;
    f->smallest = InternalKey(smallest, 100, kTypeValue);
    f->largest = InternalKey(largest, 100, kTypeValue);
    files.push_back(f);
  };
  auto probe = [&](const std::string& key) {
    InternalKey target(key, kMaxSequenceNumber, kValueTypeForSeek);
    return FindFile(icmp, files, target.Encode());
  };

  EXPECT_EQ(0, probe("foo"));  // empty set

  add("c", "e");
  add("g", "i");
  add("m", "p");
  EXPECT_EQ(0, probe("a"));
  EXPECT_EQ(0, probe("c"));
  EXPECT_EQ(0, probe("e"));
  EXPECT_EQ(1, probe("f"));
  EXPECT_EQ(1, probe("i"));
  EXPECT_EQ(2, probe("j"));
  EXPECT_EQ(2, probe("p"));
  EXPECT_EQ(3, probe("q"));

  // Overlap queries.
  Slice small("f"), large("f2");
  EXPECT_FALSE(SomeFileOverlapsRange(icmp, true, files, &small, &large));
  Slice small2("d"), large2("h");
  EXPECT_TRUE(SomeFileOverlapsRange(icmp, true, files, &small2, &large2));
  // Unbounded ends.
  EXPECT_TRUE(SomeFileOverlapsRange(icmp, true, files, nullptr, &large2));
  Slice before("a");
  EXPECT_FALSE(SomeFileOverlapsRange(icmp, true, files, nullptr, &before));
}

}  // namespace
}  // namespace clsm
