// Tests of the thread-local PerfContext (src/obs/perf_context.h) and its
// wiring through the DB implementations:
//  * kDisabled is genuinely zero work — no probe touches the context;
//  * kEnableCounts populates the search counters on both the memtable and
//    the disk path, without any clock reads (timers stay 0);
//  * kEnableTimers: a Put's contiguous phase timers (throttle + lock_getts
//    + mem_insert + wal_append) sum to the measured total within 10%
//    (averaged over many puts — the acceptance bound of the PR);
//  * op entry resets the previous op's numbers;
//  * GetProperty("clsm.perf.json") renders the calling thread's snapshot.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/baselines/factory.h"
#include "src/obs/perf_context.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

std::unique_ptr<DB> OpenFresh(DbVariant variant, Options options, const std::string& dir) {
  DB* raw = nullptr;
  Status s = OpenDb(variant, options, dir, &raw);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return std::unique_ptr<DB>(raw);
}

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%08d", i);
  return buf;
}

TEST(PerfContextTest, DisabledTouchesNothing) {
  ScratchDir dir("perf-off");
  Options options;
  options.perf_level = PerfLevel::kDisabled;
  std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir.path() + "/db");
  ASSERT_TRUE(db->Put(WriteOptions(), Key(1), "v").ok());

  // Plant sentinels in this thread's context; ops against a perf-disabled
  // DB must neither reset them nor fire any probe. This is the observable
  // form of the "zero-cost-when-disabled" contract: the only write an op
  // performs is the level publish.
  PerfContext* ctx = GetPerfContext();
  ctx->skiplist_search_nodes = 777;
  ctx->mem_insert_nanos = 888;
  ctx->total_nanos = 999;

  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), Key(1), &value).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), Key(2), "v").ok());

  EXPECT_EQ(ctx->level, PerfLevel::kDisabled);
  EXPECT_EQ(ctx->skiplist_search_nodes, 777u);
  EXPECT_EQ(ctx->mem_insert_nanos, 888u);
  EXPECT_EQ(ctx->total_nanos, 999u);
}

TEST(PerfContextTest, CountsPopulateWithoutTimers) {
  ScratchDir dir("perf-counts");
  Options options;
  options.perf_level = PerfLevel::kEnableCounts;
  std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir.path() + "/db");
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "value").ok());
  }

  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), Key(50), &value).ok());
  PerfContext* ctx = GetPerfContext();
  EXPECT_EQ(ctx->level, PerfLevel::kEnableCounts);
  EXPECT_GE(ctx->memtable_probes, 1u);
  EXPECT_GT(ctx->skiplist_search_nodes, 0u);
  // Counts mode performs no clock reads: every timer is zero.
  EXPECT_EQ(ctx->total_nanos, 0u);
  EXPECT_EQ(ctx->mem_search_nanos, 0u);
  EXPECT_EQ(ctx->disk_search_nanos, 0u);
}

TEST(PerfContextTest, DiskReadCountersAttributeByLevel) {
  ScratchDir dir("perf-disk");
  Options options;
  options.perf_level = PerfLevel::kEnableCounts;
  options.block_cache_size = 0;  // force real block reads
  options.bloom_bits_per_key = 0;
  options.write_buffer_size = 32 * 1024;  // writes below spill to disk
  std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir.path() + "/db");
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), std::string(128, 'v')).ok());
  }
  db->WaitForMaintenance();

  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), Key(123), &value).ok());
  PerfContext* ctx = GetPerfContext();
  uint64_t level_reads = 0;
  for (int l = 0; l < PerfContext::kMaxLevels; l++) {
    level_reads += ctx->table_reads_per_level[l];
  }
  EXPECT_GE(level_reads, 1u) << "flushed key should be served by an SSTable probe";
  EXPECT_GE(ctx->block_reads, 1u);
  EXPECT_GT(ctx->block_read_bytes, 0u);
}

TEST(PerfContextTest, PutPhaseTimersSumToTotalWithinTenPercent) {
  ScratchDir dir("perf-sum");
  Options options;
  options.perf_level = PerfLevel::kEnableTimers;
  std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir.path() + "/db");

  // The write-path phases are contiguous segments of PutInternal, so their
  // sum tracks the op total. A single put is too small to bound tightly
  // (clock granularity); the acceptance criterion is over the aggregate.
  PerfContext* ctx = GetPerfContext();
  uint64_t sum_total = 0, sum_phases = 0;
  constexpr int kPuts = 4000;
  for (int i = 0; i < kPuts; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), std::string(64, 'p')).ok());
    EXPECT_EQ(ctx->level, PerfLevel::kEnableTimers);
    sum_total += ctx->total_nanos;
    sum_phases += ctx->throttle_nanos + ctx->lock_getts_nanos + ctx->mem_insert_nanos +
                  ctx->wal_append_nanos;
  }
  ASSERT_GT(sum_total, 0u);
  const double ratio = static_cast<double>(sum_phases) / static_cast<double>(sum_total);
  EXPECT_GT(ratio, 0.90) << "phases " << sum_phases << " vs total " << sum_total;
  EXPECT_LT(ratio, 1.10) << "phases " << sum_phases << " vs total " << sum_total;
}

TEST(PerfContextTest, OpEntryResetsPreviousOp) {
  ScratchDir dir("perf-reset");
  Options options;
  options.perf_level = PerfLevel::kEnableTimers;
  std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir.path() + "/db");

  ASSERT_TRUE(db->Put(WriteOptions(), Key(1), "v").ok());
  PerfContext* ctx = GetPerfContext();
  EXPECT_GT(ctx->total_nanos, 0u);

  // A Get must describe only itself: the put's write-path timers vanish.
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), Key(1), &value).ok());
  EXPECT_EQ(ctx->mem_insert_nanos, 0u);
  EXPECT_EQ(ctx->wal_append_nanos, 0u);
  EXPECT_GT(ctx->mem_search_nanos, 0u);
}

TEST(PerfContextTest, GetTimersSplitMemAndDisk) {
  ScratchDir dir("perf-get");
  Options options;
  options.perf_level = PerfLevel::kEnableTimers;
  options.write_buffer_size = 32 * 1024;  // spill the key space to disk
  std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir.path() + "/db");
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), std::string(128, 'g')).ok());
  }
  db->WaitForMaintenance();

  // An early key now lives on disk: the memtable probe misses, the disk
  // search pays.
  std::string value;
  PerfContext* ctx = GetPerfContext();
  ASSERT_TRUE(db->Get(ReadOptions(), Key(0), &value).ok());
  EXPECT_GT(ctx->mem_search_nanos, 0u);
  EXPECT_GT(ctx->disk_search_nanos, 0u);
  EXPECT_GT(ctx->total_nanos, 0u);
}

TEST(PerfContextTest, PerfJsonPropertyRendersThisThreadsSnapshot) {
  ScratchDir dir("perf-json");
  Options options;
  options.perf_level = PerfLevel::kEnableTimers;
  std::unique_ptr<DB> db = OpenFresh(DbVariant::kClsm, options, dir.path() + "/db");
  ASSERT_TRUE(db->Put(WriteOptions(), Key(1), "v").ok());

  std::string json = db->GetProperty("clsm.perf.json");
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"level\":\"counts+timers\""), std::string::npos) << json;
  for (const char* key :
       {"\"counters\"", "\"skiplist_search_nodes\"", "\"memtable_probes\"",
        "\"table_reads_per_level\"", "\"block_reads\"", "\"block_read_bytes\"",
        "\"block_cache_hits\"", "\"bloom_useful\"", "\"timers_nanos\"", "\"total\"",
        "\"throttle\"", "\"memtable_roll_wait\"", "\"l0_slowdown_sleep\"", "\"lock_getts\"",
        "\"shared_lock_wait\"", "\"mem_insert\"", "\"wal_append\"", "\"mem_search\"",
        "\"disk_search\"", "\"crc_verify\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
  // The put populated the write-path timers; they render as nonzero.
  EXPECT_EQ(json.find("\"total\":0,"), std::string::npos) << json;
}

// The baseline chassis feeds the same thread-local context (head-of-queue
// attribution for its group commit); at minimum a Get attributes search
// work and the property renders.
TEST(PerfContextTest, BaselineChassisPopulatesContext) {
  ScratchDir dir("perf-base");
  Options options;
  options.perf_level = PerfLevel::kEnableTimers;
  std::unique_ptr<DB> db = OpenFresh(DbVariant::kLevelDb, options, dir.path() + "/db");
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "value").ok());
  }
  PerfContext* ctx = GetPerfContext();
  // This thread is the sole writer, hence always the queue head: its own
  // batch's memtable/WAL work is attributed.
  EXPECT_GT(ctx->total_nanos, 0u);
  EXPECT_GT(ctx->mem_insert_nanos, 0u);

  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), Key(3), &value).ok());
  EXPECT_GE(ctx->memtable_probes, 1u);
  EXPECT_GT(ctx->mem_search_nanos, 0u);
  EXPECT_NE(db->GetProperty("clsm.perf.json").find("counts+timers"), std::string::npos);
}

// Two DBs at different levels on the same thread: each op runs at the
// level of the DB that executes it (the level publish at op entry).
TEST(PerfContextTest, LevelFollowsTheExecutingDb) {
  ScratchDir dir("perf-two");
  Options on;
  on.perf_level = PerfLevel::kEnableCounts;
  Options off;
  off.perf_level = PerfLevel::kDisabled;
  std::unique_ptr<DB> db_on = OpenFresh(DbVariant::kClsm, on, dir.path() + "/on");
  std::unique_ptr<DB> db_off = OpenFresh(DbVariant::kClsm, off, dir.path() + "/off");

  ASSERT_TRUE(db_on->Put(WriteOptions(), "k", "v").ok());
  EXPECT_EQ(GetPerfContext()->level, PerfLevel::kEnableCounts);
  ASSERT_TRUE(db_off->Put(WriteOptions(), "k", "v").ok());
  EXPECT_EQ(GetPerfContext()->level, PerfLevel::kDisabled);
}

}  // namespace
}  // namespace clsm
