// Crash recovery: a child process writes and dies without a clean close
// (simulating the paper's crash model for asynchronous logging, §2.3/§4);
// the parent reopens and checks what survived. Synchronously logged writes
// must always survive; asynchronously logged ones may lose only a recent
// suffix, never the middle, and the recovered state must be a consistent
// timestamp-ordered prefix-closed view.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <memory>

#include "src/baselines/factory.h"
#include "src/core/write_batch.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class RecoveryTest : public ::testing::TestWithParam<DbVariant> {
 protected:
  RecoveryTest() : dir_("recovery") {}

  // Runs fn in a forked child that then dies via _exit (no destructors, no
  // WAL drain beyond what fn itself forced).
  void RunInChildAndCrash(const std::function<void(DB*)>& fn) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      DB* db = nullptr;
      Options options;
      options.write_buffer_size = 1 << 20;
      Status s = OpenDb(GetParam(), options, dir_.path() + "/db", &db);
      if (!s.ok()) {
        _exit(2);
      }
      fn(db);
      _exit(0);  // crash: no delete db, no flush
    }
    int wstatus = 0;
    ASSERT_EQ(pid, waitpid(pid, &wstatus, 0));
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(0, WEXITSTATUS(wstatus));
  }

  std::unique_ptr<DB> Reopen() {
    DB* db = nullptr;
    Options options;
    options.write_buffer_size = 1 << 20;
    Status s = OpenDb(GetParam(), options, dir_.path() + "/db", &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(db);
  }

  ScratchDir dir_;
};

TEST_P(RecoveryTest, SyncWritesSurviveCrash) {
  RunInChildAndCrash([](DB* db) {
    WriteOptions sync_wo;
    sync_wo.sync = true;
    for (int i = 0; i < 50; i++) {
      Status s = db->Put(sync_wo, "durable-" + std::to_string(i), "v" + std::to_string(i));
      if (!s.ok()) {
        _exit(3);
      }
    }
  });

  std::unique_ptr<DB> db = Reopen();
  ReadOptions ro;
  for (int i = 0; i < 50; i++) {
    std::string v;
    Status s = db->Get(ro, "durable-" + std::to_string(i), &v);
    ASSERT_TRUE(s.ok()) << "synchronously logged write lost: " << i;
    EXPECT_EQ("v" + std::to_string(i), v);
  }
}

TEST_P(RecoveryTest, AsyncWritesBeforeSyncBarrierSurvive) {
  // A sync write acts as a durability barrier: everything enqueued before
  // it is on disk when it returns.
  RunInChildAndCrash([](DB* db) {
    WriteOptions wo;
    for (int i = 0; i < 1000; i++) {
      db->Put(wo, "async-" + std::to_string(i), "v");
    }
    WriteOptions sync_wo;
    sync_wo.sync = true;
    db->Put(sync_wo, "barrier", "done");
  });

  std::unique_ptr<DB> db = Reopen();
  ReadOptions ro;
  std::string v;
  ASSERT_TRUE(db->Get(ro, "barrier", &v).ok());
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Get(ro, "async-" + std::to_string(i), &v).ok())
        << "write before the sync barrier lost: " << i;
  }
}

TEST_P(RecoveryTest, FlushedDataSurvivesWithoutWal) {
  // Data that reached the disk component needs no WAL at all.
  RunInChildAndCrash([](DB* db) {
    WriteOptions wo;
    for (int i = 0; i < 30000; i++) {
      db->Put(wo, "flushed-" + std::to_string(i), std::string(64, 'x'));
    }
    db->WaitForMaintenance();  // guarantees at least one flush happened
    WriteOptions sync_wo;
    sync_wo.sync = true;
    db->Put(sync_wo, "end-marker", "1");
  });

  std::unique_ptr<DB> db = Reopen();
  ReadOptions ro;
  std::string v;
  for (int i = 0; i < 30000; i += 1111) {
    ASSERT_TRUE(db->Get(ro, "flushed-" + std::to_string(i), &v).ok()) << i;
  }
}

TEST_P(RecoveryTest, RepeatedCrashReopenCycles) {
  for (int round = 0; round < 3; round++) {
    RunInChildAndCrash([round](DB* db) {
      WriteOptions sync_wo;
      sync_wo.sync = true;
      db->Put(sync_wo, "round-" + std::to_string(round), "done");
    });
    std::unique_ptr<DB> db = Reopen();
    ReadOptions ro;
    std::string v;
    for (int r = 0; r <= round; r++) {
      ASSERT_TRUE(db->Get(ro, "round-" + std::to_string(r), &v).ok())
          << "round " << r << " lost after crash " << round;
    }
  }
}

TEST_P(RecoveryTest, BatchesRecoverAtomically) {
  RunInChildAndCrash([](DB* db) {
    WriteOptions wo;
    for (int i = 0; i < 100; i++) {
      WriteBatch batch;
      batch.Put("batch" + std::to_string(i) + "-x", std::to_string(i));
      batch.Put("batch" + std::to_string(i) + "-y", std::to_string(i));
      db->Write(wo, &batch);
    }
    WriteOptions sync_wo;
    sync_wo.sync = true;
    db->Put(sync_wo, "barrier", "1");
  });
  std::unique_ptr<DB> db = Reopen();
  ReadOptions ro;
  std::string x, y;
  for (int i = 0; i < 100; i++) {
    Status sx = db->Get(ro, "batch" + std::to_string(i) + "-x", &x);
    Status sy = db->Get(ro, "batch" + std::to_string(i) + "-y", &y);
    // Both halves recovered (they preceded the sync barrier) and equal:
    // a batch must never recover torn.
    ASSERT_TRUE(sx.ok() && sy.ok()) << i;
    EXPECT_EQ(x, y) << "batch " << i << " recovered torn";
  }
}

TEST_P(RecoveryTest, DeletionsSurviveCrash) {
  RunInChildAndCrash([](DB* db) {
    WriteOptions sync_wo;
    sync_wo.sync = true;
    db->Put(sync_wo, "kept", "v");
    db->Put(sync_wo, "killed", "v");
    db->Delete(sync_wo, "killed");
  });
  std::unique_ptr<DB> db = Reopen();
  ReadOptions ro;
  std::string v;
  EXPECT_TRUE(db->Get(ro, "kept", &v).ok());
  EXPECT_TRUE(db->Get(ro, "killed", &v).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(ClsmAndLevelDb, RecoveryTest,
                         ::testing::Values(DbVariant::kClsm, DbVariant::kLevelDb,
                                           DbVariant::kHyperLevelDb),
                         [](const ::testing::TestParamInfo<DbVariant>& info) {
                           std::string name = VariantName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace clsm
