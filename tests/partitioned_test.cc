// PartitionedDb: the resource-isolated configuration must be functionally
// correct, and its documented weakness — non-atomic cross-partition
// snapshots (paper §2.2) — must be demonstrable, contrasted with cLSM's
// single-partition snapshots which never tear.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/baselines/partitioned_db.h"
#include "src/core/write_batch.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class PartitionedTest : public ::testing::Test {
 protected:
  PartitionedTest() : dir_("part") {
    options_.write_buffer_size = 1 << 20;
    DB* raw = nullptr;
    Status s = PartitionedDb::Open(DbVariant::kLevelDb, options_, dir_.path() + "/db", 4, &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(PartitionedTest, BasicOperations) {
  WriteOptions wo;
  ReadOptions ro;
  std::string v;
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(wo, "key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 2000; i += 37) {
    ASSERT_TRUE(db_->Get(ro, "key" + std::to_string(i), &v).ok());
    EXPECT_EQ("v" + std::to_string(i), v);
  }
  ASSERT_TRUE(db_->Delete(wo, "key100").ok());
  EXPECT_TRUE(db_->Get(ro, "key100", &v).IsNotFound());
  EXPECT_EQ(4, static_cast<PartitionedDb*>(db_.get())->partitions());
}

TEST_F(PartitionedTest, MergedIteratorSeesAllPartitionsInOrder) {
  WriteOptions wo;
  std::set<std::string> keys;
  for (int i = 0; i < 1000; i++) {
    std::string k = "scan" + std::to_string(i * 7 % 1000);
    keys.insert(k);
    ASSERT_TRUE(db_->Put(wo, k, "v").ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  for (const std::string& k : keys) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(k, it->key().ToString());
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(PartitionedTest, RmwRoutesToRightPartition) {
  WriteOptions wo;
  for (int t = 0; t < 4; t++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db_->ReadModifyWrite(wo, "ctr" + std::to_string(i % 50),
                                       [](const std::optional<Slice>& cur)
                                           -> std::optional<std::string> {
                                         int v = cur ? std::stoi(cur->ToString()) : 0;
                                         return std::to_string(v + 1);
                                       })
                      .ok());
    }
  }
  ReadOptions ro;
  std::string v;
  int total = 0;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Get(ro, "ctr" + std::to_string(i), &v).ok());
    total += std::stoi(v);
  }
  EXPECT_EQ(4 * 500, total);
}

TEST_F(PartitionedTest, CompositeSnapshotIsPerPartitionConsistent) {
  WriteOptions wo;
  ASSERT_TRUE(db_->Put(wo, "stable", "before").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(wo, "stable", "after").ok());
  ReadOptions rs;
  rs.snapshot = snap;
  std::string v;
  ASSERT_TRUE(db_->Get(rs, "stable", &v).ok());
  EXPECT_EQ("before", v);
  db_->ReleaseSnapshot(snap);
}

// The §2.2 drawback made concrete: a batch spanning partitions is not
// atomic under concurrent snapshots (keys chosen to hash to different
// partitions), whereas within one partition batches stay atomic. This test
// documents the weakness rather than asserting it always manifests —
// tearing is timing-dependent — but it must never crash or corrupt.
TEST_F(PartitionedTest, CrossPartitionBatchesBestEffort) {
  WriteOptions wo;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 1; i < 20000 && !stop.load(); i++) {
      WriteBatch batch;
      batch.Put("cross-a", std::to_string(i));  // hashes to some partition
      batch.Put("cross-b", std::to_string(i));  // very likely another
      db_->Write(wo, &batch);
    }
  });
  int torn = 0;
  for (int round = 0; round < 300; round++) {
    const Snapshot* snap = db_->GetSnapshot();
    ReadOptions rs;
    rs.snapshot = snap;
    std::string a, b;
    if (db_->Get(rs, "cross-a", &a).ok() && db_->Get(rs, "cross-b", &b).ok() && a != b) {
      torn++;
    }
    db_->ReleaseSnapshot(snap);
  }
  stop = true;
  writer.join();
  // No assertion on torn > 0 (timing); the documented expectation is that
  // partitioned stores CAN tear cross-partition batches. Log for the record.
  if (torn > 0) {
    fprintf(stderr, "observed %d torn cross-partition snapshots (expected per §2.2)\n", torn);
  }
  SUCCEED();
}

TEST_F(PartitionedTest, WaitForMaintenanceAndReopen) {
  WriteOptions wo;
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db_->Put(wo, "bulk" + std::to_string(i), std::string(64, 'b')).ok());
  }
  db_->WaitForMaintenance();
  db_.reset();

  DB* raw = nullptr;
  ASSERT_TRUE(
      PartitionedDb::Open(DbVariant::kLevelDb, options_, dir_.path() + "/db", 4, &raw).ok());
  db_.reset(raw);
  ReadOptions ro;
  std::string v;
  ASSERT_TRUE(db_->Get(ro, "bulk12345", &v).ok());
}

}  // namespace
}  // namespace clsm
