// Unit tests for the multi-threaded compaction scheduler's picking logic:
// levels owned by an in-flight job are excluded from picking, the picker
// falls through to the next-best free level, and releasing a job makes its
// levels pickable again. These drive VersionSet::PickCompaction directly
// with synthetic version edits so level scores are fully deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/lsm/storage_engine.h"
#include "src/lsm/version_set.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class CompactionSchedulerTest : public ::testing::Test {
 protected:
  CompactionSchedulerTest() : dir_("compsched") {
    engine_ = std::make_unique<StorageEngine>(options_, dir_.path() + "/db");
    MemTable* recovered = nullptr;
    SequenceNumber max_seq = 0;
    EXPECT_TRUE(engine_->Open(&recovered, &max_seq).ok());
    if (recovered != nullptr) {
      recovered->Unref();
    }
  }

  VersionSet* versions() { return engine_->versions(); }

  // Adds a fake table file (metadata only — picking never opens files) at
  // `level` covering [begin, end] with the given claimed size.
  void AddFakeFile(VersionEdit* edit, int level, const std::string& begin, const std::string& end,
                   uint64_t size) {
    const uint64_t number = versions()->NewFileNumber();
    InternalKey smallest(begin, kMaxSequenceNumber, kTypeValue);
    InternalKey largest(end, 0, kTypeValue);
    edit->AddFile(level, number, size, smallest, largest);
  }

  static std::vector<uint64_t> SortedInputs(Compaction* c) {
    std::vector<uint64_t> files = c->InputFileNumbers();
    std::sort(files.begin(), files.end());
    return files;
  }

  static bool Disjoint(Compaction* a, Compaction* b) {
    std::vector<uint64_t> fa = SortedInputs(a);
    std::vector<uint64_t> fb = SortedInputs(b);
    std::vector<uint64_t> common;
    std::set_intersection(fa.begin(), fa.end(), fb.begin(), fb.end(), std::back_inserter(common));
    return common.empty();
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(CompactionSchedulerTest, SecondPickExcludesBusyLevelsAndReleaseReenables) {
  // Exactly l0_compaction_trigger files at level 0 => score 1.0 there,
  // 0 everywhere else.
  VersionEdit edit;
  for (int i = 0; i < options_.l0_compaction_trigger; i++) {
    AddFakeFile(&edit, 0, "a", "z", 4096);
  }
  ASSERT_TRUE(versions()->LogAndApply(&edit).ok());

  std::unique_ptr<Compaction> c1(versions()->PickCompaction());
  ASSERT_NE(nullptr, c1);
  EXPECT_EQ(0, c1->level());
  EXPECT_EQ(1, versions()->NumInFlightCompactions());
  const std::vector<uint64_t> first_inputs = SortedInputs(c1.get());
  EXPECT_EQ(options_.l0_compaction_trigger, static_cast<int>(first_inputs.size()));

  // Level 0 (and its output level 1) are owned by c1; no other level needs
  // work, so a second pick must return nothing rather than overlapping work.
  std::unique_ptr<Compaction> c2(versions()->PickCompaction());
  EXPECT_EQ(nullptr, c2);
  EXPECT_EQ(1, versions()->NumInFlightCompactions());

  // Releasing the job (destroying it without installing its edit) makes the
  // level pickable again, and the fresh pick sees the identical input set.
  c1.reset();
  EXPECT_EQ(0, versions()->NumInFlightCompactions());
  std::unique_ptr<Compaction> c3(versions()->PickCompaction());
  ASSERT_NE(nullptr, c3);
  EXPECT_EQ(0, c3->level());
  EXPECT_EQ(first_inputs, SortedInputs(c3.get()));
  c3.reset();

  EXPECT_EQ(0u, versions()->InFlightOverlapViolations());
  EXPECT_EQ(0, versions()->NumInFlightCompactions());
}

TEST_F(CompactionSchedulerTest, PickerFallsThroughToNextFreeLevel) {
  // Two levels need compaction: level 0 (score 3.0: 12 files over a trigger
  // of 4) and level 2 (score 1.2: 120 MiB over a 100 MiB target). The level
  // pairs {0,1} and {2,3} are disjoint, so both jobs may run concurrently.
  VersionEdit edit;
  for (int i = 0; i < 3 * options_.l0_compaction_trigger; i++) {
    AddFakeFile(&edit, 0, "a", "m", 4096);
  }
  AddFakeFile(&edit, 2, "a", "g", 60 << 20);
  AddFakeFile(&edit, 2, "h", "z", 60 << 20);
  ASSERT_TRUE(versions()->LogAndApply(&edit).ok());

  // Highest score first: level 0.
  std::unique_ptr<Compaction> c1(versions()->PickCompaction());
  ASSERT_NE(nullptr, c1);
  EXPECT_EQ(0, c1->level());

  // Level 0 is busy, so the picker must fall through to level 2 instead of
  // returning null or re-picking level 0's files.
  std::unique_ptr<Compaction> c2(versions()->PickCompaction());
  ASSERT_NE(nullptr, c2);
  EXPECT_EQ(2, c2->level());
  EXPECT_TRUE(Disjoint(c1.get(), c2.get()));
  EXPECT_EQ(2, versions()->NumInFlightCompactions());

  // Every level needing work is now owned; a third pick yields nothing.
  std::unique_ptr<Compaction> c3(versions()->PickCompaction());
  EXPECT_EQ(nullptr, c3);

  // Releasing only the level-0 job re-enables levels 0 and 1 while leaving
  // the level-2 job's ownership intact.
  c1.reset();
  EXPECT_EQ(1, versions()->NumInFlightCompactions());
  std::unique_ptr<Compaction> c4(versions()->PickCompaction());
  ASSERT_NE(nullptr, c4);
  EXPECT_EQ(0, c4->level());
  EXPECT_TRUE(Disjoint(c4.get(), c2.get()));

  c4.reset();
  c2.reset();
  EXPECT_EQ(0, versions()->NumInFlightCompactions());
  EXPECT_EQ(0u, versions()->InFlightOverlapViolations());
}

}  // namespace
}  // namespace clsm
