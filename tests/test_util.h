// Shared helpers for the test suite: scratch directories and DB cleanup.
#ifndef CLSM_TESTS_TEST_UTIL_H_
#define CLSM_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/util/env.h"

namespace clsm {

// Creates (and on destruction recursively removes) a fresh scratch
// directory under /tmp, unique per test.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static int counter = 0;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "/tmp/clsm-test-%s-%d-%d", tag.c_str(), getpid(), counter++);
    path_ = buf;
    Cleanup();
    Env::Default()->CreateDir(path_);
  }

  ~ScratchDir() { Cleanup(); }

  const std::string& path() const { return path_; }

 private:
  void Cleanup() {
    std::string cmd = "rm -rf " + path_;
    int rc = system(cmd.c_str());
    (void)rc;
  }

  std::string path_;
};

}  // namespace clsm

#endif  // CLSM_TESTS_TEST_UTIL_H_
