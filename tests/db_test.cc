// Black-box DB contract tests, parameterized over every concurrency
// architecture: cLSM and all baselines must agree on functional behavior —
// the paper's claim that cLSM preserves LevelDB's full functionality (§4).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>

#include "src/baselines/factory.h"
#include "src/core/write_batch.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class DbTest : public ::testing::TestWithParam<DbVariant> {
 protected:
  DbTest() : dir_("db") {
    options_.write_buffer_size = 256 * 1024;
    options_.target_file_size = 256 * 1024;
  }

  ~DbTest() override { Close(); }

  void Open() {
    Close();
    DB* db = nullptr;
    ASSERT_TRUE(OpenDb(GetParam(), options_, dir_.path() + "/db", &db).ok());
    db_.reset(db);
  }

  void Close() { db_.reset(); }

  void Reopen() {
    Close();
    Open();
  }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }
  Status Delete(const std::string& k) { return db_->Delete(WriteOptions(), k); }
  std::string Get(const std::string& k, const Snapshot* snapshot = nullptr) {
    ReadOptions ro;
    ro.snapshot = snapshot;
    std::string value;
    Status s = db_->Get(ro, k, &value);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    }
    if (!s.ok()) {
      return s.ToString();
    }
    return value;
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(DbTest, Empty) {
  Open();
  EXPECT_EQ("NOT_FOUND", Get("foo"));
}

TEST_P(DbTest, PutGetDelete) {
  Open();
  ASSERT_TRUE(Put("foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("foo", "v2").ok());
  EXPECT_EQ("v2", Get("foo"));
  ASSERT_TRUE(Delete("foo").ok());
  EXPECT_EQ("NOT_FOUND", Get("foo"));
  // Deleting a missing key is fine (it just writes a marker).
  ASSERT_TRUE(Delete("never-existed").ok());
}

TEST_P(DbTest, EmptyKeyAndValue) {
  Open();
  ASSERT_TRUE(Put("", "empty-key-value").ok());
  EXPECT_EQ("empty-key-value", Get(""));
  ASSERT_TRUE(Put("empty-value", "").ok());
  EXPECT_EQ("", Get("empty-value"));
}

TEST_P(DbTest, LargeValues) {
  Open();
  std::string big(1 << 20, 'x');
  ASSERT_TRUE(Put("big", big).ok());
  EXPECT_EQ(big, Get("big"));
  Reopen();
  EXPECT_EQ(big, Get("big"));
}

TEST_P(DbTest, GetFromAllComponents) {
  Open();
  // Fill enough to force rolls and flushes: keys land in Cm, C'm and Cd.
  std::map<std::string, std::string> model;
  for (int i = 0; i < 20000; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%07d", i);
    std::string value = "value-" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(Put(key, value).ok());
  }
  for (int i = 0; i < 20000; i += 371) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%07d", i);
    EXPECT_EQ(model[key], Get(key));
  }
  db_->WaitForMaintenance();
  for (int i = 0; i < 20000; i += 371) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%07d", i);
    EXPECT_EQ(model[key], Get(key));
  }
}

TEST_P(DbTest, IteratorFullOrderedScan) {
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%07d", i * 7 % 5000);
    model[key] = "v" + std::to_string(i);
    ASSERT_TRUE(Put(key, model[key]).ok());
  }
  db_->WaitForMaintenance();
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, iter->key().ToString());
    EXPECT_EQ(v, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_P(DbTest, IteratorHidesDeletionsAndOldVersions) {
  Open();
  ASSERT_TRUE(Put("a", "a1").ok());
  ASSERT_TRUE(Put("b", "b1").ok());
  ASSERT_TRUE(Put("b", "b2").ok());  // overwrite
  ASSERT_TRUE(Put("c", "c1").ok());
  ASSERT_TRUE(Delete("c").ok());
  ASSERT_TRUE(Put("d", "d1").ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", iter->key().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());
  EXPECT_EQ("b2", iter->value().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("d", iter->key().ToString());
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST_P(DbTest, RangeQuerySeekAndBackward) {
  Open();
  for (int i = 0; i < 1000; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%07d", i * 2);  // even keys
    ASSERT_TRUE(Put(key, "v").ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  // Seek to a key between two existing ones.
  iter->Seek("key0000101");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0000102", iter->key().ToString());
  // Range scan of 10 keys (the paper's Fig 7b access pattern).
  int count = 0;
  for (; iter->Valid() && count < 10; iter->Next()) {
    count++;
  }
  EXPECT_EQ(10, count);
  // Backward iteration.
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0001998", iter->key().ToString());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0001996", iter->key().ToString());
}

TEST_P(DbTest, WriteBatchIsAtomicAndOrdered) {
  Open();
  WriteBatch batch;
  batch.Put("k1", "v1");
  batch.Put("k2", "v2");
  batch.Delete("k1");
  batch.Put("k3", "v3");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("k1"));  // delete after put wins
  EXPECT_EQ("v2", Get("k2"));
  EXPECT_EQ("v3", Get("k3"));
}

TEST_P(DbTest, ReopenPreservesData) {
  Open();
  ASSERT_TRUE(Put("persist", "across-reopen").ok());
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(Put("bulk" + std::to_string(i), std::string(100, 'b')).ok());
  }
  Reopen();
  EXPECT_EQ("across-reopen", Get("persist"));
  EXPECT_EQ(std::string(100, 'b'), Get("bulk4321"));

  // Another write-read-reopen cycle on the recovered store.
  ASSERT_TRUE(Put("persist", "again").ok());
  Reopen();
  EXPECT_EQ("again", Get("persist"));
}

TEST_P(DbTest, OverwritesSurviveCompaction) {
  Open();
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 3000; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%05d", i);
      ASSERT_TRUE(Put(key, "round-" + std::to_string(round)).ok());
    }
    db_->WaitForMaintenance();
  }
  for (int i = 0; i < 3000; i += 113) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%05d", i);
    EXPECT_EQ("round-4", Get(key));
  }
}

TEST_P(DbTest, SnapshotIsolation) {
  Open();
  ASSERT_TRUE(Put("k", "v1").ok());
  const Snapshot* s1 = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "v2").ok());
  const Snapshot* s2 = db_->GetSnapshot();
  ASSERT_TRUE(Delete("k").ok());

  EXPECT_EQ("v1", Get("k", s1));
  EXPECT_EQ("v2", Get("k", s2));
  EXPECT_EQ("NOT_FOUND", Get("k"));

  // Snapshots survive flushes and compactions (obsolete-version GC must
  // keep the versions they need, §3.2.1).
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(Put("fill" + std::to_string(i), std::string(64, 'f')).ok());
  }
  db_->WaitForMaintenance();
  EXPECT_EQ("v1", Get("k", s1));
  EXPECT_EQ("v2", Get("k", s2));

  db_->ReleaseSnapshot(s1);
  db_->ReleaseSnapshot(s2);
}

TEST_P(DbTest, SnapshotScanIsFrozen) {
  Open();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(Put("stable" + std::to_string(i), "s").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(Put("later" + std::to_string(i), "l").ok());
  }
  ReadOptions ro;
  ro.snapshot = snap;
  std::unique_ptr<Iterator> iter(db_->NewIterator(ro));
  int n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_TRUE(iter->key().starts_with("stable")) << iter->key().ToString();
    n++;
  }
  EXPECT_EQ(100, n);
  iter.reset();
  db_->ReleaseSnapshot(snap);
}

TEST_P(DbTest, IteratorPinsViewAcrossWrites) {
  Open();
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(Put("pin" + std::to_string(i), "before").ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  // Heavy churn after the iterator exists.
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(Put("churn" + std::to_string(i), std::string(64, 'c')).ok());
  }
  db_->WaitForMaintenance();
  int n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_TRUE(iter->key().starts_with("pin"));
    EXPECT_EQ("before", iter->value().ToString());
    n++;
  }
  EXPECT_EQ(1000, n);
}

TEST_P(DbTest, ConcurrentBatchesNeverTorn) {
  Open();
  WriteOptions wo;
  {
    WriteBatch init;
    init.Put("pair-x", "0");
    init.Put("pair-y", "0");
    ASSERT_TRUE(db_->Write(wo, &init).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 1; i < 50000 && !stop.load(); i++) {
      WriteBatch batch;
      batch.Put("pair-x", std::to_string(i));
      batch.Put("pair-y", std::to_string(i));
      db_->Write(wo, &batch);
    }
  });
  bool torn = false;
  for (int round = 0; round < 500 && !torn; round++) {
    const Snapshot* snap = db_->GetSnapshot();
    ReadOptions rs;
    rs.snapshot = snap;
    std::string x, y;
    if (db_->Get(rs, "pair-x", &x).ok() && db_->Get(rs, "pair-y", &y).ok()) {
      torn = (x != y);
    }
    db_->ReleaseSnapshot(snap);
  }
  stop = true;
  writer.join();
  EXPECT_FALSE(torn) << "a snapshot observed half of an atomic batch";
}

TEST_P(DbTest, GetProperty) {
  Open();
  ASSERT_TRUE(Put("a", "b").ok());
  EXPECT_FALSE(db_->GetProperty("clsm.levels").empty());
  EXPECT_TRUE(db_->GetProperty("no.such.property").empty());
  EXPECT_NE(nullptr, db_->Name());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, DbTest, ::testing::ValuesIn(AllVariants()),
                         [](const ::testing::TestParamInfo<DbVariant>& info) {
                           std::string name = VariantName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace clsm
