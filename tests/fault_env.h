// Fault-injecting Env wrapper: forwards to the real Env but can be armed to
// fail writes, syncs or file creation — used to verify that I/O errors
// surface as background errors and never corrupt in-memory state.
#ifndef CLSM_TESTS_FAULT_ENV_H_
#define CLSM_TESTS_FAULT_ENV_H_

#include <atomic>
#include <memory>

#include "src/util/env.h"

namespace clsm {

class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // Arm/disarm failures. When armed, the countdown decrements on each
  // write-ish operation and the operation failing is the one that drops the
  // counter to zero (and every one after it while armed).
  void FailAfterWrites(int countdown) {
    write_countdown_.store(countdown, std::memory_order_release);
    fail_writes_.store(true, std::memory_order_release);
  }
  void FailNewFiles(bool enabled) { fail_new_files_.store(enabled, std::memory_order_release); }
  void Heal() {
    fail_writes_.store(false, std::memory_order_release);
    fail_new_files_.store(false, std::memory_order_release);
  }

  uint64_t write_failures() const { return write_failures_.load(std::memory_order_acquire); }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    if (fail_new_files_.load(std::memory_order_acquire)) {
      return Status::IOError("injected fault: NewWritableFile", fname);
    }
    std::unique_ptr<WritableFile> base_file;
    Status s = base_->NewWritableFile(fname, &base_file);
    if (!s.ok()) {
      return s;
    }
    result->reset(new FaultyWritableFile(this, std::move(base_file)));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override { return base_->FileExists(fname); }
  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override { return base_->RemoveFile(fname); }
  Status CreateDir(const std::string& dirname) override { return base_->CreateDir(dirname); }
  Status RemoveDir(const std::string& dirname) override { return base_->RemoveDir(dirname); }
  Status GetFileSize(const std::string& fname, uint64_t* file_size) override {
    return base_->GetFileSize(fname, file_size);
  }
  Status RenameFile(const std::string& src, const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }

 private:
  friend class FaultyWritableFile;

  class FaultyWritableFile final : public WritableFile {
   public:
    FaultyWritableFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}

    Status Append(const Slice& data) override {
      if (env_->ShouldFailWrite()) {
        return Status::IOError("injected fault: Append");
      }
      return base_->Append(data);
    }
    Status Close() override { return base_->Close(); }
    Status Flush() override {
      if (env_->ShouldFailWrite()) {
        return Status::IOError("injected fault: Flush");
      }
      return base_->Flush();
    }
    Status Sync() override {
      if (env_->ShouldFailWrite()) {
        return Status::IOError("injected fault: Sync");
      }
      return base_->Sync();
    }

   private:
    FaultInjectionEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  bool ShouldFailWrite() {
    if (!fail_writes_.load(std::memory_order_acquire)) {
      return false;
    }
    if (write_countdown_.fetch_sub(1, std::memory_order_acq_rel) <= 1) {
      write_failures_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  Env* base_;
  std::atomic<bool> fail_writes_{false};
  std::atomic<bool> fail_new_files_{false};
  std::atomic<int> write_countdown_{0};
  std::atomic<uint64_t> write_failures_{0};
};

}  // namespace clsm

#endif  // CLSM_TESTS_FAULT_ENV_H_
