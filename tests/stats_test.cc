// Tests of the PR-2 observability substrate: the lock-free sharded
// StatsRegistry, the structured JSON snapshot behind
// GetProperty("clsm.stats.json"), and the background StatsReporter.
// Correctness bar: counters and histogram totals must match exactly under
// multi-threaded load, the JSON must parse, and percentile series must be
// monotone (p50 <= p95 <= p99 <= p999 <= max).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/factory.h"
#include "src/obs/metrics.h"
#include "src/obs/stats_reporter.h"
#include "src/util/histogram.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

// --- A minimal strict JSON syntax checker (no dependency available; the
// exported snapshot must be consumable by any real parser, so reject
// trailing commas, bare NaN/inf, unquoted keys, etc.) ---
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!ParseValue()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool ParseValue() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    pos_++;  // '{'
    SkipWs();
    if (Peek() == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (Peek() != '"' || !ParseString()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      pos_++;
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    pos_++;  // '['
    SkipWs();
    if (Peek() == ']') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    pos_++;  // '"'
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        pos_++;
        return true;
      }
      if (c == '\\') {
        pos_++;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      pos_++;
    }
    return false;
  }

  bool ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') {
      pos_++;
    }
    while (pos_ < s_.size() && isdigit(static_cast<unsigned char>(s_[pos_]))) {
      pos_++;
    }
    if (Peek() == '.') {
      pos_++;
      while (pos_ < s_.size() && isdigit(static_cast<unsigned char>(s_[pos_]))) {
        pos_++;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      pos_++;
      if (Peek() == '+' || Peek() == '-') {
        pos_++;
      }
      while (pos_ < s_.size() && isdigit(static_cast<unsigned char>(s_[pos_]))) {
        pos_++;
      }
    }
    return pos_ > start && isdigit(static_cast<unsigned char>(s_[pos_ - 1]));
  }

  bool Literal(const char* lit) {
    size_t n = strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && isspace(static_cast<unsigned char>(s_[pos_]))) {
      pos_++;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// Finds `"key":` after (optionally) an anchor substring and returns the
// number that follows; -1 if absent. Good enough to probe the known schema.
double NumberAt(const std::string& json, const std::string& anchor, const std::string& key) {
  size_t from = 0;
  if (!anchor.empty()) {
    from = json.find(anchor);
    if (from == std::string::npos) {
      return -1;
    }
  }
  std::string needle = "\"" + key + "\":";
  size_t at = json.find(needle, from);
  if (at == std::string::npos) {
    return -1;
  }
  return strtod(json.c_str() + at + needle.size(), nullptr);
}

// ---------------------------------------------------------------------------
// StatsRegistry unit tests
// ---------------------------------------------------------------------------

TEST(StatsRegistryTest, SingleThreadCounts) {
  StatsRegistry registry;
  for (uint64_t i = 0; i < 1000; i++) {
    registry.Record(OpMetric::kPut, 1000 + i);
  }
  registry.Record(OpMetric::kGet, 42);
  EXPECT_EQ(registry.Count(OpMetric::kPut), 1000u);
  EXPECT_EQ(registry.Count(OpMetric::kGet), 1u);
  EXPECT_EQ(registry.Count(OpMetric::kDelete), 0u);

  Histogram h;
  registry.AggregateInto(OpMetric::kPut, &h);
  EXPECT_GE(h.Average(), 1000.0);
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.Percentile(99.9));
}

TEST(StatsRegistryTest, EightThreadTotalsMatch) {
  StatsRegistry registry;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        registry.Record(OpMetric::kPut, 100 + (i % 7) * 1000);
        if (i % 2 == 0) {
          registry.Record(OpMetric::kGet, 50 + t);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(registry.Count(OpMetric::kPut), kThreads * kPerThread);
  EXPECT_EQ(registry.Count(OpMetric::kGet), kThreads * (kPerThread / 2));

  // The aggregated histogram must retain every sample.
  Histogram h;
  registry.AggregateInto(OpMetric::kPut, &h);
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.Percentile(99.9));

  registry.Reset();
  EXPECT_EQ(registry.Count(OpMetric::kPut), 0u);
  EXPECT_EQ(registry.Count(OpMetric::kGet), 0u);
}

TEST(StatsRegistryTest, OpMetricNamesAreStable) {
  // The JSON schema exposes these strings; renaming one is a breaking
  // change for consumers.
  EXPECT_STREQ(OpMetricName(OpMetric::kPut), "put");
  EXPECT_STREQ(OpMetricName(OpMetric::kGet), "get");
  EXPECT_STREQ(OpMetricName(OpMetric::kDelete), "delete");
  EXPECT_STREQ(OpMetricName(OpMetric::kRmw), "rmw");
  EXPECT_STREQ(OpMetricName(OpMetric::kIterNext), "iter_next");
  EXPECT_STREQ(OpMetricName(OpMetric::kWalAppend), "wal_append");
  EXPECT_STREQ(OpMetricName(OpMetric::kMemInsert), "mem_insert");
  EXPECT_STREQ(OpMetricName(OpMetric::kRollWait), "roll_wait");
  EXPECT_STREQ(OpMetricName(OpMetric::kFlush), "flush");
  EXPECT_STREQ(OpMetricName(OpMetric::kCompaction), "compaction");
}

// ---------------------------------------------------------------------------
// DB-level JSON snapshot tests
// ---------------------------------------------------------------------------

class StatsJsonTest : public ::testing::TestWithParam<DbVariant> {
 protected:
  StatsJsonTest() : dir_("stats") {}

  std::unique_ptr<DB> OpenFresh(const Options& options) {
    DB* raw = nullptr;
    Status s = OpenDb(GetParam(), options, dir_.path() + "/db", &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(raw);
  }

  ScratchDir dir_;
};

TEST_P(StatsJsonTest, JsonParsesAndCountersMatchUnderLoad) {
  Options options;
  options.write_buffer_size = 256 * 1024;  // force rolls + flushes
  std::unique_ptr<DB> db = OpenFresh(options);

  constexpr int kThreads = 8;
  constexpr uint64_t kPutsPerThread = 2000;
  constexpr uint64_t kGetsPerThread = 1000;
  constexpr uint64_t kDeletesPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&db, t] {
      WriteOptions wo;
      ReadOptions ro;
      std::string value(128, 'v');
      std::string out;
      char key[32];
      for (uint64_t i = 0; i < kPutsPerThread; i++) {
        snprintf(key, sizeof(key), "k%02d-%06llu", t, static_cast<unsigned long long>(i));
        ASSERT_TRUE(db->Put(wo, key, value).ok());
        if (i < kGetsPerThread) {
          db->Get(ro, key, &out);
        }
        if (i < kDeletesPerThread) {
          db->Delete(wo, key);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  db->WaitForMaintenance();

  std::string json = db->GetProperty("clsm.stats.json");
  ASSERT_FALSE(json.empty());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;

  // Operation counters must be exact — every thread's ops accounted for.
  EXPECT_EQ(NumberAt(json, "\"counters\"", "puts_total"), kThreads * kPutsPerThread);
  EXPECT_EQ(NumberAt(json, "\"counters\"", "gets_total"), kThreads * kGetsPerThread);
  EXPECT_EQ(NumberAt(json, "\"counters\"", "deletes_total"), kThreads * kDeletesPerThread);

  // Latency histogram totals must match the counters (metrics default on).
  std::string put_anchor = "\"put\":{";
  ASSERT_NE(json.find(put_anchor), std::string::npos) << json;
  EXPECT_EQ(NumberAt(json, put_anchor, "count"), kThreads * kPutsPerThread);
  std::string get_anchor = "\"get\":{";
  ASSERT_NE(json.find(get_anchor), std::string::npos);
  EXPECT_EQ(NumberAt(json, get_anchor, "count"), kThreads * kGetsPerThread);
  std::string del_anchor = "\"delete\":{";
  ASSERT_NE(json.find(del_anchor), std::string::npos);
  EXPECT_EQ(NumberAt(json, del_anchor, "count"), kThreads * kDeletesPerThread);

  // Percentile series must be monotone for every op that recorded samples.
  for (const char* op : {"\"put\":{", "\"get\":{", "\"delete\":{"}) {
    double p50 = NumberAt(json, op, "p50");
    double p95 = NumberAt(json, op, "p95");
    double p99 = NumberAt(json, op, "p99");
    double p999 = NumberAt(json, op, "p999");
    double max = NumberAt(json, op, "max");
    EXPECT_GE(p50, 0.0) << op;
    EXPECT_LE(p50, p95) << op;
    EXPECT_LE(p95, p99) << op;
    EXPECT_LE(p99, p999) << op;
    EXPECT_LE(p999, max + 1e-9) << op;
  }

  // Structural keys of the schema.
  EXPECT_NE(json.find("\"levels\":["), std::string::npos);
  EXPECT_NE(json.find("\"flush\":{"), std::string::npos);
  EXPECT_NE(json.find("\"write_amp\":"), std::string::npos);
  EXPECT_NE(json.find("\"stall\":{"), std::string::npos);

  // With a 256KB buffer and ~2MB+ ingested, flushes must have happened and
  // the internal-phase histograms must have fired.
  EXPECT_GE(NumberAt(json, "\"flush\":{", "count"), 1.0);
  EXPECT_GE(NumberAt(json, "\"mem_insert\":{", "count"), 1.0);
  EXPECT_GE(NumberAt(json, "\"wal_append\":{", "count"), 1.0);
}

TEST_P(StatsJsonTest, MetricsOffZeroesLatencySeries) {
  Options options;
  options.latency_metrics = false;
  std::unique_ptr<DB> db = OpenFresh(options);
  WriteOptions wo;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(wo, "k" + std::to_string(i), "v").ok());
  }
  std::string json = db->GetProperty("clsm.stats.json");
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  // Counters still tick; histograms must not.
  EXPECT_EQ(NumberAt(json, "\"counters\"", "puts_total"), 100);
  EXPECT_EQ(NumberAt(json, "\"put\":{", "count"), 0);
}

TEST_P(StatsJsonTest, IteratorAndRmwSeriesRecord) {
  Options options;
  std::unique_ptr<DB> db = OpenFresh(options);
  WriteOptions wo;
  for (int i = 0; i < 200; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    int n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      n++;
    }
    EXPECT_EQ(n, 200);
  }
  ASSERT_TRUE(db->ReadModifyWrite(wo, "k0000", [](const std::optional<Slice>&) {
                  return std::optional<std::string>("merged");
                }).ok());

  std::string json = db->GetProperty("clsm.stats.json");
  // The iterator wrapper records one kIterNext sample per Next/Seek.
  EXPECT_GE(NumberAt(json, "\"iter_next\":{", "count"), 200.0);
  EXPECT_GE(NumberAt(json, "\"rmw\":{", "count"), 1.0);
  EXPECT_EQ(NumberAt(json, "\"counters\"", "rmw_total"), 1);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, StatsJsonTest,
                         ::testing::Values(DbVariant::kClsm, DbVariant::kLevelDb,
                                           DbVariant::kRocksDb, DbVariant::kHyperLevelDb),
                         [](const ::testing::TestParamInfo<DbVariant>& info) {
                           return std::string(VariantName(info.param));
                         });

// ---------------------------------------------------------------------------
// StatsReporter
// ---------------------------------------------------------------------------

TEST(StatsReporterTest, DumpsPeriodicallyAndStops) {
  std::atomic<uint64_t> writes{0};
  StatsReporter reporter(
      "test", 1,
      [&] {
        ReporterCounters c;
        c.writes = writes.load();
        return c;
      },
      [] { return std::string("{}"); });
  writes.store(123);
  // Periods are seconds; wait out at least one.
  for (int i = 0; i < 50 && reporter.NumDumps() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(reporter.NumDumps(), 1u);
  reporter.Stop();
  uint64_t dumps = reporter.NumDumps();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(reporter.NumDumps(), dumps);  // no dumps after Stop
}

TEST(StatsReporterTest, DbIntegrationStartsAndStops) {
  ScratchDir dir("reporter");
  Options options;
  options.stats_dump_period_sec = 1;
  DB* raw = nullptr;
  ASSERT_TRUE(OpenDb(DbVariant::kClsm, options, dir.path() + "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);
  WriteOptions wo;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(wo, "k" + std::to_string(i), "v").ok());
  }
  // Destruction with a live reporter must be clean (no use-after-free of
  // the stats it samples) — TSan covers this configuration.
  db.reset();
}

}  // namespace
}  // namespace clsm
