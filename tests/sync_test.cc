#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/sync/active_set.h"
#include "src/sync/backoff.h"
#include "src/sync/ref_guard.h"
#include "src/sync/shared_exclusive_lock.h"
#include "src/sync/thread_slots.h"
#include "src/sync/time_counter.h"

namespace clsm {
namespace {

TEST(SharedExclusiveLockTest, SharedDoesNotExcludeShared) {
  SharedExclusiveLock lock;
  lock.LockShared();
  lock.LockShared();
  EXPECT_EQ(2, lock.SharedCountForTest());
  lock.UnlockShared();
  lock.UnlockShared();
  EXPECT_EQ(0, lock.SharedCountForTest());
}

TEST(SharedExclusiveLockTest, ExclusiveMutualExclusion) {
  SharedExclusiveLock lock;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; i++) {
        ExclusiveLockGuard g(lock);
        counter++;  // data race iff exclusion is broken
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(kThreads * kIters, counter);
}

TEST(SharedExclusiveLockTest, SharedExcludedByExclusive) {
  SharedExclusiveLock lock;
  std::atomic<int> in_critical{0};
  std::atomic<bool> violation{false};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int i = 0; i < 2000; i++) {
      lock.LockExclusive();
      if (in_critical.load() != 0) {
        violation = true;
      }
      lock.UnlockExclusive();
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        lock.LockShared();
        in_critical.fetch_add(1);
        in_critical.fetch_sub(1);
        lock.UnlockShared();
      }
    });
  }
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(violation.load());
}

TEST(SharedExclusiveLockTest, WriterPreferenceMakesProgress) {
  // A continuous stream of shared lockers must not starve an exclusive
  // locker (paper §3.1: the lock must prefer exclusive locking so the merge
  // process does not starve).
  SharedExclusiveLock lock;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        SharedLockGuard g(lock);
      }
    });
  }
  // The exclusive acquisition must complete quickly despite reader churn.
  for (int i = 0; i < 200; i++) {
    ExclusiveLockGuard g(lock);
  }
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  SUCCEED();
}

TEST(TimeCounterTest, MonotoneAndAdvance) {
  TimeCounter tc;
  EXPECT_EQ(0u, tc.Get());
  EXPECT_EQ(1u, tc.IncAndGet());
  EXPECT_EQ(2u, tc.IncAndGet());
  tc.AdvanceTo(100);
  EXPECT_EQ(100u, tc.Get());
  tc.AdvanceTo(50);  // never backward
  EXPECT_EQ(100u, tc.Get());
  EXPECT_EQ(101u, tc.IncAndGet());
}

TEST(TimeCounterTest, ConcurrentUniqueness) {
  TimeCounter tc;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::vector<uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        seen[t].push_back(tc.IncAndGet());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::vector<uint64_t> all;
  for (auto& v : seen) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); i++) {
    ASSERT_EQ(i + 1, all[i]) << "timestamps must be dense and unique";
  }
}

TEST(ActiveSetTest, AddRemoveFindMin) {
  ActiveTimestampSet set;
  EXPECT_EQ(ActiveTimestampSet::kNone, set.FindMin());
  set.Add(42);
  EXPECT_EQ(42u, set.FindMin());
  set.Remove(42);
  EXPECT_EQ(ActiveTimestampSet::kNone, set.FindMin());
}

TEST(ActiveSetTest, MinAcrossThreads) {
  ActiveTimestampSet set;
  constexpr int kThreads = 6;
  std::atomic<bool> hold{true};
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      set.Add(100 + t);
      ready.fetch_add(1);
      while (hold.load()) {
        std::this_thread::yield();
      }
      set.Remove(100 + t);
    });
  }
  while (ready.load() < kThreads) {
    std::this_thread::yield();
  }
  EXPECT_EQ(100u, set.FindMin());
  hold = false;
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(ActiveTimestampSet::kNone, set.FindMin());
}

// Property: FindMin never reports a value greater than a timestamp that was
// continuously in the set for the whole scan.
TEST(ActiveSetTest, MinNeverMissesStableMember) {
  ActiveTimestampSet set;
  set.Add(7);
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    // Churn higher timestamps from another thread.
    for (int i = 0; i < 50000 && !stop; i++) {
      set.Add(1000 + (i % 17));
      set.Remove(1000 + (i % 17));
    }
  });
  for (int i = 0; i < 10000; i++) {
    uint64_t min = set.FindMin();
    ASSERT_EQ(7u, min);
  }
  stop = true;
  churn.join();
  set.Remove(7);
}

TEST(RefCountedTest, DeleteOnLastUnref) {
  struct Probe : RefCounted {
    explicit Probe(bool* flag) : deleted(flag) {}
    ~Probe() override { *deleted = true; }
    bool* deleted;
  };
  bool deleted = false;
  Probe* p = new Probe(&deleted);
  p->Ref();
  p->Unref();
  EXPECT_FALSE(deleted);
  p->Unref();
  EXPECT_TRUE(deleted);
}

TEST(EpochManagerTest, SynchronizeWaitsForActiveReaders) {
  EpochManager mgr;
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_release{false};
  std::atomic<bool> sync_done{false};

  std::thread reader([&] {
    mgr.Enter();
    reader_in = true;
    while (!reader_release.load()) {
      std::this_thread::yield();
    }
    mgr.Exit();
  });
  while (!reader_in.load()) {
    std::this_thread::yield();
  }

  std::thread syncer([&] {
    mgr.Synchronize();
    sync_done = true;
  });
  // Synchronize must not complete while the reader is inside.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(sync_done.load());
  reader_release = true;
  syncer.join();
  EXPECT_TRUE(sync_done.load());
  reader.join();
}

TEST(EpochManagerTest, ReadersAfterBarrierDoNotBlockSynchronize) {
  EpochManager mgr;
  // A reader that enters and exits cleanly leaves the manager quiescent.
  for (int i = 0; i < 1000; i++) {
    EpochGuard g(mgr);
  }
  mgr.Synchronize();  // must return immediately
  SUCCEED();
}

// The reclamation property the cLSM get path relies on: after unlinking a
// pointer and synchronizing, no reader can still dereference it.
TEST(EpochManagerTest, UnlinkSynchronizeFreeIsSafe) {
  EpochManager mgr;
  struct Node {
    std::atomic<int> value{1};
  };
  std::atomic<Node*> ptr{new Node};
  std::atomic<bool> stop{false};
  std::atomic<long> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard g(mgr);
        Node* n = ptr.load(std::memory_order_acquire);
        // Must always observe a live node.
        if (n->value.load(std::memory_order_relaxed) != 1) {
          abort();
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Ensure the readers are actually running before churning (on a single
  // core the main thread can otherwise finish first).
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 500; i++) {
    Node* fresh = new Node;
    Node* old = ptr.exchange(fresh, std::memory_order_acq_rel);
    mgr.Synchronize();
    old->value.store(0, std::memory_order_relaxed);  // poison, then free
    delete old;
  }
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  delete ptr.load();
  EXPECT_GT(reads.load(), 0);
}

TEST(ThreadSlotsTest, TryAcquireReportsExhaustionAndRecycles) {
  ThreadSlotRegistry reg(2);
  int a = -1;
  int b = -1;
  ASSERT_TRUE(reg.TryAcquireSlot(&a).ok());
  ASSERT_TRUE(reg.TryAcquireSlot(&b).ok());
  EXPECT_NE(a, b);
  int c = -1;
  Status s = reg.TryAcquireSlot(&c);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  reg.ReleaseSlot(a);
  ASSERT_TRUE(reg.TryAcquireSlot(&c).ok());
  EXPECT_EQ(a, c);  // reclaimed slot is reused before the high water moves
  ThreadSlotGauges g = reg.Gauges();
  EXPECT_EQ(2u, g.in_use);
  EXPECT_EQ(2u, g.high_water);
  EXPECT_EQ(1u, g.reclaims);
}

TEST(ThreadSlotsTest, DyingThreadsReturnTheirSlots) {
  ThreadSlotRegistry reg;
  std::atomic<bool> sawOverflow{false};
  constexpr int kBatch = 16;
  constexpr int kBatches = 2 * ThreadSlotRegistry::kMaxSlots / kBatch;
  for (int round = 0; round < kBatches; round++) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kBatch; t++) {
      threads.emplace_back([&] {
        if (reg.SlotForThisThread() == ThreadSlotRegistry::kOverflowIndex) {
          sawOverflow = true;
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  // 2 * kMaxSlots threads touched the registry, but never more than kBatch
  // at once: reclamation must have kept it far from saturation.
  EXPECT_FALSE(sawOverflow.load());
  ThreadSlotGauges g = reg.Gauges();
  EXPECT_EQ(0u, g.in_use);
  EXPECT_LE(g.high_water, static_cast<uint64_t>(kBatch));
  EXPECT_EQ(static_cast<uint64_t>(kBatch * kBatches), g.reclaims);
}

TEST(ThreadSlotsTest, TlsMapBoundedAcrossRegistryChurn) {
  // One set per DB open/close cycle: the old per-mechanism reg_map caches
  // leaked one entry per cycle in every long-lived thread. The registry
  // purges dead entries on the acquire slow path.
  for (int i = 0; i < 200; i++) {
    ActiveTimestampSet set;
    set.Add(1);
    set.Remove(1);
  }
  ActiveTimestampSet last;
  last.Add(1);  // the purge runs on this first-touch slow path
  last.Remove(1);
  EXPECT_LE(ThreadSlotRegistry::ThreadMapSizeForTest(), 4u);
}

TEST(ActiveSetTest, SlotsRecycledAcrossThreadGenerations) {
  // 4 * kMaxThreads short-lived threads against ONE set. Before slot
  // reclamation the 513th distinct thread abort()ed the whole process.
  ActiveTimestampSet set;
  constexpr int kBatch = 16;
  const int total = 4 * ActiveTimestampSet::kMaxThreads;
  int spawned = 0;
  while (spawned < total) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kBatch; t++, spawned++) {
      const uint64_t ts = static_cast<uint64_t>(spawned) + 1;
      threads.emplace_back([&set, ts] {
        set.Add(ts);
        set.Remove(ts);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  EXPECT_EQ(ActiveTimestampSet::kNone, set.FindMin());
  ThreadSlotGauges g = set.SlotGauges();
  EXPECT_EQ(0u, g.in_use);
  EXPECT_GT(g.reclaims, 0u);
  EXPECT_LE(g.high_water, static_cast<uint64_t>(2 * kBatch));
  EXPECT_EQ(0u, g.overflow_ops);
}

TEST(ActiveSetTest, OverflowWhenSaturatedIsCorrectAndNeverFatal) {
  // Two private slots, both pinned by parked live threads; later threads
  // must degrade to the shared overflow slots with full FindMin visibility.
  ActiveTimestampSet set(2);
  std::atomic<bool> release{false};
  std::atomic<int> parked{0};
  std::vector<std::thread> holders;
  for (int t = 0; t < 2; t++) {
    holders.emplace_back([&, t] {
      set.Add(100 + t);
      parked.fetch_add(1);
      while (!release.load()) {
        std::this_thread::yield();
      }
      set.Remove(100 + t);
    });
  }
  while (parked.load() < 2) {
    std::this_thread::yield();
  }

  // An overflow thread holding a SMALLER timestamp: FindMin must see it.
  std::atomic<bool> ovf_release{false};
  std::atomic<bool> ovf_in{false};
  std::thread low([&] {
    set.Add(5);
    ovf_in = true;
    while (!ovf_release.load()) {
      std::this_thread::yield();
    }
    set.Remove(5);
  });
  while (!ovf_in.load()) {
    std::this_thread::yield();
  }
  EXPECT_EQ(5u, set.FindMin());

  // More overflow churn on top, concurrently.
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; t++) {
    churners.emplace_back([&, t] {
      for (int i = 0; i < 1000; i++) {
        const uint64_t ts = 1000 + static_cast<uint64_t>(t) * 10000 + i;
        set.Add(ts);
        set.Remove(ts);
      }
    });
  }
  for (auto& th : churners) {
    th.join();
  }
  EXPECT_EQ(5u, set.FindMin());
  ovf_release = true;
  low.join();
  EXPECT_EQ(100u, set.FindMin());
  release = true;
  for (auto& th : holders) {
    th.join();
  }
  EXPECT_EQ(ActiveTimestampSet::kNone, set.FindMin());
  EXPECT_GT(set.SlotGauges().overflow_ops, 0u);
}

TEST(ActiveSetTest, NewThreadRegistrationVisibleToScanner) {
  // Figure-4 regression, registration flavor: the slot count used to be
  // bumped relaxed and read acquire, so a scanner could read a stale count
  // and skip a brand-new thread's slot even though its seq_cst ts store was
  // already visible — a put both invisible to the snapshot AND not rolled
  // back. The registry's seq_cst high-water publication restores the Dekker
  // argument: first-put-on-a-new-thread is either rolled back by the
  // snapTime check or observed by a scan that follows the snapTime advance.
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; round++) {
    ActiveTimestampSet set;  // fresh set: the putter's Add registers a slot
    std::atomic<uint64_t> snap_time{0};
    const uint64_t ts = 100;
    std::atomic<bool> kept{false};
    std::atomic<bool> done{false};
    std::thread putter([&] {
      set.Add(ts);  // first op ever on this thread for this set
      if (ts <= snap_time.load(std::memory_order_seq_cst)) {
        set.Remove(ts);  // getTS rollback
      } else {
        kept.store(true, std::memory_order_seq_cst);
        while (!done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        set.Remove(ts);
      }
    });
    // The scanner half of AcquireScanTimestamp: publish snapTime, then scan.
    snap_time.store(ts, std::memory_order_seq_cst);
    const uint64_t min = set.FindMin();
    const bool missed = min == ActiveTimestampSet::kNone || min > ts;
    done.store(true, std::memory_order_release);
    putter.join();
    ASSERT_FALSE(kept.load() && missed)
        << "round " << round << ": committed put invisible to the scan";
  }
}

TEST(EpochManagerTest, SlotsRecycledAcrossThreadGenerations) {
  EpochManager mgr;
  constexpr int kBatch = 16;
  const int total = 2 * EpochManager::kMaxThreads;
  int spawned = 0;
  while (spawned < total) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kBatch; t++, spawned++) {
      threads.emplace_back([&mgr] { EpochGuard g(mgr); });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  mgr.Synchronize();  // no leaked non-quiescent slots: returns immediately
  ThreadSlotGauges g = mgr.SlotGauges();
  EXPECT_EQ(0u, g.in_use);
  EXPECT_GT(g.reclaims, 0u);
  EXPECT_LE(g.high_water, static_cast<uint64_t>(2 * kBatch));
}

TEST(EpochManagerTest, OverflowReaderStillBlocksSynchronize) {
  // One private slot, pinned by a live (quiescent) thread; the next reader
  // parks on overflow — and Synchronize must still honor its critical
  // section.
  EpochManager mgr(1);
  std::atomic<bool> holder_release{false};
  std::atomic<bool> holder_ready{false};
  std::thread holder([&] {
    {
      EpochGuard g(mgr);  // claims the only private slot
    }
    holder_ready = true;
    while (!holder_release.load()) {
      std::this_thread::yield();
    }
  });
  while (!holder_ready.load()) {
    std::this_thread::yield();
  }

  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_release{false};
  std::thread reader([&] {
    mgr.Enter();  // degrades to an overflow slot
    reader_in = true;
    while (!reader_release.load()) {
      std::this_thread::yield();
    }
    mgr.Exit();
  });
  while (!reader_in.load()) {
    std::this_thread::yield();
  }

  std::atomic<bool> sync_done{false};
  std::thread syncer([&] {
    mgr.Synchronize();
    sync_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(sync_done.load()) << "Synchronize ignored an overflow reader";
  reader_release = true;
  syncer.join();
  EXPECT_TRUE(sync_done.load());
  reader.join();
  holder_release = true;
  holder.join();
  EXPECT_GT(mgr.SlotGauges().overflow_ops, 0u);
}

}  // namespace
}  // namespace clsm
