#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/sync/active_set.h"
#include "src/sync/ref_guard.h"
#include "src/sync/shared_exclusive_lock.h"
#include "src/sync/time_counter.h"

namespace clsm {
namespace {

TEST(SharedExclusiveLockTest, SharedDoesNotExcludeShared) {
  SharedExclusiveLock lock;
  lock.LockShared();
  lock.LockShared();
  EXPECT_EQ(2, lock.SharedCountForTest());
  lock.UnlockShared();
  lock.UnlockShared();
  EXPECT_EQ(0, lock.SharedCountForTest());
}

TEST(SharedExclusiveLockTest, ExclusiveMutualExclusion) {
  SharedExclusiveLock lock;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; i++) {
        ExclusiveLockGuard g(lock);
        counter++;  // data race iff exclusion is broken
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(kThreads * kIters, counter);
}

TEST(SharedExclusiveLockTest, SharedExcludedByExclusive) {
  SharedExclusiveLock lock;
  std::atomic<int> in_critical{0};
  std::atomic<bool> violation{false};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int i = 0; i < 2000; i++) {
      lock.LockExclusive();
      if (in_critical.load() != 0) {
        violation = true;
      }
      lock.UnlockExclusive();
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        lock.LockShared();
        in_critical.fetch_add(1);
        in_critical.fetch_sub(1);
        lock.UnlockShared();
      }
    });
  }
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(violation.load());
}

TEST(SharedExclusiveLockTest, WriterPreferenceMakesProgress) {
  // A continuous stream of shared lockers must not starve an exclusive
  // locker (paper §3.1: the lock must prefer exclusive locking so the merge
  // process does not starve).
  SharedExclusiveLock lock;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        SharedLockGuard g(lock);
      }
    });
  }
  // The exclusive acquisition must complete quickly despite reader churn.
  for (int i = 0; i < 200; i++) {
    ExclusiveLockGuard g(lock);
  }
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  SUCCEED();
}

TEST(TimeCounterTest, MonotoneAndAdvance) {
  TimeCounter tc;
  EXPECT_EQ(0u, tc.Get());
  EXPECT_EQ(1u, tc.IncAndGet());
  EXPECT_EQ(2u, tc.IncAndGet());
  tc.AdvanceTo(100);
  EXPECT_EQ(100u, tc.Get());
  tc.AdvanceTo(50);  // never backward
  EXPECT_EQ(100u, tc.Get());
  EXPECT_EQ(101u, tc.IncAndGet());
}

TEST(TimeCounterTest, ConcurrentUniqueness) {
  TimeCounter tc;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::vector<uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        seen[t].push_back(tc.IncAndGet());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::vector<uint64_t> all;
  for (auto& v : seen) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); i++) {
    ASSERT_EQ(i + 1, all[i]) << "timestamps must be dense and unique";
  }
}

TEST(ActiveSetTest, AddRemoveFindMin) {
  ActiveTimestampSet set;
  EXPECT_EQ(ActiveTimestampSet::kNone, set.FindMin());
  set.Add(42);
  EXPECT_EQ(42u, set.FindMin());
  set.Remove(42);
  EXPECT_EQ(ActiveTimestampSet::kNone, set.FindMin());
}

TEST(ActiveSetTest, MinAcrossThreads) {
  ActiveTimestampSet set;
  constexpr int kThreads = 6;
  std::atomic<bool> hold{true};
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      set.Add(100 + t);
      ready.fetch_add(1);
      while (hold.load()) {
        std::this_thread::yield();
      }
      set.Remove(100 + t);
    });
  }
  while (ready.load() < kThreads) {
    std::this_thread::yield();
  }
  EXPECT_EQ(100u, set.FindMin());
  hold = false;
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(ActiveTimestampSet::kNone, set.FindMin());
}

// Property: FindMin never reports a value greater than a timestamp that was
// continuously in the set for the whole scan.
TEST(ActiveSetTest, MinNeverMissesStableMember) {
  ActiveTimestampSet set;
  set.Add(7);
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    // Churn higher timestamps from another thread.
    for (int i = 0; i < 50000 && !stop; i++) {
      set.Add(1000 + (i % 17));
      set.Remove(1000 + (i % 17));
    }
  });
  for (int i = 0; i < 10000; i++) {
    uint64_t min = set.FindMin();
    ASSERT_EQ(7u, min);
  }
  stop = true;
  churn.join();
  set.Remove(7);
}

TEST(RefCountedTest, DeleteOnLastUnref) {
  struct Probe : RefCounted {
    explicit Probe(bool* flag) : deleted(flag) {}
    ~Probe() override { *deleted = true; }
    bool* deleted;
  };
  bool deleted = false;
  Probe* p = new Probe(&deleted);
  p->Ref();
  p->Unref();
  EXPECT_FALSE(deleted);
  p->Unref();
  EXPECT_TRUE(deleted);
}

TEST(EpochManagerTest, SynchronizeWaitsForActiveReaders) {
  EpochManager mgr;
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_release{false};
  std::atomic<bool> sync_done{false};

  std::thread reader([&] {
    mgr.Enter();
    reader_in = true;
    while (!reader_release.load()) {
      std::this_thread::yield();
    }
    mgr.Exit();
  });
  while (!reader_in.load()) {
    std::this_thread::yield();
  }

  std::thread syncer([&] {
    mgr.Synchronize();
    sync_done = true;
  });
  // Synchronize must not complete while the reader is inside.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(sync_done.load());
  reader_release = true;
  syncer.join();
  EXPECT_TRUE(sync_done.load());
  reader.join();
}

TEST(EpochManagerTest, ReadersAfterBarrierDoNotBlockSynchronize) {
  EpochManager mgr;
  // A reader that enters and exits cleanly leaves the manager quiescent.
  for (int i = 0; i < 1000; i++) {
    EpochGuard g(mgr);
  }
  mgr.Synchronize();  // must return immediately
  SUCCEED();
}

// The reclamation property the cLSM get path relies on: after unlinking a
// pointer and synchronizing, no reader can still dereference it.
TEST(EpochManagerTest, UnlinkSynchronizeFreeIsSafe) {
  EpochManager mgr;
  struct Node {
    std::atomic<int> value{1};
  };
  std::atomic<Node*> ptr{new Node};
  std::atomic<bool> stop{false};
  std::atomic<long> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard g(mgr);
        Node* n = ptr.load(std::memory_order_acquire);
        // Must always observe a live node.
        if (n->value.load(std::memory_order_relaxed) != 1) {
          abort();
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Ensure the readers are actually running before churning (on a single
  // core the main thread can otherwise finish first).
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 500; i++) {
    Node* fresh = new Node;
    Node* old = ptr.exchange(fresh, std::memory_order_acq_rel);
    mgr.Synchronize();
    old->value.store(0, std::memory_order_relaxed);  // poison, then free
    delete old;
  }
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  delete ptr.load();
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace clsm
