// Tests of slow-op structured logging (src/obs/slow_op.h): operations
// crossing Options::slow_op_threshold_micros emit one OnSlowOperation
// record — driven here by a FaultInjectionEnv sync delay standing in for a
// degraded device — carrying latency, PerfContext phase detail and store
// state; dispatch is bounded by slow_op_max_per_sec; the bundled JSONL
// sink renders one line per record.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/baselines/factory.h"
#include "src/obs/slow_op.h"
#include "src/util/fault_env.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class SlowOpCollector : public EventListener {
 public:
  void OnSlowOperation(const SlowOpInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(info);
  }

  std::vector<SlowOpInfo> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  size_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<SlowOpInfo> records_;
};

TEST(SlowOpRateLimiterTest, FixedWindowBound) {
  SlowOpRateLimiter limiter(2);
  uint64_t t = 5'000'000;  // arbitrary window
  EXPECT_TRUE(limiter.Admit(t));
  EXPECT_TRUE(limiter.Admit(t + 1));
  EXPECT_FALSE(limiter.Admit(t + 2));
  EXPECT_FALSE(limiter.Admit(t + 3));
  EXPECT_EQ(limiter.suppressed(), 2u);
  // Next one-second window: the budget refills.
  EXPECT_TRUE(limiter.Admit(t + 1'000'000));
  EXPECT_TRUE(limiter.Admit(t + 1'000'001));
  EXPECT_FALSE(limiter.Admit(t + 1'000'002));
  EXPECT_EQ(limiter.suppressed(), 3u);
}

TEST(SlowOpRateLimiterTest, ZeroMeansSuppressEverything) {
  SlowOpRateLimiter limiter(0);
  EXPECT_FALSE(limiter.Admit(1));
  EXPECT_FALSE(limiter.Admit(2'000'000));
  EXPECT_EQ(limiter.suppressed(), 2u);
}

TEST(SlowOpKeyHashTest, PrefixOnlyAndStable) {
  const uint64_t h = SlowOpKeyPrefixHash(Slice("abcdefgh"));
  EXPECT_EQ(h, SlowOpKeyPrefixHash(Slice("abcdefgh-long-suffix-differs")));
  EXPECT_NE(h, SlowOpKeyPrefixHash(Slice("abcdefgX")));
  EXPECT_NE(SlowOpKeyPrefixHash(Slice("")), 0u);  // FNV offset basis
}

class SlowOpDbTest : public ::testing::TestWithParam<DbVariant> {
 protected:
  SlowOpDbTest() : dir_("slowop"), fault_env_(Env::Default()) {}

  std::unique_ptr<DB> OpenFresh(Options options, const std::string& tag) {
    options.env = &fault_env_;
    DB* raw = nullptr;
    Status s = OpenDb(GetParam(), options, dir_.path() + "/" + tag, &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::unique_ptr<DB>(raw);
  }

  ScratchDir dir_;
  FaultInjectionEnv fault_env_;
};

TEST_P(SlowOpDbTest, DegradedSyncDeviceFiresStructuredRecords) {
  auto collector = std::make_shared<SlowOpCollector>();
  const std::string jsonl = dir_.path() + "/slow.jsonl";
  Options options;
  options.slow_op_threshold_micros = 1000;
  options.slow_op_max_per_sec = 1000;  // effectively unbounded here
  options.perf_level = PerfLevel::kEnableTimers;
  options.listeners.push_back(collector);
  options.listeners.push_back(std::make_shared<SlowOpJsonlSink>(jsonl, &fault_env_));
  std::unique_ptr<DB> db = OpenFresh(options, "degraded");

  // Writes are fast on a healthy device: nothing crosses 1ms.
  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "healthy-key", "v").ok());

  // A degraded device adds 5ms per fsync; synchronous puts now pay it
  // inside the op and must self-report.
  fault_env_.DelaySyncs(5000);
  WriteOptions sync_wo;
  sync_wo.sync = true;
  constexpr int kSlowPuts = 5;
  for (int i = 0; i < kSlowPuts; i++) {
    ASSERT_TRUE(db->Put(sync_wo, "slow-key-" + std::to_string(i), "v").ok());
  }
  fault_env_.Heal();

  std::vector<SlowOpInfo> records = collector->Snapshot();
  ASSERT_GE(records.size(), static_cast<size_t>(kSlowPuts));
  for (const SlowOpInfo& r : records) {
    EXPECT_EQ(r.op, DbOpType::kPut);
    EXPECT_GE(r.latency_micros, 1000u);
    EXPECT_NE(r.key_prefix_hash, 0u);
    EXPECT_GE(r.l0_files, 0);
    // At kEnableTimers the snapshot explains the outlier: the WAL phase
    // (which contains the delayed sync wait) dominates.
    EXPECT_EQ(r.perf.level, PerfLevel::kEnableTimers);
    EXPECT_GE(r.perf.total_nanos, 1'000'000u);
    EXPECT_GT(r.perf.wal_append_nanos, 0u);
  }

  // Counters and the JSONL sink agree with the listener.
  const std::string stats = db->GetProperty("clsm.stats.json");
  EXPECT_NE(stats.find("\"slow_ops_total\""), std::string::npos);
  EXPECT_EQ(stats.find("\"slow_ops_total\":0,"), std::string::npos) << stats;
  db.reset();  // close the sink's file before reading it back
  std::ifstream in(jsonl);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    lines++;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"op\":\"put\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"latency_micros\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"key_prefix_hash\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"perf\""), std::string::npos) << line;
  }
  EXPECT_EQ(lines, records.size());
}

TEST_P(SlowOpDbTest, RateBoundSuppressesButCounts) {
  auto collector = std::make_shared<SlowOpCollector>();
  Options options;
  options.slow_op_threshold_micros = 500;
  options.slow_op_max_per_sec = 1;  // one report per second, period
  options.listeners.push_back(collector);
  std::unique_ptr<DB> db = OpenFresh(options, "bounded");

  fault_env_.DelaySyncs(1000);
  WriteOptions sync_wo;
  sync_wo.sync = true;
  constexpr int kSlowPuts = 30;
  for (int i = 0; i < kSlowPuts; i++) {
    ASSERT_TRUE(db->Put(sync_wo, "bounded-key-" + std::to_string(i), "v").ok());
  }
  fault_env_.Heal();

  // 30 slow ops at >= 1ms each span at most a few one-second windows:
  // reports are bounded by the window count, far under the slow-op count.
  const size_t reported = collector->Count();
  EXPECT_GE(reported, 1u);
  EXPECT_LE(reported, 10u) << "rate bound failed to hold";
  EXPECT_LT(reported, static_cast<size_t>(kSlowPuts));
  // Every slow op is counted even when its record is suppressed; the two
  // counters expose the gap the bound created.
  const std::string stats = db->GetProperty("clsm.stats.json");
  char expect_total[64];
  snprintf(expect_total, sizeof(expect_total), "\"slow_ops_total\":%d", kSlowPuts);
  EXPECT_NE(stats.find(expect_total), std::string::npos) << stats;
  char expect_reported[64];
  snprintf(expect_reported, sizeof(expect_reported), "\"slow_ops_reported\":%zu", reported);
  EXPECT_NE(stats.find(expect_reported), std::string::npos) << stats;
  // A record admitted after the bound engaged carries the cumulative
  // suppressed count (only observable when a second window opened).
  std::vector<SlowOpInfo> records = collector->Snapshot();
  if (records.size() >= 2) {
    EXPECT_GT(records.back().suppressed, 0u);
  }
}

TEST_P(SlowOpDbTest, ThresholdZeroDisablesDispatch) {
  auto collector = std::make_shared<SlowOpCollector>();
  Options options;
  options.slow_op_threshold_micros = 0;  // default: off
  options.listeners.push_back(collector);
  std::unique_ptr<DB> db = OpenFresh(options, "off");

  fault_env_.DelaySyncs(2000);
  WriteOptions sync_wo;
  sync_wo.sync = true;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(db->Put(sync_wo, "k" + std::to_string(i), "v").ok());
  }
  fault_env_.Heal();
  EXPECT_EQ(collector->Count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Variants, SlowOpDbTest,
                         ::testing::Values(DbVariant::kClsm, DbVariant::kLevelDb),
                         [](const ::testing::TestParamInfo<DbVariant>& info) {
                           return std::string(VariantName(info.param));
                         });

}  // namespace
}  // namespace clsm
