#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/lsm/storage_engine.h"
#include "src/util/env.h"
#include "src/util/random.h"
#include "src/wal/async_logger.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() : dir_("wal"), env_(Env::Default()) {}

  std::string FileName() const { return dir_.path() + "/wal.log"; }

  void WriteRecords(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(FileName(), &file).ok());
    log::Writer writer(file.get());
    for (const auto& r : records) {
      ASSERT_TRUE(writer.AddRecord(r).ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }

  struct CountingReporter : public log::Reader::Reporter {
    size_t dropped = 0;
    void Corruption(size_t bytes, const Status& status) override { dropped += bytes; }
  };

  std::vector<std::string> ReadAll(CountingReporter* reporter = nullptr) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile(FileName(), &file).ok());
    CountingReporter local;
    log::Reader reader(file.get(), reporter != nullptr ? reporter : &local, true, 0);
    std::vector<std::string> out;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      out.push_back(record.ToString());
    }
    return out;
  }

  ScratchDir dir_;
  Env* env_;
};

TEST_F(WalTest, EmptyLog) {
  WriteRecords({});
  EXPECT_TRUE(ReadAll().empty());
}

TEST_F(WalTest, SmallRecordsRoundTrip) {
  std::vector<std::string> records = {"", "a", "hello world", std::string(100, 'x')};
  WriteRecords(records);
  EXPECT_EQ(records, ReadAll());
}

TEST_F(WalTest, FragmentedRecordsRoundTrip) {
  // Records larger than a 32 KiB block force FIRST/MIDDLE/LAST framing.
  Random rnd(301);
  std::vector<std::string> records;
  for (size_t n : {1000u, 32768u, 32769u, 100000u, 3u, 200000u}) {
    std::string r(n, '\0');
    for (size_t i = 0; i < n; i++) {
      r[i] = static_cast<char>(rnd.Next() % 256);
    }
    records.push_back(std::move(r));
  }
  WriteRecords(records);
  EXPECT_EQ(records, ReadAll());
}

TEST_F(WalTest, BlockBoundaryTrailer) {
  // A record ending within kHeaderSize bytes of a block boundary forces a
  // zero-filled trailer; the reader must skip it cleanly.
  std::vector<std::string> records;
  records.push_back(std::string(log::kBlockSize - log::kHeaderSize - 3, 'a'));
  records.push_back("tail");
  WriteRecords(records);
  EXPECT_EQ(records, ReadAll());
}

TEST_F(WalTest, ChecksumCorruptionDetected) {
  WriteRecords({"payload-one", "payload-two"});
  // Flip a byte inside the first record's payload.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, FileName(), &contents).ok());
  contents[log::kHeaderSize + 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFileSync(env_, contents, FileName()).ok());

  CountingReporter reporter;
  std::vector<std::string> out = ReadAll(&reporter);
  // On a checksum mismatch the reader cannot trust the corrupted record's
  // length field, so it conservatively drops the rest of the 32 KiB block —
  // taking the second record (same block) with it. What matters is that the
  // corruption is reported and no corrupt payload is returned.
  EXPECT_TRUE(out.empty());
  EXPECT_GT(reporter.dropped, 0u);
}

TEST_F(WalTest, CorruptionInOneBlockDoesNotPoisonNextBlock) {
  // First record fills block 0 (corrupted); second record lives in block 1
  // and must survive.
  std::vector<std::string> records;
  records.push_back(std::string(log::kBlockSize - log::kHeaderSize, 'a'));
  records.push_back("survivor");
  WriteRecords(records);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, FileName(), &contents).ok());
  contents[log::kHeaderSize + 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFileSync(env_, contents, FileName()).ok());

  CountingReporter reporter;
  std::vector<std::string> out = ReadAll(&reporter);
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ("survivor", out[0]);
  EXPECT_GT(reporter.dropped, 0u);
}

TEST_F(WalTest, TornTailIsNotCorruption) {
  WriteRecords({"first", std::string(50000, 'z')});
  // Truncate mid-way through the second (fragmented) record, simulating a
  // crash during an asynchronous write.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, FileName(), &contents).ok());
  contents.resize(contents.size() - 20000);
  ASSERT_TRUE(WriteStringToFileSync(env_, contents, FileName()).ok());

  CountingReporter reporter;
  std::vector<std::string> out = ReadAll(&reporter);
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ("first", out[0]);
  EXPECT_EQ(0u, reporter.dropped) << "a torn tail must not be reported as corruption";
}

TEST_F(WalTest, AsyncLoggerDrainsEverything) {
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(FileName(), &file).ok());
    AsyncLogger logger(std::move(file));
    for (int i = 0; i < 1000; i++) {
      logger.AddRecordAsync("record-" + std::to_string(i));
    }
    logger.Drain();
    // Destructor also drains; both paths must preserve every record.
    for (int i = 1000; i < 2000; i++) {
      logger.AddRecordAsync("record-" + std::to_string(i));
    }
  }
  std::vector<std::string> out = ReadAll();
  ASSERT_EQ(2000u, out.size());
  // Single producer: order preserved.
  for (int i = 0; i < 2000; i++) {
    EXPECT_EQ("record-" + std::to_string(i), out[i]);
  }
}

TEST_F(WalTest, AsyncLoggerSyncWaitsForDurability) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile(FileName(), &file).ok());
  AsyncLogger logger(std::move(file));
  logger.AddRecordAsync("async-1");
  ASSERT_TRUE(logger.AddRecordSync("sync-1").ok());
  // After a sync write returns, both records are on disk even without
  // closing the logger.
  std::vector<std::string> out = ReadAll();
  ASSERT_EQ(2u, out.size());
  EXPECT_EQ("async-1", out[0]);
  EXPECT_EQ("sync-1", out[1]);
}

TEST_F(WalTest, ConcurrentProducers) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(FileName(), &file).ok());
    AsyncLogger logger(std::move(file));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; i++) {
          logger.AddRecordAsync(std::to_string(t) + ":" + std::to_string(i));
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  std::vector<std::string> out = ReadAll();
  EXPECT_EQ(static_cast<size_t>(kThreads * kPerThread), out.size());
  // Totality: every record appears exactly once.
  std::set<std::string> unique(out.begin(), out.end());
  EXPECT_EQ(out.size(), unique.size());
}

TEST_F(WalTest, MultiOpRecordRoundTrip) {
  // Atomic batches pack several operations into one WAL record.
  std::string rec;
  EncodeWalRecord(&rec, 1, kTypeValue, "a", "va");
  EncodeWalRecord(&rec, 2, kTypeDeletion, "b", "");
  EncodeWalRecord(&rec, 3, kTypeValue, "c", "vc");

  Slice rest = rec;
  SequenceNumber seq;
  ValueType type;
  Slice key, value;
  ASSERT_TRUE(DecodeWalOpFrom(&rest, &seq, &type, &key, &value));
  EXPECT_EQ(1u, seq);
  EXPECT_EQ("a", key.ToString());
  ASSERT_TRUE(DecodeWalOpFrom(&rest, &seq, &type, &key, &value));
  EXPECT_EQ(kTypeDeletion, type);
  EXPECT_EQ("b", key.ToString());
  ASSERT_TRUE(DecodeWalOpFrom(&rest, &seq, &type, &key, &value));
  EXPECT_EQ(3u, seq);
  EXPECT_EQ("vc", value.ToString());
  EXPECT_TRUE(rest.empty());

  // The single-op decoder rejects a multi-op record.
  EXPECT_FALSE(DecodeWalRecord(rec, &seq, &type, &key, &value));
}

TEST_F(WalTest, WalRecordEncodingRoundTrip) {
  std::string rec;
  EncodeWalRecord(&rec, 12345, kTypeValue, "the-key", "the-value");
  SequenceNumber seq;
  ValueType type;
  Slice key, value;
  ASSERT_TRUE(DecodeWalRecord(rec, &seq, &type, &key, &value));
  EXPECT_EQ(12345u, seq);
  EXPECT_EQ(kTypeValue, type);
  EXPECT_EQ("the-key", key.ToString());
  EXPECT_EQ("the-value", value.ToString());

  rec.clear();
  EncodeWalRecord(&rec, 1, kTypeDeletion, "k", "");
  ASSERT_TRUE(DecodeWalRecord(rec, &seq, &type, &key, &value));
  EXPECT_EQ(kTypeDeletion, type);
  EXPECT_TRUE(value.empty());

  // Malformed records are rejected, not misparsed.
  EXPECT_FALSE(DecodeWalRecord(Slice("x"), &seq, &type, &key, &value));
  EXPECT_FALSE(DecodeWalRecord(Slice(""), &seq, &type, &key, &value));
  rec.push_back('z');  // trailing garbage
  EXPECT_FALSE(DecodeWalRecord(rec, &seq, &type, &key, &value));
}

}  // namespace
}  // namespace clsm
