// Crash-simulation property test: repeatedly kill the store's I/O at a
// random operation (simulated power cut), "reboot" by dropping every byte
// that was never fsync'ed (optionally leaving a torn tail on the last
// block), reopen, and verify the durability contract:
//
//  * every write whose synchronous Put/Write returned OK is readable with
//    the exact acked value — acked-sync writes NEVER disappear;
//  * a multi-key batch is all-or-nothing after recovery (it travels as a
//    single WAL record) — no half-visible batches;
//  * recovery itself never fails: a crash at any point leaves a state the
//    store can open (torn WAL/manifest tails are clean end-of-log).
//
// Iteration count defaults to 100 (the acceptance bar) and can be lowered
// via CLSM_CRASH_LOOP_ITERS for smoke runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/clsm_db.h"
#include "src/core/write_batch.h"
#include "src/util/fault_env.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

int LoopIterations() {
  const char* s = std::getenv("CLSM_CRASH_LOOP_ITERS");
  if (s != nullptr) {
    int v = std::atoi(s);
    if (v > 0) {
      return v;
    }
  }
  return 100;
}

TEST(CrashLoopTest, AckedSyncWritesSurviveRandomKillPoints) {
  ScratchDir dir("crashloop");
  FaultInjectionEnv fault_env(Env::Default());
  Options options;
  options.env = &fault_env;
  options.write_buffer_size = 32 * 1024;  // frequent rolls/flushes

  // Deterministic LCG so failures reproduce; never wall-clock seeded.
  uint32_t rng = 0xC1A5D00Du;
  auto next = [&rng]() {
    rng = rng * 1664525u + 1013904223u;
    return rng;
  };

  // The durability oracle. Only sync writes acked with OK enter `acked`;
  // keys are unique across the whole run so an unacked write to the same
  // key can never satisfy (or poison) a lookup.
  std::map<std::string, std::string> acked;
  struct BatchRecord {
    std::vector<std::string> keys;
    std::string value;
    bool acked = false;
  };
  std::vector<BatchRecord> batches;

  const std::string dbpath = dir.path() + "/db";
  const int iters = LoopIterations();
  int verified_total = 0;

  for (int iter = 0; iter < iters; iter++) {
    // --- reopen with the power restored: recovery must always succeed ---
    DB* raw = nullptr;
    Status open_status = ClsmDb::Open(options, dbpath, &raw);
    ASSERT_TRUE(open_status.ok())
        << "recovery failed at iteration " << iter << ": " << open_status.ToString();
    std::unique_ptr<DB> db(raw);

    // --- verify the oracle ---
    ReadOptions ro;
    std::string v;
    for (const auto& kv : acked) {
      ASSERT_TRUE(db->Get(ro, kv.first, &v).ok())
          << "acked sync write lost (iteration " << iter << "): " << kv.first;
      ASSERT_EQ(kv.second, v) << "acked value corrupted: " << kv.first;
      verified_total++;
    }
    for (const BatchRecord& b : batches) {
      int present = 0;
      for (const std::string& k : b.keys) {
        Status gs = db->Get(ro, k, &v);
        if (gs.ok()) {
          EXPECT_EQ(b.value, v) << k;
          present++;
        }
      }
      if (b.acked) {
        ASSERT_EQ(3, present) << "acked batch partially lost (iteration " << iter << ")";
      } else {
        ASSERT_TRUE(present == 0 || present == 3)
            << "batch half-visible after recovery (iteration " << iter << "): " << present
            << "/3 keys";
      }
    }

    // --- arm a random kill point and write until the power goes out ---
    fault_env.KillAfterIos(5 + static_cast<int>(next() % 80));
    WriteOptions wo;
    WriteOptions sync_wo;
    sync_wo.sync = true;
    const int writes = 30 + static_cast<int>(next() % 50);
    for (int i = 0; i < writes; i++) {
      const std::string tag = "k" + std::to_string(iter) + "-" + std::to_string(i);
      const std::string value(20 + next() % 100, static_cast<char>('a' + i % 26));
      Status s;
      if (i % 10 == 9) {
        // Fixed 3-key batch, same value: the all-or-nothing probe.
        WriteBatch batch;
        BatchRecord rec;
        for (int j = 0; j < 3; j++) {
          rec.keys.push_back(tag + "-b" + std::to_string(j));
          batch.Put(rec.keys.back(), value);
        }
        rec.value = value;
        const bool sync = (next() % 2) == 0;
        s = db->Write(sync ? sync_wo : wo, &batch);
        rec.acked = sync && s.ok();
        batches.push_back(std::move(rec));
      } else if (i % 4 == 3) {
        s = db->Put(sync_wo, tag, value);
        if (s.ok()) {
          acked[tag] = value;
        }
      } else {
        s = db->Put(wo, tag, value);
      }
      if (!s.ok()) {
        break;  // power is (probably) out; nothing else can be acked
      }
    }

    // --- close (destructors must tolerate a dead disk), then reboot ---
    db.reset();
    if (fault_env.crashed()) {
      // Odd iterations leave a pseudo-random torn tail on unsynced files;
      // even ones drop the whole unsynced suffix.
      const uint32_t torn_seed = (iter % 2 == 1) ? next() | 1u : 0u;
      Status rs = fault_env.ReactivateAfterCrash(torn_seed);
      ASSERT_TRUE(rs.ok()) << rs.ToString();
    } else {
      fault_env.Heal();
    }
  }

  // The loop must actually have exercised crashes, and the oracle must
  // have had real entries to check.
  EXPECT_GT(fault_env.kills(), 0u) << "no kill point ever fired";
  EXPECT_GT(verified_total, 0) << "oracle never verified anything";

  // Final reopen with a healthy disk: everything acked is still there.
  DB* raw = nullptr;
  ASSERT_TRUE(ClsmDb::Open(options, dbpath, &raw).ok());
  std::unique_ptr<DB> db(raw);
  ReadOptions ro;
  std::string v;
  for (const auto& kv : acked) {
    ASSERT_TRUE(db->Get(ro, kv.first, &v).ok()) << kv.first;
    ASSERT_EQ(kv.second, v) << kv.first;
  }
}

}  // namespace
}  // namespace clsm
