// Model-based randomized testing: long random operation sequences executed
// against both the DB and an in-memory reference model, with periodic
// full-state comparison through gets, scans and snapshots — across every DB
// variant and multiple seeds. This is the broadest black-box net for
// cross-component bugs (memtable/flush/compaction/iterator interactions).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/baselines/factory.h"
#include "src/core/write_batch.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

struct ModelParam {
  DbVariant variant;
  uint32_t seed;
};

class ModelTest : public ::testing::TestWithParam<ModelParam> {
 protected:
  ModelTest() : dir_("model") {
    // Small limits: force constant rolls, flushes and compactions so the
    // model exercises every component migration path.
    options_.write_buffer_size = 32 * 1024;
    options_.target_file_size = 32 * 1024;
    options_.level1_max_bytes = 128 * 1024;
    Reopen();
  }

  void Reopen() {
    db_.reset();
    DB* raw = nullptr;
    ASSERT_TRUE(OpenDb(GetParam().variant, options_, dir_.path() + "/db", &raw).ok());
    db_.reset(raw);
  }

  std::string KeyFor(Random& rnd) { return "key" + std::to_string(rnd.Uniform(400)); }

  void CheckEverything() {
    // Point lookups for every key the model has ever seen.
    ReadOptions ro;
    std::string v;
    for (const auto& [k, mv] : model_) {
      Status s = db_->Get(ro, k, &v);
      ASSERT_TRUE(s.ok()) << "missing " << k;
      ASSERT_EQ(mv, v) << "wrong value for " << k;
    }
    for (const auto& k : tombstones_) {
      if (model_.count(k) == 0) {
        ASSERT_TRUE(db_->Get(ro, k, &v).IsNotFound()) << "resurrected " << k;
      }
    }
    // Full ordered scan must equal the model exactly.
    std::unique_ptr<Iterator> it(db_->NewIterator(ro));
    it->SeekToFirst();
    for (const auto& [k, mv] : model_) {
      ASSERT_TRUE(it->Valid()) << "scan ended early before " << k;
      ASSERT_EQ(k, it->key().ToString());
      ASSERT_EQ(mv, it->value().ToString());
      it->Next();
    }
    ASSERT_FALSE(it->Valid()) << "scan has extra key " << (it->Valid() ? it->key().ToString() : "");
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
  std::map<std::string, std::string> model_;
  std::set<std::string> tombstones_;
};

TEST_P(ModelTest, RandomOpsMatchModel) {
  Random rnd(GetParam().seed);
  WriteOptions wo;
  ReadOptions ro;

  // Snapshot checkpoints: (handle, model copy).
  std::vector<std::pair<const Snapshot*, std::map<std::string, std::string>>> snapshots;

  for (int step = 0; step < 6000; step++) {
    int dice = rnd.Uniform(100);
    if (dice < 55) {
      std::string k = KeyFor(rnd);
      std::string v = "v" + std::to_string(step) + "-" + std::string(rnd.Uniform(120), 'x');
      ASSERT_TRUE(db_->Put(wo, k, v).ok());
      model_[k] = v;
    } else if (dice < 75) {
      std::string k = KeyFor(rnd);
      ASSERT_TRUE(db_->Delete(wo, k).ok());
      model_.erase(k);
      tombstones_.insert(k);
    } else if (dice < 80) {
      WriteBatch batch;
      std::map<std::string, std::string> staged;
      std::set<std::string> staged_deletes;
      for (int i = 0; i < 5; i++) {
        std::string k = KeyFor(rnd);
        if (rnd.OneIn(4)) {
          batch.Delete(k);
          staged.erase(k);
          staged_deletes.insert(k);
        } else {
          std::string v = "b" + std::to_string(step) + "." + std::to_string(i);
          batch.Put(k, v);
          staged[k] = v;
          staged_deletes.erase(k);
        }
      }
      ASSERT_TRUE(db_->Write(wo, &batch).ok());
      for (const auto& k : staged_deletes) {
        model_.erase(k);
        tombstones_.insert(k);
      }
      for (const auto& [k, v] : staged) {
        model_[k] = v;
      }
    } else if (dice < 90) {
      // Random point check.
      std::string k = KeyFor(rnd);
      std::string v;
      Status s = db_->Get(ro, k, &v);
      auto mit = model_.find(k);
      if (mit == model_.end()) {
        ASSERT_TRUE(s.IsNotFound()) << k;
      } else {
        ASSERT_TRUE(s.ok()) << k;
        ASSERT_EQ(mit->second, v);
      }
    } else if (dice < 94 && snapshots.size() < 4) {
      snapshots.emplace_back(db_->GetSnapshot(), model_);
    } else if (dice < 98 && !snapshots.empty()) {
      // Verify a random snapshot still sees its frozen state, then release.
      size_t idx = rnd.Uniform(static_cast<int>(snapshots.size()));
      ReadOptions rs;
      rs.snapshot = snapshots[idx].first;
      const auto& frozen = snapshots[idx].second;
      for (int probe = 0; probe < 5; probe++) {
        std::string k = KeyFor(rnd);
        std::string v;
        Status s = db_->Get(rs, k, &v);
        auto fit = frozen.find(k);
        if (fit == frozen.end()) {
          ASSERT_TRUE(s.IsNotFound()) << "snapshot leak for " << k;
        } else {
          ASSERT_TRUE(s.ok()) << "snapshot lost " << k;
          ASSERT_EQ(fit->second, v);
        }
      }
      db_->ReleaseSnapshot(snapshots[idx].first);
      snapshots.erase(snapshots.begin() + idx);
    } else {
      // Range scan of ~10 keys vs model.
      std::string start = KeyFor(rnd);
      std::unique_ptr<Iterator> it(db_->NewIterator(ro));
      auto mit = model_.lower_bound(start);
      int n = 0;
      for (it->Seek(start); it->Valid() && n < 10; it->Next(), ++mit, ++n) {
        ASSERT_TRUE(mit != model_.end()) << "scan produced extra " << it->key().ToString();
        ASSERT_EQ(mit->first, it->key().ToString());
        ASSERT_EQ(mit->second, it->value().ToString());
      }
      if (n < 10) {
        ASSERT_TRUE(mit == model_.end());
      }
    }

    if (step % 1500 == 1499) {
      db_->WaitForMaintenance();
      CheckEverything();
    }
  }

  for (auto& [snap, frozen] : snapshots) {
    db_->ReleaseSnapshot(snap);
  }
  db_->WaitForMaintenance();
  CheckEverything();

  // Persistence: everything survives a reopen.
  Reopen();
  CheckEverything();
}

std::vector<ModelParam> ModelParams() {
  std::vector<ModelParam> params;
  for (DbVariant v : AllVariants()) {
    params.push_back({v, 301});
  }
  // Extra seeds for the paper's contribution.
  params.push_back({DbVariant::kClsm, 777});
  params.push_back({DbVariant::kClsm, 123456});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModelTest, ::testing::ValuesIn(ModelParams()),
                         [](const ::testing::TestParamInfo<ModelParam>& info) {
                           std::string name = VariantName(info.param.variant);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name + "_seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace clsm
