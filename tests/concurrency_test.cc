// Concurrency invariants of the full cLSM stack under memtable rolls,
// flushes and compactions: gets never lose committed data, pointers swap
// safely under readers (§3.1), and operations stay atomic end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/baselines/factory.h"
#include "src/core/clsm_db.h"
#include "src/core/write_batch.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : dir_("conc") {
    // Tiny memtable: constant rolls/flushes while the test runs, maximizing
    // pointer-swap interleavings (the beforeMerge/afterMerge windows).
    options_.write_buffer_size = 128 * 1024;
    options_.target_file_size = 128 * 1024;
    DB* db = nullptr;
    Status s = ClsmDb::Open(options_, dir_.path() + "/db", &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  ScratchDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
};

// Read-your-writes across component boundaries: a reader that wrote key k
// must find it, no matter which component it has migrated to.
TEST_F(ConcurrencyTest, ReadYourWritesAcrossRolls) {
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 8000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      WriteOptions wo;
      ReadOptions ro;
      std::string value(200, static_cast<char>('a' + t));
      for (int i = 0; i < kKeysPerThread && !failed.load(); i++) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!db_->Put(wo, key, value).ok()) {
          failed = true;
          break;
        }
        std::string got;
        Status s = db_->Get(ro, key, &got);
        if (!s.ok() || got != value) {
          failed = true;
        }
        // Occasionally re-check a much older key (now likely on disk).
        if (i > 1000 && (i % 100) == 0) {
          std::string old_key = "t" + std::to_string(t) + "-" + std::to_string(i - 1000);
          s = db_->Get(ro, old_key, &got);
          if (!s.ok() || got != value) {
            failed = true;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load()) << "a committed write became unreadable during a roll";
}

// No committed write is ever lost: after a heavy concurrent write phase and
// full maintenance, every key is present with its final value.
TEST_F(ConcurrencyTest, NoLostUpdatesUnderRolls) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      WriteOptions wo;
      for (int i = 0; i < kKeys; i++) {
        // All threads write all keys; last writer wins, any value of the
        // right shape is acceptable.
        db_->Put(wo, "shared-" + std::to_string(i),
                 "from-" + std::to_string(t) + "-" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  db_->WaitForMaintenance();
  ReadOptions ro;
  for (int i = 0; i < kKeys; i++) {
    std::string v;
    ASSERT_TRUE(db_->Get(ro, "shared-" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ(0u, v.find("from-"));
    EXPECT_NE(std::string::npos, v.find("-" + std::to_string(i)));
  }
}

// Scans running concurrently with writers and rolls must always observe a
// consistent snapshot: for the invariant pair (x, y) maintained equal via
// batches, every scan sees x == y.
TEST_F(ConcurrencyTest, ScansDuringRollsStayConsistent) {
  WriteOptions wo;
  {
    WriteBatch init;
    init.Put("inv-x", "0");
    init.Put("inv-y", "0");
    ASSERT_TRUE(db_->Write(wo, &init).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int i = 1; !stop.load(); i++) {
      WriteBatch batch;
      batch.Put("inv-x", std::to_string(i));
      batch.Put("inv-y", std::to_string(i));
      db_->Write(wo, &batch);
      // Interleave filler puts to force rolls mid-stream.
      db_->Put(wo, "filler-" + std::to_string(i % 5000), std::string(300, 'f'));
    }
  });

  for (int round = 0; round < 300 && !failed.load(); round++) {
    ReadOptions ro;
    std::unique_ptr<Iterator> iter(db_->NewIterator(ro));
    std::string x, y;
    for (iter->Seek("inv-"); iter->Valid() && iter->key().starts_with("inv-"); iter->Next()) {
      if (iter->key() == Slice("inv-x")) {
        x = iter->value().ToString();
      } else if (iter->key() == Slice("inv-y")) {
        y = iter->value().ToString();
      }
    }
    if (x != y) {
      failed = true;
    }
  }
  stop = true;
  writer.join();
  EXPECT_FALSE(failed.load()) << "scan observed a torn invariant pair";
}

// Gets must never block on the merge: while a flood of writes causes
// continuous rolls, a reader thread must keep completing operations.
TEST_F(ConcurrencyTest, GetsProgressDuringMerges) {
  WriteOptions wo;
  ASSERT_TRUE(db_->Put(wo, "probe", "value").ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> get_count{0};

  std::thread reader([&] {
    ReadOptions ro;
    std::string v;
    while (!stop.load()) {
      if (db_->Get(ro, "probe", &v).ok()) {
        get_count.fetch_add(1);
      }
    }
  });

  // Write enough to trigger dozens of rolls/flushes.
  for (int i = 0; i < 30000; i++) {
    ASSERT_TRUE(db_->Put(wo, "flood-" + std::to_string(i), std::string(128, 'w')).ok());
  }
  stop = true;
  reader.join();
  // On any functioning build this is hundreds of thousands; demand a floor
  // that a blocking implementation would miss by orders of magnitude.
  EXPECT_GT(get_count.load(), 1000u);
}

// Mixed full-API hammer: all operation types from all threads on a rolling
// store, checked only for crash/assert/corruption freedom plus basic sanity.
TEST_F(ConcurrencyTest, FullApiHammer) {
  constexpr int kThreads = 6;
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      WriteOptions wo;
      ReadOptions ro;
      std::string v;
      for (int i = 0; i < 4000 && !stop.load(); i++) {
        std::string key = "h" + std::to_string((t * 7919 + i * 13) % 2000);
        switch (i % 5) {
          case 0:
            db_->Put(wo, key, "val-" + std::to_string(i));
            break;
          case 1:
            db_->Get(ro, key, &v);
            break;
          case 2: {
            std::unique_ptr<Iterator> iter(db_->NewIterator(ro));
            int n = 0;
            for (iter->Seek(key); iter->Valid() && n < 5; iter->Next()) {
              n++;
            }
            break;
          }
          case 3: {
            const Snapshot* snap = db_->GetSnapshot();
            ReadOptions rs;
            rs.snapshot = snap;
            db_->Get(rs, key, &v);
            db_->ReleaseSnapshot(snap);
            break;
          }
          case 4:
            db_->ReadModifyWrite(wo, key,
                                 [](const std::optional<Slice>& cur)
                                     -> std::optional<std::string> {
                                   return cur ? cur->ToString() + "+" : "base";
                                 });
            break;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  db_->WaitForMaintenance();
  std::string v;
  Status s = db_->Get(ReadOptions(), "h0", &v);
  EXPECT_TRUE(s.ok() || s.IsNotFound());
}

}  // namespace
}  // namespace clsm
