#include <gtest/gtest.h>

#include <memory>

#include "src/util/env.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  EnvTest() : dir_("env"), env_(Env::Default()) {}

  ScratchDir dir_;
  Env* env_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  std::string fname = dir_.path() + "/f1";
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile(fname, &wf).ok());
  ASSERT_TRUE(wf->Append("hello ").ok());
  ASSERT_TRUE(wf->Append("world").ok());
  ASSERT_TRUE(wf->Sync().ok());
  ASSERT_TRUE(wf->Close().ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, fname, &contents).ok());
  EXPECT_EQ("hello world", contents);
}

TEST_F(EnvTest, LargeBufferedWrites) {
  // Exercise the WritableFile buffering edge cases: writes larger than the
  // internal buffer and writes straddling its boundary.
  std::string fname = dir_.path() + "/big";
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile(fname, &wf).ok());
  std::string expected;
  for (int i = 0; i < 10; i++) {
    std::string chunk((i + 1) * 17 * 1024, static_cast<char>('a' + i));
    ASSERT_TRUE(wf->Append(chunk).ok());
    expected += chunk;
  }
  ASSERT_TRUE(wf->Close().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, fname, &contents).ok());
  EXPECT_EQ(expected.size(), contents.size());
  EXPECT_EQ(expected, contents);
}

TEST_F(EnvTest, RandomAccessRead) {
  std::string fname = dir_.path() + "/ra";
  ASSERT_TRUE(WriteStringToFileSync(env_, "0123456789abcdef", fname).ok());

  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &rf).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(rf->Read(4, 6, &result, scratch).ok());
  EXPECT_EQ("456789", result.ToString());
  // Reads past EOF return fewer bytes.
  ASSERT_TRUE(rf->Read(12, 16, &result, scratch).ok());
  EXPECT_EQ("cdef", result.ToString());
}

TEST_F(EnvTest, SequentialReadAndSkip) {
  std::string fname = dir_.path() + "/seq";
  ASSERT_TRUE(WriteStringToFileSync(env_, "0123456789", fname).ok());
  std::unique_ptr<SequentialFile> sf;
  ASSERT_TRUE(env_->NewSequentialFile(fname, &sf).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(sf->Read(3, &result, scratch).ok());
  EXPECT_EQ("012", result.ToString());
  ASSERT_TRUE(sf->Skip(4).ok());
  ASSERT_TRUE(sf->Read(8, &result, scratch).ok());
  EXPECT_EQ("789", result.ToString());
}

TEST_F(EnvTest, FileManagement) {
  std::string a = dir_.path() + "/a";
  std::string b = dir_.path() + "/b";
  ASSERT_TRUE(WriteStringToFileSync(env_, "data", a).ok());
  EXPECT_TRUE(env_->FileExists(a));
  EXPECT_FALSE(env_->FileExists(b));

  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(a, &size).ok());
  EXPECT_EQ(4u, size);

  ASSERT_TRUE(env_->RenameFile(a, b).ok());
  EXPECT_FALSE(env_->FileExists(a));
  EXPECT_TRUE(env_->FileExists(b));

  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_.path(), &children).ok());
  bool found = false;
  for (const auto& c : children) {
    if (c == "b") {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  ASSERT_TRUE(env_->RemoveFile(b).ok());
  EXPECT_FALSE(env_->FileExists(b));
  EXPECT_TRUE(env_->RemoveFile(b).IsNotFound() || !env_->RemoveFile(b).ok());
}

TEST_F(EnvTest, MissingFileErrors) {
  std::unique_ptr<SequentialFile> sf;
  Status s = env_->NewSequentialFile(dir_.path() + "/nope", &sf);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
}

}  // namespace
}  // namespace clsm
