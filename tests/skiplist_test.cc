#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/arena/arena.h"
#include "src/skiplist/concurrent_skiplist.h"
#include "src/util/coding.h"
#include "src/util/random.h"

namespace clsm {
namespace {

// Keys are arena-encoded fixed64 big-endian-ish values so pointer keys have
// stable storage. Comparator decodes and compares numerically.
struct U64Comparator {
  int operator()(const char* a, const char* b) const {
    uint64_t va = DecodeFixed64(a);
    uint64_t vb = DecodeFixed64(b);
    if (va < vb) {
      return -1;
    }
    if (va > vb) {
      return +1;
    }
    return 0;
  }
};

typedef ConcurrentSkipList<const char*, U64Comparator> TestList;

class SkipListTest : public ::testing::Test {
 protected:
  const char* MakeKey(uint64_t v) {
    char* p = arena_.AllocateAligned(8);
    EncodeFixed64(p, v);
    return p;
  }

  ConcurrentArena arena_;
};

TEST_F(SkipListTest, Empty) {
  TestList list(U64Comparator(), &arena_);
  EXPECT_FALSE(list.Contains(MakeKey(10)));

  TestList::Iterator iter(&list);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
  iter.Seek(MakeKey(100));
  EXPECT_FALSE(iter.Valid());
  iter.SeekToLast();
  EXPECT_FALSE(iter.Valid());
}

TEST_F(SkipListTest, InsertAndLookup) {
  const int N = 2000;
  const int R = 5000;
  Random rnd(1000);
  std::set<uint64_t> keys;
  TestList list(U64Comparator(), &arena_);
  for (int i = 0; i < N; i++) {
    uint64_t key = rnd.Next() % R;
    if (keys.insert(key).second) {
      list.Insert(MakeKey(key));
    }
  }
  EXPECT_EQ(keys.size(), list.ApproxCount());

  for (uint64_t i = 0; i < R; i++) {
    EXPECT_EQ(keys.count(i) == 1, list.Contains(MakeKey(i))) << i;
  }

  // Forward iteration yields exactly the sorted key set.
  {
    TestList::Iterator iter(&list);
    iter.SeekToFirst();
    for (uint64_t expected : keys) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(expected, DecodeFixed64(iter.key()));
      iter.Next();
    }
    EXPECT_FALSE(iter.Valid());
  }

  // Seek semantics: first element >= target.
  {
    TestList::Iterator iter(&list);
    for (uint64_t probe = 0; probe < R; probe += 97) {
      iter.Seek(MakeKey(probe));
      auto it = keys.lower_bound(probe);
      if (it == keys.end()) {
        EXPECT_FALSE(iter.Valid());
      } else {
        ASSERT_TRUE(iter.Valid());
        EXPECT_EQ(*it, DecodeFixed64(iter.key()));
      }
    }
  }

  // Backward iteration.
  {
    TestList::Iterator iter(&list);
    iter.SeekToLast();
    for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(*it, DecodeFixed64(iter.key()));
      iter.Prev();
    }
    EXPECT_FALSE(iter.Valid());
  }
}

TEST_F(SkipListTest, ConcurrentInsertAllVisible) {
  TestList list(U64Comparator(), &arena_);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        // Disjoint key ranges per thread; interleaved globally.
        list.Insert(MakeKey(static_cast<uint64_t>(i) * kThreads + t));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(static_cast<size_t>(kThreads * kPerThread), list.ApproxCount());

  // Every key present, in exact sorted order with no gaps.
  TestList::Iterator iter(&list);
  iter.SeekToFirst();
  for (uint64_t expected = 0; expected < kThreads * kPerThread; expected++) {
    ASSERT_TRUE(iter.Valid());
    ASSERT_EQ(expected, DecodeFixed64(iter.key()));
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
}

// Weak consistency property (paper §3.2): an element present for the whole
// duration of a scan is returned by the scan, even with concurrent inserts.
TEST_F(SkipListTest, WeaklyConsistentIterators) {
  TestList list(U64Comparator(), &arena_);
  // Pre-populate even keys 0..2N.
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i <= kN; i++) {
    list.Insert(MakeKey(i * 2));
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Concurrently insert odd keys.
    for (uint64_t i = 0; i < kN && !stop.load(); i++) {
      list.Insert(MakeKey(i * 2 + 1));
    }
  });

  // Scan repeatedly; every even key must always be observed.
  for (int round = 0; round < 5; round++) {
    TestList::Iterator iter(&list);
    iter.SeekToFirst();
    uint64_t next_even = 0;
    while (iter.Valid()) {
      uint64_t k = DecodeFixed64(iter.key());
      if ((k & 1) == 0) {
        ASSERT_EQ(next_even, k) << "scan missed a stable element";
        next_even += 2;
      }
      iter.Next();
    }
    ASSERT_EQ((kN + 1) * 2, next_even);
  }
  stop = true;
  writer.join();
}

TEST_F(SkipListTest, InsertIfNoConflictDetectsSuccessorConflict) {
  TestList list(U64Comparator(), &arena_);
  list.Insert(MakeKey(100));
  // Conflict predicate that rejects when the successor is key 100.
  bool inserted = list.InsertIfNoConflict(
      MakeKey(50), [&](const char* prev, bool prev_is_head, const char* succ, bool succ_at_end) {
        return !succ_at_end && DecodeFixed64(succ) == 100;
      });
  EXPECT_FALSE(inserted);
  EXPECT_FALSE(list.Contains(MakeKey(50)));

  // Accepting predicate inserts.
  inserted = list.InsertIfNoConflict(
      MakeKey(50),
      [&](const char*, bool, const char*, bool) { return false; });
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(list.Contains(MakeKey(50)));
}

TEST_F(SkipListTest, InsertIfNoConflictSeesPredecessor) {
  TestList list(U64Comparator(), &arena_);
  list.Insert(MakeKey(10));
  uint64_t observed_prev = 0;
  bool observed_head = true;
  list.InsertIfNoConflict(MakeKey(20), [&](const char* prev, bool prev_is_head, const char* succ,
                                           bool succ_at_end) {
    observed_head = prev_is_head;
    if (!prev_is_head) {
      observed_prev = DecodeFixed64(prev);
    }
    EXPECT_TRUE(succ_at_end);
    return false;
  });
  EXPECT_FALSE(observed_head);
  EXPECT_EQ(10u, observed_prev);
}

// Under concurrent conditional inserts of the same key position, at most
// one CAS can win per round — losers must report conflict, not insert.
TEST_F(SkipListTest, ConditionalInsertRaceOneWinner) {
  for (int round = 0; round < 200; round++) {
    ConcurrentArena arena;
    TestList list(U64Comparator(), &arena);
    std::atomic<int> winners{0};
    std::atomic<int> start{0};
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        char* key = arena.AllocateAligned(8);
        EncodeFixed64(key, 1000 + t);  // distinct keys, same splice point
        start.fetch_add(1);
        while (start.load() < kThreads) {
        }
        // Conflict rule: reject if any neighbor exists (only the first
        // inserter of the empty region can win).
        bool ok = list.InsertIfNoConflict(
            key, [](const char* prev, bool prev_is_head, const char* succ, bool succ_at_end) {
              return !prev_is_head || !succ_at_end;
            });
        if (ok) {
          winners.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    ASSERT_LE(winners.load(), 1) << "two conditional inserts won the same race";
    ASSERT_EQ(winners.load() == 1 ? 1u : 0u, list.ApproxCount());
  }
}

}  // namespace
}  // namespace clsm
