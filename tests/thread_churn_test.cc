// Thread-lifecycle stress: thousands of short-lived threads against one DB.
//
// The production scenario the slot registry exists for: connection handlers
// and churning pool workers, each touching the Active timestamp set and the
// epoch guard once, then dying. Before reclamation the 513th distinct
// thread abort()ed the process; these tests drive 4x that through one
// ClsmDb and assert (a) no abort and no lost operations, (b) snapshot
// consistency holds throughout, (c) the slot `in_use` gauges return to
// baseline once the churn threads are gone and `reclaims` counted them,
// and (d) the TLS registry caches stay bounded across DB open/close cycles
// (the old per-mechanism reg_map leaked one entry per cycle).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/clsm_db.h"
#include "src/sync/active_set.h"
#include "src/sync/thread_slots.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

// Total short-lived threads to churn (override: CLSM_CHURN_THREADS).
int ChurnThreads() {
  const char* env = std::getenv("CLSM_CHURN_THREADS");
  int n = env != nullptr ? std::atoi(env) : 2048;
  return n > 0 ? n : 2048;
}

// Pulls "key":N out of the named block of a stats-JSON string. Crude but
// sufficient for the flat gauge blocks this test reads.
uint64_t JsonGauge(const std::string& json, const std::string& block, const std::string& key) {
  size_t b = json.find("\"" + block + "\"");
  EXPECT_NE(b, std::string::npos) << "no block " << block << " in " << json;
  if (b == std::string::npos) {
    return 0;
  }
  const std::string needle = "\"" + key + "\":";
  size_t k = json.find(needle, b);
  EXPECT_NE(k, std::string::npos) << "no key " << key << " after " << block;
  if (k == std::string::npos) {
    return 0;
  }
  return std::strtoull(json.c_str() + k + needle.size(), nullptr, 10);
}

TEST(ThreadChurnTest, ThousandsOfShortLivedThreadsOneDb) {
  ScratchDir dir("churn");
  Options options;
  options.write_buffer_size = 1 << 20;
  options.compaction_threads = 1;
  DB* raw = nullptr;
  ASSERT_TRUE(ClsmDb::Open(options, dir.path() + "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  WriteOptions wo;
  ReadOptions ro;
  // Prime the main thread's slots and the background threads' steady state
  // before capturing the gauge baseline the churn must return to.
  ASSERT_TRUE(db->Put(wo, "warmup", "v").ok());
  std::string v;
  ASSERT_TRUE(db->Get(ro, "warmup", &v).ok());
  db->WaitForMaintenance();
  std::string json = db->GetProperty("clsm.stats.json");
  const uint64_t base_active_in_use = JsonGauge(json, "active_set", "in_use");
  const uint64_t base_epoch_in_use = JsonGauge(json, "epoch", "in_use");

  const int total = ChurnThreads();
  constexpr int kBatch = 32;
  std::atomic<int> failures{0};
  int spawned = 0;
  while (spawned < total) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kBatch && spawned < total; t++, spawned++) {
      const int n = spawned;
      threads.emplace_back([&db, &failures, n] {
        WriteOptions wopts;
        ReadOptions ropts;
        const std::string key = "key-" + std::to_string(n);
        const std::string v1 = "v1-" + std::to_string(n);
        std::string got;
        if (!db->Put(wopts, key, v1).ok() ||
            !db->Get(ropts, key, &got).ok() || got != v1) {
          failures.fetch_add(1);
          return;
        }
        // Snapshot consistency under churn: a put issued after the snapshot
        // draws a timestamp above snapTime (getTS rollback), so the snapshot
        // must never see v2. It may also legitimately miss v1: serializable
        // getSnap sets snapTime below the oldest in-flight put (Algorithm 2),
        // which can predate our own completed write. So the snapshot read is
        // either v1 or NotFound — anything else is a consistency violation.
        const Snapshot* snap = db->GetSnapshot();
        ReadOptions snap_ropts;
        snap_ropts.snapshot = snap;
        if (!db->Put(wopts, key, "v2-" + std::to_string(n)).ok()) {
          failures.fetch_add(1);
        } else {
          got.clear();
          const Status snap_read = db->Get(snap_ropts, key, &got);
          const bool consistent =
              (snap_read.ok() && got == v1) || snap_read.IsNotFound();
          if (!consistent) {
            failures.fetch_add(1);
          }
        }
        db->ReleaseSnapshot(snap);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  EXPECT_EQ(0, failures.load());

  json = db->GetProperty("clsm.stats.json");
  // Only writer threads register in the Active set: with the churn threads
  // dead, exactly the baseline holders (the main thread) remain.
  EXPECT_EQ(base_active_in_use, JsonGauge(json, "active_set", "in_use"));
  // Background threads (maintenance, compaction worker) may register their
  // epoch slot lazily at any point, so allow that drift — but every churn
  // thread's slot must be back.
  EXPECT_LE(JsonGauge(json, "epoch", "in_use"), base_epoch_in_use + 2);
  EXPECT_GT(JsonGauge(json, "active_set", "reclaims"), 0u);
  EXPECT_GT(JsonGauge(json, "epoch", "reclaims"), 0u);
  // Reclamation kept the registries far below the 512-slot ceiling even
  // though `total` distinct threads used them.
  EXPECT_LT(JsonGauge(json, "active_set", "high_water"),
            static_cast<uint64_t>(ActiveTimestampSet::kMaxThreads));
  EXPECT_EQ(0u, JsonGauge(json, "active_set", "overflow_ops"));

  // The data survived the churn.
  std::string last;
  ASSERT_TRUE(db->Get(ro, "key-0", &last).ok());
  EXPECT_EQ("v2-0", last);
}

TEST(ThreadChurnTest, OpenCloseChurnKeepsTlsCachesBounded) {
  // A long-lived thread (here: main) serving many DB open/close cycles must
  // not accumulate one TLS cache entry per destroyed registry — both copies
  // of the old leak (active_set and ref_guard reg_maps) are regression-
  // covered by the registry's lazy purge.
  ScratchDir dir("churn-reopen");
  Options options;
  options.write_buffer_size = 1 << 20;
  for (int cycle = 0; cycle < 30; cycle++) {
    DB* raw = nullptr;
    ASSERT_TRUE(ClsmDb::Open(options, dir.path() + "/db", &raw).ok());
    std::unique_ptr<DB> db(raw);
    WriteOptions wo;
    ReadOptions ro;
    const std::string key = "cycle-" + std::to_string(cycle);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
    std::string v;
    ASSERT_TRUE(db->Get(ro, key, &v).ok());
  }
  // Each cycle touched two fresh registries (Active set + engine epochs);
  // without purging the map would now hold 60+ entries.
  EXPECT_LE(ThreadSlotRegistry::ThreadMapSizeForTest(), 8u);
}

}  // namespace
}  // namespace clsm
