// The in-memory Env must behave exactly like the POSIX one (the DB layers
// cannot tell them apart), and a whole DB must run hermetically on it.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/clsm_db.h"
#include "src/util/mem_env.h"

namespace clsm {
namespace {

class MemEnvTest : public ::testing::Test {
 protected:
  MemEnvTest() : env_(NewMemEnv(Env::Default())) {}

  std::unique_ptr<Env> env_;
};

TEST_F(MemEnvTest, Basics) {
  uint64_t file_size;
  std::unique_ptr<WritableFile> writable_file;
  std::vector<std::string> children;

  ASSERT_TRUE(env_->CreateDir("/dir").ok());

  // Check that the directory is empty.
  EXPECT_FALSE(env_->FileExists("/dir/non_existent"));
  EXPECT_FALSE(env_->GetFileSize("/dir/non_existent", &file_size).ok());
  ASSERT_TRUE(env_->GetChildren("/dir", &children).ok());
  EXPECT_EQ(0u, children.size());

  // Create a file.
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  writable_file.reset();

  EXPECT_TRUE(env_->FileExists("/dir/f"));
  ASSERT_TRUE(env_->GetFileSize("/dir/f", &file_size).ok());
  EXPECT_EQ(0u, file_size);
  ASSERT_TRUE(env_->GetChildren("/dir", &children).ok());
  ASSERT_EQ(1u, children.size());
  EXPECT_EQ("f", children[0]);

  // Write to the file.
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("abc").ok());
  writable_file.reset();

  ASSERT_TRUE(env_->GetFileSize("/dir/f", &file_size).ok());
  EXPECT_EQ(3u, file_size);

  // Rename, remove.
  ASSERT_TRUE(env_->RenameFile("/dir/f", "/dir/g").ok());
  EXPECT_FALSE(env_->FileExists("/dir/f"));
  EXPECT_TRUE(env_->FileExists("/dir/g"));
  ASSERT_TRUE(env_->RemoveFile("/dir/g").ok());
  EXPECT_FALSE(env_->FileExists("/dir/g"));
  EXPECT_FALSE(env_->RemoveFile("/dir/g").ok());
}

TEST_F(MemEnvTest, ReadWrite) {
  std::unique_ptr<WritableFile> writable_file;
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("hello ").ok());
  ASSERT_TRUE(writable_file->Append("world").ok());
  writable_file.reset();

  std::unique_ptr<SequentialFile> seq_file;
  char scratch[100];
  Slice result;
  ASSERT_TRUE(env_->NewSequentialFile("/dir/f", &seq_file).ok());
  ASSERT_TRUE(seq_file->Read(5, &result, scratch).ok());
  EXPECT_EQ("hello", result.ToString());
  ASSERT_TRUE(seq_file->Skip(1).ok());
  ASSERT_TRUE(seq_file->Read(100, &result, scratch).ok());
  EXPECT_EQ("world", result.ToString());
  ASSERT_TRUE(seq_file->Read(100, &result, scratch).ok());
  EXPECT_EQ(0u, result.size());  // EOF

  std::unique_ptr<RandomAccessFile> rand_file;
  ASSERT_TRUE(env_->NewRandomAccessFile("/dir/f", &rand_file).ok());
  ASSERT_TRUE(rand_file->Read(6, 5, &result, scratch).ok());
  EXPECT_EQ("world", result.ToString());
  ASSERT_TRUE(rand_file->Read(0, 5, &result, scratch).ok());
  EXPECT_EQ("hello", result.ToString());
  // Past-EOF read fails cleanly.
  EXPECT_FALSE(rand_file->Read(1000, 5, &result, scratch).ok());
}

TEST_F(MemEnvTest, OpenReaderSurvivesRemoval) {
  std::unique_ptr<WritableFile> writable_file;
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("persistent").ok());
  writable_file.reset();

  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_TRUE(env_->NewRandomAccessFile("/dir/f", &reader).ok());
  ASSERT_TRUE(env_->RemoveFile("/dir/f").ok());

  // POSIX unlink semantics: the open reader still works.
  char scratch[100];
  Slice result;
  ASSERT_TRUE(reader->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ("persistent", result.ToString());
}

TEST_F(MemEnvTest, OverwriteTruncates) {
  std::unique_ptr<WritableFile> writable_file;
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("long original contents").ok());
  writable_file.reset();
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("x").ok());
  writable_file.reset();
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("/dir/f", &size).ok());
  EXPECT_EQ(1u, size);
}

TEST_F(MemEnvTest, WholeDbRunsHermetically) {
  Options options;
  options.env = env_.get();
  options.write_buffer_size = 64 * 1024;
  DB* raw = nullptr;
  ASSERT_TRUE(ClsmDb::Open(options, "/memdb", &raw).ok());
  std::unique_ptr<DB> db(raw);

  WriteOptions wo;
  ReadOptions ro;
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(db->Put(wo, "key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  db->WaitForMaintenance();  // flushes/compactions all in RAM
  std::string v;
  for (int i = 0; i < 10000; i += 317) {
    ASSERT_TRUE(db->Get(ro, "key" + std::to_string(i), &v).ok());
    EXPECT_EQ("value" + std::to_string(i), v);
  }

  // Reopen against the same MemEnv: recovery works from RAM "disk".
  db.reset();
  ASSERT_TRUE(ClsmDb::Open(options, "/memdb", &raw).ok());
  db.reset(raw);
  ASSERT_TRUE(db->Get(ro, "key317", &v).ok());
  EXPECT_EQ("value317", v);
}

}  // namespace
}  // namespace clsm
