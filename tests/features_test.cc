// Tests of the optional/extension features: stats counters, linearizable
// snapshots (§3.2.1's strengthened getSnap), and the dedicated flush
// thread (§5.3's reserved-thread configuration).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/core/clsm_db.h"
#include "tests/test_util.h"

namespace clsm {
namespace {

std::unique_ptr<DB> OpenClsm(const std::string& path, const Options& options) {
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options, path, &raw);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return std::unique_ptr<DB>(raw);
}

TEST(StatsTest, CountersTrackOperations) {
  ScratchDir dir("stats");
  Options options;
  auto db = OpenClsm(dir.path() + "/db", options);

  WriteOptions wo;
  ReadOptions ro;
  std::string v;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Put(wo, "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db->Delete(wo, "k0").ok());
  for (int i = 0; i < 5; i++) {
    db->Get(ro, "k1", &v);
  }
  db->ReadModifyWrite(wo, "k1", [](const std::optional<Slice>&) -> std::optional<std::string> {
    return "rmw";
  });
  const Snapshot* snap = db->GetSnapshot();
  db->ReleaseSnapshot(snap);
  { std::unique_ptr<Iterator> it(db->NewIterator(ro)); }

  std::string stats = db->GetProperty("clsm.stats");
  EXPECT_NE(std::string::npos, stats.find("puts=10"));
  EXPECT_NE(std::string::npos, stats.find("deletes=1"));
  EXPECT_NE(std::string::npos, stats.find("total=5"));  // gets
  EXPECT_NE(std::string::npos, stats.find("rmw: total=1"));
  EXPECT_NE(std::string::npos, stats.find("snapshots: acquired=1"));
  EXPECT_NE(std::string::npos, stats.find("iterators=1"));
}

TEST(StatsTest, GetAttributionByComponent) {
  ScratchDir dir("statsattr");
  Options options;
  options.write_buffer_size = 64 * 1024;
  auto db = OpenClsm(dir.path() + "/db", options);

  WriteOptions wo;
  ReadOptions ro;
  std::string v;
  // Key written long ago ends up on disk after churn.
  ASSERT_TRUE(db->Put(wo, "old", "disk-resident").ok());
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db->Put(wo, "fill" + std::to_string(i), std::string(32, 'f')).ok());
  }
  db->WaitForMaintenance();
  ASSERT_TRUE(db->Put(wo, "fresh", "mem-resident").ok());

  ASSERT_TRUE(db->Get(ro, "fresh", &v).ok());
  ASSERT_TRUE(db->Get(ro, "old", &v).ok());
  std::string stats = db->GetProperty("clsm.stats");
  // At least one get served from memory and one from disk.
  EXPECT_EQ(std::string::npos, stats.find("mem=0 "));
  EXPECT_EQ(std::string::npos, stats.find("disk=0\n"));
}

TEST(LinearizableSnapshotTest, SnapshotNeverInThePast) {
  ScratchDir dir("linsnap");
  Options options;
  options.linearizable_snapshots = true;
  auto db = OpenClsm(dir.path() + "/db", options);
  ClsmDb* clsm = static_cast<ClsmDb*>(db.get());

  WriteOptions wo;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(wo, "k", "v" + std::to_string(i)).ok());
    // With linearizable snapshots the scan timestamp must be >= the time
    // counter value before the call — i.e. include the put we just did.
    SequenceNumber before = std::stoull(db->GetProperty("clsm.last-ts"));
    SequenceNumber ts = clsm->AcquireScanTimestampForTest();
    EXPECT_GE(ts, before);
  }
}

TEST(LinearizableSnapshotTest, ReadYourOwnWritesThroughSnapshot) {
  ScratchDir dir("linsnap2");
  Options options;
  options.linearizable_snapshots = true;
  auto db = OpenClsm(dir.path() + "/db", options);

  WriteOptions wo;
  ReadOptions ro;
  for (int i = 0; i < 300; i++) {
    std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "mine").ok());
    const Snapshot* snap = db->GetSnapshot();
    ro.snapshot = snap;
    std::string v;
    // Linearizability: a snapshot taken after my put MUST see it (the
    // default serializable mode may legally miss it under concurrency; with
    // no concurrency both modes see it, so run some concurrent writers).
    Status s = db->Get(ro, key, &v);
    EXPECT_TRUE(s.ok()) << "linearizable snapshot missed own write " << i;
    db->ReleaseSnapshot(snap);
  }

  // Now with concurrent writer churn.
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    WriteOptions cwo;
    int i = 0;
    while (!stop.load()) {
      db->Put(cwo, "churn" + std::to_string(i++ % 100), "x");
    }
  });
  for (int i = 0; i < 300; i++) {
    std::string key = "own" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "mine").ok());
    const Snapshot* snap = db->GetSnapshot();
    ReadOptions rs;
    rs.snapshot = snap;
    std::string v;
    Status s = db->Get(rs, key, &v);
    EXPECT_TRUE(s.ok()) << "linearizable snapshot missed own write under churn " << i;
    db->ReleaseSnapshot(snap);
  }
  stop = true;
  churn.join();
}

TEST(DedicatedFlushThreadTest, FunctionalUnderChurn) {
  ScratchDir dir("flushthread");
  Options options;
  options.dedicated_flush_thread = true;
  options.write_buffer_size = 128 * 1024;
  options.target_file_size = 128 * 1024;
  auto db = OpenClsm(dir.path() + "/db", options);

  WriteOptions wo;
  ReadOptions ro;
  // Heavy write churn: rolls/flushes on the flush thread race compactions
  // on the maintenance thread.
  for (int i = 0; i < 30000; i++) {
    ASSERT_TRUE(db->Put(wo, "key" + std::to_string(i % 5000), std::string(64, 'a' + i % 26)).ok());
  }
  db->WaitForMaintenance();
  std::string v;
  int found = 0;
  for (int i = 0; i < 5000; i += 97) {
    if (db->Get(ro, "key" + std::to_string(i), &v).ok()) {
      found++;
    }
  }
  EXPECT_GT(found, 50);
  std::string stats = db->GetProperty("clsm.stats");
  EXPECT_EQ(std::string::npos, stats.find("flushes=0")) << stats;
}

TEST(DedicatedFlushThreadTest, ConcurrentReadersAndWriters) {
  ScratchDir dir("flushthread2");
  Options options;
  options.dedicated_flush_thread = true;
  options.write_buffer_size = 128 * 1024;
  auto db = OpenClsm(dir.path() + "/db", options);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    ReadOptions ro;
    std::string v;
    while (!stop.load()) {
      Status s = db->Get(ro, "probe", &v);
      if (!s.ok() && !s.IsNotFound()) {
        failed = true;
      }
    }
  });
  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "probe", "v").ok());
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db->Put(wo, "w" + std::to_string(i), std::string(64, 'w')).ok());
  }
  stop = true;
  reader.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace clsm
