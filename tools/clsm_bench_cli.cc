// clsm_bench: db_bench-style command-line workload runner. Runs any
// operation mix against any DB variant with any thread count — the manual
// companion to the per-figure binaries in bench/.
//
//   clsm_bench --db=/tmp/x --variant=clsm --threads=8 --duration_ms=5000 \
//              --writes=0.5 --scans=0.05 --rmws=0.05 --dist=hotblock \
//              --keys=1000000 --value_size=256 --preload=500000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/baselines/factory.h"
#include "src/obs/op_trace.h"
#include "src/obs/slow_op.h"
#include "src/workload/driver.h"
#include "src/workload/generator.h"

using namespace clsm;

namespace {

struct Flags {
  std::string db = "/tmp/clsm-bench-cli";
  std::string variant = "clsm";
  std::string dist = "uniform";
  int threads = 4;
  int duration_ms = 3000;
  double writes = 0.0;
  double scans = 0.0;
  double rmws = 0.0;
  uint64_t keys = 1'000'000;
  uint64_t preload = 200'000;
  size_t key_size = 8;
  size_t value_size = 256;
  size_t write_buffer = 8 << 20;
  bool fresh = true;
  bool stats = false;
  double zipf_theta = 0.99;
  std::string perf_level;      // ""|off|counts|timers
  std::string trace;           // record every op to this file (clsm_trace input)
  std::string slow_log;        // slow-op JSONL sink path
  uint64_t slow_us = 0;        // slow-op threshold (0 = off)
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

int Usage() {
  fprintf(stderr,
          "flags: --db=PATH --variant=clsm|leveldb|hyperleveldb|rocksdb|blsm|striped-rmw\n"
          "       --threads=N --duration_ms=N --writes=F --scans=F --rmws=F\n"
          "       --dist=uniform|hotblock|zipfian --zipf_theta=F\n"
          "       --keys=N --preload=N --key_size=N --value_size=N\n"
          "       --write_buffer=BYTES --keep (reuse existing db) --stats\n"
          "       --perf_level=off|counts|timers (clsm.perf.json of a probe read)\n"
          "       --trace=PATH (record every op; replay with clsm_trace)\n"
          "       --slow_us=N --slow_log=PATH (slow-op JSONL records)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    std::string v;
    if (ParseFlag(argv[i], "db", &v)) {
      flags.db = v;
    } else if (ParseFlag(argv[i], "variant", &v)) {
      flags.variant = v;
    } else if (ParseFlag(argv[i], "dist", &v)) {
      flags.dist = v;
    } else if (ParseFlag(argv[i], "threads", &v)) {
      flags.threads = atoi(v.c_str());
    } else if (ParseFlag(argv[i], "duration_ms", &v)) {
      flags.duration_ms = atoi(v.c_str());
    } else if (ParseFlag(argv[i], "writes", &v)) {
      flags.writes = atof(v.c_str());
    } else if (ParseFlag(argv[i], "scans", &v)) {
      flags.scans = atof(v.c_str());
    } else if (ParseFlag(argv[i], "rmws", &v)) {
      flags.rmws = atof(v.c_str());
    } else if (ParseFlag(argv[i], "keys", &v)) {
      flags.keys = strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "preload", &v)) {
      flags.preload = strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "key_size", &v)) {
      flags.key_size = atoi(v.c_str());
    } else if (ParseFlag(argv[i], "value_size", &v)) {
      flags.value_size = atoi(v.c_str());
    } else if (ParseFlag(argv[i], "write_buffer", &v)) {
      flags.write_buffer = strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "zipf_theta", &v)) {
      flags.zipf_theta = atof(v.c_str());
    } else if (ParseFlag(argv[i], "perf_level", &v)) {
      flags.perf_level = v;
    } else if (ParseFlag(argv[i], "trace", &v)) {
      flags.trace = v;
    } else if (ParseFlag(argv[i], "slow_log", &v)) {
      flags.slow_log = v;
    } else if (ParseFlag(argv[i], "slow_us", &v)) {
      flags.slow_us = strtoull(v.c_str(), nullptr, 10);
    } else if (strcmp(argv[i], "--keep") == 0) {
      flags.fresh = false;
    } else if (strcmp(argv[i], "--stats") == 0) {
      flags.stats = true;
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage();
    }
  }

  DbVariant variant;
  if (!ParseVariant(flags.variant, &variant)) {
    fprintf(stderr, "unknown variant: %s\n", flags.variant.c_str());
    return Usage();
  }

  if (flags.fresh) {
    std::string cmd = "rm -rf " + flags.db;
    int rc = system(cmd.c_str());
    (void)rc;
  }

  Options options;
  options.write_buffer_size = flags.write_buffer;
  if (flags.perf_level == "counts") {
    options.perf_level = PerfLevel::kEnableCounts;
  } else if (flags.perf_level == "timers" || flags.perf_level == "counts+timers") {
    options.perf_level = PerfLevel::kEnableTimers;
  } else if (!flags.perf_level.empty() && flags.perf_level != "off") {
    fprintf(stderr, "unknown perf level: %s\n", flags.perf_level.c_str());
    return Usage();
  }
  std::shared_ptr<TraceWriter> tracer;
  if (!flags.trace.empty()) {
    tracer = std::make_shared<TraceWriter>(flags.trace);
    options.listeners.push_back(tracer);
  }
  std::shared_ptr<SlowOpJsonlSink> slow_sink;
  if (flags.slow_us > 0) {
    options.slow_op_threshold_micros = flags.slow_us;
    if (!flags.slow_log.empty()) {
      slow_sink = std::make_shared<SlowOpJsonlSink>(flags.slow_log);
      options.listeners.push_back(slow_sink);
    }
  }
  DB* raw = nullptr;
  Status s = OpenDb(variant, options, flags.db, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  if (flags.preload > 0 && flags.fresh) {
    fprintf(stderr, "preloading %llu keys...\n",
            static_cast<unsigned long long>(flags.preload));
    s = LoadKeySpace(db.get(), flags.preload, flags.key_size, flags.value_size);
    if (!s.ok()) {
      fprintf(stderr, "preload: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  WorkloadSpec spec;
  spec.write_fraction = flags.writes;
  spec.scan_fraction = flags.scans;
  spec.rmw_fraction = flags.rmws;
  spec.num_keys = flags.keys;
  spec.key_size = flags.key_size;
  spec.value_size = flags.value_size;
  spec.zipf_theta = flags.zipf_theta;
  if (flags.dist == "hotblock") {
    spec.distribution = KeyDist::kHotBlock;
  } else if (flags.dist == "zipfian") {
    spec.distribution = KeyDist::kZipfian;
  } else {
    spec.distribution = KeyDist::kUniform;
  }

  fprintf(stderr, "running %s: %d threads, %d ms...\n", flags.variant.c_str(), flags.threads,
          flags.duration_ms);
  DriverResult result = RunWorkload(db.get(), spec, flags.threads, flags.duration_ms);

  printf("%s  threads=%d  %s\n", flags.variant.c_str(), flags.threads,
         result.Summary().c_str());
  printf("ops: reads=%llu writes=%llu scans=%llu rmws=%llu\n",
         static_cast<unsigned long long>(result.reads),
         static_cast<unsigned long long>(result.writes),
         static_cast<unsigned long long>(result.scans),
         static_cast<unsigned long long>(result.rmws));
  db->WaitForMaintenance();
  if (tracer != nullptr) {
    Status ts = tracer->Finish();
    std::string suffix = ts.ok() ? "" : " (" + ts.ToString() + ")";
    fprintf(stderr, "trace: %llu records -> %s%s\n",
            static_cast<unsigned long long>(tracer->records_written()), flags.trace.c_str(),
            suffix.c_str());
  }
  if (slow_sink != nullptr) {
    fprintf(stderr, "slow ops: %llu records -> %s\n",
            static_cast<unsigned long long>(slow_sink->lines_written()),
            flags.slow_log.c_str());
  }
  if (flags.stats) {
    printf("--- internal stats ---\n%s", db->GetProperty("clsm.stats").c_str());
    printf("levels: %s\n", db->GetProperty("clsm.levels").c_str());
    printf("--- stats json ---\n%s\n", db->GetProperty("clsm.stats.json").c_str());
  }
  if (options.perf_level != PerfLevel::kDisabled) {
    // PerfContext is thread-local; the workers' contexts died with them, so
    // issue one attributed probe read from this thread.
    std::string probe_key, value;
    EncodeWorkloadKey(0, flags.key_size, &probe_key);
    db->Get(ReadOptions(), probe_key, &value);
    printf("--- perf json (probe read) ---\n%s\n",
           db->GetProperty("clsm.perf.json").c_str());
  }
  return 0;
}
