// clsm_dump: inspect a store directory — manifest state, level layout,
// SSTable contents, WAL records. Read-only; safe on a live copy.
//
//   clsm_dump <dbdir>                 overview: levels + files + stats
//   clsm_dump --table <file.sst>      dump one SSTable's entries
//   clsm_dump --wal <file.log>        dump one WAL file's records
//   clsm_dump --scan <dbdir>          full user-visible key dump
//   clsm_dump --stats <dbdir>         internal stats, text + JSON forms
//   clsm_dump --perf <dbdir>          probe reads with full attribution
//   clsm_dump --trace <file.trace>    op mix / key skew / latency summary
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/core/clsm_db.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/filename.h"
#include "src/lsm/repair.h"
#include "src/lsm/storage_engine.h"
#include "src/obs/op_trace.h"
#include "src/obs/perf_context.h"
#include "src/table/table.h"
#include "src/util/env.h"
#include "src/wal/log_reader.h"

namespace clsm {
namespace {

void PrintInternalEntry(const Slice& ikey, const Slice& value) {
  ParsedInternalKey parsed;
  if (!ParseInternalKey(ikey, &parsed)) {
    printf("  <corrupt internal key, %zu bytes>\n", ikey.size());
    return;
  }
  printf("  '%s' @ ts=%llu : %s%.*s%s\n", parsed.user_key.ToString().c_str(),
         static_cast<unsigned long long>(parsed.sequence),
         parsed.type == kTypeDeletion ? "<deleted>" : "'",
         parsed.type == kTypeDeletion ? 0 : static_cast<int>(std::min<size_t>(value.size(), 60)),
         value.data(), parsed.type == kTypeDeletion ? "" : "'");
}

int DumpTable(const char* fname) {
  Env* env = Env::Default();
  uint64_t file_size = 0;
  Status s = env->GetFileSize(fname, &file_size);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<RandomAccessFile> file;
  s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Options options;
  InternalKeyComparator icmp(BytewiseComparator());
  Table* table = nullptr;
  s = Table::Open(options, &icmp, nullptr, nullptr, file.get(), file_size, &table);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<Table> owned(table);
  printf("table %s (%llu bytes):\n", fname, static_cast<unsigned long long>(file_size));
  ReadOptions ro;
  std::unique_ptr<Iterator> iter(table->NewIterator(ro));
  uint64_t n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    PrintInternalEntry(iter->key(), iter->value());
    n++;
  }
  printf("%llu entries\n", static_cast<unsigned long long>(n));
  return iter->status().ok() ? 0 : 1;
}

int DumpWal(const char* fname) {
  Env* env = Env::Default();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  struct StderrReporter : public log::Reader::Reporter {
    void Corruption(size_t bytes, const Status& status) override {
      fprintf(stderr, "  corruption: %zu bytes dropped: %s\n", bytes, status.ToString().c_str());
    }
  };
  StderrReporter reporter;
  log::Reader reader(file.get(), &reporter, true, 0);
  printf("wal %s:\n", fname);
  Slice record;
  std::string scratch;
  uint64_t n = 0;
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.empty()) {
      printf("  <sync barrier>\n");
      continue;
    }
    Slice rest = record;
    int ops_in_record = 0;
    while (!rest.empty()) {
      SequenceNumber seq;
      ValueType type;
      Slice key, value;
      if (!DecodeWalOpFrom(&rest, &seq, &type, &key, &value)) {
        printf("  <unparseable record tail, %zu bytes>\n", rest.size());
        break;
      }
      printf("  ts=%llu %s '%s'%s%.*s%s%s\n", static_cast<unsigned long long>(seq),
             type == kTypeDeletion ? "del" : "put", key.ToString().c_str(),
             type == kTypeDeletion ? "" : " = '",
             type == kTypeDeletion ? 0 : static_cast<int>(std::min<size_t>(value.size(), 60)),
             value.data(), type == kTypeDeletion ? "" : "'",
             ops_in_record > 0 ? "  (batch)" : "");
      ops_in_record++;
    }
    n++;
  }
  printf("%llu records\n", static_cast<unsigned long long>(n));
  return 0;
}

int DumpOverview(const char* dbdir) {
  Env* env = Env::Default();
  std::vector<std::string> children;
  Status s = env->GetChildren(dbdir, &children);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("store directory %s:\n", dbdir);
  uint64_t tables = 0, logs = 0, bytes = 0;
  for (const std::string& f : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(f, &number, &type)) {
      continue;
    }
    uint64_t size = 0;
    env->GetFileSize(std::string(dbdir) + "/" + f, &size);
    bytes += size;
    const char* kind = "?";
    switch (type) {
      case kLogFile:
        kind = "wal";
        logs++;
        break;
      case kTableFile:
        kind = "sst";
        tables++;
        break;
      case kDescriptorFile:
        kind = "manifest";
        break;
      case kCurrentFile:
        kind = "current";
        break;
      case kDBLockFile:
        kind = "lock";
        break;
      case kTempFile:
        kind = "temp";
        break;
    }
    printf("  %-24s %-9s %10llu bytes\n", f.c_str(), kind,
           static_cast<unsigned long long>(size));
  }
  printf("totals: %llu tables, %llu wals, %llu bytes\n\n",
         static_cast<unsigned long long>(tables), static_cast<unsigned long long>(logs),
         static_cast<unsigned long long>(bytes));

  // Open read-only-ish (recovers) for the level summary.
  Options options;
  options.create_if_missing = false;
  DB* raw = nullptr;
  s = ClsmDb::Open(options, dbdir, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open for level summary failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);
  printf("levels: %s\n", db->GetProperty("clsm.levels").c_str());
  printf("last timestamp: %s\n", db->GetProperty("clsm.last-ts").c_str());
  return 0;
}

int ScanAll(const char* dbdir) {
  Options options;
  options.create_if_missing = false;
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options, dbdir, &raw);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  uint64_t n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    printf("'%s' = '%.*s'\n", iter->key().ToString().c_str(),
           static_cast<int>(std::min<size_t>(iter->value().size(), 100)), iter->value().data());
    n++;
  }
  fprintf(stderr, "%llu live keys\n", static_cast<unsigned long long>(n));
  return 0;
}

// Recovers the store (read-only-ish, like DumpOverview) and prints the
// human-readable stats block plus the machine-readable JSON snapshot —
// counters are near zero on a freshly opened store, but the level layout,
// file counts and write-amp gauges reflect the on-disk state.
int DumpStats(const char* dbdir) {
  Options options;
  options.create_if_missing = false;
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options, dbdir, &raw);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);
  printf("--- clsm.stats ---\n%s", db->GetProperty("clsm.stats").c_str());
  printf("levels: %s\n", db->GetProperty("clsm.levels").c_str());
  printf("--- clsm.stats.json ---\n%s\n", db->GetProperty("clsm.stats.json").c_str());
  return 0;
}

// Opens the store with perf_level=counts+timers and issues two probe reads
// — the first live key (a hit) and a key that cannot exist (a miss) —
// printing the full PerfContext JSON after each. Shows, per level, where a
// read on this store's current shape actually spends its time.
int DumpPerf(const char* dbdir) {
  Options options;
  options.create_if_missing = false;
  options.perf_level = PerfLevel::kEnableTimers;
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options, dbdir, &raw);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  std::string first_key;
  {
    std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
    iter->SeekToFirst();
    if (iter->Valid()) {
      first_key = iter->key().ToString();
    }
  }
  std::string value;
  if (!first_key.empty()) {
    s = db->Get(ReadOptions(), first_key, &value);
    printf("--- get('%s') -> %s ---\n%s\n", first_key.c_str(), s.ToString().c_str(),
           db->GetProperty("clsm.perf.json").c_str());
  } else {
    printf("store is empty; skipping hit probe\n");
  }
  s = db->Get(ReadOptions(), Slice("\xff\xff<clsm_dump-perf-probe>"), &value);
  printf("--- get(<missing key>) -> %s ---\n%s\n", s.ToString().c_str(),
         db->GetProperty("clsm.perf.json").c_str());
  return 0;
}

int DumpTraceSummary(const char* path) {
  TraceSummary summary;
  Status s = SummarizeTrace(Env::Default(), path, &summary);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("%s", summary.ToString().c_str());
  return 0;
}

int Repair(const char* dbdir) {
  Options options;
  Status s = RepairDb(options, dbdir);
  if (!s.ok()) {
    fprintf(stderr, "repair failed: %s\n", s.ToString().c_str());
    return 1;
  }
  fprintf(stderr, "repair succeeded; verify with: clsm_dump %s\n", dbdir);
  return 0;
}

int Usage() {
  fprintf(stderr,
          "usage:\n"
          "  clsm_dump <dbdir>\n"
          "  clsm_dump --scan <dbdir>\n"
          "  clsm_dump --stats <dbdir>\n"
          "  clsm_dump --table <file.sst>\n"
          "  clsm_dump --wal <file.log>\n"
          "  clsm_dump --perf <dbdir>     (probe reads with attribution)\n"
          "  clsm_dump --trace <file>     (operation-trace summary)\n"
          "  clsm_dump --repair <dbdir>   (rebuild a lost/corrupt manifest)\n");
  return 2;
}

}  // namespace
}  // namespace clsm

int main(int argc, char** argv) {
  if (argc == 2) {
    return clsm::DumpOverview(argv[1]);
  }
  if (argc == 3 && strcmp(argv[1], "--table") == 0) {
    return clsm::DumpTable(argv[2]);
  }
  if (argc == 3 && strcmp(argv[1], "--wal") == 0) {
    return clsm::DumpWal(argv[2]);
  }
  if (argc == 3 && strcmp(argv[1], "--scan") == 0) {
    return clsm::ScanAll(argv[2]);
  }
  if (argc == 3 && strcmp(argv[1], "--stats") == 0) {
    return clsm::DumpStats(argv[2]);
  }
  if (argc == 3 && strcmp(argv[1], "--perf") == 0) {
    return clsm::DumpPerf(argv[2]);
  }
  if (argc == 3 && strcmp(argv[1], "--trace") == 0) {
    return clsm::DumpTraceSummary(argv[2]);
  }
  if (argc == 3 && strcmp(argv[1], "--repair") == 0) {
    return clsm::Repair(argv[2]);
  }
  return clsm::Usage();
}
