// clsm_trace: inspect and replay operation traces recorded by the
// TraceWriter listener (src/obs/op_trace.h).
//
//   clsm_trace dump <trace>            one JSON object per record (JSONL)
//   clsm_trace summary <trace>         op mix, key skew, latency percentiles
//   clsm_trace replay <trace> <dbdir> [--variant NAME] [--timing preserve|compress]
//                                     [--no-verify]
//
// Replay runs the trace against a fresh or existing store at <dbdir> using
// any variant (default clsm), preserving or compressing the recorded
// inter-arrival timing, and verifies per-op found/not-found outcomes
// against the recording unless --no-verify.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/baselines/factory.h"
#include "src/obs/op_trace.h"
#include "src/obs/trace_replay.h"
#include "src/util/env.h"

namespace clsm {
namespace {

int DumpTrace(const char* path) {
  TraceReader reader;
  Status s = reader.Open(Env::Default(), path);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  TraceRecord rec;
  uint64_t n = 0;
  while (reader.Next(&rec)) {
    printf("%s\n", TraceRecordToJson(rec).c_str());
    n++;
  }
  if (!reader.status().ok()) {
    fprintf(stderr, "trace corrupt after %llu records: %s\n",
            static_cast<unsigned long long>(n), reader.status().ToString().c_str());
    return 1;
  }
  fprintf(stderr, "%llu records\n", static_cast<unsigned long long>(n));
  return 0;
}

int Summarize(const char* path) {
  TraceSummary summary;
  Status s = SummarizeTrace(Env::Default(), path, &summary);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("%s", summary.ToString().c_str());
  return 0;
}

int Replay(int argc, char** argv) {
  const char* trace_path = nullptr;
  const char* dbdir = nullptr;
  DbVariant variant = DbVariant::kClsm;
  ReplayOptions ropts;
  for (int i = 0; i < argc; i++) {
    if (strcmp(argv[i], "--variant") == 0 && i + 1 < argc) {
      if (!ParseVariant(argv[++i], &variant)) {
        fprintf(stderr, "unknown variant '%s'\n", argv[i]);
        return 2;
      }
    } else if (strcmp(argv[i], "--timing") == 0 && i + 1 < argc) {
      i++;
      if (strcmp(argv[i], "preserve") == 0) {
        ropts.preserve_timing = true;
      } else if (strcmp(argv[i], "compress") == 0) {
        ropts.preserve_timing = false;
      } else {
        fprintf(stderr, "--timing takes 'preserve' or 'compress'\n");
        return 2;
      }
    } else if (strcmp(argv[i], "--no-verify") == 0) {
      ropts.verify_outcomes = false;
    } else if (trace_path == nullptr) {
      trace_path = argv[i];
    } else if (dbdir == nullptr) {
      dbdir = argv[i];
    } else {
      fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (trace_path == nullptr || dbdir == nullptr) {
    fprintf(stderr, "replay needs <trace> and <dbdir>\n");
    return 2;
  }

  Options options;
  options.create_if_missing = true;
  DB* raw = nullptr;
  Status s = OpenDb(variant, options, dbdir, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open %s (%s) failed: %s\n", dbdir, VariantName(variant),
            s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  ReplayResult result;
  s = ReplayTrace(db.get(), Env::Default(), trace_path, ropts, &result);
  if (!s.ok()) {
    fprintf(stderr, "replay failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double secs = static_cast<double>(result.duration_micros) / 1e6;
  printf("replayed %llu ops against %s in %.3fs (%.0f ops/s, timing=%s)\n",
         static_cast<unsigned long long>(result.ops), VariantName(variant), secs,
         secs > 0 ? static_cast<double>(result.ops) / secs : 0.0,
         ropts.preserve_timing ? "preserve" : "compress");
  printf("op mix: put=%llu delete=%llu get=%llu write=%llu(skipped=%llu) rmw=%llu\n",
         static_cast<unsigned long long>(result.ops_by_type[0]),
         static_cast<unsigned long long>(result.ops_by_type[1]),
         static_cast<unsigned long long>(result.ops_by_type[2]),
         static_cast<unsigned long long>(result.ops_by_type[3]),
         static_cast<unsigned long long>(result.skipped_writes),
         static_cast<unsigned long long>(result.ops_by_type[4]));
  printf("errors: %llu\n", static_cast<unsigned long long>(result.errors));
  if (ropts.verify_outcomes) {
    printf("outcome mismatches: %llu\n",
           static_cast<unsigned long long>(result.outcome_mismatches));
  }
  if (result.latency_micros.Num() > 0) {
    printf("latency micros: p50=%.1f p90=%.1f p99=%.1f p999=%.1f max=%.1f\n",
           result.latency_micros.Percentile(50), result.latency_micros.Percentile(90),
           result.latency_micros.Percentile(99), result.latency_micros.Percentile(99.9),
           result.latency_micros.Max());
  }
  return (result.errors == 0 && result.outcome_mismatches == 0) ? 0 : 1;
}

int Usage() {
  fprintf(stderr,
          "usage:\n"
          "  clsm_trace dump <trace>\n"
          "  clsm_trace summary <trace>\n"
          "  clsm_trace replay <trace> <dbdir> [--variant NAME]\n"
          "             [--timing preserve|compress] [--no-verify]\n");
  return 2;
}

}  // namespace
}  // namespace clsm

int main(int argc, char** argv) {
  if (argc >= 3 && strcmp(argv[1], "dump") == 0) {
    return clsm::DumpTrace(argv[2]);
  }
  if (argc >= 3 && strcmp(argv[1], "summary") == 0) {
    return clsm::Summarize(argv[2]);
  }
  if (argc >= 4 && strcmp(argv[1], "replay") == 0) {
    return clsm::Replay(argc - 2, argv + 2);
  }
  return clsm::Usage();
}
