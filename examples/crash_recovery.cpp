// Crash recovery with asynchronous group logging (paper §2.3, §4): writes
// are logged by a background thread, so log records can hit the file out of
// timestamp order; recovery re-sorts by the embedded cLSM timestamps. A
// synchronous write acts as a durability barrier.
//
// This example forks a child that writes and crashes (abrupt _exit, no
// clean close), then the parent recovers the store and audits what
// survived.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <memory>

#include "src/core/clsm_db.h"

using namespace clsm;

int main() {
  const std::string path = "/tmp/clsm-crash-demo";
  std::string cmd = "rm -rf " + path;
  int rc = system(cmd.c_str());
  (void)rc;

  pid_t pid = fork();
  if (pid < 0) {
    perror("fork");
    return 1;
  }

  if (pid == 0) {
    // ---- Child: write, then crash without closing. ----
    Options options;
    DB* raw = nullptr;
    if (!ClsmDb::Open(options, path, &raw).ok()) {
      _exit(2);
    }
    std::unique_ptr<DB> db(raw);
    WriteOptions async_wo;            // default: asynchronous logging
    WriteOptions sync_wo;
    sync_wo.sync = true;              // durability barrier

    // Phase 1: 1000 asynchronous writes.
    for (int i = 0; i < 1000; i++) {
      db->Put(async_wo, "account-" + std::to_string(i), "balance-" + std::to_string(i * 10));
    }
    // Phase 2: one synchronous write — everything above is now durable.
    db->Put(sync_wo, "checkpoint", "phase-1-complete");

    // Phase 3: more asynchronous writes that may or may not survive the
    // crash (the risk the paper accepts for memory-speed writes).
    for (int i = 0; i < 1000; i++) {
      db->Put(async_wo, "volatile-" + std::to_string(i), "maybe");
    }

    db.release();  // deliberately leak: no destructor, no WAL drain
    _exit(0);      // CRASH
  }

  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  printf("child crashed (exit status %d); recovering...\n", WEXITSTATUS(wstatus));

  // ---- Parent: recover and audit. ----
  Options options;
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options, path, &raw);
  if (!s.ok()) {
    fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  ReadOptions ro;
  std::string v;

  s = db->Get(ro, "checkpoint", &v);
  printf("checkpoint: %s\n", s.ok() ? v.c_str() : "LOST (must never happen)");
  if (!s.ok()) {
    return 1;
  }

  int survived_accounts = 0;
  for (int i = 0; i < 1000; i++) {
    if (db->Get(ro, "account-" + std::to_string(i), &v).ok()) {
      survived_accounts++;
    }
  }
  printf("accounts before the sync barrier: %d/1000 recovered (must be 1000)\n",
         survived_accounts);
  if (survived_accounts != 1000) {
    return 1;
  }

  int survived_volatile = 0;
  for (int i = 0; i < 1000; i++) {
    if (db->Get(ro, "volatile-" + std::to_string(i), &v).ok()) {
      survived_volatile++;
    }
  }
  printf("asynchronous writes after the barrier: %d/1000 recovered\n", survived_volatile);
  printf("(any number is legal here — asynchronous logging may lose a recent\n"
         " suffix on a crash; in practice the background logger usually keeps up)\n");

  printf("recovery audit passed\n");
  return 0;
}
