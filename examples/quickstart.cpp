// Quickstart: open a cLSM store, write, read, scan, snapshot, RMW.
//
//   ./example_quickstart [db-path]
#include <cstdio>
#include <memory>

#include "src/core/clsm_db.h"

using namespace clsm;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/clsm-quickstart";

  // 1. Open (creates the store if missing).
  Options options;
  options.write_buffer_size = 4 << 20;  // 4 MiB memory component
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options, path, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  // 2. Puts and gets.
  WriteOptions wo;
  ReadOptions ro;
  db->Put(wo, "user:1001", "alice");
  db->Put(wo, "user:1002", "bob");
  db->Put(wo, "user:1003", "carol");

  std::string value;
  s = db->Get(ro, "user:1002", &value);
  printf("get user:1002 -> %s\n", s.ok() ? value.c_str() : s.ToString().c_str());

  // 3. Overwrite and delete.
  db->Put(wo, "user:1002", "bob-v2");
  db->Delete(wo, "user:1003");
  s = db->Get(ro, "user:1003", &value);
  printf("get user:1003 -> %s (deleted)\n", s.IsNotFound() ? "NOT_FOUND" : value.c_str());

  // 4. Range scan over a consistent view.
  printf("scan user:*\n");
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    for (it->Seek("user:"); it->Valid() && it->key().starts_with("user:"); it->Next()) {
      printf("  %s = %s\n", it->key().ToString().c_str(), it->value().ToString().c_str());
    }
  }

  // 5. Snapshots: a frozen point-in-time view.
  const Snapshot* snap = db->GetSnapshot();
  db->Put(wo, "user:1001", "alice-after-snapshot");
  ReadOptions at_snap;
  at_snap.snapshot = snap;
  db->Get(at_snap, "user:1001", &value);
  printf("snapshot read user:1001 -> %s\n", value.c_str());
  db->Get(ro, "user:1001", &value);
  printf("latest   read user:1001 -> %s\n", value.c_str());
  db->ReleaseSnapshot(snap);

  // 6. Atomic read-modify-write: increment a counter without locks.
  for (int i = 0; i < 5; i++) {
    db->ReadModifyWrite(wo, "counter",
                        [](const std::optional<Slice>& cur) -> std::optional<std::string> {
                          int v = cur.has_value() ? std::stoi(cur->ToString()) : 0;
                          return std::to_string(v + 1);
                        });
  }
  db->Get(ro, "counter", &value);
  printf("counter after 5 atomic increments -> %s\n", value.c_str());

  // 7. Atomic multi-key batch.
  WriteBatch batch;
  batch.Put("order:1", "pending");
  batch.Put("order:1:items", "3");
  s = db->Write(wo, &batch);
  printf("batch write -> %s\n", s.ToString().c_str());

  printf("done; store persisted at %s\n", path.c_str());
  return 0;
}
