// Online analytics over a live store (paper §1, §2.1): writers keep
// ingesting events while an analytics job runs large consistent snapshot
// scans and range queries — the workload that motivates consistent
// snapshot scans spanning one big partition (§2.2).
//
// The scan computes per-region revenue aggregates; because it runs against
// a snapshot, concurrent writes never tear the sums.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/clsm_db.h"
#include "src/util/random.h"

using namespace clsm;

namespace {

constexpr int kRegions = 8;
constexpr int kOrdersPerRegion = 2000;

std::string OrderKey(int region, int order) {
  char buf[64];
  snprintf(buf, sizeof(buf), "orders/region%02d/%08d", region, order);
  return buf;
}

}  // namespace

int main() {
  const std::string path = "/tmp/clsm-analytics";
  std::string cmd = "rm -rf " + path;
  int rc = system(cmd.c_str());
  (void)rc;

  Options options;
  options.write_buffer_size = 2 << 20;
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options, path, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  // Seed the store: every order has value "amount,amount" so a consistent
  // read always sees the two halves equal.
  WriteOptions wo;
  Random64 rnd(7);
  for (int region = 0; region < kRegions; region++) {
    for (int order = 0; order < kOrdersPerRegion; order++) {
      uint64_t amount = 10 + rnd.Uniform(990);
      std::string v = std::to_string(amount) + "," + std::to_string(amount);
      db->Put(wo, OrderKey(region, order), v);
    }
  }
  printf("seeded %d orders across %d regions\n", kRegions * kOrdersPerRegion, kRegions);

  // Writers keep updating order amounts while analytics run.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; w++) {
    writers.emplace_back([&, w] {
      Random64 r(100 + w);
      WriteOptions wopts;
      while (!stop.load()) {
        int region = static_cast<int>(r.Uniform(kRegions));
        int order = static_cast<int>(r.Uniform(kOrdersPerRegion));
        uint64_t amount = 10 + r.Uniform(990);
        std::string v = std::to_string(amount) + "," + std::to_string(amount);
        db->Put(wopts, OrderKey(region, order), v);
      }
    });
  }

  // Analytics: consistent snapshot scans, one range query per region.
  for (int round = 0; round < 3; round++) {
    const Snapshot* snap = db->GetSnapshot();
    ReadOptions ro;
    ro.snapshot = snap;
    printf("\nanalytics round %d (snapshot view):\n", round + 1);
    long long grand_total = 0;
    int torn = 0;
    for (int region = 0; region < kRegions; region++) {
      std::unique_ptr<Iterator> it(db->NewIterator(ro));
      char prefix[32];
      snprintf(prefix, sizeof(prefix), "orders/region%02d/", region);
      long long total = 0;
      int count = 0;
      for (it->Seek(prefix); it->Valid() && it->key().starts_with(prefix); it->Next()) {
        std::string v = it->value().ToString();
        size_t comma = v.find(',');
        long long a = std::stoll(v.substr(0, comma));
        long long b = std::stoll(v.substr(comma + 1));
        if (a != b) {
          torn++;  // would indicate a torn read — must never happen
        }
        total += a;
        count++;
      }
      printf("  region %d: %d orders, revenue %lld\n", region, count, total);
      grand_total += total;
    }
    printf("  grand total: %lld (torn reads: %d)\n", grand_total, torn);
    if (torn != 0) {
      fprintf(stderr, "CONSISTENCY VIOLATION: snapshot scan observed torn values\n");
      return 1;
    }
    db->ReleaseSnapshot(snap);
  }

  stop = true;
  for (auto& t : writers) {
    t.join();
  }
  printf("\nanalytics completed with zero torn reads while writers were live\n");
  return 0;
}
