// Geo-replication reconciliation with atomic read-modify-write (paper §1,
// §2.1, §3.3): multiple replication streams apply vector-clocked updates to
// the same keys concurrently. Each apply must atomically read the stored
// (vector clock, value), compare it with the incoming update's clock, and
// keep the causally newer one (merging concurrent clocks) — the
// "conditional update" use case the paper cites from Dynamo/PNUTS.
//
// With cLSM's lock-free RMW, streams reconcile without any per-key locks;
// losing an update would manifest as a final clock smaller than the join
// of all applied clocks.
#include <atomic>
#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/clsm_db.h"
#include "src/util/random.h"

using namespace clsm;

namespace {

constexpr int kSites = 4;
constexpr int kKeys = 50;
constexpr int kUpdatesPerSite = 2000;

// Vector clock serialized as "c0.c1.c2.c3|payload".
struct Clocked {
  uint64_t clock[kSites] = {0, 0, 0, 0};
  std::string payload;

  static Clocked Parse(const Slice& raw) {
    Clocked c;
    std::string s = raw.ToString();
    size_t bar = s.find('|');
    std::stringstream clock_part(s.substr(0, bar));
    std::string tok;
    int i = 0;
    while (std::getline(clock_part, tok, '.') && i < kSites) {
      c.clock[i++] = std::stoull(tok);
    }
    c.payload = s.substr(bar + 1);
    return c;
  }

  std::string Serialize() const {
    std::string out;
    for (int i = 0; i < kSites; i++) {
      if (i > 0) {
        out += '.';
      }
      out += std::to_string(clock[i]);
    }
    out += '|';
    out += payload;
    return out;
  }

  // Pointwise join of two clocks.
  void MergeFrom(const Clocked& other) {
    for (int i = 0; i < kSites; i++) {
      clock[i] = std::max(clock[i], other.clock[i]);
    }
  }

  bool Dominates(const Clocked& other) const {
    for (int i = 0; i < kSites; i++) {
      if (clock[i] < other.clock[i]) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

int main() {
  const std::string path = "/tmp/clsm-vclock";
  std::string cmd = "rm -rf " + path;
  int rc = system(cmd.c_str());
  (void)rc;

  Options options;
  DB* raw = nullptr;
  Status s = ClsmDb::Open(options, path, &raw);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  // Each site applies updates carrying its own clock increments.
  std::vector<std::thread> sites;
  std::vector<std::vector<uint64_t>> applied(kSites, std::vector<uint64_t>(kKeys, 0));
  for (int site = 0; site < kSites; site++) {
    sites.emplace_back([&, site] {
      Random64 rnd(site * 977 + 1);
      WriteOptions wo;
      for (int u = 0; u < kUpdatesPerSite; u++) {
        int key_id = static_cast<int>(rnd.Uniform(kKeys));
        std::string key = "item-" + std::to_string(key_id);
        applied[site][key_id]++;
        uint64_t my_count = applied[site][key_id];
        db->ReadModifyWrite(
            wo, key, [&](const std::optional<Slice>& cur) -> std::optional<std::string> {
              Clocked incoming;
              incoming.clock[site] = my_count;
              incoming.payload = "site" + std::to_string(site) + "-u" + std::to_string(u);
              if (!cur.has_value()) {
                return incoming.Serialize();
              }
              Clocked stored = Clocked::Parse(*cur);
              if (stored.Dominates(incoming)) {
                // Causally stale update: keep the stored version but still
                // record the site's component (join), as reconciliation
                // protocols do.
                stored.MergeFrom(incoming);
                return stored.Serialize();
              }
              incoming.MergeFrom(stored);
              return incoming.Serialize();
            });
      }
    });
  }
  for (auto& t : sites) {
    t.join();
  }

  // Verify: the stored clock for every key must equal the join of all
  // applied updates — any lost RMW would leave a component behind.
  ReadOptions ro;
  int errors = 0;
  uint64_t total_updates = 0;
  for (int k = 0; k < kKeys; k++) {
    std::string key = "item-" + std::to_string(k);
    std::string v;
    if (!db->Get(ro, key, &v).ok()) {
      // A key no site happened to touch.
      bool touched = false;
      for (int site = 0; site < kSites; site++) {
        touched = touched || applied[site][k] > 0;
      }
      if (touched) {
        errors++;
      }
      continue;
    }
    Clocked stored = Clocked::Parse(v);
    for (int site = 0; site < kSites; site++) {
      total_updates += applied[site][k];
      if (stored.clock[site] != applied[site][k]) {
        printf("key %s: site %d clock %llu != applied %llu  (LOST UPDATE)\n", key.c_str(), site,
               static_cast<unsigned long long>(stored.clock[site]),
               static_cast<unsigned long long>(applied[site][k]));
        errors++;
      }
    }
  }

  printf("reconciled %llu updates from %d sites over %d keys: %s\n",
         static_cast<unsigned long long>(total_updates), kSites, kKeys,
         errors == 0 ? "all vector clocks exact — no lost updates" : "ERRORS");
  return errors == 0 ? 0 : 1;
}
