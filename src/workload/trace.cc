#include "src/workload/trace.h"

namespace clsm {

std::vector<TraceSpec> ProductionTraceSpecs(uint64_t num_keys) {
  // Read ratios from Figure 10's captions; thetas chosen so the rank-
  // frequency curve matches the reported concentration (≈0.99 puts ~50% of
  // requests on the top 1-2% of keys).
  return {
      TraceSpec{"dataset1", 0.93, 0.99, num_keys},
      TraceSpec{"dataset2", 0.85, 0.95, num_keys},
      TraceSpec{"dataset3", 0.96, 1.05, num_keys},
      TraceSpec{"dataset4", 0.86, 0.90, num_keys},
  };
}

TraceGenerator::TraceGenerator(const TraceSpec& spec, uint64_t seed)
    : spec_(spec),
      rnd_(seed),
      keys_(spec.num_keys, spec.zipf_theta, seed * 2654435761u + 1),
      values_(spec.value_size, seed ^ 0x5bd1e995) {}

TraceOpType TraceGenerator::NextOpType() {
  return rnd_.NextDouble() < spec_.read_fraction ? TraceOpType::kGet : TraceOpType::kPut;
}

void TraceGenerator::NextKey(std::string* key) {
  EncodeWorkloadKey(keys_.Next(), spec_.key_size, key);
}

Slice TraceGenerator::NextValue() { return values_.Next(); }

}  // namespace clsm
