// Workload generators reproducing the paper's evaluation inputs (§5.1-§5.2):
// uniform keys (write benchmarks), hot-block skew (90% of reads from 10% of
// the key space), Zipfian heavy-tail distributions tuned to the production
// statistics the paper reports, and deterministic value payloads.
#ifndef CLSM_WORKLOAD_GENERATOR_H_
#define CLSM_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/random.h"
#include "src/util/slice.h"

namespace clsm {

// Maps a key index in [0, num_keys) to its byte representation. 8-byte
// big-endian binary (the paper's synthetic workloads use 8-byte keys), or
// padded to key_size when larger keys are requested (production: ~40B).
void EncodeWorkloadKey(uint64_t index, size_t key_size, std::string* dst);

// Distribution over key indices. Implementations are NOT thread-safe; give
// each worker thread its own instance.
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual uint64_t Next() = 0;
};

// Uniform over [0, num_keys).
class UniformGenerator final : public KeyGenerator {
 public:
  UniformGenerator(uint64_t num_keys, uint64_t seed) : rnd_(seed), num_keys_(num_keys) {}
  uint64_t Next() override { return rnd_.Uniform(num_keys_); }

 private:
  Random64 rnd_;
  uint64_t num_keys_;
};

// Strictly increasing (for bulk loads).
class SequentialGenerator final : public KeyGenerator {
 public:
  explicit SequentialGenerator(uint64_t start = 0) : next_(start) {}
  uint64_t Next() override { return next_++; }

 private:
  uint64_t next_;
};

// The paper's read benchmark distribution (§5.1): with probability
// hot_op_fraction the key is drawn uniformly from the hot fraction of the
// key space ("popular blocks"); otherwise uniformly from the whole range.
class HotBlockGenerator final : public KeyGenerator {
 public:
  HotBlockGenerator(uint64_t num_keys, double hot_key_fraction, double hot_op_fraction,
                    uint64_t seed)
      : rnd_(seed),
        num_keys_(num_keys),
        hot_keys_(static_cast<uint64_t>(num_keys * hot_key_fraction) + 1),
        hot_op_fraction_(hot_op_fraction) {}

  uint64_t Next() override {
    if (rnd_.NextDouble() < hot_op_fraction_) {
      // Spread hot keys across the space so hot blocks are interleaved with
      // cold ones (block-level locality, not one contiguous prefix).
      uint64_t h = rnd_.Uniform(hot_keys_);
      return (h * 10) % num_keys_;
    }
    return rnd_.Uniform(num_keys_);
  }

 private:
  Random64 rnd_;
  uint64_t num_keys_;
  uint64_t hot_keys_;
  double hot_op_fraction_;
};

// YCSB-style Zipfian over [0, num_keys) with parameter theta, scrambled by
// a hash so popular keys scatter across the key space. theta ~0.99 gives
// the paper's production shape: top 10% of keys ≈ 75%+ of requests, top
// 1-2% ≈ 50%.
class ZipfianGenerator final : public KeyGenerator {
 public:
  ZipfianGenerator(uint64_t num_keys, double theta, uint64_t seed, bool scramble = true);
  uint64_t Next() override;

 private:
  static double Zeta(uint64_t n, double theta);

  Random64 rnd_;
  uint64_t num_keys_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  bool scramble_;
};

// Deterministic pseudo-random value payloads, served as slices from a
// pre-generated pool (cheap per op).
class ValueGenerator {
 public:
  ValueGenerator(size_t value_size, uint64_t seed);
  Slice Next();

 private:
  std::string pool_;
  size_t value_size_;
  size_t pos_ = 0;
};

}  // namespace clsm

#endif  // CLSM_WORKLOAD_GENERATOR_H_
