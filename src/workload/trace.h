// Synthetic stand-ins for the paper's proprietary production logs (§5.2).
// Each "dataset" is a deterministic operation stream matched to the
// published statistics: 85-96% reads, ~40-byte keys, ~1 KiB values,
// heavy-tail key popularity (top 10% of keys ≈ 75%+ of requests, top 1-2%
// ≈ 50%), and ~10% singleton keys.
#ifndef CLSM_WORKLOAD_TRACE_H_
#define CLSM_WORKLOAD_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/workload/generator.h"

namespace clsm {

enum class TraceOpType { kGet, kPut };

struct TraceSpec {
  std::string name;
  double read_fraction;   // fraction of get operations
  double zipf_theta;      // key-popularity skew
  uint64_t num_keys;      // distinct keys in the partition
  size_t key_size = 40;   // production average (paper §5.2)
  size_t value_size = 1024;
};

// The four representative datasets of Figure 10.
std::vector<TraceSpec> ProductionTraceSpecs(uint64_t num_keys);

// Stateful per-thread generator of trace operations.
class TraceGenerator {
 public:
  TraceGenerator(const TraceSpec& spec, uint64_t seed);

  TraceOpType NextOpType();
  // Fills *key for the next operation of the given type.
  void NextKey(std::string* key);
  Slice NextValue();

  const TraceSpec& spec() const { return spec_; }

 private:
  TraceSpec spec_;
  Random64 rnd_;
  ZipfianGenerator keys_;
  ValueGenerator values_;
};

}  // namespace clsm

#endif  // CLSM_WORKLOAD_TRACE_H_
