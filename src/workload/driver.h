// Multi-threaded benchmark driver: runs an operation mix against a DB for a
// fixed duration with N worker threads, measuring throughput and per-op
// latency percentiles — the quantities every figure in the paper plots.
#ifndef CLSM_WORKLOAD_DRIVER_H_
#define CLSM_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/core/db.h"
#include "src/util/histogram.h"

namespace clsm {

enum class KeyDist { kUniform, kHotBlock, kZipfian };

struct WorkloadSpec {
  // Operation mix; fractions must sum to <= 1 (remainder goes to reads).
  double write_fraction = 0.0;
  double rmw_fraction = 0.0;
  double scan_fraction = 0.0;

  KeyDist distribution = KeyDist::kUniform;
  double zipf_theta = 0.99;
  double hot_key_fraction = 0.10;  // popular blocks = 10% of the database
  double hot_op_fraction = 0.90;   // serving 90% of reads

  uint64_t num_keys = 1'000'000;
  size_t key_size = 8;       // paper §5.1: 8-byte keys
  size_t value_size = 256;   // paper §5.1: 256-byte values

  // Range scans pick a length uniformly in [scan_min_len, scan_max_len]
  // (paper §5.1: 10 to 20 keys).
  int scan_min_len = 10;
  int scan_max_len = 20;

  uint64_t seed = 42;
};

struct DriverResult {
  double ops_per_sec = 0;
  double keys_per_sec = 0;  // scans count every key touched
  double duration_secs = 0;
  uint64_t total_ops = 0;
  uint64_t reads = 0, writes = 0, scans = 0, rmws = 0;
  Histogram latency_micros;  // merged across threads

  // The DB's "clsm.stats.json" snapshot taken right after the run (filled
  // by RunCell; empty when the harness never saw the DB handle).
  std::string stats_json;

  // A post-run probe read's "clsm.perf.json" PerfContext snapshot (filled
  // by RunCell when the bench runs with CLSM_BENCH_PERF_LEVEL enabled).
  std::string perf_json;

  std::string Summary() const;
};

// Runs spec against db with `threads` workers for duration_ms. The DB must
// already contain the key space (use LoadKeySpace or a bulk load first).
DriverResult RunWorkload(DB* db, const WorkloadSpec& spec, int threads, int duration_ms);

// Sequentially loads keys [0, num_keys) with values of value_size.
Status LoadKeySpace(DB* db, uint64_t num_keys, size_t key_size, size_t value_size,
                    uint64_t seed = 7);

}  // namespace clsm

#endif  // CLSM_WORKLOAD_DRIVER_H_
