#include "src/workload/generator.h"

#include <cmath>

#include "src/util/coding.h"

namespace clsm {

void EncodeWorkloadKey(uint64_t index, size_t key_size, std::string* dst) {
  dst->clear();
  dst->resize(key_size, 'k');
  // Big-endian so numeric order == bytewise order.
  size_t n = key_size < 8 ? key_size : 8;
  for (size_t i = 0; i < n; i++) {
    (*dst)[n - 1 - i] = static_cast<char>((index >> (8 * i)) & 0xff);
  }
}

ZipfianGenerator::ZipfianGenerator(uint64_t num_keys, double theta, uint64_t seed, bool scramble)
    : rnd_(seed), num_keys_(num_keys), theta_(theta), scramble_(scramble) {
  zetan_ = Zeta(num_keys_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // Exact for small n, sampled approximation for large n (the tail term
  // changes slowly; this keeps construction O(1e6) at worst).
  double sum = 0;
  if (n <= 10'000'000) {
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }
  for (uint64_t i = 1; i <= 10'000'000; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  // Integral approximation of the remaining tail.
  sum += (std::pow(static_cast<double>(n), 1 - theta) - std::pow(1e7, 1 - theta)) / (1 - theta);
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  // Gray et al.'s quick Zipfian sampler (as used in YCSB).
  const double u = rnd_.NextDouble();
  const double uz = u * zetan_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<uint64_t>(static_cast<double>(num_keys_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= num_keys_) {
      rank = num_keys_ - 1;
    }
  }
  if (!scramble_) {
    return rank;
  }
  // FNV-1a scramble so the popular ranks scatter over the key space.
  uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; i++) {
    h ^= (rank >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h % num_keys_;
}

ValueGenerator::ValueGenerator(size_t value_size, uint64_t seed) : value_size_(value_size) {
  Random64 rnd(seed);
  // A pool >= 1 MiB (and > value_size) of compressible-ish random bytes.
  size_t pool_size = value_size_ * 16 + (1 << 20);
  pool_.resize(pool_size);
  for (size_t i = 0; i < pool_size; i += 8) {
    uint64_t v = rnd.Next();
    size_t n = std::min<size_t>(8, pool_size - i);
    memcpy(&pool_[i], &v, n);
  }
}

Slice ValueGenerator::Next() {
  if (pos_ + value_size_ > pool_.size()) {
    pos_ = 0;
  }
  Slice result(pool_.data() + pos_, value_size_);
  pos_ += 37;  // sliding window => distinct values, no per-op generation
  return result;
}

}  // namespace clsm
