#include "src/workload/driver.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/workload/generator.h"

namespace clsm {

namespace {

std::unique_ptr<KeyGenerator> MakeKeyGen(const WorkloadSpec& spec, uint64_t seed) {
  switch (spec.distribution) {
    case KeyDist::kUniform:
      return std::make_unique<UniformGenerator>(spec.num_keys, seed);
    case KeyDist::kHotBlock:
      return std::make_unique<HotBlockGenerator>(spec.num_keys, spec.hot_key_fraction,
                                                 spec.hot_op_fraction, seed);
    case KeyDist::kZipfian:
      return std::make_unique<ZipfianGenerator>(spec.num_keys, spec.zipf_theta, seed);
  }
  return nullptr;
}

struct ThreadStats {
  uint64_t ops = 0, keys = 0;
  uint64_t reads = 0, writes = 0, scans = 0, rmws = 0;
  Histogram latency;
};

}  // namespace

std::string DriverResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%.0f ops/sec (%.0f keys/sec), p50=%.1fus p90=%.1fus p99=%.1fus",
                ops_per_sec, keys_per_sec, latency_micros.Percentile(50),
                latency_micros.Percentile(90), latency_micros.Percentile(99));
  return buf;
}

DriverResult RunWorkload(DB* db, const WorkloadSpec& spec, int threads, int duration_ms) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<ThreadStats> stats(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      ThreadStats& my = stats[t];
      const uint64_t seed = spec.seed * 1000003 + t * 7919 + 1;
      std::unique_ptr<KeyGenerator> keygen = MakeKeyGen(spec, seed);
      ValueGenerator valgen(spec.value_size, seed ^ 0x9e3779b9);
      Random64 mix(seed ^ 0xabcdef);
      std::string key, value;
      WriteOptions wo;
      ReadOptions ro;

      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }

      while (!stop.load(std::memory_order_relaxed)) {
        const double dice = mix.NextDouble();
        const auto op_start = std::chrono::steady_clock::now();
        if (dice < spec.write_fraction) {
          EncodeWorkloadKey(keygen->Next(), spec.key_size, &key);
          db->Put(wo, key, valgen.Next());
          my.writes++;
          my.keys++;
        } else if (dice < spec.write_fraction + spec.rmw_fraction) {
          // Put-if-absent flavor, as in the paper's Fig 9 workload.
          EncodeWorkloadKey(keygen->Next(), spec.key_size, &key);
          Slice v = valgen.Next();
          db->ReadModifyWrite(
              wo, key,
              [&v](const std::optional<Slice>& cur) -> std::optional<std::string> {
                if (cur.has_value()) {
                  return std::nullopt;  // already present
                }
                return v.ToString();
              });
          my.rmws++;
          my.keys++;
        } else if (dice < spec.write_fraction + spec.rmw_fraction + spec.scan_fraction) {
          EncodeWorkloadKey(keygen->Next(), spec.key_size, &key);
          const int len = spec.scan_min_len +
                          static_cast<int>(mix.Uniform(spec.scan_max_len - spec.scan_min_len + 1));
          std::unique_ptr<Iterator> it(db->NewIterator(ro));
          int got = 0;
          for (it->Seek(key); it->Valid() && got < len; it->Next()) {
            got++;
          }
          my.scans++;
          my.keys += got;
        } else {
          EncodeWorkloadKey(keygen->Next(), spec.key_size, &key);
          db->Get(ro, key, &value);
          my.reads++;
          my.keys++;
        }
        const auto op_end = std::chrono::steady_clock::now();
        my.latency.Add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(op_end - op_start).count() /
            1000.0);
        my.ops++;
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  DriverResult result;
  result.duration_secs = std::chrono::duration<double>(t1 - t0).count();
  uint64_t keys = 0;
  for (const ThreadStats& s : stats) {
    result.total_ops += s.ops;
    result.reads += s.reads;
    result.writes += s.writes;
    result.scans += s.scans;
    result.rmws += s.rmws;
    keys += s.keys;
    result.latency_micros.Merge(s.latency);
  }
  result.ops_per_sec = result.total_ops / result.duration_secs;
  result.keys_per_sec = keys / result.duration_secs;
  return result;
}

Status LoadKeySpace(DB* db, uint64_t num_keys, size_t key_size, size_t value_size,
                    uint64_t seed) {
  ValueGenerator valgen(value_size, seed);
  WriteOptions wo;
  std::string key;
  for (uint64_t i = 0; i < num_keys; i++) {
    EncodeWorkloadKey(i, key_size, &key);
    Status s = db->Put(wo, key, valgen.Next());
    if (!s.ok()) {
      return s;
    }
  }
  db->WaitForMaintenance();
  return Status::OK();
}

}  // namespace clsm
