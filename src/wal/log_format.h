// Write-ahead log record framing (LevelDB format): the log is a sequence of
// 32 KiB blocks; each record is framed as
//   checksum (4B, crc32c of type+payload) | length (2B) | type (1B) | payload
// and fragmented across blocks as FIRST/MIDDLE/LAST when needed.
#ifndef CLSM_WAL_LOG_FORMAT_H_
#define CLSM_WAL_LOG_FORMAT_H_

namespace clsm {
namespace log {

enum RecordType {
  // Zero is reserved for preallocated files.
  kZeroType = 0,

  kFullType = 1,

  // For fragments.
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4
};
static const int kMaxRecordType = kLastType;

static const int kBlockSize = 32768;

// Header is checksum (4 bytes), length (2 bytes), type (1 byte).
static const int kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace clsm

#endif  // CLSM_WAL_LOG_FORMAT_H_
