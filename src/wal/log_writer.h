// Appends framed records to a log file. Not thread-safe: the asynchronous
// logger funnels all appends through its single background thread (paper
// §4), which is what makes this simple writer sufficient.
#ifndef CLSM_WAL_LOG_WRITER_H_
#define CLSM_WAL_LOG_WRITER_H_

#include <cstdint>

#include "src/util/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/log_format.h"

namespace clsm {
namespace log {

class Writer {
 public:
  // dest must remain live while this Writer is in use.
  explicit Writer(WritableFile* dest);
  // Resumes appending to a log already containing dest_length bytes.
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // Current offset in block

  // crc32c values for all supported record types, precomputed to reduce
  // per-record overhead.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace log
}  // namespace clsm

#endif  // CLSM_WAL_LOG_WRITER_H_
