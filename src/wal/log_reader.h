// Reads framed records back from a log file, tolerating a torn tail (the
// asynchronous-logging crash mode the paper accepts, §2.3/§4).
#ifndef CLSM_WAL_LOG_READER_H_
#define CLSM_WAL_LOG_READER_H_

#include <cstdint>
#include <string>

#include "src/util/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/log_format.h"

namespace clsm {
namespace log {

class Reader {
 public:
  // Interface for reporting corruption found during the read.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    // bytes is an approximate count of dropped input.
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  // file must remain live while this Reader is in use. If checksum is true,
  // verify record checksums. Starts reading at initial_offset.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum, uint64_t initial_offset);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  ~Reader();

  // Read the next record into *record (may point into *scratch). Returns
  // false at end of input.
  bool ReadRecord(Slice* record, std::string* scratch);

  // Offset of the last record returned by ReadRecord.
  uint64_t LastRecordOffset();

 private:
  // Extend record types with the following special values.
  enum {
    kEof = kMaxRecordType + 1,
    // Returned whenever we find an invalid physical record (bad CRC, zero
    // length, or before initial_offset).
    kBadRecord = kMaxRecordType + 2
  };

  bool SkipToInitialBlock();

  // Return type, or one of the preceding special values.
  unsigned int ReadPhysicalRecord(Slice* result);

  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  char* const backing_store_;
  Slice buffer_;
  bool eof_;  // Last Read() indicated EOF by returning < kBlockSize

  uint64_t last_record_offset_;
  // Offset of the first location past the end of buffer_.
  uint64_t end_of_buffer_offset_;

  uint64_t const initial_offset_;

  // True if we are resynchronizing after a seek (initial_offset_ > 0); in
  // that mode, runs of kMiddleType and kLastType records are silently
  // skipped until the next kFirstType/kFullType.
  bool resyncing_;
};

}  // namespace log
}  // namespace clsm

#endif  // CLSM_WAL_LOG_READER_H_
