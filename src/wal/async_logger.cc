#include "src/wal/async_logger.h"

#include <chrono>

namespace clsm {

namespace {
// Spins before a waiter falls back to the condition variable. Keeps the
// common fast-sync case at memory latency while bounding the burn when the
// logger thread is descheduled or the disk is slow.
constexpr int kSpinBudget = 512;
}  // namespace

AsyncLogger::AsyncLogger(std::unique_ptr<WritableFile> file)
    : file_(std::move(file)),
      writer_(file_.get()),
      stop_(false),
      closed_(false),
      enqueued_(0),
      written_(0),
      progress_waiters_(0),
      thread_([this] { BackgroundLoop(); }) {}

AsyncLogger::~AsyncLogger() { Close(); }

void AsyncLogger::AddRecordAsync(std::string record) {
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_.Enqueue(Entry{std::move(record), nullptr});
  // Wake the logger only when it might be parked; a relaxed check keeps the
  // hot path to an enqueue plus one load.
  wake_cv_.notify_one();
}

Status AsyncLogger::AddRecordSync(std::string record) {
  std::atomic<int> done{0};
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_.Enqueue(Entry{std::move(record), &done});
  wake_cv_.notify_one();
  int spins = 0;
  while (done.load(std::memory_order_acquire) == 0) {
    if (++spins <= kSpinBudget) {
      continue;
    }
    // Past the spin budget: park on the progress cv. The 1ms timeout is a
    // belt against a wakeup racing the waiter registration; the predicate
    // re-check keeps this correct regardless.
    progress_waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> l(progress_mutex_);
      progress_cv_.wait_for(l, std::chrono::milliseconds(1), [&] {
        return done.load(std::memory_order_acquire) != 0;
      });
    }
    progress_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  return status();
}

Status AsyncLogger::Drain() {
  const uint64_t target = enqueued_.load(std::memory_order_acquire);
  int spins = 0;
  while (written_.load(std::memory_order_acquire) < target) {
    wake_cv_.notify_one();
    if (++spins <= kSpinBudget) {
      continue;
    }
    progress_waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> l(progress_mutex_);
      progress_cv_.wait_for(l, std::chrono::milliseconds(1), [&] {
        return written_.load(std::memory_order_acquire) >= target;
      });
    }
    progress_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  return status();
}

Status AsyncLogger::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) {
    return status();
  }
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  // The background thread has drained the queue; make the tail durable.
  // A failed final sync must reach the caller — retiring this WAL while
  // its tail is not on disk is exactly the acked-write-loss bug.
  Status s = file_->Sync();
  if (s.ok()) {
    s = file_->Close();
  } else {
    file_->Close();  // release the fd; the sync error is what matters
  }
  if (!s.ok()) {
    LatchError(s, /*sync_path=*/true);
  }
  return status();
}

Status AsyncLogger::status() const {
  std::lock_guard<std::mutex> l(status_mutex_);
  return status_;
}

void AsyncLogger::LatchError(const Status& s, bool sync_path) {
  bool first = false;
  {
    std::lock_guard<std::mutex> l(status_mutex_);
    if (status_.ok()) {
      status_ = s;
      first = true;
    }
  }
  if (first && error_hook_) {
    error_hook_(s, sync_path);
  }
}

void AsyncLogger::NotifyProgress() {
  if (progress_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> l(progress_mutex_);
    progress_cv_.notify_all();
  }
}

void AsyncLogger::BackgroundLoop() {
  bool dirty = false;
  while (true) {
    std::optional<Entry> e = queue_.Dequeue();
    if (!e.has_value()) {
      if (dirty) {
        Status s = file_->Flush();
        if (!s.ok()) {
          LatchError(s, /*sync_path=*/false);
        }
        dirty = false;
        continue;  // re-check the queue before parking
      }
      if (stop_.load(std::memory_order_acquire) && queue_.Empty()) {
        return;
      }
      std::unique_lock<std::mutex> l(wake_mutex_);
      wake_cv_.wait_for(l, std::chrono::milliseconds(1),
                        [this] { return !queue_.Empty() || stop_.load(); });
      continue;
    }

    Status s = writer_.AddRecord(e->record);
    bool sync_path = false;
    dirty = true;
    if (e->done != nullptr) {
      // Sync writes: make everything up to and including this record
      // durable before acknowledging.
      if (s.ok()) {
        const auto sync_start = std::chrono::steady_clock::now();
        s = file_->Sync();
        sync_path = !s.ok();
        if (s.ok() && sync_hook_) {
          const auto sync_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                       std::chrono::steady_clock::now() - sync_start)
                                       .count();
          sync_hook_(written_.load(std::memory_order_relaxed) + 1,
                     static_cast<uint64_t>(sync_micros));
        }
      }
      dirty = false;
    }
    if (!s.ok()) {
      LatchError(s, sync_path);
    }
    written_.fetch_add(1, std::memory_order_release);
    if (e->done != nullptr) {
      e->done->store(1, std::memory_order_release);
    }
    NotifyProgress();
  }
}

}  // namespace clsm
