#include "src/wal/async_logger.h"

#include <chrono>

namespace clsm {

AsyncLogger::AsyncLogger(std::unique_ptr<WritableFile> file)
    : file_(std::move(file)),
      writer_(file_.get()),
      stop_(false),
      enqueued_(0),
      written_(0),
      thread_([this] { BackgroundLoop(); }) {}

AsyncLogger::~AsyncLogger() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  thread_.join();
  file_->Sync();
  file_->Close();
}

void AsyncLogger::AddRecordAsync(std::string record) {
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_.Enqueue(Entry{std::move(record), nullptr});
  // Wake the logger only when it might be parked; a relaxed check keeps the
  // hot path to an enqueue plus one load.
  wake_cv_.notify_one();
}

Status AsyncLogger::AddRecordSync(std::string record) {
  std::atomic<int> done{0};
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_.Enqueue(Entry{std::move(record), &done});
  wake_cv_.notify_one();
  int spins = 0;
  while (done.load(std::memory_order_acquire) == 0) {
    if (++spins > 512) {
      std::this_thread::yield();
    }
  }
  return status();
}

void AsyncLogger::Drain() {
  const uint64_t target = enqueued_.load(std::memory_order_acquire);
  int spins = 0;
  while (written_.load(std::memory_order_acquire) < target) {
    wake_cv_.notify_one();
    if (++spins > 512) {
      std::this_thread::yield();
    }
  }
}

Status AsyncLogger::status() const {
  std::lock_guard<std::mutex> l(status_mutex_);
  return status_;
}

void AsyncLogger::BackgroundLoop() {
  bool dirty = false;
  while (true) {
    std::optional<Entry> e = queue_.Dequeue();
    if (!e.has_value()) {
      if (dirty) {
        Status s = file_->Flush();
        if (!s.ok()) {
          std::lock_guard<std::mutex> l(status_mutex_);
          if (status_.ok()) {
            status_ = s;
          }
        }
        dirty = false;
        continue;  // re-check the queue before parking
      }
      if (stop_.load(std::memory_order_acquire) && queue_.Empty()) {
        return;
      }
      std::unique_lock<std::mutex> l(wake_mutex_);
      wake_cv_.wait_for(l, std::chrono::milliseconds(1),
                        [this] { return !queue_.Empty() || stop_.load(); });
      continue;
    }

    Status s = writer_.AddRecord(e->record);
    dirty = true;
    if (e->done != nullptr) {
      // Sync writes: make everything up to and including this record
      // durable before acknowledging.
      if (s.ok()) {
        const auto sync_start = std::chrono::steady_clock::now();
        s = file_->Sync();
        if (sync_hook_) {
          const auto sync_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                       std::chrono::steady_clock::now() - sync_start)
                                       .count();
          sync_hook_(written_.load(std::memory_order_relaxed) + 1,
                     static_cast<uint64_t>(sync_micros));
        }
      }
      dirty = false;
    }
    if (!s.ok()) {
      std::lock_guard<std::mutex> l(status_mutex_);
      if (status_.ok()) {
        status_ = s;
      }
    }
    written_.fetch_add(1, std::memory_order_release);
    if (e->done != nullptr) {
      e->done->store(1, std::memory_order_release);
    }
  }
}

}  // namespace clsm
