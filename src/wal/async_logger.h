// Asynchronous group logger (paper §4). Puts serialize their log record,
// enqueue it on a non-blocking queue, and return immediately — writes
// proceed at memory speed. A dedicated background thread drains the queue
// and appends records to the WAL, so records may hit the file out of
// timestamp order; recovery re-sorts by the embedded cLSM timestamps.
// Synchronous writes enqueue a completion flag and wait for the logger to
// durably sync past their record.
//
// Error contract: the first append/flush/sync error latches in status()
// and is reported through the error hook; AddRecordSync returns it, and
// Drain()/Close() return it so the flush boundary can refuse to retire a
// WAL whose final sync failed.
#ifndef CLSM_WAL_ASYNC_LOGGER_H_
#define CLSM_WAL_ASYNC_LOGGER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/queue/mpsc_queue.h"
#include "src/util/env.h"
#include "src/util/status.h"
#include "src/wal/log_writer.h"

namespace clsm {

class AsyncLogger {
 public:
  // Takes ownership of file.
  explicit AsyncLogger(std::unique_ptr<WritableFile> file);

  AsyncLogger(const AsyncLogger&) = delete;
  AsyncLogger& operator=(const AsyncLogger&) = delete;

  // Closes (drain + final sync) if Close() was not called; any error from
  // that implicit close is reported only through the error hook.
  ~AsyncLogger();

  // Non-blocking: enqueue record and return. Thread-safe.
  void AddRecordAsync(std::string record);

  // Blocking: enqueue record, wait until it is durably synced. Thread-safe.
  Status AddRecordSync(std::string record);

  // Wait for everything enqueued so far to be written (not synced).
  // Returns the sticky logger status so callers see append errors.
  Status Drain();

  // Drain, stop the background thread, sync and close the file. Idempotent;
  // returns the first error observed over the logger's lifetime, including
  // the final sync/close. After Close() all Add* calls are invalid.
  Status Close();

  // Observability hook fired on the logger thread after every durable
  // file sync (records-written-so-far, sync duration micros). Must be
  // non-blocking; set before the first sync can occur (i.e. right after
  // construction, before the logger is published to writers).
  void set_sync_hook(std::function<void(uint64_t, uint64_t)> hook) {
    sync_hook_ = std::move(hook);
  }

  // Fired at most once, when the sticky status first latches an error
  // (append/flush path or sync path). Lets the store record a background
  // error even for async appends whose writers never look at a Status.
  // Same setup rules as set_sync_hook. The bool is true for sync-path
  // (durability) failures, false for append/flush failures.
  void set_error_hook(std::function<void(const Status&, bool)> hook) {
    error_hook_ = std::move(hook);
  }

  Status status() const;

 private:
  struct Entry {
    std::string record;
    // Non-null for sync writes: set to 1 (written+synced) by the logger.
    std::atomic<int>* done = nullptr;
  };

  void BackgroundLoop();
  void LatchError(const Status& s, bool sync_path);
  // Signal waiters in AddRecordSync/Drain that progress was made.
  void NotifyProgress();

  MpscQueue<Entry> queue_;
  std::unique_ptr<WritableFile> file_;
  log::Writer writer_;
  std::function<void(uint64_t, uint64_t)> sync_hook_;  // (records, micros)
  std::function<void(const Status&, bool)> error_hook_;

  mutable std::mutex status_mutex_;
  Status status_;

  std::atomic<bool> stop_;
  std::atomic<bool> closed_;
  std::atomic<uint64_t> enqueued_;
  std::atomic<uint64_t> written_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  // Writers blocked in AddRecordSync/Drain park here past their spin
  // budget; the logger thread notifies after each completed entry while
  // progress_waiters_ is non-zero.
  std::atomic<int> progress_waiters_;
  std::mutex progress_mutex_;
  std::condition_variable progress_cv_;

  std::thread thread_;
};

}  // namespace clsm

#endif  // CLSM_WAL_ASYNC_LOGGER_H_
