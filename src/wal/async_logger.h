// Asynchronous group logger (paper §4). Puts serialize their log record,
// enqueue it on a non-blocking queue, and return immediately — writes
// proceed at memory speed. A dedicated background thread drains the queue
// and appends records to the WAL, so records may hit the file out of
// timestamp order; recovery re-sorts by the embedded cLSM timestamps.
// Synchronous writes enqueue a completion flag and wait for the logger to
// durably sync past their record.
#ifndef CLSM_WAL_ASYNC_LOGGER_H_
#define CLSM_WAL_ASYNC_LOGGER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/queue/mpsc_queue.h"
#include "src/util/env.h"
#include "src/util/status.h"
#include "src/wal/log_writer.h"

namespace clsm {

class AsyncLogger {
 public:
  // Takes ownership of file.
  explicit AsyncLogger(std::unique_ptr<WritableFile> file);

  AsyncLogger(const AsyncLogger&) = delete;
  AsyncLogger& operator=(const AsyncLogger&) = delete;

  // Drains the queue, flushes, and stops the background thread.
  ~AsyncLogger();

  // Non-blocking: enqueue record and return. Thread-safe.
  void AddRecordAsync(std::string record);

  // Blocking: enqueue record, wait until it is durably synced. Thread-safe.
  Status AddRecordSync(std::string record);

  // Wait for everything enqueued so far to be written (not synced).
  void Drain();

  // Observability hook fired on the logger thread after every durable
  // file sync (records-written-so-far, sync duration micros). Must be
  // non-blocking; set before the first sync can occur (i.e. right after
  // construction, before the logger is published to writers).
  void set_sync_hook(std::function<void(uint64_t, uint64_t)> hook) {
    sync_hook_ = std::move(hook);
  }

  Status status() const;

 private:
  struct Entry {
    std::string record;
    // Non-null for sync writes: set to 1 (written+synced) by the logger.
    std::atomic<int>* done = nullptr;
  };

  void BackgroundLoop();

  MpscQueue<Entry> queue_;
  std::unique_ptr<WritableFile> file_;
  log::Writer writer_;
  std::function<void(uint64_t, uint64_t)> sync_hook_;  // (records, micros)

  mutable std::mutex status_mutex_;
  Status status_;

  std::atomic<bool> stop_;
  std::atomic<uint64_t> enqueued_;
  std::atomic<uint64_t> written_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  std::thread thread_;
};

}  // namespace clsm

#endif  // CLSM_WAL_ASYNC_LOGGER_H_
