#include "src/table/table.h"

#include "src/obs/perf_context.h"
#include "src/table/block.h"
#include "src/table/filter_block.h"
#include "src/util/coding.h"

namespace clsm {

struct Table::Rep {
  ~Rep() {
    delete filter;
    delete[] filter_data;
    delete index_block;
  }

  Options options;
  const Comparator* comparator;
  const FilterPolicy* filter_policy;
  Cache* block_cache;
  Status status;
  RandomAccessFile* file;
  uint64_t cache_id;
  FilterBlockReader* filter;
  const char* filter_data;

  BlockHandle metaindex_handle;  // Handle to metaindex_block: saved from footer
  Block* index_block;
};

Status Table::Open(const Options& options, const Comparator* comparator,
                   const FilterPolicy* filter_policy, Cache* block_cache, RandomAccessFile* file,
                   uint64_t size, Table** table) {
  *table = nullptr;
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength, &footer_input,
                        footer_space);
  if (!s.ok()) {
    return s;
  }

  Footer footer;
  Slice footer_slice = footer_input;
  s = footer.DecodeFrom(&footer_slice);
  if (!s.ok()) {
    return s;
  }

  // Read the index block.
  BlockContents index_block_contents;
  ReadOptions opt;
  if (options.paranoid_checks) {
    opt.verify_checksums = true;
  }
  s = ReadBlock(file, opt, footer.index_handle(), &index_block_contents);
  if (!s.ok()) {
    return s;
  }

  Rep* rep = new Table::Rep;
  rep->options = options;
  rep->comparator = comparator;
  rep->filter_policy = filter_policy;
  rep->block_cache = block_cache;
  rep->file = file;
  rep->metaindex_handle = footer.metaindex_handle();
  rep->index_block = new Block(index_block_contents);
  rep->cache_id = (block_cache != nullptr ? block_cache->NewId() : 0);
  rep->filter_data = nullptr;
  rep->filter = nullptr;
  *table = new Table(rep);
  (*table)->ReadMeta(footer);
  return Status::OK();
}

void Table::ReadMeta(const Footer& footer) {
  if (rep_->filter_policy == nullptr) {
    return;  // Do not need any metadata
  }

  ReadOptions opt;
  if (rep_->options.paranoid_checks) {
    opt.verify_checksums = true;
  }
  BlockContents contents;
  if (!ReadBlock(rep_->file, opt, footer.metaindex_handle(), &contents).ok()) {
    // Do not propagate errors since meta info is not needed for operation.
    return;
  }
  Block* meta = new Block(contents);

  Iterator* iter = meta->NewIterator(BytewiseComparator());
  std::string key = "filter.";
  key.append(rep_->filter_policy->Name());
  iter->Seek(key);
  if (iter->Valid() && iter->key() == Slice(key)) {
    ReadFilter(iter->value());
  }
  delete iter;
  delete meta;
}

void Table::ReadFilter(const Slice& filter_handle_value) {
  Slice v = filter_handle_value;
  BlockHandle filter_handle;
  if (!filter_handle.DecodeFrom(&v).ok()) {
    return;
  }

  ReadOptions opt;
  if (rep_->options.paranoid_checks) {
    opt.verify_checksums = true;
  }
  BlockContents block;
  if (!ReadBlock(rep_->file, opt, filter_handle, &block).ok()) {
    return;
  }
  if (block.heap_allocated) {
    rep_->filter_data = block.data.data();  // Will need to delete later
  }
  rep_->filter = new FilterBlockReader(rep_->filter_policy, block.data);
}

Table::~Table() { delete rep_; }

static void DeleteBlock(void* arg, void* ignored) { delete reinterpret_cast<Block*>(arg); }

static void DeleteCachedBlock(const Slice& key, void* value) {
  Block* block = reinterpret_cast<Block*>(value);
  delete block;
}

static void ReleaseBlock(void* arg, void* h) {
  Cache* cache = reinterpret_cast<Cache*>(arg);
  Cache::Handle* handle = reinterpret_cast<Cache::Handle*>(h);
  cache->Release(handle);
}

// Converts an index iterator value (an encoded BlockHandle) into an iterator
// over the contents of the corresponding block, consulting the block cache.
Iterator* Table::BlockReader(void* arg, const ReadOptions& options, const Slice& index_value) {
  Table* table = reinterpret_cast<Table*>(arg);
  Cache* block_cache = table->rep_->block_cache;
  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;

  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);

  if (s.ok()) {
    BlockContents contents;
    if (block_cache != nullptr) {
      char cache_key_buffer[16];
      EncodeFixed64(cache_key_buffer, table->rep_->cache_id);
      EncodeFixed64(cache_key_buffer + 8, handle.offset());
      Slice key(cache_key_buffer, sizeof(cache_key_buffer));
      cache_handle = block_cache->Lookup(key);
      if (cache_handle != nullptr) {
        block = reinterpret_cast<Block*>(block_cache->Value(cache_handle));
        CLSM_PERF_COUNT_ADD(block_cache_hits, 1);
      } else {
        s = ReadBlock(table->rep_->file, options, handle, &contents);
        if (s.ok()) {
          block = new Block(contents);
          if (contents.cachable && options.fill_cache) {
            cache_handle = block_cache->Insert(key, block, block->size(), &DeleteCachedBlock);
          }
        }
      }
    } else {
      s = ReadBlock(table->rep_->file, options, handle, &contents);
      if (s.ok()) {
        block = new Block(contents);
      }
    }
  }

  Iterator* iter;
  if (block != nullptr) {
    iter = block->NewIterator(table->rep_->comparator);
    if (cache_handle == nullptr) {
      iter->RegisterCleanup(&DeleteBlock, block, nullptr);
    } else {
      iter->RegisterCleanup(&ReleaseBlock, block_cache, cache_handle);
    }
  } else {
    iter = NewErrorIterator(s);
  }
  return iter;
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  return NewTwoLevelIterator(rep_->index_block->NewIterator(rep_->comparator),
                             &Table::BlockReader, const_cast<Table*>(this), options);
}

Status Table::InternalGet(const ReadOptions& options, const Slice& k, void* arg,
                          void (*handle_result)(void*, const Slice&, const Slice&)) {
  Status s;
  Iterator* iiter = rep_->index_block->NewIterator(rep_->comparator);
  iiter->Seek(k);
  if (iiter->Valid()) {
    Slice handle_value = iiter->value();
    FilterBlockReader* filter = rep_->filter;
    BlockHandle handle;
    if (filter != nullptr && handle.DecodeFrom(&handle_value).ok() &&
        !filter->KeyMayMatch(handle.offset(), k)) {
      // Not found: the Bloom filter rules the key out without any I/O.
      CLSM_PERF_COUNT_ADD(bloom_useful, 1);
    } else {
      Iterator* block_iter = BlockReader(this, options, iiter->value());
      block_iter->Seek(k);
      if (block_iter->Valid()) {
        (*handle_result)(arg, block_iter->key(), block_iter->value());
      }
      s = block_iter->status();
      delete block_iter;
    }
  }
  if (s.ok()) {
    s = iiter->status();
  }
  delete iiter;
  return s;
}

uint64_t Table::ApproximateOffsetOf(const Slice& key) const {
  Iterator* index_iter = rep_->index_block->NewIterator(rep_->comparator);
  index_iter->Seek(key);
  uint64_t result;
  if (index_iter->Valid()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (s.ok()) {
      result = handle.offset();
    } else {
      // Strange: we can't decode the block handle in the index block.
      // We'll just return the offset of the metaindex block, which is
      // close to the whole file size for this case.
      result = rep_->metaindex_handle.offset();
    }
  } else {
    // key is past the last key in the file.  Approximate the offset
    // by returning the offset of the metaindex block (which is
    // right near the end of the file).
    result = rep_->metaindex_handle.offset();
  }
  delete index_iter;
  return result;
}

namespace {

typedef Iterator* (*BlockFunction)(void*, const ReadOptions&, const Slice&);

class TwoLevelIterator final : public Iterator {
 public:
  TwoLevelIterator(Iterator* index_iter, BlockFunction block_function, void* arg,
                   const ReadOptions& options)
      : block_function_(block_function),
        arg_(arg),
        options_(options),
        index_iter_(index_iter),
        data_iter_(nullptr) {}

  ~TwoLevelIterator() override {
    delete index_iter_;
    delete data_iter_;
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->Seek(target);
    }
    SkipEmptyDataBlocksForward();
  }
  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToFirst();
    }
    SkipEmptyDataBlocksForward();
  }
  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToLast();
    }
    SkipEmptyDataBlocksBackward();
  }
  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }
  void Prev() override {
    assert(Valid());
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  bool Valid() const override { return data_iter_ != nullptr && data_iter_->Valid(); }
  Slice key() const override {
    assert(Valid());
    return data_iter_->key();
  }
  Slice value() const override {
    assert(Valid());
    return data_iter_->value();
  }
  Status status() const override {
    if (!index_iter_->status().ok()) {
      return index_iter_->status();
    } else if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    } else {
      return status_;
    }
  }

 private:
  void SaveError(const Status& s) {
    if (status_.ok() && !s.ok()) {
      status_ = s;
    }
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToFirst();
      }
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToLast();
      }
    }
  }

  void SetDataIterator(Iterator* data_iter) {
    if (data_iter_ != nullptr) {
      SaveError(data_iter_->status());
      delete data_iter_;
    }
    data_iter_ = data_iter;
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      SetDataIterator(nullptr);
    } else {
      Slice handle = index_iter_->value();
      if (data_iter_ != nullptr && handle.compare(data_block_handle_) == 0) {
        // data_iter_ is already constructed with this iterator, so
        // no need to change anything
      } else {
        Iterator* iter = (*block_function_)(arg_, options_, handle);
        data_block_handle_.assign(handle.data(), handle.size());
        SetDataIterator(iter);
      }
    }
  }

  BlockFunction block_function_;
  void* arg_;
  const ReadOptions options_;
  Status status_;
  Iterator* index_iter_;
  Iterator* data_iter_;  // May be nullptr
  // If data_iter_ is non-null, then data_block_handle_ holds the handle
  // passed to block_function_ to create the data_iter_.
  std::string data_block_handle_;
};

}  // namespace

Iterator* NewTwoLevelIterator(Iterator* index_iter, BlockFunction block_function, void* arg,
                              const ReadOptions& options) {
  return new TwoLevelIterator(index_iter, block_function, arg, options);
}

}  // namespace clsm
