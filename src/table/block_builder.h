// Builds prefix-compressed key/value blocks with restart points, the
// LevelDB data-block format our disk component stores.
#ifndef CLSM_TABLE_BLOCK_BUILDER_H_
#define CLSM_TABLE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/slice.h"

namespace clsm {

struct Options;
class Comparator;

class BlockBuilder {
 public:
  BlockBuilder(const Options* options, const Comparator* comparator);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  // REQUIRES: key is larger than any previously added key.
  void Add(const Slice& key, const Slice& value);

  // Finish building and return a slice referring to block contents, valid
  // until Reset().
  Slice Finish();

  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const Options* options_;
  const Comparator* comparator_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;  // entries emitted since last restart
  bool finished_;
  std::string last_key_;
};

}  // namespace clsm

#endif  // CLSM_TABLE_BLOCK_BUILDER_H_
