// Bloom filter policy (paper §4 cites Bloom [14] as one of the inherited
// LevelDB read optimizations). Double-hashing variant over Hash().
#ifndef CLSM_TABLE_BLOOM_H_
#define CLSM_TABLE_BLOOM_H_

#include <string>

#include "src/util/slice.h"

namespace clsm {

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  virtual const char* Name() const = 0;

  // Append to *dst a filter summarizing keys[0..n-1].
  virtual void CreateFilter(const Slice* keys, int n, std::string* dst) const = 0;

  // Must return true if key was in the key list the filter was built from;
  // may return true for keys that were not (false positive).
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

// Returns a new policy using ~bits_per_key bits per key. Caller owns it.
const FilterPolicy* NewBloomFilterPolicy(int bits_per_key);

}  // namespace clsm

#endif  // CLSM_TABLE_BLOOM_H_
