#include "src/table/format.h"

#include "src/obs/metrics.h"  // MonotonicNanos (inline; no clsm_obs link dep)
#include "src/obs/perf_context.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace clsm {

void BlockHandle::EncodeTo(std::string* dst) const {
  // Sanity: fields must be set.
  assert(offset_ != ~static_cast<uint64_t>(0));
  assert(size_ != ~static_cast<uint64_t>(0));
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  metaindex_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // Padding
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
  assert(dst->size() == original_size + kEncodedLength);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      ((static_cast<uint64_t>(magic_hi) << 32) | (static_cast<uint64_t>(magic_lo)));
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }

  Status result = metaindex_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  if (result.ok()) {
    // Skip over any leftover data (just padding for now).
    const char* end = magic_ptr + 8;
    *input = Slice(end, input->data() + input->size() - end);
  }
  return result;
}

Status ReadBlock(RandomAccessFile* file, const ReadOptions& options, const BlockHandle& handle,
                 BlockContents* result) {
  result->data = Slice();
  result->cachable = false;
  result->heap_allocated = false;

  const size_t n = static_cast<size_t>(handle.size());
  char* buf = new char[n + kBlockTrailerSize];
  Slice contents;
  Status s = file->Read(handle.offset(), n + kBlockTrailerSize, &contents, buf);
  if (!s.ok()) {
    delete[] buf;
    return s;
  }
  if (contents.size() != n + kBlockTrailerSize) {
    delete[] buf;
    return Status::Corruption("truncated block read");
  }
  // Per-op attribution: every SSTable block IO funnels through here, so
  // this is the one point that counts physical block reads and bytes.
  {
    PerfContext& ctx = tls_perf_context;
    if (ctx.counts_enabled()) {
      ctx.block_reads++;
      ctx.block_read_bytes += n + kBlockTrailerSize;
    }
  }

  const char* data = contents.data();
  if (options.verify_checksums) {
    const bool timed = tls_perf_context.timers_enabled();
    const uint64_t crc_t0 = timed ? MonotonicNanos() : 0;
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (timed) {
      tls_perf_context.crc_verify_nanos += MonotonicNanos() - crc_t0;
    }
    if (actual != crc) {
      delete[] buf;
      return Status::Corruption("block checksum mismatch");
    }
  }

  if (data != buf) {
    // File implementation returned a pointer into its own storage; copy not
    // needed, but we must not cache or free it.
    delete[] buf;
    result->data = Slice(data, n);
    result->cachable = false;
    result->heap_allocated = false;
  } else {
    result->data = Slice(buf, n);
    result->cachable = true;
    result->heap_allocated = true;
  }
  return Status::OK();
}

}  // namespace clsm
