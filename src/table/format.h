// On-disk framing of SSTables: block handles, the fixed footer, and the
// checksummed block read path.
#ifndef CLSM_TABLE_FORMAT_H_
#define CLSM_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "src/util/env.h"
#include "src/util/options.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace clsm {

// Location of a block within a table file.
class BlockHandle {
 public:
  enum { kMaxEncodedLength = 10 + 10 };

  BlockHandle() : offset_(~static_cast<uint64_t>(0)), size_(~static_cast<uint64_t>(0)) {}

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_;
  uint64_t size_;
};

// Fixed-size footer at the tail of every table file: metaindex handle,
// index handle, padding, magic.
class Footer {
 public:
  enum { kEncodedLength = 2 * BlockHandle::kMaxEncodedLength + 8 };

  const BlockHandle& metaindex_handle() const { return metaindex_handle_; }
  void set_metaindex_handle(const BlockHandle& h) { metaindex_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

static const uint64_t kTableMagicNumber = 0xc1540ce5c1540ce5ull;

// 1-byte type (reserved for compression; always raw here) + 32-bit crc.
static const size_t kBlockTrailerSize = 5;

struct BlockContents {
  Slice data;
  bool cachable;       // false if data points into memory not owned by caller
  bool heap_allocated;  // true iff caller should delete[] data.data()
};

// Read the block identified by handle from file; verify CRC if requested.
Status ReadBlock(RandomAccessFile* file, const ReadOptions& options, const BlockHandle& handle,
                 BlockContents* result);

}  // namespace clsm

#endif  // CLSM_TABLE_FORMAT_H_
