// Per-table filter block: one Bloom filter per 2 KiB range of file offsets,
// enabling point lookups to skip data-block reads (LevelDB format).
#ifndef CLSM_TABLE_FILTER_BLOCK_H_
#define CLSM_TABLE_FILTER_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/table/bloom.h"
#include "src/util/slice.h"

namespace clsm {

class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const FilterPolicy* policy);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  void StartBlock(uint64_t block_offset);
  void AddKey(const Slice& key);
  Slice Finish();

 private:
  void GenerateFilter();

  const FilterPolicy* policy_;
  std::string keys_;             // Flattened key contents
  std::vector<size_t> start_;    // Starting index in keys_ of each key
  std::string result_;           // Filter data computed so far
  std::vector<Slice> tmp_keys_;  // policy_->CreateFilter() argument
  std::vector<uint32_t> filter_offsets_;
};

class FilterBlockReader {
 public:
  // contents must outlive *this.
  FilterBlockReader(const FilterPolicy* policy, const Slice& contents);
  bool KeyMayMatch(uint64_t block_offset, const Slice& key);

 private:
  const FilterPolicy* policy_;
  const char* data_;    // Filter data (at block-start)
  const char* offset_;  // Beginning of offset array (at block-end)
  size_t num_;          // Number of entries in offset array
  size_t base_lg_;      // Encoding parameter (see kFilterBaseLg)
};

}  // namespace clsm

#endif  // CLSM_TABLE_FILTER_BLOCK_H_
