// SSTable reader: immutable, thread-safe without external synchronization —
// concurrent gets over the disk component never contend here (paper §2.3).
#ifndef CLSM_TABLE_TABLE_H_
#define CLSM_TABLE_TABLE_H_

#include <cstdint>
#include <memory>

#include "src/table/bloom.h"
#include "src/table/cache.h"
#include "src/table/format.h"
#include "src/table/iterator.h"
#include "src/util/comparator.h"
#include "src/util/env.h"
#include "src/util/options.h"

namespace clsm {

class Table {
 public:
  // Opens the table stored in file [0..file_size). On success *table is
  // non-null; the Table keeps a reference to file (caller retains
  // ownership and must keep it alive). block_cache may be null.
  static Status Open(const Options& options, const Comparator* comparator,
                     const FilterPolicy* filter_policy, Cache* block_cache,
                     RandomAccessFile* file, uint64_t file_size, Table** table);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ~Table();

  // New iterator over the table contents (two-level: index then block).
  Iterator* NewIterator(const ReadOptions&) const;

  // Point lookup: seeks to the first entry >= k and, if one exists in the
  // candidate block (after the Bloom filter check), invokes
  // handle_result(arg, found_key, found_value).
  Status InternalGet(const ReadOptions&, const Slice& key, void* arg,
                     void (*handle_result)(void* arg, const Slice& k, const Slice& v));

  // Approximate file offset where the data for key begins (for sizing).
  uint64_t ApproximateOffsetOf(const Slice& key) const;

 private:
  struct Rep;

  static Iterator* BlockReader(void*, const ReadOptions&, const Slice&);

  explicit Table(Rep* rep) : rep_(rep) {}

  void ReadMeta(const Footer& footer);
  void ReadFilter(const Slice& filter_handle_value);

  Rep* const rep_;
};

// Generic two-level iterator: an index iterator whose values are decoded by
// block_function into data iterators. Exposed for the version-set level
// iterators as well.
Iterator* NewTwoLevelIterator(Iterator* index_iter,
                              Iterator* (*block_function)(void* arg, const ReadOptions& options,
                                                          const Slice& index_value),
                              void* arg, const ReadOptions& options);

}  // namespace clsm

#endif  // CLSM_TABLE_TABLE_H_
