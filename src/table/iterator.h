// Iterator abstraction shared by memtable, block, table, and merged views.
// Follows LevelDB's contract: position-based, with key()/value() valid only
// while Valid(). CleanupFunctions let an iterator pin resources (cache
// handles, memtable references) for exactly its own lifetime.
#ifndef CLSM_TABLE_ITERATOR_H_
#define CLSM_TABLE_ITERATOR_H_

#include "src/util/slice.h"
#include "src/util/status.h"

namespace clsm {

class Iterator {
 public:
  Iterator();
  virtual ~Iterator();

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;

  using CleanupFunction = void (*)(void* arg1, void* arg2);
  void RegisterCleanup(CleanupFunction function, void* arg1, void* arg2);

 private:
  struct CleanupNode {
    CleanupFunction function;
    void* arg1;
    void* arg2;
    CleanupNode* next;

    bool IsEmpty() const { return function == nullptr; }
    void Run() { (*function)(arg1, arg2); }
  };
  CleanupNode cleanup_head_;
};

// Iterator over nothing, in the given (usually error) state.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace clsm

#endif  // CLSM_TABLE_ITERATOR_H_
