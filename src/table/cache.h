// Sharded LRU cache. Backs both the block cache (the "large RAM cache" the
// paper's disk component leans on, §2.3) and the table cache of open
// SSTables. 16-way sharding keeps mutex hold times out of the measured
// concurrency paths.
#ifndef CLSM_TABLE_CACHE_H_
#define CLSM_TABLE_CACHE_H_

#include <cstdint>

#include "src/util/slice.h"

namespace clsm {

class Cache {
 public:
  Cache() = default;
  virtual ~Cache();

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  // Opaque handle to a cached entry.
  struct Handle {};

  // Insert key->value with the given charge against capacity. The returned
  // handle pins the entry; caller must Release() it. deleter is invoked when
  // the entry is evicted and unpinned.
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value)) = 0;

  // Returns nullptr on miss; otherwise a pinned handle (must be Released).
  virtual Handle* Lookup(const Slice& key) = 0;

  virtual void Release(Handle* handle) = 0;
  virtual void* Value(Handle* handle) = 0;
  virtual void Erase(const Slice& key) = 0;

  // New numeric id, for partitioning the key space among multiple clients.
  virtual uint64_t NewId() = 0;

  virtual size_t TotalCharge() const = 0;
};

// LRU cache with the given total capacity (bytes of charge).
Cache* NewLRUCache(size_t capacity);

}  // namespace clsm

#endif  // CLSM_TABLE_CACHE_H_
