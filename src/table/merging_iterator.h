// K-way merging iterator over children in comparator order — the heart of
// both the merge (compaction) procedure (§2.3) and multi-component scans.
#ifndef CLSM_TABLE_MERGING_ITERATOR_H_
#define CLSM_TABLE_MERGING_ITERATOR_H_

namespace clsm {

class Comparator;
class Iterator;

// Returns an iterator yielding the union of children[0..n-1] in sorted
// order. Takes ownership of the child iterators. Ties (equal keys across
// children) yield the entry from the earlier child first, so callers should
// order children newest component first.
Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children, int n);

}  // namespace clsm

#endif  // CLSM_TABLE_MERGING_ITERATOR_H_
