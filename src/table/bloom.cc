#include "src/table/bloom.h"

#include "src/util/hash.h"

namespace clsm {

namespace {

uint32_t BloomHash(const Slice& key) { return Hash(key.data(), key.size(), 0xbc9f1d34); }

class BloomFilterPolicy final : public FilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key) : bits_per_key_(bits_per_key) {
    // Round down k to reduce probing cost a little.
    k_ = static_cast<size_t>(bits_per_key * 0.69);  // 0.69 =~ ln(2)
    if (k_ < 1) {
      k_ = 1;
    }
    if (k_ > 30) {
      k_ = 30;
    }
  }

  const char* Name() const override { return "clsm.BuiltinBloomFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    // Compute bloom filter size (in both bits and bytes).
    size_t bits = n * bits_per_key_;
    // A tiny filter has a huge false-positive rate; enforce a floor.
    if (bits < 64) {
      bits = 64;
    }
    size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;

    const size_t init_size = dst->size();
    dst->resize(init_size + bytes, 0);
    dst->push_back(static_cast<char>(k_));  // Remember # of probes
    char* array = &(*dst)[init_size];
    for (int i = 0; i < n; i++) {
      // Double-hashing: one hash, rotated delta per probe.
      uint32_t h = BloomHash(keys[i]);
      const uint32_t delta = (h >> 17) | (h << 15);
      for (size_t j = 0; j < k_; j++) {
        const uint32_t bitpos = h % bits;
        array[bitpos / 8] |= (1 << (bitpos % 8));
        h += delta;
      }
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& bloom_filter) const override {
    const size_t len = bloom_filter.size();
    if (len < 2) {
      return false;
    }

    const char* array = bloom_filter.data();
    const size_t bits = (len - 1) * 8;

    const size_t k = static_cast<uint8_t>(array[len - 1]);
    if (k > 30) {
      // Reserved for potential new encodings; treat as a match.
      return true;
    }

    uint32_t h = BloomHash(key);
    const uint32_t delta = (h >> 17) | (h << 15);
    for (size_t j = 0; j < k; j++) {
      const uint32_t bitpos = h % bits;
      if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
        return false;
      }
      h += delta;
    }
    return true;
  }

 private:
  int bits_per_key_;
  size_t k_;
};

}  // namespace

const FilterPolicy* NewBloomFilterPolicy(int bits_per_key) {
  return new BloomFilterPolicy(bits_per_key);
}

}  // namespace clsm
