// Immutable in-memory form of a data/index block, with a restart-point
// binary-searching iterator.
#ifndef CLSM_TABLE_BLOCK_H_
#define CLSM_TABLE_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "src/table/format.h"

namespace clsm {

class Comparator;
class Iterator;

class Block {
 public:
  explicit Block(const BlockContents& contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  ~Block();

  size_t size() const { return size_; }
  Iterator* NewIterator(const Comparator* comparator);

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_;  // Offset in data_ of restart array
  bool owned_;               // Block owns data_[]
};

}  // namespace clsm

#endif  // CLSM_TABLE_BLOCK_H_
