// Builds an SSTable file: data blocks, filter block, metaindex, index,
// footer. Used by memtable flushes and compactions.
#ifndef CLSM_TABLE_TABLE_BUILDER_H_
#define CLSM_TABLE_TABLE_BUILDER_H_

#include <cstdint>

#include "src/table/bloom.h"
#include "src/util/comparator.h"
#include "src/util/env.h"
#include "src/util/options.h"
#include "src/util/status.h"

namespace clsm {

class BlockBuilder;

class TableBuilder {
 public:
  // filter_policy may be null (no filter block). Does not take ownership of
  // file; caller must Sync/Close after Finish().
  TableBuilder(const Options& options, const Comparator* comparator,
               const FilterPolicy* filter_policy, WritableFile* file);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // REQUIRES: Finish() or Abandon() called.
  ~TableBuilder();

  // REQUIRES: key is after any previously added key in comparator order.
  void Add(const Slice& key, const Slice& value);

  // Writes any buffered data block to the file (advanced use).
  void Flush();

  Status status() const;

  // Finish building the table; file contents are complete after this.
  Status Finish();

  // Abandon the table contents (e.g. on error).
  void Abandon();

  uint64_t NumEntries() const;
  uint64_t FileSize() const;

 private:
  bool ok() const { return status().ok(); }
  void WriteBlock(BlockBuilder* block, class BlockHandle* handle);
  void WriteRawBlock(const Slice& data, BlockHandle* handle);

  struct Rep;
  Rep* rep_;
};

}  // namespace clsm

#endif  // CLSM_TABLE_TABLE_BUILDER_H_
