// Writer-preferring shared-exclusive lock (paper §3.1).
//
// Puts hold the lock in shared mode; beforeMerge/afterMerge hold it in
// exclusive mode for a handful of pointer swaps. The implementation prefers
// exclusive lockers (shared acquisition spins while an exclusive request is
// pending) so the merge process cannot starve behind a stream of puts, as
// the paper requires. Shared acquisitions never block each other.
#ifndef CLSM_SYNC_SHARED_EXCLUSIVE_LOCK_H_
#define CLSM_SYNC_SHARED_EXCLUSIVE_LOCK_H_

#include <atomic>
#include <cstdint>

namespace clsm {

class SharedExclusiveLock {
 public:
  SharedExclusiveLock() : state_(0), exclusive_waiting_(0) {}

  SharedExclusiveLock(const SharedExclusiveLock&) = delete;
  SharedExclusiveLock& operator=(const SharedExclusiveLock&) = delete;

  void LockShared();
  void UnlockShared();

  void LockExclusive();
  void UnlockExclusive();

  // Test-only visibility.
  bool ExclusiveHeldForTest() const { return state_.load(std::memory_order_acquire) < 0; }
  int32_t SharedCountForTest() const {
    int32_t s = state_.load(std::memory_order_acquire);
    return s < 0 ? 0 : s;
  }

 private:
  // state_ >= 0: number of shared holders; state_ == -1: exclusive held.
  std::atomic<int32_t> state_;
  std::atomic<int32_t> exclusive_waiting_;
};

// RAII helpers.
class SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedExclusiveLock& lock) : lock_(lock) { lock_.LockShared(); }
  ~SharedLockGuard() { lock_.UnlockShared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedExclusiveLock& lock_;
};

class ExclusiveLockGuard {
 public:
  explicit ExclusiveLockGuard(SharedExclusiveLock& lock) : lock_(lock) { lock_.LockExclusive(); }
  ~ExclusiveLockGuard() { lock_.UnlockExclusive(); }
  ExclusiveLockGuard(const ExclusiveLockGuard&) = delete;
  ExclusiveLockGuard& operator=(const ExclusiveLockGuard&) = delete;

 private:
  SharedExclusiveLock& lock_;
};

}  // namespace clsm

#endif  // CLSM_SYNC_SHARED_EXCLUSIVE_LOCK_H_
