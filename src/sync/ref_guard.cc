#include "src/sync/ref_guard.h"

#include "src/sync/backoff.h"

namespace clsm {

EpochManager::EpochManager(int max_threads) : global_epoch_(1), registry_(max_threads) {}

void EpochManager::Enter() {
  const int index = registry_.SlotForThisThread();
  if (index == ThreadSlotRegistry::kOverflowIndex) {
    EnterOverflow();
    return;
  }
  Slot* slot = &slots_[index];
  uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  // seq_cst store: must be globally visible before the reader dereferences
  // the component pointers, and ordered against Synchronize()'s epoch bump.
  // The slot itself was published to Synchronize's scan by the registry's
  // seq_cst high-water bump before this store.
  slot->epoch.store(e, std::memory_order_seq_cst);
  // Re-read: if the global epoch advanced between our load and publish, our
  // published value may be stale-low; refresh so Synchronize() never waits
  // on a reader that actually entered after the bump.
  uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
  if (e2 != e) {
    slot->epoch.store(e2, std::memory_order_seq_cst);
  }
}

void EpochManager::Exit() {
  const int index = registry_.SlotForThisThread();
  if (index == ThreadSlotRegistry::kOverflowIndex) {
    ExitOverflow();
    return;
  }
  slots_[index].epoch.store(0, std::memory_order_release);
}

void EpochManager::EnterOverflow() {
  // Saturated registry: claim any quiescent shared slot by CAS and remember
  // which one in the per-(thread, registry) scratch word so the paired
  // Exit can release it (epoch values are not unique per thread, so the
  // Active-set trick of scanning for our own value does not apply).
  registry_.BumpOverflowOps();
  int* claim = registry_.OverflowScratchForThisThread();
  SpinBackoff backoff;
  for (;;) {
    for (int i = 0; i < kOverflowSlots; i++) {
      uint64_t e = global_epoch_.load(std::memory_order_relaxed);
      uint64_t expected = 0;
      if (overflow_[i].epoch.compare_exchange_strong(expected, e,
                                                     std::memory_order_seq_cst)) {
        // Same stale-epoch refresh as the private path; the slot is ours
        // until Exit, so a plain store is safe.
        uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
        if (e2 != e) {
          overflow_[i].epoch.store(e2, std::memory_order_seq_cst);
        }
        *claim = i;
        return;
      }
    }
    backoff.Pause();
  }
}

void EpochManager::ExitOverflow() {
  const int claim = *registry_.OverflowScratchForThisThread();
  assert(claim >= 0 && claim < kOverflowSlots);
  overflow_[claim].epoch.store(0, std::memory_order_release);
}

void EpochManager::Synchronize() {
  const uint64_t barrier = global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  // seq_cst bound load: pairs with the registry's seq_cst high-water bump
  // so a reader whose Enter is ordered before our epoch bump is never
  // skipped (see thread_slots.h for the full argument).
  const int n = registry_.ScanBound();
  auto wait_quiescent = [barrier](const Slot& slot) {
    SpinBackoff backoff;
    while (true) {
      uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e == 0 || e >= barrier) {
        break;
      }
      backoff.Pause();
    }
  };
  for (int i = 0; i < n; i++) {
    wait_quiescent(slots_[i]);
  }
  for (int i = 0; i < kOverflowSlots; i++) {
    wait_quiescent(overflow_[i]);
  }
}

}  // namespace clsm
