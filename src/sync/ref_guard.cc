#include "src/sync/ref_guard.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_map>

namespace clsm {

namespace {
std::atomic<uint64_t> g_next_epoch_mgr_id{1};
}  // namespace

EpochManager::EpochManager()
    : global_epoch_(1), registered_(0), id_(g_next_epoch_mgr_id.fetch_add(1)) {}

EpochManager::Slot* EpochManager::SlotForThisThread() {
  thread_local uint64_t cached_id = 0;
  thread_local Slot* cached_slot = nullptr;
  if (cached_id == id_) {
    return cached_slot;
  }
  thread_local std::unordered_map<uint64_t, Slot*> reg_map;
  auto it = reg_map.find(id_);
  Slot* slot;
  if (it != reg_map.end()) {
    slot = it->second;
  } else {
    int index = registered_.fetch_add(1, std::memory_order_relaxed);
    if (index >= kMaxThreads) {
      fprintf(stderr, "EpochManager: too many threads (max %d)\n", kMaxThreads);
      abort();
    }
    slot = &slots_[index];
    reg_map.emplace(id_, slot);
  }
  cached_id = id_;
  cached_slot = slot;
  return slot;
}

void EpochManager::Enter() {
  Slot* slot = SlotForThisThread();
  uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  // seq_cst store: must be globally visible before the reader dereferences
  // the component pointers, and ordered against Synchronize()'s epoch bump.
  slot->epoch.store(e, std::memory_order_seq_cst);
  // Re-read: if the global epoch advanced between our load and publish, our
  // published value may be stale-low; refresh so Synchronize() never waits
  // on a reader that actually entered after the bump.
  uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
  if (e2 != e) {
    slot->epoch.store(e2, std::memory_order_seq_cst);
  }
}

void EpochManager::Exit() {
  SlotForThisThread()->epoch.store(0, std::memory_order_release);
}

void EpochManager::Synchronize() {
  const uint64_t barrier = global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  const int n = registered_.load(std::memory_order_acquire);
  for (int i = 0; i < n; i++) {
    int spins = 0;
    while (true) {
      uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (e == 0 || e >= barrier) {
        break;
      }
      if (++spins > 128) {
        std::this_thread::yield();
      }
    }
  }
}

}  // namespace clsm
