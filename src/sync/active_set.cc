#include "src/sync/active_set.h"

#include <cassert>

#include "src/sync/backoff.h"

namespace clsm {

ActiveTimestampSet::ActiveTimestampSet(int max_threads) : registry_(max_threads) {}

void ActiveTimestampSet::Add(uint64_t ts) {
  assert(ts != kNone);
  const int index = registry_.SlotForThisThread();
  if (index == ThreadSlotRegistry::kOverflowIndex) {
    AddOverflow(ts);
    return;
  }
  Slot& slot = slots_[index];
  assert(slot.ts.load(std::memory_order_relaxed) == kNone);
  // seq_cst: the Add must be globally ordered against getSnap's read of the
  // time counter and scan of the set (the Figure 4 race). The slot was
  // published to FindMin by the registry's seq_cst high-water bump before
  // this store, so no scan that matters can skip it.
  slot.ts.store(ts, std::memory_order_seq_cst);
}

void ActiveTimestampSet::Remove(uint64_t ts) {
  const int index = registry_.SlotForThisThread();
  if (index == ThreadSlotRegistry::kOverflowIndex) {
    RemoveOverflow(ts);
    return;
  }
  Slot& slot = slots_[index];
  assert(slot.ts.load(std::memory_order_relaxed) == ts);
  (void)ts;
  slot.ts.store(kNone, std::memory_order_release);
}

void ActiveTimestampSet::AddOverflow(uint64_t ts) {
  // Saturated registry: claim any free shared slot. The CAS (a seq_cst RMW)
  // gives the same ordering against scans as the private-slot store. All
  // overflow slots busy means > capacity + kOverflowSlots puts are in
  // flight at this instant; wait for one to finish — degraded, never fatal.
  registry_.BumpOverflowOps();
  SpinBackoff backoff;
  for (;;) {
    for (int i = 0; i < kOverflowSlots; i++) {
      uint64_t expected = kNone;
      if (overflow_[i].ts.compare_exchange_strong(expected, ts,
                                                  std::memory_order_seq_cst)) {
        return;
      }
    }
    backoff.Pause();
  }
}

void ActiveTimestampSet::RemoveOverflow(uint64_t ts) {
  // Timestamps are unique (one IncAndGet each), so the claimed slot is the
  // one holding ts — no per-thread claim bookkeeping needed.
  for (int i = 0; i < kOverflowSlots; i++) {
    if (overflow_[i].ts.load(std::memory_order_relaxed) == ts) {
      overflow_[i].ts.store(kNone, std::memory_order_release);
      return;
    }
  }
  assert(false && "Remove of a timestamp not present in any overflow slot");
}

uint64_t ActiveTimestampSet::FindMin() const {
  // seq_cst bound load: pairs with the registry's seq_cst high-water bump
  // so a slot whose Add is ordered before our caller's snapTime update is
  // never skipped (see thread_slots.h for the full argument).
  const int n = registry_.ScanBound();
  uint64_t min = kNone;
  for (int i = 0; i < n; i++) {
    uint64_t ts = slots_[i].ts.load(std::memory_order_seq_cst);
    if (ts != kNone && (min == kNone || ts < min)) {
      min = ts;
    }
  }
  for (int i = 0; i < kOverflowSlots; i++) {
    uint64_t ts = overflow_[i].ts.load(std::memory_order_seq_cst);
    if (ts != kNone && (min == kNone || ts < min)) {
      min = ts;
    }
  }
  return min;
}

}  // namespace clsm
