#include "src/sync/active_set.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace clsm {

namespace {
std::atomic<uint64_t> g_next_set_id{1};
}  // namespace

ActiveTimestampSet::ActiveTimestampSet()
    : registered_(0), id_(g_next_set_id.fetch_add(1, std::memory_order_relaxed)) {}

int ActiveTimestampSet::SlotIndexForThisThread() {
  // One slot per (thread, set) pair, keyed by the set's process-unique id so
  // that a destroyed set whose address is reused never aliases a live cache
  // entry. The common case (a thread hammering one DB) hits the one-entry
  // fast cache; the map only backs threads that touch many stores.
  thread_local uint64_t cached_id = 0;
  thread_local int cached_index = -1;
  if (cached_id == id_) {
    return cached_index;
  }
  thread_local std::unordered_map<uint64_t, int> reg_map;
  auto it = reg_map.find(id_);
  int index;
  if (it != reg_map.end()) {
    index = it->second;
  } else {
    index = registered_.fetch_add(1, std::memory_order_relaxed);
    if (index >= kMaxThreads) {
      fprintf(stderr, "ActiveTimestampSet: too many threads (max %d)\n", kMaxThreads);
      abort();
    }
    reg_map.emplace(id_, index);
  }
  cached_id = id_;
  cached_index = index;
  return index;
}

void ActiveTimestampSet::Add(uint64_t ts) {
  assert(ts != kNone);
  Slot& slot = slots_[SlotIndexForThisThread()];
  assert(slot.ts.load(std::memory_order_relaxed) == kNone);
  // seq_cst: the Add must be globally ordered against getSnap's read of the
  // time counter and scan of the set (the Figure 4 race).
  slot.ts.store(ts, std::memory_order_seq_cst);
}

void ActiveTimestampSet::Remove(uint64_t ts) {
  Slot& slot = slots_[SlotIndexForThisThread()];
  assert(slot.ts.load(std::memory_order_relaxed) == ts);
  (void)ts;
  slot.ts.store(kNone, std::memory_order_release);
}

uint64_t ActiveTimestampSet::FindMin() const {
  const int n = registered_.load(std::memory_order_acquire);
  uint64_t min = kNone;
  for (int i = 0; i < n; i++) {
    uint64_t ts = slots_[i].ts.load(std::memory_order_seq_cst);
    if (ts != kNone && (min == kNone || ts < min)) {
      min = ts;
    }
  }
  return min;
}

}  // namespace clsm
