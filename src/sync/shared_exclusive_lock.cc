#include "src/sync/shared_exclusive_lock.h"

#include <thread>

#include "src/obs/metrics.h"  // MonotonicNanos (inline; no clsm_obs link dep)
#include "src/obs/perf_context.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CLSM_CPU_RELAX() _mm_pause()
#else
#define CLSM_CPU_RELAX() std::this_thread::yield()
#endif

namespace clsm {

namespace {
// Spin briefly before yielding to the scheduler; exclusive sections are a
// few pointer swaps so holders exit quickly.
class Backoff {
 public:
  void Pause() {
    if (spins_++ < 64) {
      CLSM_CPU_RELAX();
    } else {
      std::this_thread::yield();
    }
  }

 private:
  int spins_ = 0;
};
}  // namespace

void SharedExclusiveLock::LockShared() {
  // Fast path: no pending exclusive locker and the CAS lands first try.
  // Kept probe-free — uncontended shared acquisition is on every put.
  if (exclusive_waiting_.load(std::memory_order_acquire) == 0) {
    int32_t s = state_.load(std::memory_order_acquire);
    if (s >= 0 &&
        state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
  // Slow path: genuinely contended (a beforeMerge/afterMerge swap or a
  // batch is in or entering its exclusive section). Only this wait is
  // attributed to shared_lock_wait_nanos.
  const bool timed = tls_perf_context.timers_enabled();
  const uint64_t t0 = timed ? MonotonicNanos() : 0;
  Backoff backoff;
  while (true) {
    // Exclusive preference: do not even attempt while a writer waits.
    if (exclusive_waiting_.load(std::memory_order_acquire) > 0) {
      backoff.Pause();
      continue;
    }
    int32_t s = state_.load(std::memory_order_acquire);
    if (s >= 0 &&
        state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      break;
    }
    backoff.Pause();
  }
  if (timed) {
    tls_perf_context.shared_lock_wait_nanos += MonotonicNanos() - t0;
  }
}

void SharedExclusiveLock::UnlockShared() { state_.fetch_sub(1, std::memory_order_release); }

void SharedExclusiveLock::LockExclusive() {
  exclusive_waiting_.fetch_add(1, std::memory_order_acq_rel);
  Backoff backoff;
  int32_t expected = 0;
  while (!state_.compare_exchange_weak(expected, -1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    expected = 0;
    backoff.Pause();
  }
  exclusive_waiting_.fetch_sub(1, std::memory_order_acq_rel);
}

void SharedExclusiveLock::UnlockExclusive() { state_.store(0, std::memory_order_release); }

}  // namespace clsm
