// Global monotonically increasing timestamp counter (paper §3.2). Puts
// atomically increment-and-get; getSnap reads. Non-blocking by construction.
#ifndef CLSM_SYNC_TIME_COUNTER_H_
#define CLSM_SYNC_TIME_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace clsm {

class TimeCounter {
 public:
  explicit TimeCounter(uint64_t initial = 0) : value_(initial) {}

  uint64_t IncAndGet() { return value_.fetch_add(1, std::memory_order_seq_cst) + 1; }
  uint64_t Get() const { return value_.load(std::memory_order_seq_cst); }

  // Recovery: jump forward to at least v (never moves backward).
  void AdvanceTo(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_seq_cst)) {
    }
  }

 private:
  std::atomic<uint64_t> value_;
};

}  // namespace clsm

#endif  // CLSM_SYNC_TIME_COUNTER_H_
