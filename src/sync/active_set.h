// Non-blocking Active timestamp set (paper §3.2, Algorithm 2).
//
// Tracks timestamps that have been handed out by the time counter but whose
// writes may not yet be visible in the in-memory component. getSnap uses
// FindMin() to choose a snapshot time earlier than all in-flight puts.
//
// A thread holds at most one active timestamp at a time (a put/RMW attempt
// acquires and releases it before starting another), so the set is realized
// as one atomic slot per registered thread: Add/Remove are single stores,
// FindMin is a wait-free scan — no blocking anywhere.
//
// Slots come from a ThreadSlotRegistry: they are recycled when their thread
// exits (a dying thread's entry is kNone, so recycling needs no grace
// period), and when more than kMaxThreads live threads touch the set the
// excess park on a small array of shared overflow slots — their Add becomes
// a contended CAS claim instead of a private store, slower but never fatal
// (the pre-registry code abort()ed the process at thread 513).
#ifndef CLSM_SYNC_ACTIVE_SET_H_
#define CLSM_SYNC_ACTIVE_SET_H_

#include <atomic>
#include <cstdint>

#include "src/sync/thread_slots.h"

namespace clsm {

class ActiveTimestampSet {
 public:
  static constexpr uint64_t kNone = 0;
  static constexpr int kMaxThreads = ThreadSlotRegistry::kMaxSlots;
  static constexpr int kOverflowSlots = 8;

  // max_threads below kMaxThreads shrinks the private-slot pool (tests use
  // this to exercise overflow without spawning hundreds of threads).
  explicit ActiveTimestampSet(int max_threads = kMaxThreads);

  ActiveTimestampSet(const ActiveTimestampSet&) = delete;
  ActiveTimestampSet& operator=(const ActiveTimestampSet&) = delete;

  // Publish ts as active for the calling thread. ts must be non-zero and the
  // thread's slot must currently be empty. One store on the steady-state
  // path; threads parked on overflow claim a shared slot by CAS.
  void Add(uint64_t ts);

  // Clear the calling thread's active timestamp. ts must match the value
  // previously Added (checked in debug builds).
  void Remove(uint64_t ts);

  // Minimum timestamp currently in the set, or kNone if empty. A concurrent
  // Add may be missed only if it started after the scan began — exactly the
  // race Algorithm 2 closes on the put side (getTS re-checks snapTime).
  uint64_t FindMin() const;

  // Slot-registry health gauges (clsm.stats.json "thread_slots" block).
  ThreadSlotGauges SlotGauges() const { return registry_.Gauges(); }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> ts{kNone};
  };

  void AddOverflow(uint64_t ts);
  void RemoveOverflow(uint64_t ts);

  Slot slots_[kMaxThreads];
  Slot overflow_[kOverflowSlots];
  ThreadSlotRegistry registry_;
};

}  // namespace clsm

#endif  // CLSM_SYNC_ACTIVE_SET_H_
