// Non-blocking Active timestamp set (paper §3.2, Algorithm 2).
//
// Tracks timestamps that have been handed out by the time counter but whose
// writes may not yet be visible in the in-memory component. getSnap uses
// FindMin() to choose a snapshot time earlier than all in-flight puts.
//
// A thread holds at most one active timestamp at a time (a put/RMW attempt
// acquires and releases it before starting another), so the set is realized
// as one atomic slot per registered thread: Add/Remove are single stores,
// FindMin is a wait-free scan — no blocking anywhere.
#ifndef CLSM_SYNC_ACTIVE_SET_H_
#define CLSM_SYNC_ACTIVE_SET_H_

#include <atomic>
#include <cstdint>

namespace clsm {

class ActiveTimestampSet {
 public:
  static constexpr uint64_t kNone = 0;
  static constexpr int kMaxThreads = 512;

  ActiveTimestampSet();

  ActiveTimestampSet(const ActiveTimestampSet&) = delete;
  ActiveTimestampSet& operator=(const ActiveTimestampSet&) = delete;

  // Publish ts as active for the calling thread. ts must be non-zero and the
  // thread's slot must currently be empty.
  void Add(uint64_t ts);

  // Clear the calling thread's active timestamp. ts must match the value
  // previously Added (checked in debug builds).
  void Remove(uint64_t ts);

  // Minimum timestamp currently in the set, or kNone if empty. A concurrent
  // Add may be missed only if it started after the scan began — exactly the
  // race Algorithm 2 closes on the put side (getTS re-checks snapTime).
  uint64_t FindMin() const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> ts{kNone};
  };

  int SlotIndexForThisThread();

  Slot slots_[kMaxThreads];
  std::atomic<int> registered_;
  const uint64_t id_;  // process-unique; keys the per-thread slot cache
};

}  // namespace clsm

#endif  // CLSM_SYNC_ACTIVE_SET_H_
