// RCU-like protection for the global component pointers (paper §3.1).
//
// The paper protects Pm/P'm with per-component reference counters plus an
// RCU-style mechanism guarding the short window in which a pointer is read
// and its reference counter incremented. We realize that as epoch-based
// quiescence: a reader enters a critical section (one store to its own
// cache-line-private slot), loads the pointers, bumps the components'
// refcounts, and exits. The merge thread, after unlinking a component,
// waits for a grace period — every slot quiescent or entered after the
// unlink — before dropping the store's own reference. Components are freed
// when their count reaches zero. Readers never block; only the background
// merge thread ever waits.
//
// Reader slots come from a ThreadSlotRegistry: a thread's slot is recycled
// when it exits (a dying thread is outside any critical section, so its
// slot reads 0 and recycling needs no grace period), and once kMaxThreads
// live threads hold slots, further threads park on shared overflow slots —
// Enter becomes a contended CAS claim instead of a private store (slower,
// never fatal; the pre-registry code abort()ed at thread 513).
#ifndef CLSM_SYNC_REF_GUARD_H_
#define CLSM_SYNC_REF_GUARD_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "src/sync/thread_slots.h"

namespace clsm {

class EpochManager {
 public:
  static constexpr int kMaxThreads = ThreadSlotRegistry::kMaxSlots;
  static constexpr int kOverflowSlots = 8;

  // max_threads below kMaxThreads shrinks the private-slot pool (tests use
  // this to exercise overflow without spawning hundreds of threads).
  explicit EpochManager(int max_threads = kMaxThreads);

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Enter/Exit a read-side critical section. Wait-free on the steady-state
  // path (one store each); threads parked on overflow claim a shared slot
  // by CAS and may briefly wait for one to free up.
  void Enter();
  void Exit();

  // Writer side: returns only when every reader critical section that was
  // active at call time has exited. Readers entering afterwards are not
  // waited for. Called by the merge thread only; may spin.
  void Synchronize();

  // Slot-registry health gauges (clsm.stats.json "thread_slots" block).
  ThreadSlotGauges SlotGauges() const { return registry_.Gauges(); }

 private:
  struct alignas(64) Slot {
    // 0 = quiescent; otherwise the epoch observed at Enter().
    std::atomic<uint64_t> epoch{0};
  };

  void EnterOverflow();
  void ExitOverflow();

  std::atomic<uint64_t> global_epoch_;
  Slot slots_[kMaxThreads];
  Slot overflow_[kOverflowSlots];
  ThreadSlotRegistry registry_;
};

class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& mgr) : mgr_(mgr) { mgr_.Enter(); }
  ~EpochGuard() { mgr_.Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& mgr_;
};

// Intrusive atomic reference count for memory components. Objects start
// with one reference owned by their creator.
class RefCounted {
 public:
  RefCounted() : refs_(1) {}
  virtual ~RefCounted() = default;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }

  void Unref() {
    int prev = refs_.fetch_sub(1, std::memory_order_acq_rel);
    assert(prev >= 1);
    if (prev == 1) {
      delete this;
    }
  }

  int RefsForTest() const { return refs_.load(std::memory_order_acquire); }

 private:
  std::atomic<int> refs_;
};

}  // namespace clsm

#endif  // CLSM_SYNC_REF_GUARD_H_
