// Reclaimable per-thread slot registry shared by the Active timestamp set
// (§3.2) and the epoch guard (§3.1).
//
// Both mechanisms give every thread a cache-line-private slot so their hot
// paths (Add/Remove, Enter/Exit) are a single uncontended store. The
// original implementation burned a slot forever per (thread, instance) pair
// and abort()ed the process when the 513th distinct thread arrived — fatal
// for connection handlers and churning thread pools. This registry makes
// the slots a recyclable resource:
//
//  * Acquire is lock-free: pop from a generation-stamped Treiber free list
//    of reclaimed slots, else bump a high-water mark (a seq_cst RMW, which
//    is also what publishes the slot to scanners — see below).
//  * Reclaim is automatic: a TLS destructor releases every slot the dying
//    thread holds, in any registry still alive. A dying thread is by
//    construction quiescent in both client mechanisms (its Active entry is
//    kNone and its epoch slot is 0), so release is just a tagged push — no
//    grace period. The tag (generation) on the free-list head defeats ABA,
//    and each slot carries a generation stamp so a stale cached index can
//    never be released twice unnoticed (asserted in debug builds).
//  * Exhaustion degrades instead of killing the process: when every
//    private slot is held by a live thread, SlotForThisThread returns
//    kOverflowIndex and the caller runs on a small set of shared overflow
//    slots (contended CAS instead of a private store — slower, never
//    fatal). TryAcquireSlot is the Status-returning face of that slow path.
//
// Ordering contract with scanners (FindMin / Synchronize): the high-water
// bump is a seq_cst RMW sequenced before the caller's first seq_cst payload
// store, and ScanBound() is a seq_cst load. Hence if a scanner's bound load
// misses a just-registered slot, the bound load — and therefore every
// scanner store sequenced before it (e.g. the snapTime CAS) — precedes the
// payload store in the seq_cst total order, so the writer's subsequent
// seq_cst read of snapTime observes the scanner and rolls back. This closes
// the registration flavor of the Figure-4 race that a relaxed registration
// counter reopened. Reused slots need no extra argument: their index is
// already below the bound, so scanner and writer race on the slot itself
// with plain seq_cst accesses.
#ifndef CLSM_SYNC_THREAD_SLOTS_H_
#define CLSM_SYNC_THREAD_SLOTS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/util/status.h"

namespace clsm {

// Snapshot of the registry's health gauges (exported via clsm.stats.json).
struct ThreadSlotGauges {
  uint64_t in_use = 0;        // private slots currently held by live threads
  uint64_t high_water = 0;    // private slots ever allocated (the scan bound)
  uint64_t reclaims = 0;      // slots released by dying threads
  uint64_t overflow_ops = 0;  // operations that ran on shared overflow slots
};

class ThreadSlotRegistry {
 public:
  static constexpr int kMaxSlots = 512;
  // Returned by SlotForThisThread when all private slots are held by live
  // threads; the caller must run the op on its shared overflow slots.
  static constexpr int kOverflowIndex = -1;

  // capacity may be lowered (tests exercise overflow without spawning 512
  // slot-holding threads); it is clamped to [1, kMaxSlots].
  explicit ThreadSlotRegistry(int capacity = kMaxSlots);
  ~ThreadSlotRegistry();

  ThreadSlotRegistry(const ThreadSlotRegistry&) = delete;
  ThreadSlotRegistry& operator=(const ThreadSlotRegistry&) = delete;

  // The calling thread's private slot in [0, capacity), acquired on first
  // use and cached in TLS; kOverflowIndex when the registry is saturated.
  // Lock-free after the first call per (thread, registry). Never aborts.
  int SlotForThisThread();

  // Per-(thread, registry) scratch word (stable address for the thread's
  // lifetime). Overflow paths use it to remember which shared slot they
  // claimed across a paired op (Enter/Exit). Meaningful only for threads
  // parked on overflow.
  int* OverflowScratchForThisThread();

  // Core of the acquire slow path: pops a reclaimed slot or extends the
  // high-water mark. Returns Status::Busy when every private slot is held
  // by a live thread (the caller degrades to overflow slots). Lock-free.
  Status TryAcquireSlot(int* index);

  // One past the largest private slot index ever handed out; scanners visit
  // exactly [0, ScanBound()). seq_cst — see the ordering contract above.
  int ScanBound() const { return high_water_.load(std::memory_order_seq_cst); }

  // Returns a quiescent slot to the free list. Called under the global
  // registry mutex by the TLS reaper of a dying thread (and by tests).
  void ReleaseSlot(int index);

  void BumpOverflowOps() { overflow_ops_.fetch_add(1, std::memory_order_relaxed); }

  ThreadSlotGauges Gauges() const;

  uint64_t id() const { return id_; }
  int capacity() const { return capacity_; }

  // Number of (registry -> slot) entries in the calling thread's TLS map.
  // Dead registries' entries are purged lazily on the acquire slow path, so
  // this stays bounded across DB open/close cycles (regression-tested).
  static size_t ThreadMapSizeForTest();

 private:
  const uint64_t id_;    // process-unique; keys the TLS caches
  const int capacity_;
  std::atomic<int> high_water_{0};

  // Treiber free list of reclaimed slot indices. The head packs
  // {tag:32 | index+1:32}; the tag increments on every successful push and
  // pop, so a head recycled through A->B->A never satisfies a stale CAS.
  std::atomic<uint64_t> free_head_{0};
  std::atomic<uint32_t> next_free_[kMaxSlots];  // index+1 of next free, 0 = end
  // Bumped on every release; the TLS entry remembers the generation it
  // acquired, making a double-release of a reused slot assert in debug.
  std::atomic<uint64_t> slot_gen_[kMaxSlots];

  std::atomic<uint64_t> in_use_{0};
  std::atomic<uint64_t> reclaims_{0};
  std::atomic<uint64_t> overflow_ops_{0};

  friend struct ThreadSlotMap;  // the TLS reaper validates generations
  Status TryAcquireSlotWithGen(int* index, uint64_t* gen);
  void ReleaseSlotWithGen(int index, uint64_t gen);
};

}  // namespace clsm

#endif  // CLSM_SYNC_THREAD_SLOTS_H_
