// Spin-wait backoff for the handful of places cLSM busy-waits: the getSnap
// wait loop and getTS rollback loop (Algorithm 2), EpochManager's grace
// period, and the overflow-slot claim loops. A raw `while (...) {}` burns
// the waiter's whole quantum against the very thread it is waiting on when
// cores are scarce (the 1-core verify host is the extreme case); a bounded
// run of pause instructions followed by sched_yield lets the other side
// run while still reacting within nanoseconds in the uncontended case.
#ifndef CLSM_SYNC_BACKOFF_H_
#define CLSM_SYNC_BACKOFF_H_

#include <thread>

namespace clsm {

// One "the value I'm polling hasn't changed yet" hint to the CPU: de-risks
// memory-order speculation and lets a hyperthread sibling run.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // No portable pause; the SpinBackoff yield tier still bounds the burn.
#endif
}

// Bounded spin, then yield. Stack-allocate one per wait and call Pause()
// each time the polled condition is still false.
class SpinBackoff {
 public:
  explicit SpinBackoff(int spin_limit = 128) : spin_limit_(spin_limit) {}

  void Pause() {
    if (spins_ < spin_limit_) {
      spins_++;
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

  void Reset() { spins_ = 0; }

 private:
  int spins_ = 0;
  const int spin_limit_;
};

}  // namespace clsm

#endif  // CLSM_SYNC_BACKOFF_H_
