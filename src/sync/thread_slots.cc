#include "src/sync/thread_slots.h"

#include <cassert>
#include <mutex>
#include <unordered_map>

namespace clsm {

namespace {

std::atomic<uint64_t> g_next_registry_id{1};

// Global table of live registries, consulted only on cold paths (first
// acquire per (thread, registry), thread death, registry destruction).
// Leaked singletons: main-thread TLS reapers may run during process
// teardown, after namespace-scope statics would have been destroyed.
std::mutex& RegistryMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::unordered_map<uint64_t, ThreadSlotRegistry*>& LiveRegistries() {
  static auto* m = new std::unordered_map<uint64_t, ThreadSlotRegistry*>;
  return *m;
}

}  // namespace

// Per-thread slot table: one entry per registry this thread has touched.
// Entries for dead registries are purged lazily by the acquire slow path;
// entries for live registries are released by the destructor (the reaper)
// when the thread exits. unordered_map nodes give the scratch word a stable
// address for the thread's lifetime.
struct ThreadSlotMap {
  struct Entry {
    int index = ThreadSlotRegistry::kOverflowIndex;
    int scratch = -1;    // overflow paths' claimed-shared-slot memo
    uint64_t gen = 0;    // slot generation at acquire (double-release guard)
  };

  std::unordered_map<uint64_t, Entry> entries;

  ~ThreadSlotMap() {
    // The dying thread is quiescent in every client mechanism (it cannot be
    // mid-Add or mid-Enter while running TLS destructors), so its slots can
    // be recycled immediately — no grace period.
    std::lock_guard<std::mutex> l(RegistryMutex());
    auto& live = LiveRegistries();
    for (const auto& [id, e] : entries) {
      if (e.index < 0) {
        continue;  // overflow parker: nothing to return
      }
      auto it = live.find(id);
      if (it != live.end()) {
        it->second->ReleaseSlotWithGen(e.index, e.gen);
      }
    }
  }
};

namespace {

// Fast path: a small direct-mapped cache in trivially-destructible TLS (no
// guard variable, no map lookup). Distinct live registries have distinct
// ids, so a hit can never alias; collisions just fall through to the map.
// Sized so one DB's registries (consecutive ids) land in distinct lines.
struct CacheLine {
  uint64_t id = 0;  // 0 = empty
  int index = 0;
  int* scratch = nullptr;
};
constexpr int kTlsCacheSize = 8;
thread_local CacheLine t_slot_cache[kTlsCacheSize];

thread_local ThreadSlotMap t_slot_map;

}  // namespace

ThreadSlotRegistry::ThreadSlotRegistry(int capacity)
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(capacity < 1 ? 1 : (capacity > kMaxSlots ? kMaxSlots : capacity)) {
  for (int i = 0; i < kMaxSlots; i++) {
    next_free_[i].store(0, std::memory_order_relaxed);
    slot_gen_[i].store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> l(RegistryMutex());
  LiveRegistries().emplace(id_, this);
}

ThreadSlotRegistry::~ThreadSlotRegistry() {
  // After this unlink no reaper can reach us; slots still held by live
  // threads die with the registry and their TLS entries are purged lazily.
  std::lock_guard<std::mutex> l(RegistryMutex());
  LiveRegistries().erase(id_);
}

int ThreadSlotRegistry::SlotForThisThread() {
  CacheLine& c = t_slot_cache[id_ % kTlsCacheSize];
  if (c.id == id_) {
    return c.index;
  }
  auto& entries = t_slot_map.entries;
  auto it = entries.find(id_);
  if (it == entries.end()) {
    // First touch of this registry by this thread. While we are cold, purge
    // entries for registries that no longer exist — this is what keeps a
    // long-lived thread's map bounded across DB open/close cycles (the old
    // per-mechanism reg_map caches leaked one entry per cycle).
    {
      std::lock_guard<std::mutex> l(RegistryMutex());
      const auto& live = LiveRegistries();
      for (auto e = entries.begin(); e != entries.end();) {
        if (live.count(e->first) == 0) {
          e = entries.erase(e);
        } else {
          ++e;
        }
      }
    }
    ThreadSlotMap::Entry entry;
    int index;
    if (TryAcquireSlotWithGen(&index, &entry.gen).ok()) {
      entry.index = index;
    }
    it = entries.emplace(id_, entry).first;
  }
  c.id = id_;
  c.index = it->second.index;
  c.scratch = &it->second.scratch;
  return c.index;
}

int* ThreadSlotRegistry::OverflowScratchForThisThread() {
  CacheLine& c = t_slot_cache[id_ % kTlsCacheSize];
  if (c.id != id_) {
    SlotForThisThread();  // populates the cache line for id_
  }
  return c.scratch;
}

Status ThreadSlotRegistry::TryAcquireSlot(int* index) {
  uint64_t gen;
  return TryAcquireSlotWithGen(index, &gen);
}

Status ThreadSlotRegistry::TryAcquireSlotWithGen(int* index, uint64_t* gen) {
  // Prefer reclaimed slots: they are already below the scan bound, so
  // reusing them keeps FindMin/Synchronize scans short.
  uint64_t head = free_head_.load(std::memory_order_acquire);
  while ((head & 0xffffffffu) != 0) {
    const uint32_t idx = static_cast<uint32_t>(head & 0xffffffffu) - 1;
    const uint64_t tag = (head >> 32) + 1;
    const uint32_t next = next_free_[idx].load(std::memory_order_relaxed);
    if (free_head_.compare_exchange_weak(head, (tag << 32) | next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      *index = static_cast<int>(idx);
      *gen = slot_gen_[idx].load(std::memory_order_relaxed);
      in_use_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  // Free list empty: extend the high-water mark. The CAS must be seq_cst —
  // it is the publication that makes the new slot's first payload store
  // scanner-safe (see the ordering contract in the header).
  int hw = high_water_.load(std::memory_order_relaxed);
  while (hw < capacity_) {
    if (high_water_.compare_exchange_weak(hw, hw + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
      *index = hw;
      *gen = slot_gen_[hw].load(std::memory_order_relaxed);
      in_use_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  return Status::Busy("thread slots exhausted; degrading to overflow");
}

void ThreadSlotRegistry::ReleaseSlot(int index) {
  ReleaseSlotWithGen(index, slot_gen_[index].load(std::memory_order_relaxed));
}

void ThreadSlotRegistry::ReleaseSlotWithGen(int index, uint64_t gen) {
  assert(index >= 0 && index < capacity_);
  assert(slot_gen_[index].load(std::memory_order_relaxed) == gen);
  (void)gen;
  slot_gen_[index].fetch_add(1, std::memory_order_relaxed);
  uint64_t head = free_head_.load(std::memory_order_relaxed);
  for (;;) {
    next_free_[index].store(static_cast<uint32_t>(head & 0xffffffffu),
                            std::memory_order_relaxed);
    const uint64_t tag = (head >> 32) + 1;
    // release: the dying thread's final quiescent payload store (kNone / 0)
    // must be visible to whichever thread pops this slot next.
    if (free_head_.compare_exchange_weak(head, (tag << 32) | (static_cast<uint32_t>(index) + 1),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
  reclaims_.fetch_add(1, std::memory_order_relaxed);
  in_use_.fetch_sub(1, std::memory_order_relaxed);
}

ThreadSlotGauges ThreadSlotRegistry::Gauges() const {
  ThreadSlotGauges g;
  g.in_use = in_use_.load(std::memory_order_relaxed);
  g.high_water = static_cast<uint64_t>(high_water_.load(std::memory_order_relaxed));
  g.reclaims = reclaims_.load(std::memory_order_relaxed);
  g.overflow_ops = overflow_ops_.load(std::memory_order_relaxed);
  return g;
}

size_t ThreadSlotRegistry::ThreadMapSizeForTest() { return t_slot_map.entries.size(); }

}  // namespace clsm
