// Michael–Scott style non-blocking queue specialized to many producers and
// one consumer — the shape of the asynchronous logging path (paper §4: the
// logging queue uses a non-blocking queue so a put only enqueues its log
// record and proceeds at memory speed).
//
// Producers: lock-free Enqueue (CAS on tail). Consumer: single-threaded
// Dequeue, so no CAS needed on head and retired nodes can be freed
// immediately — no hazard pointers required.
#ifndef CLSM_QUEUE_MPSC_QUEUE_H_
#define CLSM_QUEUE_MPSC_QUEUE_H_

#include <atomic>
#include <optional>
#include <utility>

namespace clsm {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* dummy = new Node();
    head_ = dummy;
    tail_.store(dummy, std::memory_order_relaxed);
    approx_size_.store(0, std::memory_order_relaxed);
  }

  ~MpscQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Lock-free; callable from any thread.
  void Enqueue(T value) {
    Node* node = new Node(std::move(value));
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    // Between the exchange and this store the queue is momentarily
    // disconnected; the consumer observes an empty next and simply retries
    // later — it never blocks producers.
    prev->next.store(node, std::memory_order_release);
    approx_size_.fetch_add(1, std::memory_order_relaxed);
  }

  // Single-consumer only. Returns nullopt when empty (or while a producer
  // is mid-linking, which is indistinguishable and safe).
  std::optional<T> Dequeue() {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      return std::nullopt;
    }
    std::optional<T> result(std::move(next->value));
    delete head_;
    head_ = next;
    approx_size_.fetch_sub(1, std::memory_order_relaxed);
    return result;
  }

  bool Empty() const { return head_->next.load(std::memory_order_acquire) == nullptr; }

  size_t ApproxSize() const { return approx_size_.load(std::memory_order_relaxed); }

 private:
  struct Node {
    Node() : next(nullptr) {}
    explicit Node(T v) : value(std::move(v)), next(nullptr) {}
    T value{};
    std::atomic<Node*> next;
  };

  Node* head_;  // consumer-owned dummy/first node
  alignas(64) std::atomic<Node*> tail_;
  std::atomic<size_t> approx_size_;
};

}  // namespace clsm

#endif  // CLSM_QUEUE_MPSC_QUEUE_H_
