// Lock-free, per-thread-sharded latency metrics (the PR-2 observability
// substrate). Hot paths pay one relaxed counter add plus one relaxed
// histogram-bucket bump on a shard owned (statistically) by the calling
// thread; aggregation merges every shard into a util/histogram for the
// percentile series the paper's figures plot (p50/p95/p99/p999).
//
// Units: all recorded values are wall-clock NANOSECONDS; exporters divide
// by 1000 when presenting microseconds.
#ifndef CLSM_OBS_METRICS_H_
#define CLSM_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define CLSM_HAVE_RDTSC 1
#elif defined(__aarch64__)
// The generic timer's virtual counter: constant-rate, monotonic across
// cores, readable from EL0 in a few cycles — the aarch64 analogue of the
// invariant TSC.
#define CLSM_HAVE_CNTVCT 1
#endif

#include "src/util/histogram.h"

namespace clsm {

// One latency series per public operation and per internal write-path
// phase. Keep OpMetricName() in sync.
enum class OpMetric : int {
  // public ops
  kPut = 0,
  kGet,
  kDelete,
  kRmw,
  kIterNext,
  // internal phases
  kWalAppend,   // serializing + enqueueing the log record
  kMemInsert,   // skip-list insertion into Cm
  kRollWait,    // put blocked on backpressure (Cm full / L0 stop)
  kFlush,       // C'm -> level-0 merge
  kCompaction,  // one background compaction job (any level)
};
constexpr int kNumOpMetrics = static_cast<int>(OpMetric::kCompaction) + 1;

// Stable machine-readable name ("put", "wal_append", ...).
const char* OpMetricName(OpMetric m);

inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Tick source for the hot-path latency probes. clock_gettime costs
// ~25-40ns per read even through the vDSO — two reads per Get is most of
// the instrumentation overhead budget (<5%) on a sub-microsecond memtable
// hit. On x86-64 the TSC is invariant/constant-rate on every CPU this
// targets, reads in ~8ns, and is converted to nanoseconds with a scale
// calibrated once against steady_clock. On aarch64 the generic timer's
// virtual counter (cntvct_el0) plays the same role, scaled by the
// architecturally reported frequency (cntfrq_el0). Every other target
// falls back to steady_clock behind the same interface — slower probes,
// identical semantics — so the build and the probe-overhead story hold on
// any architecture. Long-interval timing (flushes, compactions, stalls)
// stays on MonotonicNanos: the clock cost is noise there and wall-clock
// semantics are simpler.
class LatencyClock {
 public:
  static uint64_t Ticks() {
#if defined(CLSM_HAVE_RDTSC)
    return __rdtsc();
#elif defined(CLSM_HAVE_CNTVCT)
    uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return MonotonicNanos();
#endif
  }

  static uint64_t ToNanos(uint64_t ticks) {
#if defined(CLSM_HAVE_RDTSC) || defined(CLSM_HAVE_CNTVCT)
    return static_cast<uint64_t>(static_cast<double>(ticks) * NanosPerTick());
#else
    return ticks;
#endif
  }

 private:
  static double NanosPerTick();  // calibrated / read once on first use
};

class StatsRegistry {
 public:
  static constexpr int kNumShards = 16;

  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  // Record one sample of `nanos` for op. Wait-free: relaxed adds on the
  // calling thread's shard (threads hash onto shards, so unrelated threads
  // rarely share a cache line). No per-sample min/max bookkeeping: the
  // extremes are recovered from the bucket boundaries at aggregation time,
  // exact to bucket width — keeping the hot path to counter adds plus one
  // bucket bump.
  void Record(OpMetric op, uint64_t nanos) {
    ShardHist& h = shards_[ShardIndex()].hists[static_cast<int>(op)];
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum_nanos.fetch_add(nanos, std::memory_order_relaxed);
    h.buckets[Histogram::BucketIndex(static_cast<double>(nanos))].fetch_add(
        1, std::memory_order_relaxed);
  }

  // Total samples recorded for op across all shards.
  uint64_t Count(OpMetric op) const;

  // Merge every shard's buckets for op into *out (values in nanoseconds).
  // Racy-by-design monitoring read, like the DbStats counters.
  void AggregateInto(OpMetric op, Histogram* out) const;

  void Reset();

 private:
  struct ShardHist {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_nanos{0};
    std::atomic<uint64_t> buckets[Histogram::kNumBuckets] = {};
  };
  struct alignas(64) Shard {
    ShardHist hists[kNumOpMetrics];
  };

  static int ShardIndex();

  Shard shards_[kNumShards];
};

// RAII latency probe: records the scope's duration into registry (no-op
// when registry is null, so call sites need no branching).
class ScopedLatency {
 public:
  ScopedLatency(StatsRegistry* registry, OpMetric op)
      : registry_(registry), op_(op), start_(registry != nullptr ? LatencyClock::Ticks() : 0) {}
  ~ScopedLatency() {
    if (registry_ != nullptr) {
      registry_->Record(op_, LatencyClock::ToNanos(LatencyClock::Ticks() - start_));
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  StatsRegistry* registry_;
  OpMetric op_;
  uint64_t start_;
};

}  // namespace clsm

#endif  // CLSM_OBS_METRICS_H_
