// Structured JSON stats export: one code path renders the machine-readable
// snapshot behind GetProperty("clsm.stats.json") for ClsmDb AND the
// baseline variants, so benchmark comparisons consume identical schemas.
// Schema documented in docs/TESTING.md ("Bench result JSON").
#ifndef CLSM_OBS_STATS_EXPORT_H_
#define CLSM_OBS_STATS_EXPORT_H_

#include <string>

namespace clsm {

class ActiveTimestampSet;
class DbStats;
class StatsRegistry;
class StorageEngine;

struct StatsJsonSource {
  const char* db = "?";                  // variant name (DB::Name())
  const DbStats* counters = nullptr;     // operation counters (required)
  const StatsRegistry* registry = nullptr;  // latency histograms (optional)
  StorageEngine* engine = nullptr;       // per-level gauges + compaction stats
  // Active-set slot gauges (cLSM only; the engine's epoch gauges are taken
  // from `engine` directly). Adds the "thread_slots" block when non-null.
  const ActiveTimestampSet* active_set = nullptr;
};

// Renders the full snapshot:
// {
//   "db": "clsm",
//   "counters": { "puts_total": N, ... },            // every DbStats field
//   "latency_us": { "put": {"count":N,"avg":..,"p50":..,"p95":..,"p99":..,
//                           "p999":..,"max":..}, ... },
//   "levels": [ {"level":0,"files":N,"bytes":N,"score":S,"compactions":N,
//                "bytes_read":N,"bytes_written":N,"micros":N}, ... ],
//   "flush": {"count":N,"bytes_written":N,"micros":N},
//   "write_amp": W,
//   "stall": {"slowdown_waits":N,"slowdown_micros":N,"stall_micros":N},
//   "thread_slots": {                                  // slot-registry health
//     "active_set": {"in_use":N,"high_water":N,"reclaims":N,"overflow_ops":N},
//     "epoch": { ... same gauges ... }                 // engine's EpochManager
//   }
// }
std::string BuildStatsJson(const StatsJsonSource& src);

}  // namespace clsm

#endif  // CLSM_OBS_STATS_EXPORT_H_
