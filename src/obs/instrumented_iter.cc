#include "src/obs/instrumented_iter.h"

#include <memory>

namespace clsm {

namespace {

class LatencyRecordingIterator final : public Iterator {
 public:
  LatencyRecordingIterator(Iterator* base, StatsRegistry* registry)
      : base_(base), registry_(registry) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override { base_->SeekToFirst(); }
  void SeekToLast() override { base_->SeekToLast(); }
  void Seek(const Slice& target) override { base_->Seek(target); }
  void Next() override {
    const uint64_t t0 = LatencyClock::Ticks();
    base_->Next();
    registry_->Record(OpMetric::kIterNext, LatencyClock::ToNanos(LatencyClock::Ticks() - t0));
  }
  void Prev() override { base_->Prev(); }
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  std::unique_ptr<Iterator> base_;
  StatsRegistry* registry_;
};

}  // namespace

Iterator* NewLatencyRecordingIterator(Iterator* base, StatsRegistry* registry) {
  if (registry == nullptr) {
    return base;
  }
  return new LatencyRecordingIterator(base, registry);
}

}  // namespace clsm
