// EventListener: user-registerable hooks for internal lifecycle events
// (memtable roll, flush, compaction, write stall, WAL sync), registered via
// Options::listeners and invoked from ClsmDb, the baselines' shared
// chassis, StorageEngine and the asynchronous WAL logger.
//
// Listener contract (see DESIGN.md "Observability"):
//  * hooks are invoked synchronously on internal threads (maintenance,
//    compaction workers, the WAL logger, or a stalled writer) — they MUST
//    be non-blocking (no IO, no lock that a DB operation can hold) and
//    MUST NOT throw;
//  * hooks may fire concurrently from different threads; the listener
//    synchronizes its own state;
//  * hooks must not call back into the DB.
#ifndef CLSM_OBS_EVENT_LISTENER_H_
#define CLSM_OBS_EVENT_LISTENER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/perf_context.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace clsm {

// Where a background error originated. Ordered roughly by pipeline stage;
// the value is informational only — severity drives behavior.
enum class BgErrorReason : int {
  kWalAppend = 0,   // WAL record append failed on the logger thread
  kWalSync,         // WAL fsync failed (sync write or flush-boundary close)
  kMemtableRoll,    // could not create the fresh WAL for a rolled memtable
  kFlush,           // building the level-0 table failed
  kCompaction,      // a compaction job failed
  kManifestWrite,   // manifest append/sync or CURRENT install failed
  kFileCleanup,     // best-effort obsolete/error-path file removal failed
};
const char* BgErrorReasonName(BgErrorReason r);

// How bad it is. kSoft keeps writes flowing (the condition is retryable
// and loses no data); kHard blocks writes but keeps reads working
// (degraded read-only mode); kFatal means persisted state may be
// inconsistent — reads stay up on the in-memory view but the store needs
// offline attention.
enum class BgErrorSeverity : int {
  kNone = 0,
  kSoft,
  kHard,
  kFatal,
};
const char* BgErrorSeverityName(BgErrorSeverity s);

struct BackgroundErrorInfo {
  BgErrorReason reason = BgErrorReason::kWalAppend;
  BgErrorSeverity severity = BgErrorSeverity::kNone;
  Status status;
};

struct FlushJobInfo {
  uint64_t memtable_entries = 0;   // entries in the flushed component
  uint64_t memtable_bytes = 0;     // its approximate arena footprint
  uint64_t output_file_size = 0;   // level-0 table bytes (End only)
  uint64_t micros = 0;             // wall time of the merge (End only)
};

struct CompactionJobInfo {
  int level = 0;         // input level (outputs land on level + 1)
  bool trivial_move = false;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;  // End only
  uint64_t micros = 0;         // End only
};

enum class StallReason : int {
  kMemtableFull = 0,  // Cm full while C'm is still merging
  kL0Stop,            // level 0 past the stop trigger
  kL0Slowdown,        // bounded slowdown delay
};
const char* StallReasonName(StallReason r);

struct WalSyncInfo {
  uint64_t records = 0;  // records written to this WAL so far
  uint64_t micros = 0;   // duration of the fsync
};

// Public operation kinds for the per-op hooks (OnOperation /
// OnSlowOperation and the trace format). Values are part of the on-disk
// trace encoding — append only.
enum class DbOpType : int {
  kPut = 0,
  kDelete = 1,
  kGet = 2,
  kWrite = 3,  // atomic batch
  kRmw = 4,
};
const char* DbOpTypeName(DbOpType op);

// How the operation ended, as seen by the caller. Part of the trace
// encoding — append only.
enum class OpOutcome : int {
  kOk = 0,
  kNotFound = 1,
  kError = 2,
};
const char* OpOutcomeName(OpOutcome o);

// One completed public operation (fired on the caller's thread, at op
// exit, only to listeners that opted in via WantsOperationRecords). `key`
// borrows the caller's memory: valid only for the duration of the hook.
struct OperationInfo {
  DbOpType op = DbOpType::kPut;
  Slice key;
  uint32_t value_size = 0;   // bytes written (puts) or returned (gets)
  OpOutcome outcome = OpOutcome::kOk;
  uint64_t latency_micros = 0;
};

// A completed operation that exceeded Options::slow_op_threshold_micros.
// Carries enough to explain the outlier without a debugger: the full
// PerfContext snapshot (phase detail at kEnableTimers) plus the store
// state that usually explains write tails. The raw key is deliberately
// absent — only a prefix hash, so slow-op logs never leak key material.
struct SlowOpInfo {
  DbOpType op = DbOpType::kPut;
  uint64_t key_prefix_hash = 0;  // FNV-1a of the first <= 8 key bytes
  uint64_t latency_micros = 0;
  PerfContext perf;              // copied snapshot from the op's thread
  int l0_files = 0;              // level-0 file count at op exit
  bool stalled = false;          // op waited in backpressure
  uint64_t suppressed = 0;       // records dropped by the rate bound so far
};

class EventListener {
 public:
  virtual ~EventListener() = default;

  // Cm was sealed into C'm and a fresh Cm installed (beforeMerge).
  virtual void OnMemtableRoll(uint64_t memtable_bytes) {}

  virtual void OnFlushBegin(const FlushJobInfo& info) {}
  virtual void OnFlushEnd(const FlushJobInfo& info) {}

  virtual void OnCompactionBegin(const CompactionJobInfo& info) {}
  virtual void OnCompactionEnd(const CompactionJobInfo& info) {}

  // A writer entered/left a backpressure wait. Begin/End pair on the
  // stalled writer's thread.
  virtual void OnStallBegin(StallReason reason) {}
  virtual void OnStallEnd(StallReason reason, uint64_t micros) {}

  // The WAL logger durably synced its file.
  virtual void OnWalSync(const WalSyncInfo& info) {}

  // A background error was observed. kSoft events (compaction failures,
  // file-cleanup failures) are reported but do not stop writes; kHard and
  // kFatal events latch the store's sticky background error and put it
  // into read-only degraded mode. Fired once per observed event, which
  // may be more often than the sticky error changes.
  virtual void OnBackgroundError(const BackgroundErrorInfo& info) {}

  // --- per-operation hooks ---

  // Opt-in gate for OnOperation. Per-op dispatch sits on the Put/Get fast
  // path, so the DB precomputes the subset of listeners that want it; a
  // listener set with no takers costs the write path one cached-bool
  // check. Must return a constant (it is sampled once at DB open).
  virtual bool WantsOperationRecords() const { return false; }

  // Every completed public operation (only if WantsOperationRecords()).
  // Runs on the operation's own thread: anything slower than appending to
  // a buffer here is a per-op tax on the store.
  virtual void OnOperation(const OperationInfo& info) {}

  // An operation crossed Options::slow_op_threshold_micros. Bounded to
  // Options::slow_op_max_per_sec dispatches per second, so this hook may
  // do modestly more work (e.g. format a JSONL line) than OnOperation.
  // Fired for every listener, no opt-in needed.
  virtual void OnSlowOperation(const SlowOpInfo& info) {}
};

// Fan-out dispatcher owned by each DB instance; empty-set dispatch is a
// single vector-empty check so unobserved stores pay nothing.
class ListenerSet {
 public:
  ListenerSet() = default;
  explicit ListenerSet(std::vector<std::shared_ptr<EventListener>> listeners)
      : listeners_(std::move(listeners)) {
    for (const auto& l : listeners_) {
      if (l != nullptr && l->WantsOperationRecords()) {
        op_listeners_.push_back(l.get());
      }
    }
  }

  bool empty() const { return listeners_.empty(); }
  // True when some listener opted into per-op records; the DBs cache this
  // at open so the op fast path pays one bool test, not a virtual call.
  bool has_op_listeners() const { return !op_listeners_.empty(); }

  void NotifyMemtableRoll(uint64_t memtable_bytes) const;
  void NotifyFlushBegin(const FlushJobInfo& info) const;
  void NotifyFlushEnd(const FlushJobInfo& info) const;
  void NotifyCompactionBegin(const CompactionJobInfo& info) const;
  void NotifyCompactionEnd(const CompactionJobInfo& info) const;
  void NotifyStallBegin(StallReason reason) const;
  void NotifyStallEnd(StallReason reason, uint64_t micros) const;
  void NotifyWalSync(const WalSyncInfo& info) const;
  void NotifyBackgroundError(const BackgroundErrorInfo& info) const;
  void NotifyOperation(const OperationInfo& info) const;  // opt-in subset only
  void NotifySlowOperation(const SlowOpInfo& info) const;

 private:
  std::vector<std::shared_ptr<EventListener>> listeners_;
  // Raw borrowed pointers into listeners_ (same lifetime).
  std::vector<EventListener*> op_listeners_;
};

}  // namespace clsm

#endif  // CLSM_OBS_EVENT_LISTENER_H_
