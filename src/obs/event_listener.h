// EventListener: user-registerable hooks for internal lifecycle events
// (memtable roll, flush, compaction, write stall, WAL sync), registered via
// Options::listeners and invoked from ClsmDb, the baselines' shared
// chassis, StorageEngine and the asynchronous WAL logger.
//
// Listener contract (see DESIGN.md "Observability"):
//  * hooks are invoked synchronously on internal threads (maintenance,
//    compaction workers, the WAL logger, or a stalled writer) — they MUST
//    be non-blocking (no IO, no lock that a DB operation can hold) and
//    MUST NOT throw;
//  * hooks may fire concurrently from different threads; the listener
//    synchronizes its own state;
//  * hooks must not call back into the DB.
#ifndef CLSM_OBS_EVENT_LISTENER_H_
#define CLSM_OBS_EVENT_LISTENER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/status.h"

namespace clsm {

// Where a background error originated. Ordered roughly by pipeline stage;
// the value is informational only — severity drives behavior.
enum class BgErrorReason : int {
  kWalAppend = 0,   // WAL record append failed on the logger thread
  kWalSync,         // WAL fsync failed (sync write or flush-boundary close)
  kMemtableRoll,    // could not create the fresh WAL for a rolled memtable
  kFlush,           // building the level-0 table failed
  kCompaction,      // a compaction job failed
  kManifestWrite,   // manifest append/sync or CURRENT install failed
  kFileCleanup,     // best-effort obsolete/error-path file removal failed
};
const char* BgErrorReasonName(BgErrorReason r);

// How bad it is. kSoft keeps writes flowing (the condition is retryable
// and loses no data); kHard blocks writes but keeps reads working
// (degraded read-only mode); kFatal means persisted state may be
// inconsistent — reads stay up on the in-memory view but the store needs
// offline attention.
enum class BgErrorSeverity : int {
  kNone = 0,
  kSoft,
  kHard,
  kFatal,
};
const char* BgErrorSeverityName(BgErrorSeverity s);

struct BackgroundErrorInfo {
  BgErrorReason reason = BgErrorReason::kWalAppend;
  BgErrorSeverity severity = BgErrorSeverity::kNone;
  Status status;
};

struct FlushJobInfo {
  uint64_t memtable_entries = 0;   // entries in the flushed component
  uint64_t memtable_bytes = 0;     // its approximate arena footprint
  uint64_t output_file_size = 0;   // level-0 table bytes (End only)
  uint64_t micros = 0;             // wall time of the merge (End only)
};

struct CompactionJobInfo {
  int level = 0;         // input level (outputs land on level + 1)
  bool trivial_move = false;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;  // End only
  uint64_t micros = 0;         // End only
};

enum class StallReason : int {
  kMemtableFull = 0,  // Cm full while C'm is still merging
  kL0Stop,            // level 0 past the stop trigger
  kL0Slowdown,        // bounded slowdown delay
};
const char* StallReasonName(StallReason r);

struct WalSyncInfo {
  uint64_t records = 0;  // records written to this WAL so far
  uint64_t micros = 0;   // duration of the fsync
};

class EventListener {
 public:
  virtual ~EventListener() = default;

  // Cm was sealed into C'm and a fresh Cm installed (beforeMerge).
  virtual void OnMemtableRoll(uint64_t memtable_bytes) {}

  virtual void OnFlushBegin(const FlushJobInfo& info) {}
  virtual void OnFlushEnd(const FlushJobInfo& info) {}

  virtual void OnCompactionBegin(const CompactionJobInfo& info) {}
  virtual void OnCompactionEnd(const CompactionJobInfo& info) {}

  // A writer entered/left a backpressure wait. Begin/End pair on the
  // stalled writer's thread.
  virtual void OnStallBegin(StallReason reason) {}
  virtual void OnStallEnd(StallReason reason, uint64_t micros) {}

  // The WAL logger durably synced its file.
  virtual void OnWalSync(const WalSyncInfo& info) {}

  // A background error was observed. kSoft events (compaction failures,
  // file-cleanup failures) are reported but do not stop writes; kHard and
  // kFatal events latch the store's sticky background error and put it
  // into read-only degraded mode. Fired once per observed event, which
  // may be more often than the sticky error changes.
  virtual void OnBackgroundError(const BackgroundErrorInfo& info) {}
};

// Fan-out dispatcher owned by each DB instance; empty-set dispatch is a
// single vector-empty check so unobserved stores pay nothing.
class ListenerSet {
 public:
  ListenerSet() = default;
  explicit ListenerSet(std::vector<std::shared_ptr<EventListener>> listeners)
      : listeners_(std::move(listeners)) {}

  bool empty() const { return listeners_.empty(); }

  void NotifyMemtableRoll(uint64_t memtable_bytes) const;
  void NotifyFlushBegin(const FlushJobInfo& info) const;
  void NotifyFlushEnd(const FlushJobInfo& info) const;
  void NotifyCompactionBegin(const CompactionJobInfo& info) const;
  void NotifyCompactionEnd(const CompactionJobInfo& info) const;
  void NotifyStallBegin(StallReason reason) const;
  void NotifyStallEnd(StallReason reason, uint64_t micros) const;
  void NotifyWalSync(const WalSyncInfo& info) const;
  void NotifyBackgroundError(const BackgroundErrorInfo& info) const;

 private:
  std::vector<std::shared_ptr<EventListener>> listeners_;
};

}  // namespace clsm

#endif  // CLSM_OBS_EVENT_LISTENER_H_
