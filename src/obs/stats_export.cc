#include "src/obs/stats_export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/core/stats.h"
#include "src/lsm/storage_engine.h"
#include "src/obs/metrics.h"
#include "src/sync/active_set.h"
#include "src/sync/thread_slots.h"
#include "src/util/histogram.h"

namespace clsm {

namespace {

// Minimal append-only JSON builder (keys and names here are all
// JSON-safe literals, so no string escaping is needed).
class JsonOut {
 public:
  void U64(const char* key, uint64_t v) {
    Comma();
    Appendf("\"%s\":%" PRIu64, key, v);
  }
  void I64(const char* key, int64_t v) {
    Comma();
    Appendf("\"%s\":%" PRId64, key, v);
  }
  void F64(const char* key, double v) {
    Comma();
    Appendf("\"%s\":%.3f", key, v);
  }
  void Str(const char* key, const char* v) {
    Comma();
    Appendf("\"%s\":\"%s\"", key, v);
  }
  void BeginObject(const char* key = nullptr) {
    Comma();
    if (key != nullptr) {
      Appendf("\"%s\":", key);
    }
    out_ += '{';
    fresh_ = true;
  }
  void EndObject() {
    out_ += '}';
    fresh_ = false;
  }
  void BeginArray(const char* key) {
    Comma();
    Appendf("\"%s\":", key);
    out_ += '[';
    fresh_ = true;
  }
  void EndArray() {
    out_ += ']';
    fresh_ = false;
  }

  std::string Take() { return std::move(out_); }

 private:
  void Comma() {
    if (!fresh_ && !out_.empty()) {
      out_ += ',';
    }
    fresh_ = false;
  }
  void Appendf(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char buf[128];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out_ += buf;
  }

  std::string out_;
  bool fresh_ = true;
};

void EmitCounters(JsonOut& j, const DbStats& s) {
  j.BeginObject("counters");
  j.U64("gets_total", s.gets_total.load(std::memory_order_relaxed));
  j.U64("gets_from_mem", s.gets_from_mem.load(std::memory_order_relaxed));
  j.U64("gets_from_imm", s.gets_from_imm.load(std::memory_order_relaxed));
  j.U64("gets_from_disk", s.gets_from_disk.load(std::memory_order_relaxed));
  j.U64("puts_total", s.puts_total.load(std::memory_order_relaxed));
  j.U64("deletes_total", s.deletes_total.load(std::memory_order_relaxed));
  j.U64("batches_total", s.batches_total.load(std::memory_order_relaxed));
  j.U64("rmw_total", s.rmw_total.load(std::memory_order_relaxed));
  j.U64("rmw_conflicts", s.rmw_conflicts.load(std::memory_order_relaxed));
  j.U64("rmw_noop", s.rmw_noop.load(std::memory_order_relaxed));
  j.U64("snapshots_acquired", s.snapshots_acquired.load(std::memory_order_relaxed));
  j.U64("iterators_created", s.iterators_created.load(std::memory_order_relaxed));
  j.U64("getts_rollbacks", s.getts_rollbacks.load(std::memory_order_relaxed));
  j.U64("memtable_rolls", s.memtable_rolls.load(std::memory_order_relaxed));
  j.U64("flushes", s.flushes.load(std::memory_order_relaxed));
  j.U64("compactions", s.compactions.load(std::memory_order_relaxed));
  j.U64("throttle_waits", s.throttle_waits.load(std::memory_order_relaxed));
  j.U64("slowdown_waits", s.slowdown_waits.load(std::memory_order_relaxed));
  j.U64("slow_ops_total", s.slow_ops_total.load(std::memory_order_relaxed));
  j.U64("slow_ops_reported", s.slow_ops_reported.load(std::memory_order_relaxed));
  j.EndObject();
}

void EmitLatencies(JsonOut& j, const StatsRegistry& registry) {
  j.BeginObject("latency_us");
  for (int m = 0; m < kNumOpMetrics; m++) {
    const OpMetric op = static_cast<OpMetric>(m);
    Histogram h;  // nanosecond domain; render as microseconds
    registry.AggregateInto(op, &h);
    j.BeginObject(OpMetricName(op));
    j.U64("count", static_cast<uint64_t>(h.Num()));
    if (h.Num() > 0) {
      j.F64("avg", h.Average() / 1000.0);
      j.F64("p50", h.Percentile(50) / 1000.0);
      j.F64("p95", h.Percentile(95) / 1000.0);
      j.F64("p99", h.Percentile(99) / 1000.0);
      j.F64("p999", h.Percentile(99.9) / 1000.0);
      j.F64("max", h.Max() / 1000.0);
    }
    j.EndObject();
  }
  j.EndObject();
}

// Background-error health block. Only enum-name literals go into the JSON
// (never Status strings, which could contain characters JsonOut does not
// escape).
void EmitErrors(JsonOut& j, StorageEngine& engine) {
  const BackgroundErrorState* bg = engine.bg_error();
  j.BeginObject("errors");
  j.Str("bg_severity", BgErrorSeverityName(bg->severity()));
  if (bg->severity() != BgErrorSeverity::kNone) {
    j.Str("bg_reason", BgErrorReasonName(bg->reason()));
  }
  j.U64("file_cleanup_failures", engine.cleanup_failures());
  j.U64("wal_recovery_drops", engine.wal_recovery_drops());
  j.EndObject();
}

void EmitLevels(JsonOut& j, StorageEngine& engine) {
  const CompactionStats& cstats = *engine.compaction_stats();
  VersionSet* versions = engine.versions();
  j.BeginArray("levels");
  for (int l = 0; l < kNumLevels; l++) {
    const CompactionStats::LevelStats& ls = cstats.level(l);
    j.BeginObject();
    j.I64("level", l);
    j.I64("files", versions->NumLevelFiles(l));
    j.I64("bytes", versions->NumLevelBytes(l));
    j.F64("score", versions->LevelScore(l));
    j.U64("compactions", ls.compactions.load(std::memory_order_relaxed));
    j.U64("trivial_moves", ls.trivial_moves.load(std::memory_order_relaxed));
    j.U64("bytes_read", ls.bytes_read.load(std::memory_order_relaxed));
    j.U64("bytes_written", ls.bytes_written.load(std::memory_order_relaxed));
    j.U64("micros", ls.micros.load(std::memory_order_relaxed));
    j.EndObject();
  }
  j.EndArray();
  j.BeginObject("flush");
  j.U64("count", cstats.flush_count.load(std::memory_order_relaxed));
  j.U64("bytes_written", cstats.flush_bytes_written.load(std::memory_order_relaxed));
  j.U64("micros", cstats.flush_micros.load(std::memory_order_relaxed));
  j.EndObject();
  j.F64("write_amp", cstats.EstimatedWriteAmp());
}

void EmitSlotGauges(JsonOut& j, const char* key, const ThreadSlotGauges& g) {
  j.BeginObject(key);
  j.U64("in_use", g.in_use);
  j.U64("high_water", g.high_water);
  j.U64("reclaims", g.reclaims);
  j.U64("overflow_ops", g.overflow_ops);
  j.EndObject();
}

// Thread-slot registry health: slots held by live threads, the scan bound,
// how many dying threads returned their slot, and how many operations had
// to degrade to the shared overflow slots (a sustained nonzero rate means
// the deployment runs more concurrent threads than kMaxSlots).
void EmitThreadSlots(JsonOut& j, const StatsJsonSource& src) {
  j.BeginObject("thread_slots");
  if (src.active_set != nullptr) {
    EmitSlotGauges(j, "active_set", src.active_set->SlotGauges());
  }
  if (src.engine != nullptr) {
    EmitSlotGauges(j, "epoch", src.engine->epochs()->SlotGauges());
  }
  j.EndObject();
}

}  // namespace

std::string BuildStatsJson(const StatsJsonSource& src) {
  JsonOut j;
  j.BeginObject();
  j.Str("db", src.db);
  if (src.counters != nullptr) {
    EmitCounters(j, *src.counters);
    j.BeginObject("stall");
    j.U64("slowdown_waits", src.counters->slowdown_waits.load(std::memory_order_relaxed));
    j.U64("slowdown_micros", src.counters->slowdown_micros.load(std::memory_order_relaxed));
    j.U64("stall_micros", src.counters->stall_micros.load(std::memory_order_relaxed));
    j.EndObject();
  }
  if (src.registry != nullptr) {
    EmitLatencies(j, *src.registry);
  }
  if (src.engine != nullptr) {
    EmitLevels(j, *src.engine);
    EmitErrors(j, *src.engine);
  }
  if (src.active_set != nullptr || src.engine != nullptr) {
    EmitThreadSlots(j, src);
  }
  j.EndObject();
  return j.Take();
}

}  // namespace clsm
