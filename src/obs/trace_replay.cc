#include "src/obs/trace_replay.h"

#include <chrono>
#include <thread>

#include "src/core/db.h"
#include "src/obs/op_trace.h"

namespace clsm {

namespace {
// Deterministic value filler: replay cares about sizes and key access
// pattern, not payload bytes, but keep the bytes key-dependent so
// compression-like effects (if ever added) stay realistic.
void FillValue(const Slice& key, uint32_t size, std::string* out) {
  out->clear();
  out->reserve(size);
  const char seed = key.empty() ? 'v' : key[key.size() - 1];
  for (uint32_t i = 0; i < size; i++) {
    out->push_back(static_cast<char>('a' + ((static_cast<uint32_t>(seed) + i) % 26)));
  }
}
}  // namespace

Status ReplayTrace(DB* db, Env* env, const std::string& trace_path, const ReplayOptions& opts,
                   ReplayResult* result) {
  if (env == nullptr) {
    env = Env::Default();
  }
  TraceReader reader;
  Status s = reader.Open(env, trace_path);
  if (!s.ok()) {
    return s;
  }

  const uint64_t replay_start = env->NowMicros();
  WriteOptions wo;
  ReadOptions ro;
  std::string value;
  TraceRecord rec;
  while (reader.Next(&rec)) {
    if (opts.preserve_timing) {
      // rec.ts_micros is relative to the first record; sleep out whatever
      // of the recorded gap the replay itself has not already consumed.
      const uint64_t elapsed = env->NowMicros() - replay_start;
      if (rec.ts_micros > elapsed) {
        std::this_thread::sleep_for(std::chrono::microseconds(rec.ts_micros - elapsed));
      }
    }
    if (rec.op == DbOpType::kWrite) {
      // Batch contents are not traced (only the batch envelope); nothing
      // faithful to replay.
      result->skipped_writes++;
      continue;
    }
    result->ops++;
    result->ops_by_type[static_cast<int>(rec.op)]++;

    const uint64_t t0 = env->NowMicros();
    OpOutcome outcome = OpOutcome::kOk;
    switch (rec.op) {
      case DbOpType::kPut: {
        FillValue(rec.key, rec.value_size, &value);
        Status ps = db->Put(wo, rec.key, value);
        outcome = ps.ok() ? OpOutcome::kOk : OpOutcome::kError;
        break;
      }
      case DbOpType::kDelete: {
        Status ds = db->Delete(wo, rec.key);
        outcome = ds.ok() ? OpOutcome::kOk : OpOutcome::kError;
        break;
      }
      case DbOpType::kGet: {
        Status gs = db->Get(ro, rec.key, &value);
        outcome = gs.ok() ? OpOutcome::kOk
                          : (gs.IsNotFound() ? OpOutcome::kNotFound : OpOutcome::kError);
        break;
      }
      case DbOpType::kRmw: {
        // Reproduce the recorded decision: a performed RMW writes a filler
        // of the recorded size; a no-op RMW declines, like the original
        // user function returning nullopt.
        const bool perform = rec.outcome == OpOutcome::kOk;
        std::string next;
        if (perform) {
          FillValue(rec.key, rec.value_size, &next);
        }
        bool performed = false;
        Status rs = db->ReadModifyWrite(
            wo, rec.key,
            [&](const std::optional<Slice>&) -> std::optional<std::string> {
              if (perform) {
                return next;
              }
              return std::nullopt;
            },
            &performed);
        outcome = !rs.ok() ? OpOutcome::kError
                           : (performed ? OpOutcome::kOk : OpOutcome::kNotFound);
        break;
      }
      case DbOpType::kWrite:
        break;  // unreachable: skipped above
    }
    result->latency_micros.Add(static_cast<double>(env->NowMicros() - t0));
    if (outcome == OpOutcome::kError) {
      result->errors++;
    }
    if (opts.verify_outcomes && (rec.op == DbOpType::kGet || rec.op == DbOpType::kRmw) &&
        outcome != rec.outcome) {
      result->outcome_mismatches++;
    }
  }
  result->duration_micros = env->NowMicros() - replay_start;
  return reader.status();
}

}  // namespace clsm
