#include "src/obs/perf_context.h"

#include <cinttypes>
#include <cstdio>

namespace clsm {

const char* PerfLevelName(PerfLevel level) {
  switch (level) {
    case PerfLevel::kDisabled:
      return "off";
    case PerfLevel::kEnableCounts:
      return "counts";
    case PerfLevel::kEnableTimers:
      return "counts+timers";
  }
  return "unknown";
}

namespace {
void AppendU64(std::string* out, const char* key, uint64_t v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, v, comma ? "," : "");
  out->append(buf);
}
}  // namespace

std::string PerfContext::ToJson() const {
  // Schema documented in docs/TESTING.md ("clsm.perf.json"). All keys are
  // emitted at every level so consumers need no presence checks; fields a
  // level does not populate are 0.
  std::string out;
  out.reserve(640);
  out.push_back('{');
  out.append("\"level\":\"");
  out.append(PerfLevelName(level));
  out.append("\",\"counters\":{");
  AppendU64(&out, "skiplist_search_nodes", skiplist_search_nodes);
  AppendU64(&out, "memtable_probes", memtable_probes);
  out.append("\"table_reads_per_level\":[");
  for (int l = 0; l < kMaxLevels; l++) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "%s", table_reads_per_level[l],
                  l + 1 < kMaxLevels ? "," : "");
    out.append(buf);
  }
  out.append("],");
  AppendU64(&out, "block_reads", block_reads);
  AppendU64(&out, "block_read_bytes", block_read_bytes);
  AppendU64(&out, "block_cache_hits", block_cache_hits);
  AppendU64(&out, "bloom_useful", bloom_useful, /*comma=*/false);
  out.append("},\"timers_nanos\":{");
  AppendU64(&out, "total", total_nanos);
  AppendU64(&out, "throttle", throttle_nanos);
  AppendU64(&out, "memtable_roll_wait", memtable_roll_wait_nanos);
  AppendU64(&out, "l0_slowdown_sleep", l0_slowdown_sleep_nanos);
  AppendU64(&out, "lock_getts", lock_getts_nanos);
  AppendU64(&out, "shared_lock_wait", shared_lock_wait_nanos);
  AppendU64(&out, "mem_insert", mem_insert_nanos);
  AppendU64(&out, "wal_append", wal_append_nanos);
  AppendU64(&out, "mem_search", mem_search_nanos);
  AppendU64(&out, "disk_search", disk_search_nanos);
  AppendU64(&out, "crc_verify", crc_verify_nanos, /*comma=*/false);
  out.append("}}");
  return out;
}

}  // namespace clsm
