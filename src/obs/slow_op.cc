#include "src/obs/slow_op.h"

#include <cinttypes>
#include <cstdio>

namespace clsm {

std::string SlowOpToJson(const SlowOpInfo& info, uint64_t wall_micros) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"ts_micros\":%" PRIu64 ",\"op\":\"%s\",\"key_prefix_hash\":\"%016" PRIx64
                "\",\"latency_micros\":%" PRIu64 ",\"l0_files\":%d,\"stalled\":%s,"
                "\"suppressed\":%" PRIu64 ",\"perf\":",
                wall_micros, DbOpTypeName(info.op), info.key_prefix_hash, info.latency_micros,
                info.l0_files, info.stalled ? "true" : "false", info.suppressed);
  std::string out(buf);
  out.append(info.perf.ToJson());
  out.push_back('}');
  return out;
}

SlowOpJsonlSink::SlowOpJsonlSink(std::string path, Env* env)
    : path_(std::move(path)), env_(env != nullptr ? env : Env::Default()) {
  std::lock_guard<std::mutex> l(mu_);
  io_status_ = env_->NewWritableFile(path_, &file_);
}

SlowOpJsonlSink::~SlowOpJsonlSink() {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ != nullptr) {
    file_->Flush();
    file_->Close();
  }
}

bool SlowOpJsonlSink::ok() const {
  std::lock_guard<std::mutex> l(mu_);
  return io_status_.ok();
}

void SlowOpJsonlSink::OnSlowOperation(const SlowOpInfo& info) {
  std::string line = SlowOpToJson(info, env_->NowMicros());
  line.push_back('\n');
  std::lock_guard<std::mutex> l(mu_);
  if (!io_status_.ok() || file_ == nullptr) {
    return;  // latched: a broken sink must not disturb the store
  }
  io_status_ = file_->Append(line);
  if (io_status_.ok()) {
    // Slow ops are rare (rate-bounded) — flush each line so a crash keeps
    // the records that explain it.
    file_->Flush();
    lines_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace clsm
