// Replays a recorded operation trace (src/obs/op_trace.h) against a live
// DB — any variant — turning an observed anomaly into a reproducible
// benchmark input. Lives next to op_trace but compiles in clsm_core (it
// needs the DB interface; same layering exception as stats_export.cc).
#ifndef CLSM_OBS_TRACE_REPLAY_H_
#define CLSM_OBS_TRACE_REPLAY_H_

#include <cstdint>
#include <string>

#include "src/util/env.h"
#include "src/util/histogram.h"
#include "src/util/status.h"

namespace clsm {

class DB;

struct ReplayOptions {
  // Preserve recorded inter-arrival gaps (sleep out each delta) instead of
  // issuing ops back-to-back (compressed timing, the default: replay as a
  // throughput benchmark rather than a load reproduction).
  bool preserve_timing = false;
  // Compare each Get/Rmw outcome (found / not-found) against the recorded
  // one and count divergence in ReplayResult::outcome_mismatches.
  bool verify_outcomes = true;
};

struct ReplayResult {
  uint64_t ops = 0;  // ops actually issued (excludes skipped_writes)
  uint64_t ops_by_type[5] = {};        // indexed by DbOpType
  uint64_t outcome_mismatches = 0;     // recorded vs replayed found/not-found
  uint64_t errors = 0;                 // ops that returned a non-ok/non-notfound status
  uint64_t skipped_writes = 0;         // kWrite records (batch contents are not traced)
  uint64_t duration_micros = 0;        // wall time of the replay
  Histogram latency_micros;            // replayed per-op latency
};

// Sequential, single-threaded replay in record order (completion order of
// the original run) — deterministic, so outcome verification is exact.
// Values are regenerated as a deterministic filler of the recorded size.
Status ReplayTrace(DB* db, Env* env, const std::string& trace_path, const ReplayOptions& opts,
                   ReplayResult* result);

}  // namespace clsm

#endif  // CLSM_OBS_TRACE_REPLAY_H_
