// Slow-operation structured logging support: the per-DB rate limiter that
// bounds OnSlowOperation dispatch, and a bundled JSONL sink listener so
// tail outliers self-describe in production without custom listener code.
//
// Flow: ClsmDb / the baseline chassis time every public op (whenever
// Options::slow_op_threshold_micros > 0); an op over the threshold builds
// a SlowOpInfo (op type, key-prefix hash, latency, PerfContext snapshot,
// L0/stall state) and — if the limiter admits it — fans it out through
// ListenerSet::NotifySlowOperation.
#ifndef CLSM_OBS_SLOW_OP_H_
#define CLSM_OBS_SLOW_OP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/obs/event_listener.h"
#include "src/util/env.h"

namespace clsm {

// Fixed-window rate bound: at most max_per_sec admissions per one-second
// window, everything beyond counted as suppressed. Lock-free; the
// occasional cross-thread race at a window boundary can admit a record or
// two extra, which is fine for a logging bound.
class SlowOpRateLimiter {
 public:
  explicit SlowOpRateLimiter(uint32_t max_per_sec) : max_per_sec_(max_per_sec) {}

  // True if a record observed at now_micros may be dispatched.
  bool Admit(uint64_t now_micros) {
    if (max_per_sec_ == 0) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const uint64_t window = now_micros / 1000000;
    uint64_t cur = window_.load(std::memory_order_relaxed);
    if (cur != window) {
      if (window_.compare_exchange_strong(cur, window, std::memory_order_relaxed)) {
        in_window_.store(0, std::memory_order_relaxed);
      }
    }
    if (in_window_.fetch_add(1, std::memory_order_relaxed) < max_per_sec_) {
      return true;
    }
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  uint64_t suppressed() const { return suppressed_.load(std::memory_order_relaxed); }

  void Reset() {
    suppressed_.store(0, std::memory_order_relaxed);
    in_window_.store(0, std::memory_order_relaxed);
  }

 private:
  const uint32_t max_per_sec_;
  std::atomic<uint64_t> window_{0};
  std::atomic<uint32_t> in_window_{0};
  std::atomic<uint64_t> suppressed_{0};
};

// FNV-1a over the first <= 8 key bytes: enough to correlate slow ops that
// hit the same key region without writing key material into logs.
inline uint64_t SlowOpKeyPrefixHash(const Slice& key) {
  uint64_t h = 1469598103934665603ull;
  const size_t n = key.size() < 8 ? key.size() : 8;
  for (size_t i = 0; i < n; i++) {
    h = (h ^ static_cast<uint8_t>(key.data()[i])) * 1099511628211ull;
  }
  return h;
}

// One JSON line per SlowOpInfo (docs/TESTING.md documents the fields).
std::string SlowOpToJson(const SlowOpInfo& info, uint64_t wall_micros);

// Bundled sink: appends one JSONL record per slow op to `path`. Safe to
// share across DBs; serializes internally. IO errors are latched (the
// sink stops writing) instead of thrown — a broken log target must not
// take down the store.
class SlowOpJsonlSink : public EventListener {
 public:
  // env == nullptr means Env::Default().
  SlowOpJsonlSink(std::string path, Env* env = nullptr);
  ~SlowOpJsonlSink() override;

  void OnSlowOperation(const SlowOpInfo& info) override;

  // Records successfully appended so far.
  uint64_t lines_written() const { return lines_.load(std::memory_order_relaxed); }
  bool ok() const;

 private:
  const std::string path_;
  Env* const env_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;  // guarded by mu_
  Status io_status_;                    // guarded by mu_
  std::atomic<uint64_t> lines_{0};
};

}  // namespace clsm

#endif  // CLSM_OBS_SLOW_OP_H_
