#include "src/obs/metrics.h"

#include <functional>
#include <thread>

namespace clsm {

const char* OpMetricName(OpMetric m) {
  switch (m) {
    case OpMetric::kPut:
      return "put";
    case OpMetric::kGet:
      return "get";
    case OpMetric::kDelete:
      return "delete";
    case OpMetric::kRmw:
      return "rmw";
    case OpMetric::kIterNext:
      return "iter_next";
    case OpMetric::kWalAppend:
      return "wal_append";
    case OpMetric::kMemInsert:
      return "mem_insert";
    case OpMetric::kRollWait:
      return "roll_wait";
    case OpMetric::kFlush:
      return "flush";
    case OpMetric::kCompaction:
      return "compaction";
  }
  return "unknown";
}

#if defined(CLSM_HAVE_CNTVCT)
double LatencyClock::NanosPerTick() {
  // The generic timer's frequency is architecturally discoverable — no
  // calibration spin needed.
  static const double scale = [] {
    uint64_t freq_hz;
    asm volatile("mrs %0, cntfrq_el0" : "=r"(freq_hz));
    return freq_hz != 0 ? 1e9 / static_cast<double>(freq_hz) : 1.0;
  }();
  return scale;
}
#elif defined(CLSM_HAVE_RDTSC)
double LatencyClock::NanosPerTick() {
  // Calibrated once per process against steady_clock over a ~200us spin
  // (sub-0.1% error; the TSC is invariant on x86-64). Thread-safe magic
  // static; the winner pays the spin, everyone else a guard-acquire load.
  static const double scale = [] {
    const uint64_t t0 = __rdtsc();
    const auto c0 = std::chrono::steady_clock::now();
    std::chrono::steady_clock::time_point c1;
    do {
      c1 = std::chrono::steady_clock::now();
    } while (c1 - c0 < std::chrono::microseconds(200));
    const uint64_t t1 = __rdtsc();
    const double nanos =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(c1 - c0).count());
    return t1 > t0 ? nanos / static_cast<double>(t1 - t0) : 1.0;
  }();
  return scale;
}
#endif

int StatsRegistry::ShardIndex() {
  // Hash of the thread id, computed once per thread. Distinct threads may
  // collide on a shard — the counters stay correct, only contention rises.
  thread_local const int shard =
      static_cast<int>(std::hash<std::thread::id>()(std::this_thread::get_id()) % kNumShards);
  return shard;
}

uint64_t StatsRegistry::Count(OpMetric op) const {
  uint64_t n = 0;
  for (const Shard& s : shards_) {
    n += s.hists[static_cast<int>(op)].count.load(std::memory_order_relaxed);
  }
  return n;
}

void StatsRegistry::AggregateInto(OpMetric op, Histogram* out) const {
  uint64_t counts[Histogram::kNumBuckets];
  for (const Shard& s : shards_) {
    const ShardHist& h = s.hists[static_cast<int>(op)];
    const uint64_t num = h.count.load(std::memory_order_relaxed);
    if (num == 0) {
      continue;
    }
    // min/max are recovered from the occupied bucket range (exact to
    // bucket width): the hot path records no per-sample extremes.
    int lo = -1, hi = -1;
    for (int b = 0; b < Histogram::kNumBuckets; b++) {
      counts[b] = h.buckets[b].load(std::memory_order_relaxed);
      if (counts[b] != 0) {
        if (lo < 0) {
          lo = b;
        }
        hi = b;
      }
    }
    if (lo < 0) {
      continue;  // counts raced to zero; nothing to merge
    }
    const double min = lo > 0 ? Histogram::BucketLimit(lo - 1) : 0.0;
    const double max = Histogram::BucketLimit(hi);
    out->MergeBucketCounts(counts, num,
                           static_cast<double>(h.sum_nanos.load(std::memory_order_relaxed)), min,
                           max);
  }
}

void StatsRegistry::Reset() {
  for (Shard& s : shards_) {
    for (ShardHist& h : s.hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum_nanos.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) {
        b.store(0, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace clsm
