// TraceEventListener: a bundled EventListener that records timestamped
// internal events into a bounded in-memory ring buffer, dumpable as Chrome
// trace_event JSON (load chrome://tracing or https://ui.perfetto.dev on the
// output of DumpChromeTrace). Lets one *see* a flush -> compaction cascade
// or a stall storm on the real timeline instead of inferring it from
// counters.
#ifndef CLSM_OBS_TRACE_LISTENER_H_
#define CLSM_OBS_TRACE_LISTENER_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/event_listener.h"

namespace clsm {

class TraceEventListener : public EventListener {
 public:
  // capacity: max retained events; older events are overwritten (the dump
  // reports how many were lost).
  explicit TraceEventListener(size_t capacity = 1 << 16);

  void OnMemtableRoll(uint64_t memtable_bytes) override;
  void OnFlushBegin(const FlushJobInfo& info) override;
  void OnFlushEnd(const FlushJobInfo& info) override;
  void OnCompactionBegin(const CompactionJobInfo& info) override;
  void OnCompactionEnd(const CompactionJobInfo& info) override;
  void OnStallBegin(StallReason reason) override;
  void OnStallEnd(StallReason reason, uint64_t micros) override;
  void OnWalSync(const WalSyncInfo& info) override;

  // Chrome trace_event JSON object: {"traceEvents": [...], ...}. Safe to
  // call concurrently with event recording (events arriving mid-dump may or
  // may not be included).
  std::string DumpChromeTrace() const;

  // Events currently retained / recorded since construction.
  size_t NumRetained() const;
  uint64_t NumRecorded() const;

 private:
  // "B"/"E" duration events are matched by (name, tid) in the viewer, so
  // each event carries the recording thread's id.
  struct Event {
    char phase;             // 'B', 'E' or 'i' (instant)
    const char* name;       // static string
    uint64_t ts_micros;     // steady-clock timestamp
    uint64_t tid;           // recording thread
    int level;              // compaction level, or -1
    uint64_t arg;           // bytes / micros, event-specific
  };

  void Push(char phase, const char* name, int level, uint64_t arg);

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  uint64_t recorded_ = 0;  // total pushes; ring slot = recorded_ % capacity_
};

}  // namespace clsm

#endif  // CLSM_OBS_TRACE_LISTENER_H_
