// StatsReporter: background thread that periodically logs a one-line
// interval delta summary plus the full structured JSON snapshot
// ("clsm.stats.json") to stderr. Enabled by Options::stats_dump_period_sec
// (0 = off, the default). The paper's instability modes — write stalls,
// compaction debt — are only visible as *time series*; this is the
// poor-man's time series for operators without a scrape pipeline.
#ifndef CLSM_OBS_STATS_REPORTER_H_
#define CLSM_OBS_STATS_REPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace clsm {

// Small counter sample the reporter diffs between ticks.
struct ReporterCounters {
  uint64_t writes = 0;       // puts + deletes
  uint64_t gets = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t stall_micros = 0;  // slowdown + hard-stop time
};

class StatsReporter {
 public:
  // tag: printed on every line (the variant name). counters_fn samples the
  // live counters; json_fn renders the full snapshot. reset_fn, if set, runs
  // after each dump (the Options::stats_dump_deltas mode: every interval's
  // JSON then covers only that interval). All three run on the reporter
  // thread and must stay valid until Stop()/destruction. period_sec == 0
  // disables the reporter entirely: no thread is spawned and NumDumps()
  // stays 0 (callers need not special-case construction).
  StatsReporter(std::string tag, unsigned period_sec,
                std::function<ReporterCounters()> counters_fn,
                std::function<std::string()> json_fn,
                std::function<void()> reset_fn = nullptr);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  // Joins the thread; idempotent. Call before tearing down anything the
  // callbacks read.
  void Stop();

  uint64_t NumDumps() const { return dumps_; }

 private:
  void Loop();

  const std::string tag_;
  const unsigned period_sec_;
  const std::function<ReporterCounters()> counters_fn_;
  const std::function<std::string()> json_fn_;
  const std::function<void()> reset_fn_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> dumps_{0};
  std::thread thread_;
};

}  // namespace clsm

#endif  // CLSM_OBS_STATS_REPORTER_H_
