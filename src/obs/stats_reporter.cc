#include "src/obs/stats_reporter.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace clsm {

StatsReporter::StatsReporter(std::string tag, unsigned period_sec,
                             std::function<ReporterCounters()> counters_fn,
                             std::function<std::string()> json_fn,
                             std::function<void()> reset_fn)
    : tag_(std::move(tag)),
      period_sec_(period_sec),
      counters_fn_(std::move(counters_fn)),
      json_fn_(std::move(json_fn)),
      reset_fn_(std::move(reset_fn)) {
  if (period_sec_ > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> l(mutex_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void StatsReporter::Loop() {
  ReporterCounters prev = counters_fn_();
  auto prev_time = std::chrono::steady_clock::now();
  while (true) {
    {
      std::unique_lock<std::mutex> l(mutex_);
      if (cv_.wait_for(l, std::chrono::seconds(period_sec_), [this] { return stop_; })) {
        return;
      }
    }
    const ReporterCounters cur = counters_fn_();
    const auto now = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(now - prev_time).count();
    std::fprintf(stderr,
                 "[stats:%s] interval=%.1fs writes+%llu gets+%llu flushes+%llu "
                 "compactions+%llu stall+%.1fms\n%s\n",
                 tag_.c_str(), secs,
                 static_cast<unsigned long long>(cur.writes - prev.writes),
                 static_cast<unsigned long long>(cur.gets - prev.gets),
                 static_cast<unsigned long long>(cur.flushes - prev.flushes),
                 static_cast<unsigned long long>(cur.compactions - prev.compactions),
                 (cur.stall_micros - prev.stall_micros) / 1000.0, json_fn_().c_str());
    std::fflush(stderr);
    prev = cur;
    prev_time = now;
    dumps_.fetch_add(1, std::memory_order_relaxed);
    if (reset_fn_) {
      reset_fn_();
      // The reset zeroed the live counters underneath the sampled values;
      // resample so the next interval's deltas start from the new baseline.
      prev = counters_fn_();
    }
  }
}

}  // namespace clsm
