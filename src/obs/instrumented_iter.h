// Wrapper iterator that records the latency of every Next() into a
// StatsRegistry (OpMetric::kIterNext). Applied by the DB front-ends at
// NewIterator time so the per-op latency export covers scans too.
#ifndef CLSM_OBS_INSTRUMENTED_ITER_H_
#define CLSM_OBS_INSTRUMENTED_ITER_H_

#include "src/obs/metrics.h"
#include "src/table/iterator.h"

namespace clsm {

// Takes ownership of base. Returns base unchanged when registry is null.
Iterator* NewLatencyRecordingIterator(Iterator* base, StatsRegistry* registry);

}  // namespace clsm

#endif  // CLSM_OBS_INSTRUMENTED_ITER_H_
