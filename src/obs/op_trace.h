// Operation trace record/replay (tentpole part 3): every public operation
// becomes one compact binary record — timestamp, thread, op, key, value
// size, outcome, latency — written by a TraceWriter listener, so any
// observed anomaly can be turned into a reproducible benchmark input and
// replayed against any variant by the clsm_trace tool.
//
// File format ("CLSMTRC1"):
//   magic            8 bytes  "CLSMTRC1"
//   record*:
//     ts_delta       varint64  microseconds since the previous record
//     thread_id      varint32  dense per-trace id of the recording thread
//     op             1 byte    DbOpType
//     outcome        1 byte    OpOutcome
//     latency_micros varint64
//     key_len        varint32, followed by the raw key bytes
//     value_size     varint32  bytes written (puts) / returned (gets)
// Values themselves are not recorded (they would dominate trace size);
// replay regenerates a deterministic filler of the recorded size, which
// preserves op mix, key access pattern, write volume and found/not-found
// outcomes — everything the paper's workloads are parameterized by.
#ifndef CLSM_OBS_OP_TRACE_H_
#define CLSM_OBS_OP_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/event_listener.h"
#include "src/util/env.h"
#include "src/util/histogram.h"

namespace clsm {

extern const char kTraceMagic[8];  // "CLSMTRC1"

// One decoded trace record. ts_micros is absolute within the trace
// (deltas are re-summed by the reader), starting at the first record's
// arrival time of 0.
struct TraceRecord {
  uint64_t ts_micros = 0;
  uint32_t thread_id = 0;
  DbOpType op = DbOpType::kPut;
  OpOutcome outcome = OpOutcome::kOk;
  uint64_t latency_micros = 0;
  std::string key;
  uint32_t value_size = 0;
};

// EventListener that appends one binary record per completed operation.
// Register it in Options::listeners (it opts into per-op records);
// serializes internally, so one writer may observe a multi-threaded
// workload — records appear in completion order.
class TraceWriter : public EventListener {
 public:
  // env == nullptr means Env::Default().
  TraceWriter(std::string path, Env* env = nullptr);
  ~TraceWriter() override;

  bool WantsOperationRecords() const override { return true; }
  void OnOperation(const OperationInfo& info) override;

  // Flush + close the trace file; further records are dropped. Returns the
  // first IO error, if any. Idempotent; the dtor calls it.
  Status Finish();

  uint64_t records_written() const { return records_.load(std::memory_order_relaxed); }
  bool ok() const;

 private:
  const std::string path_;
  Env* const env_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;      // guarded by mu_
  Status io_status_;                        // guarded by mu_
  uint64_t last_ts_micros_ = 0;             // guarded by mu_
  uint64_t first_ts_micros_ = 0;            // guarded by mu_
  std::map<std::thread::id, uint32_t> thread_ids_;  // guarded by mu_
  std::atomic<uint64_t> records_{0};
};

// Decodes a trace file record by record. Loads the file up front (traces
// are read by tools/tests, not hot paths).
class TraceReader {
 public:
  Status Open(Env* env, const std::string& path);

  // False at clean end-of-trace OR on corruption; check status().
  bool Next(TraceRecord* rec);

  const Status& status() const { return status_; }

 private:
  std::string contents_;
  Slice cursor_;
  uint64_t ts_micros_ = 0;
  Status status_;
};

// One JSON object per record (the clsm_trace dump format).
std::string TraceRecordToJson(const TraceRecord& rec);

// Aggregate shape of a trace: op mix, outcomes, latency percentiles, key
// skew (distinct keys + fraction of ops hitting the hottest key).
struct TraceSummary {
  uint64_t records = 0;
  uint64_t ops_by_type[5] = {};       // indexed by DbOpType
  uint64_t outcomes[3] = {};          // indexed by OpOutcome
  uint64_t duration_micros = 0;       // last ts - first ts
  uint64_t distinct_keys = 0;
  uint64_t hottest_key_ops = 0;       // ops on the most-touched key
  std::string hottest_key;
  uint64_t total_value_bytes = 0;
  Histogram latency_micros;
  uint32_t threads = 0;

  std::string ToString() const;
};

Status SummarizeTrace(Env* env, const std::string& path, TraceSummary* out);

}  // namespace clsm

#endif  // CLSM_OBS_OP_TRACE_H_
