#include "src/obs/trace_listener.h"

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

#include "src/obs/metrics.h"

namespace clsm {

namespace {
uint64_t ThreadTid() {
  thread_local const uint64_t tid =
      std::hash<std::thread::id>()(std::this_thread::get_id()) & 0xffffff;
  return tid;
}
}  // namespace

TraceEventListener::TraceEventListener(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceEventListener::Push(char phase, const char* name, int level, uint64_t arg) {
  Event e{phase, name, MonotonicNanos() / 1000, ThreadTid(), level, arg};
  std::lock_guard<std::mutex> l(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[recorded_ % capacity_] = e;
  }
  recorded_++;
}

void TraceEventListener::OnMemtableRoll(uint64_t memtable_bytes) {
  Push('i', "memtable_roll", -1, memtable_bytes);
}

void TraceEventListener::OnFlushBegin(const FlushJobInfo& info) {
  Push('B', "flush", 0, info.memtable_bytes);
}

void TraceEventListener::OnFlushEnd(const FlushJobInfo& info) {
  Push('E', "flush", 0, info.output_file_size);
}

void TraceEventListener::OnCompactionBegin(const CompactionJobInfo& info) {
  Push('B', "compact", info.level, info.bytes_read);
}

void TraceEventListener::OnCompactionEnd(const CompactionJobInfo& info) {
  Push('E', "compact", info.level, info.bytes_written);
}

void TraceEventListener::OnStallBegin(StallReason reason) {
  Push('B', StallReasonName(reason), -1, 0);
}

void TraceEventListener::OnStallEnd(StallReason reason, uint64_t micros) {
  Push('E', StallReasonName(reason), -1, micros);
}

void TraceEventListener::OnWalSync(const WalSyncInfo& info) {
  Push('i', "wal_sync", -1, info.micros);
}

size_t TraceEventListener::NumRetained() const {
  std::lock_guard<std::mutex> l(mutex_);
  return ring_.size();
}

uint64_t TraceEventListener::NumRecorded() const {
  std::lock_guard<std::mutex> l(mutex_);
  return recorded_;
}

std::string TraceEventListener::DumpChromeTrace() const {
  std::vector<Event> events;
  uint64_t recorded;
  {
    std::lock_guard<std::mutex> l(mutex_);
    recorded = recorded_;
    if (ring_.size() < capacity_) {
      events = ring_;
    } else {
      // Unroll the ring oldest-first.
      const size_t head = recorded_ % capacity_;
      events.insert(events.end(), ring_.begin() + head, ring_.end());
      events.insert(events.end(), ring_.begin(), ring_.begin() + head);
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  for (size_t i = 0; i < events.size(); i++) {
    const Event& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"clsm\",\"ph\":\"%c\",\"pid\":1,"
                  "\"tid\":%" PRIu64 ",\"ts\":%" PRIu64 ",\"args\":{\"level\":%d,\"arg\":%" PRIu64
                  "}%s}",
                  i == 0 ? "" : ",", e.name, e.phase, e.tid, e.ts_micros, e.level, e.arg,
                  e.phase == 'i' ? ",\"s\":\"g\"" : "");
    out.append(buf);
  }
  out.append("],\"otherData\":{\"dropped_events\":");
  out.append(std::to_string(recorded > events.size() ? recorded - events.size() : 0));
  out.append("}}");
  return out;
}

}  // namespace clsm
