#include "src/obs/op_trace.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "src/util/coding.h"

namespace clsm {

const char kTraceMagic[8] = {'C', 'L', 'S', 'M', 'T', 'R', 'C', '1'};

TraceWriter::TraceWriter(std::string path, Env* env)
    : path_(std::move(path)), env_(env != nullptr ? env : Env::Default()) {
  std::lock_guard<std::mutex> l(mu_);
  io_status_ = env_->NewWritableFile(path_, &file_);
  if (io_status_.ok()) {
    io_status_ = file_->Append(Slice(kTraceMagic, sizeof(kTraceMagic)));
  }
}

TraceWriter::~TraceWriter() { Finish(); }

bool TraceWriter::ok() const {
  std::lock_guard<std::mutex> l(mu_);
  return io_status_.ok();
}

void TraceWriter::OnOperation(const OperationInfo& info) {
  const uint64_t now = env_->NowMicros();
  std::lock_guard<std::mutex> l(mu_);
  if (!io_status_.ok() || file_ == nullptr) {
    return;
  }
  if (records_.load(std::memory_order_relaxed) == 0) {
    first_ts_micros_ = last_ts_micros_ = now;
  }
  // Completion timestamps from one monotonic-enough source; clamp the
  // occasional cross-thread inversion to delta 0 so replay order == file
  // order stays causally sane.
  const uint64_t ts = now > last_ts_micros_ ? now : last_ts_micros_;
  uint32_t& tid = thread_ids_[std::this_thread::get_id()];
  if (tid == 0) {
    tid = static_cast<uint32_t>(thread_ids_.size());  // dense ids from 1
  }

  std::string rec;
  rec.reserve(24 + info.key.size());
  PutVarint64(&rec, ts - last_ts_micros_);
  PutVarint32(&rec, tid - 1);
  rec.push_back(static_cast<char>(info.op));
  rec.push_back(static_cast<char>(info.outcome));
  PutVarint64(&rec, info.latency_micros);
  PutLengthPrefixedSlice(&rec, info.key);
  PutVarint32(&rec, info.value_size);
  last_ts_micros_ = ts;

  io_status_ = file_->Append(rec);
  if (io_status_.ok()) {
    records_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status TraceWriter::Finish() {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) {
    return io_status_;
  }
  Status s = file_->Flush();
  if (s.ok()) {
    s = file_->Close();
  }
  file_.reset();
  if (io_status_.ok()) {
    io_status_ = s;
  }
  return io_status_;
}

Status TraceReader::Open(Env* env, const std::string& path) {
  if (env == nullptr) {
    env = Env::Default();
  }
  status_ = ReadFileToString(env, path, &contents_);
  if (!status_.ok()) {
    return status_;
  }
  if (contents_.size() < sizeof(kTraceMagic) ||
      std::memcmp(contents_.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
    status_ = Status::Corruption("not a clsm trace file: " + path);
    return status_;
  }
  cursor_ = Slice(contents_.data() + sizeof(kTraceMagic), contents_.size() - sizeof(kTraceMagic));
  ts_micros_ = 0;
  return Status::OK();
}

bool TraceReader::Next(TraceRecord* rec) {
  if (!status_.ok() || cursor_.empty()) {
    return false;
  }
  uint64_t delta = 0, latency = 0;
  uint32_t tid = 0, value_size = 0;
  Slice key;
  if (!GetVarint64(&cursor_, &delta) || !GetVarint32(&cursor_, &tid) || cursor_.size() < 2) {
    status_ = Status::Corruption("truncated trace record");
    return false;
  }
  const uint8_t op = static_cast<uint8_t>(cursor_[0]);
  const uint8_t outcome = static_cast<uint8_t>(cursor_[1]);
  cursor_.remove_prefix(2);
  if (op > static_cast<uint8_t>(DbOpType::kRmw) ||
      outcome > static_cast<uint8_t>(OpOutcome::kError)) {
    status_ = Status::Corruption("bad op/outcome byte in trace record");
    return false;
  }
  if (!GetVarint64(&cursor_, &latency) || !GetLengthPrefixedSlice(&cursor_, &key) ||
      !GetVarint32(&cursor_, &value_size)) {
    status_ = Status::Corruption("truncated trace record");
    return false;
  }
  ts_micros_ += delta;
  rec->ts_micros = ts_micros_;
  rec->thread_id = tid;
  rec->op = static_cast<DbOpType>(op);
  rec->outcome = static_cast<OpOutcome>(outcome);
  rec->latency_micros = latency;
  rec->key.assign(key.data(), key.size());
  rec->value_size = value_size;
  return true;
}

std::string TraceRecordToJson(const TraceRecord& rec) {
  // Keys may hold arbitrary bytes; emit them hex-encoded so the JSONL dump
  // is always valid JSON.
  static const char* kHex = "0123456789abcdef";
  std::string key_hex;
  key_hex.reserve(rec.key.size() * 2);
  for (unsigned char c : rec.key) {
    key_hex.push_back(kHex[c >> 4]);
    key_hex.push_back(kHex[c & 0xf]);
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ts_micros\":%" PRIu64 ",\"thread\":%u,\"op\":\"%s\",\"outcome\":\"%s\","
                "\"latency_micros\":%" PRIu64 ",\"value_size\":%u,\"key_hex\":\"",
                rec.ts_micros, rec.thread_id, DbOpTypeName(rec.op), OpOutcomeName(rec.outcome),
                rec.latency_micros, rec.value_size);
  std::string out(buf);
  out.append(key_hex);
  out.append("\"}");
  return out;
}

Status SummarizeTrace(Env* env, const std::string& path, TraceSummary* out) {
  TraceReader reader;
  Status s = reader.Open(env, path);
  if (!s.ok()) {
    return s;
  }
  std::unordered_map<std::string, uint64_t> key_counts;
  uint32_t max_thread = 0;
  bool any = false;
  TraceRecord rec;
  while (reader.Next(&rec)) {
    any = true;
    out->records++;
    out->ops_by_type[static_cast<int>(rec.op)]++;
    out->outcomes[static_cast<int>(rec.outcome)]++;
    out->duration_micros = rec.ts_micros;  // deltas sum from 0
    out->total_value_bytes += rec.value_size;
    out->latency_micros.Add(static_cast<double>(rec.latency_micros));
    if (rec.thread_id + 1 > max_thread) {
      max_thread = rec.thread_id + 1;
    }
    uint64_t& n = key_counts[rec.key];
    n++;
    if (n > out->hottest_key_ops) {
      out->hottest_key_ops = n;
      out->hottest_key = rec.key;
    }
  }
  out->distinct_keys = key_counts.size();
  out->threads = any ? max_thread : 0;
  return reader.status();
}

std::string TraceSummary::ToString() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "records: %" PRIu64 "  threads: %u  duration: %.3f s  value bytes: %" PRIu64 "\n",
                records, threads, static_cast<double>(duration_micros) / 1e6, total_value_bytes);
  out.append(buf);
  out.append("op mix:");
  for (int i = 0; i <= static_cast<int>(DbOpType::kRmw); i++) {
    if (ops_by_type[i] != 0) {
      std::snprintf(buf, sizeof(buf), "  %s=%" PRIu64 " (%.1f%%)",
                    DbOpTypeName(static_cast<DbOpType>(i)), ops_by_type[i],
                    records != 0 ? 100.0 * static_cast<double>(ops_by_type[i]) /
                                       static_cast<double>(records)
                                 : 0.0);
      out.append(buf);
    }
  }
  out.append("\noutcomes:");
  for (int i = 0; i <= static_cast<int>(OpOutcome::kError); i++) {
    std::snprintf(buf, sizeof(buf), "  %s=%" PRIu64, OpOutcomeName(static_cast<OpOutcome>(i)),
                  outcomes[i]);
    out.append(buf);
  }
  // Keys are arbitrary bytes; render non-printable ones as \xNN so binary
  // (e.g. big-endian integer) keys stay legible.
  std::string printable_key;
  for (char c : hottest_key) {
    if (c >= 0x20 && c < 0x7f) {
      printable_key.push_back(c);
    } else {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\x%02x", static_cast<unsigned char>(c));
      printable_key.append(esc);
    }
  }
  std::snprintf(buf, sizeof(buf),
                "\nkey skew: %" PRIu64 " distinct keys; hottest key \"%s\" took %" PRIu64
                " ops (%.1f%%)\n",
                distinct_keys, printable_key.c_str(), hottest_key_ops,
                records != 0
                    ? 100.0 * static_cast<double>(hottest_key_ops) / static_cast<double>(records)
                    : 0.0);
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "latency us: p50=%.1f p90=%.1f p99=%.1f p999=%.1f max=%.1f\n",
                latency_micros.Percentile(50), latency_micros.Percentile(90),
                latency_micros.Percentile(99), latency_micros.Percentile(99.9),
                latency_micros.Max());
  out.append(buf);
  return out;
}

}  // namespace clsm
