// PerfContext: thread-local per-operation attribution (the RocksDB
// perf_context / iostats_context idea adapted to cLSM). Aggregate
// histograms (metrics.h) answer "how slow is the p999 Put"; PerfContext
// answers "what did THIS Put spend its time on" — which phase of which
// layer paid for a tail outlier.
//
// Cost model ("zero-cost-when-disabled"):
//  * `Options::perf_level = kDisabled` (default): op entry performs one
//    thread-local store (the level publish); every deep-layer probe is a
//    single thread-local load + branch that predicts not-taken. No clock
//    reads, no counter writes. Measured against a probe-free build the
//    overhead on a memtable Get is within noise (<1%).
//  * kEnableCounts: pure counters (node hops, block reads/bytes, cache
//    hits, per-level table probes) are bumped; still no clock reads.
//  * kEnableTimers: counts plus phase timers (nanoseconds). Each timed
//    phase costs two LatencyClock reads, like the PR-2 probes.
//
// The context is reset at op entry and describes the calling thread's most
// recent operation. It is deliberately header-only and dependency-free so
// the skiplist, table and WAL layers can include it without linking
// against clsm_obs; only the exporters (ToJson) live in perf_context.cc.
#ifndef CLSM_OBS_PERF_CONTEXT_H_
#define CLSM_OBS_PERF_CONTEXT_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace clsm {

// Keep in sync with PerfLevelName(); Options::perf_level selects one.
enum class PerfLevel : int {
  kDisabled = 0,      // no per-op attribution (default)
  kEnableCounts = 1,  // counters only — no clock reads
  kEnableTimers = 2,  // counters + phase timers
};
const char* PerfLevelName(PerfLevel level);

struct PerfContext {
  // Deepest level the per-level table-read counters can attribute; matches
  // CompactionStats::kMaxLevels (static_asserted where the two meet).
  static constexpr int kMaxLevels = 8;

  // Active level for the op in flight on this thread. Stored inside the
  // context so deep layers need only one thread-local load to decide
  // whether to count (>= kEnableCounts) or also time (== kEnableTimers).
  PerfLevel level = PerfLevel::kDisabled;

  // --- counters (kEnableCounts and up) ---
  uint64_t skiplist_search_nodes = 0;  // node hops across all skiplist searches
  uint64_t memtable_probes = 0;        // memtable Get calls (Cm + C'm)
  uint64_t table_reads_per_level[kMaxLevels] = {};  // SSTable probes by level
  uint64_t block_reads = 0;            // data/index blocks read from disk
  uint64_t block_read_bytes = 0;       // bytes of those reads (incl. trailer)
  uint64_t block_cache_hits = 0;       // block served from the block cache
  uint64_t bloom_useful = 0;           // bloom filter skipped a block read

  // --- phase timers, nanoseconds (kEnableTimers only) ---
  // The write-path phases are contiguous segments of PutInternal, so for a
  // Put: throttle + lock_getts + mem_insert + wal_append ≈ total (the
  // perf_context_test asserts within 10%). memtable_roll_wait /
  // l0_slowdown_sleep / shared_lock_wait are finer-grained sub-components
  // of throttle resp. lock_getts, recorded at their sources — they overlap
  // the segment timers and must not be added on top of them.
  uint64_t total_nanos = 0;              // whole op, set at op exit
  uint64_t throttle_nanos = 0;           // put: whole backpressure gate
  uint64_t memtable_roll_wait_nanos = 0; //   of which: hard stall (Cm full / L0 stop)
  uint64_t l0_slowdown_sleep_nanos = 0;  //   of which: bounded slowdown sleep
  uint64_t lock_getts_nanos = 0;         // put: lock acquire + timestamp draw
  uint64_t shared_lock_wait_nanos = 0;   //   of which: contended lock acquire
  uint64_t mem_insert_nanos = 0;         // put: skiplist insertion
  uint64_t wal_append_nanos = 0;         // put: record encode + enqueue (+ sync wait)
  uint64_t mem_search_nanos = 0;         // get: Cm + C'm probe
  uint64_t disk_search_nanos = 0;        // get: disk-component search
  uint64_t crc_verify_nanos = 0;         // block checksum verification

  bool counts_enabled() const { return level >= PerfLevel::kEnableCounts; }
  bool timers_enabled() const { return level == PerfLevel::kEnableTimers; }

  // Zero every counter/timer but keep `level` (op entry resets, then the
  // op runs at the level the DB published).
  void ResetCounters() {
    const PerfLevel l = level;
    std::memset(this, 0, sizeof(*this));
    level = l;
  }

  // One JSON object (see docs/TESTING.md for the schema). Implemented in
  // perf_context.cc; exposed via GetProperty("clsm.perf.json").
  std::string ToJson() const;
};

// The per-thread context. An inline thread-local keeps deep-layer probes
// to a TLS address computation + load, with no function-call or
// guard-variable overhead (PerfContext is trivially constructible modulo
// the zero-init, which the TLS model does statically).
inline thread_local PerfContext tls_perf_context;

// The calling thread's context (RocksDB-style accessor). The returned
// object is stable for the thread's lifetime; its fields describe the most
// recent operation executed by this thread on any DB with perf enabled.
inline PerfContext* GetPerfContext() { return &tls_perf_context; }

// Op entry: publish the DB's configured level and clear the previous op's
// numbers. When the DB has perf disabled this is a single TLS store (and
// keeps a level left enabled by another DB from leaking probes into ops
// that should be unobserved).
inline void PerfContextStartOp(PerfLevel level) {
  PerfContext& ctx = tls_perf_context;
  if (level == PerfLevel::kDisabled) {
    ctx.level = PerfLevel::kDisabled;
    return;
  }
  ctx.level = level;
  ctx.ResetCounters();
}

// Deep-layer count probe: one TLS load + predicted-not-taken branch when
// disabled.
#define CLSM_PERF_COUNT_ADD(field, delta)                                  \
  do {                                                                     \
    ::clsm::PerfContext& _ctx = ::clsm::tls_perf_context;                  \
    if (_ctx.counts_enabled()) {                                           \
      _ctx.field += static_cast<uint64_t>(delta);                          \
    }                                                                      \
  } while (0)

// Deep-layer timer probe: adds nanos to `field` at kEnableTimers.
#define CLSM_PERF_TIMER_ADD(field, nanos)                                  \
  do {                                                                     \
    ::clsm::PerfContext& _ctx = ::clsm::tls_perf_context;                  \
    if (_ctx.timers_enabled()) {                                           \
      _ctx.field += static_cast<uint64_t>(nanos);                          \
    }                                                                      \
  } while (0)

}  // namespace clsm

#endif  // CLSM_OBS_PERF_CONTEXT_H_
