#include "src/obs/event_listener.h"

namespace clsm {

const char* StallReasonName(StallReason r) {
  switch (r) {
    case StallReason::kMemtableFull:
      return "memtable_full";
    case StallReason::kL0Stop:
      return "l0_stop";
    case StallReason::kL0Slowdown:
      return "l0_slowdown";
  }
  return "unknown";
}

void ListenerSet::NotifyMemtableRoll(uint64_t memtable_bytes) const {
  for (const auto& l : listeners_) {
    l->OnMemtableRoll(memtable_bytes);
  }
}

void ListenerSet::NotifyFlushBegin(const FlushJobInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnFlushBegin(info);
  }
}

void ListenerSet::NotifyFlushEnd(const FlushJobInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnFlushEnd(info);
  }
}

void ListenerSet::NotifyCompactionBegin(const CompactionJobInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnCompactionBegin(info);
  }
}

void ListenerSet::NotifyCompactionEnd(const CompactionJobInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnCompactionEnd(info);
  }
}

void ListenerSet::NotifyStallBegin(StallReason reason) const {
  for (const auto& l : listeners_) {
    l->OnStallBegin(reason);
  }
}

void ListenerSet::NotifyStallEnd(StallReason reason, uint64_t micros) const {
  for (const auto& l : listeners_) {
    l->OnStallEnd(reason, micros);
  }
}

void ListenerSet::NotifyWalSync(const WalSyncInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnWalSync(info);
  }
}

}  // namespace clsm
