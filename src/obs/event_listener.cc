#include "src/obs/event_listener.h"

namespace clsm {

const char* BgErrorReasonName(BgErrorReason r) {
  switch (r) {
    case BgErrorReason::kWalAppend:
      return "wal_append";
    case BgErrorReason::kWalSync:
      return "wal_sync";
    case BgErrorReason::kMemtableRoll:
      return "memtable_roll";
    case BgErrorReason::kFlush:
      return "flush";
    case BgErrorReason::kCompaction:
      return "compaction";
    case BgErrorReason::kManifestWrite:
      return "manifest_write";
    case BgErrorReason::kFileCleanup:
      return "file_cleanup";
  }
  return "unknown";
}

const char* BgErrorSeverityName(BgErrorSeverity s) {
  switch (s) {
    case BgErrorSeverity::kNone:
      return "none";
    case BgErrorSeverity::kSoft:
      return "soft";
    case BgErrorSeverity::kHard:
      return "hard";
    case BgErrorSeverity::kFatal:
      return "fatal";
  }
  return "unknown";
}

const char* DbOpTypeName(DbOpType op) {
  switch (op) {
    case DbOpType::kPut:
      return "put";
    case DbOpType::kDelete:
      return "delete";
    case DbOpType::kGet:
      return "get";
    case DbOpType::kWrite:
      return "write";
    case DbOpType::kRmw:
      return "rmw";
  }
  return "unknown";
}

const char* OpOutcomeName(OpOutcome o) {
  switch (o) {
    case OpOutcome::kOk:
      return "ok";
    case OpOutcome::kNotFound:
      return "not_found";
    case OpOutcome::kError:
      return "error";
  }
  return "unknown";
}

const char* StallReasonName(StallReason r) {
  switch (r) {
    case StallReason::kMemtableFull:
      return "memtable_full";
    case StallReason::kL0Stop:
      return "l0_stop";
    case StallReason::kL0Slowdown:
      return "l0_slowdown";
  }
  return "unknown";
}

void ListenerSet::NotifyMemtableRoll(uint64_t memtable_bytes) const {
  for (const auto& l : listeners_) {
    l->OnMemtableRoll(memtable_bytes);
  }
}

void ListenerSet::NotifyFlushBegin(const FlushJobInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnFlushBegin(info);
  }
}

void ListenerSet::NotifyFlushEnd(const FlushJobInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnFlushEnd(info);
  }
}

void ListenerSet::NotifyCompactionBegin(const CompactionJobInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnCompactionBegin(info);
  }
}

void ListenerSet::NotifyCompactionEnd(const CompactionJobInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnCompactionEnd(info);
  }
}

void ListenerSet::NotifyStallBegin(StallReason reason) const {
  for (const auto& l : listeners_) {
    l->OnStallBegin(reason);
  }
}

void ListenerSet::NotifyStallEnd(StallReason reason, uint64_t micros) const {
  for (const auto& l : listeners_) {
    l->OnStallEnd(reason, micros);
  }
}

void ListenerSet::NotifyWalSync(const WalSyncInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnWalSync(info);
  }
}

void ListenerSet::NotifyBackgroundError(const BackgroundErrorInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnBackgroundError(info);
  }
}

void ListenerSet::NotifyOperation(const OperationInfo& info) const {
  for (EventListener* l : op_listeners_) {
    l->OnOperation(info);
  }
}

void ListenerSet::NotifySlowOperation(const SlowOpInfo& info) const {
  for (const auto& l : listeners_) {
    l->OnSlowOperation(info);
  }
}

}  // namespace clsm
