// Memory arenas backing the in-memory component.
//
// ConcurrentArena is the non-blocking allocator the paper's implementation
// section calls for (§4, citing Michael's scalable lock-free allocation):
// allocation is a fetch_add bump inside the current chunk; chunk exhaustion
// is handled by a CAS race to install a fresh chunk, so no allocating thread
// ever blocks on another. All memory is released at arena destruction, which
// matches memtable lifetime (a memtable dies wholesale after its merge).
#ifndef CLSM_ARENA_ARENA_H_
#define CLSM_ARENA_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace clsm {

// Single-threaded arena (used by baselines whose writes are serialized).
class Arena {
 public:
  Arena();
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes);
  // Aligned to pointer size; required for nodes holding std::atomic fields.
  char* AllocateAligned(size_t bytes);

  size_t MemoryUsage() const { return memory_usage_.load(std::memory_order_relaxed); }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  // Chunks are threaded through their first pointer-sized bytes.
  void* block_list_head_;
  std::atomic<size_t> memory_usage_;
};

// Lock-free multi-producer arena.
class ConcurrentArena {
 public:
  ConcurrentArena();
  ~ConcurrentArena();

  ConcurrentArena(const ConcurrentArena&) = delete;
  ConcurrentArena& operator=(const ConcurrentArena&) = delete;

  // Returns pointer-aligned storage; never returns nullptr (aborts on OOM).
  char* AllocateAligned(size_t bytes);
  char* Allocate(size_t bytes) { return AllocateAligned(bytes); }

  size_t MemoryUsage() const { return memory_usage_.load(std::memory_order_relaxed); }

 private:
  struct Chunk {
    std::atomic<size_t> offset;
    size_t capacity;
    Chunk* next;  // previous chunk in the retained list
    // data follows
    char* data() { return reinterpret_cast<char*>(this) + sizeof(Chunk); }
  };

  static Chunk* NewChunk(size_t capacity, Chunk* next);

  std::atomic<Chunk*> current_;
  std::atomic<size_t> memory_usage_;
};

}  // namespace clsm

#endif  // CLSM_ARENA_ARENA_H_
