#include "src/arena/arena.h"

#include <cstdlib>
#include <new>

namespace clsm {

namespace {
constexpr size_t kBlockSize = 4096 * 64;  // 256 KiB chunks amortize malloc
}  // namespace

Arena::Arena()
    : alloc_ptr_(nullptr), alloc_bytes_remaining_(0), block_list_head_(nullptr), memory_usage_(0) {}

Arena::~Arena() {
  void* p = block_list_head_;
  while (p != nullptr) {
    void* next = *reinterpret_cast<void**>(p);
    free(p);
    p = next;
  }
}

char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  const size_t align = alignof(std::max_align_t) > 8 ? 8 : alignof(std::max_align_t);
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
  size_t slop = (current_mod == 0 ? 0 : align - current_mod);
  size_t needed = bytes + slop;
  char* result;
  if (needed <= alloc_bytes_remaining_) {
    result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
  } else {
    result = AllocateFallback(bytes);  // fresh blocks are malloc-aligned
  }
  assert((reinterpret_cast<uintptr_t>(result) & (align - 1)) == 0);
  return result;
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large objects get their own block so we do not waste the rest of the
    // current block.
    return AllocateNewBlock(bytes);
  }
  char* block = AllocateNewBlock(kBlockSize);
  alloc_ptr_ = block + bytes;
  alloc_bytes_remaining_ = kBlockSize - bytes;
  return block;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  size_t total = block_bytes + sizeof(void*);
  char* raw = static_cast<char*>(malloc(total));
  if (raw == nullptr) {
    abort();
  }
  *reinterpret_cast<void**>(raw) = block_list_head_;
  block_list_head_ = raw;
  memory_usage_.fetch_add(total, std::memory_order_relaxed);
  return raw + sizeof(void*);
}

ConcurrentArena::ConcurrentArena() : memory_usage_(0) {
  current_.store(NewChunk(kBlockSize, nullptr), std::memory_order_relaxed);
}

ConcurrentArena::~ConcurrentArena() {
  Chunk* c = current_.load(std::memory_order_relaxed);
  while (c != nullptr) {
    Chunk* next = c->next;
    free(c);
    c = next;
  }
}

ConcurrentArena::Chunk* ConcurrentArena::NewChunk(size_t capacity, Chunk* next) {
  void* raw = malloc(sizeof(Chunk) + capacity);
  if (raw == nullptr) {
    abort();
  }
  Chunk* c = static_cast<Chunk*>(raw);
  c->offset.store(0, std::memory_order_relaxed);
  c->capacity = capacity;
  c->next = next;
  return c;
}

char* ConcurrentArena::AllocateAligned(size_t bytes) {
  assert(bytes > 0);
  // Round to 8-byte multiples so every returned pointer stays aligned.
  bytes = (bytes + 7) & ~size_t{7};
  // Usage counts bytes handed out, not chunk capacity: the memtable-roll
  // trigger compares this against write_buffer_size, and counting reserved
  // capacity would make small write buffers appear instantly full.
  memory_usage_.fetch_add(bytes, std::memory_order_relaxed);
  while (true) {
    Chunk* c = current_.load(std::memory_order_acquire);
    size_t off = c->offset.fetch_add(bytes, std::memory_order_relaxed);
    if (off + bytes <= c->capacity) {
      return c->data() + off;
    }
    // Chunk exhausted: race to install a replacement. The loser frees its
    // candidate and retries in the winner's chunk.
    size_t cap = bytes > kBlockSize ? bytes : kBlockSize;
    Chunk* fresh = NewChunk(cap, c);
    Chunk* expected = c;
    if (!current_.compare_exchange_strong(expected, fresh, std::memory_order_acq_rel)) {
      free(fresh);
    }
  }
}

}  // namespace clsm
