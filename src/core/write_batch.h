// Atomic batch of write operations. cLSM applies batches under the
// shared-exclusive lock in exclusive mode (paper §4), mirroring LevelDB's
// coarse-grained batch synchronization.
#ifndef CLSM_CORE_WRITE_BATCH_H_
#define CLSM_CORE_WRITE_BATCH_H_

#include <string>
#include <vector>

#include "src/lsm/dbformat.h"
#include "src/util/slice.h"

namespace clsm {

class WriteBatch {
 public:
  WriteBatch() = default;

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  size_t Count() const { return ops_.size(); }

  struct Op {
    ValueType type;
    std::string key;
    std::string value;
  };
  const std::vector<Op>& ops() const { return ops_; }

  // Approximate memory footprint of the batch contents.
  size_t ApproximateSize() const;

 private:
  std::vector<Op> ops_;
};

}  // namespace clsm

#endif  // CLSM_CORE_WRITE_BATCH_H_
