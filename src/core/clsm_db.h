// ClsmDb — the paper's contribution (§3): scalable concurrency for an
// LSM data store.
//
//  * Gets never block: component pointers (Pm, P'm, Pd) are read under
//    epoch protection with per-component refcounts (§3.1).
//  * Puts run concurrently and lock-free against each other; they hold the
//    shared-exclusive lock in shared mode only to exclude the brief
//    beforeMerge/afterMerge pointer swaps (Algorithm 1).
//  * Snapshot scans are serializable multi-version reads driven by the
//    timeCounter / Active-set / snapTime protocol (Algorithm 2).
//  * Read-modify-write is atomic and non-blocking via optimistic CAS
//    insertion into the skip-list bottom level (Algorithm 3).
#ifndef CLSM_CORE_CLSM_DB_H_
#define CLSM_CORE_CLSM_DB_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/db.h"
#include "src/core/snapshot.h"
#include "src/core/stats.h"
#include "src/core/write_batch.h"
#include "src/lsm/storage_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_context.h"
#include "src/obs/slow_op.h"
#include "src/obs/stats_reporter.h"
#include "src/sync/active_set.h"
#include "src/sync/shared_exclusive_lock.h"
#include "src/sync/time_counter.h"

namespace clsm {

class ClsmDb final : public DB {
 public:
  // Opens (creating or recovering) the store at dbname.
  static Status Open(const Options& options, const std::string& dbname, DB** dbptr);

  ClsmDb(const ClsmDb&) = delete;
  ClsmDb& operator=(const ClsmDb&) = delete;

  ~ClsmDb() override;

  Status Put(const WriteOptions& options, const Slice& key, const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status ReadModifyWrite(const WriteOptions& options, const Slice& key, const RmwFunction& f,
                         bool* performed) override;
  const char* Name() const override { return "clsm"; }
  std::string GetProperty(const Slice& property) override;
  void ResetStats() override;
  void WaitForMaintenance() override;

  // Exposed for tests: the timestamp a fresh serializable scan would use.
  SequenceNumber AcquireScanTimestampForTest() { return AcquireScanTimestamp(); }

 private:
  ClsmDb(const Options& options, const std::string& dbname);

  Status Init();

  // Algorithm 2, getTS: acquire a fresh put timestamp, registered in the
  // Active set, retrying while it would invalidate a concurrent snapshot.
  SequenceNumber GetTS();

  // Algorithm 2 lines 9-14 (without installing a handle): pick a
  // serializable snapshot timestamp. With Options::linearizable_snapshots
  // the Active-set adjustment is omitted (§3.2.1), so the returned time is
  // never in the past of the call.
  SequenceNumber AcquireScanTimestamp();

  Status PutInternal(const WriteOptions& options, ValueType type, const Slice& key,
                     const Slice& value);

  // Latest value/timestamp of key across Pm, P'm, Pd (RMW read step).
  // Returns true if some version exists; fills *value (valid only for
  // kTypeValue), *type and *seq.
  bool GetLatest(const Slice& key, std::string* value, ValueType* type, SequenceNumber* seq);

  // Backpressure: wait while Cm is full but C'm has not finished merging
  // (heavy-compaction mode, §5.3), or while level 0 is past the stop
  // trigger; additionally delays a put by one bounded sleep when level 0 is
  // past the slowdown trigger, so L0 growth degrades writers gradually
  // instead of cliff-stalling them. All waiting time is recorded in Stats.
  // Returns the latched background error, if any, so writers fail fast
  // instead of stalling behind a maintenance pipeline that cannot make
  // progress. When stalled_out is non-null it is set to true if this call
  // waited at all (hard stall or slowdown sleep) — the per-op "stalled"
  // bit of slow-op records.
  Status ThrottleIfNeeded(bool* stalled_out = nullptr);

  // Per-op attribution epilogue, shared by every public op: closes the
  // PerfContext (total_nanos), emits a rate-bounded slow-op record when
  // the op crossed Options::slow_op_threshold_micros, and appends a trace
  // record when a listener opted into per-op records. start_ticks is 0
  // when no attribution sink needed timing (then this is a no-op).
  void FinishOp(DbOpType op, const Slice& key, uint32_t value_size, OpOutcome outcome,
                uint64_t start_ticks, bool stalled);

  // Maintenance thread: rolls memtables (beforeMerge), flushes (merge) and
  // swaps pointers (afterMerge). Compactions run on the storage engine's
  // worker pool (Options::compaction_threads workers picking disjoint
  // jobs), so rolls and flushes never queue behind long merges — the
  // reserved-flush-thread configuration of §5.3 is always in effect and
  // Options::dedicated_flush_thread is subsumed.
  void MaintenanceLoop();
  void RollMemTable();   // beforeMerge
  void FlushImmutable(); // merge + afterMerge
  SequenceNumber SmallestLiveSnapshot();

  const std::string dbname_;
  StorageEngine engine_;

  // --- cLSM synchronization state ---
  SharedExclusiveLock lock_;       // "Lock" of Algorithms 1-3
  TimeCounter time_counter_;       // global timestamp source
  ActiveTimestampSet active_;      // in-flight put timestamps
  std::atomic<uint64_t> snap_time_{0};  // latest chosen snapshot timestamp
  SnapshotList snapshots_;         // installed snapshot handles

  // Component pointers (Figure 2b). Swapped only under the exclusive lock;
  // read under epoch protection.
  std::atomic<MemTable*> mem_{nullptr};   // Pm
  std::atomic<MemTable*> imm_{nullptr};   // P'm

  // WAL: swapped together with the memtable under the exclusive lock.
  std::atomic<AsyncLogger*> logger_{nullptr};
  uint64_t log_number_ = 0;       // current WAL number (maintenance thread)
  uint64_t imm_log_number_ = 0;   // WAL number backing imm_
  std::unique_ptr<AsyncLogger> imm_logger_;  // retired logger draining to disk

  // Maintenance thread machinery.
  std::mutex maintenance_mutex_;
  std::condition_variable maintenance_cv_;
  std::condition_variable work_done_cv_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> imm_exists_{false};  // fast-path view of imm_ != null
  // The sticky background error lives in engine_.bg_error(): shared with
  // the engine's own background threads and checked lock-free at every
  // write entry point (see src/lsm/bg_error.h).
  std::thread maintenance_thread_;

  DbStats stats_;
  StatsRegistry registry_;
  // Cached Options::latency_metrics: when false, op paths skip every clock
  // read (the <5%-overhead escape hatch).
  bool metrics_on_ = true;
  std::unique_ptr<StatsReporter> reporter_;

  // --- per-op attribution (PR-4), all cached at open ---
  PerfLevel perf_level_ = PerfLevel::kDisabled;
  uint64_t slow_op_threshold_nanos_ = 0;  // 0 = slow-op logging off
  bool trace_ops_ = false;   // some listener wants per-op records
  // True when any attribution sink needs op entry/exit timestamps.
  bool attributed_ops_ = false;
  SlowOpRateLimiter slow_op_limiter_;
};

}  // namespace clsm

#endif  // CLSM_CORE_CLSM_DB_H_
