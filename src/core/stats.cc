#include "src/core/stats.h"

#include <cstdio>

namespace clsm {

std::string DbStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "gets: total=%llu mem=%llu imm=%llu disk=%llu\n"
      "writes: puts=%llu deletes=%llu batches=%llu\n"
      "rmw: total=%llu conflicts=%llu noop=%llu\n"
      "snapshots: acquired=%llu iterators=%llu getts_rollbacks=%llu\n"
      "maintenance: rolls=%llu flushes=%llu compactions=%llu throttle_waits=%llu\n",
      static_cast<unsigned long long>(gets_total.load()),
      static_cast<unsigned long long>(gets_from_mem.load()),
      static_cast<unsigned long long>(gets_from_imm.load()),
      static_cast<unsigned long long>(gets_from_disk.load()),
      static_cast<unsigned long long>(puts_total.load()),
      static_cast<unsigned long long>(deletes_total.load()),
      static_cast<unsigned long long>(batches_total.load()),
      static_cast<unsigned long long>(rmw_total.load()),
      static_cast<unsigned long long>(rmw_conflicts.load()),
      static_cast<unsigned long long>(rmw_noop.load()),
      static_cast<unsigned long long>(snapshots_acquired.load()),
      static_cast<unsigned long long>(iterators_created.load()),
      static_cast<unsigned long long>(getts_rollbacks.load()),
      static_cast<unsigned long long>(memtable_rolls.load()),
      static_cast<unsigned long long>(flushes.load()),
      static_cast<unsigned long long>(compactions.load()),
      static_cast<unsigned long long>(throttle_waits.load()));
  return buf;
}

}  // namespace clsm
