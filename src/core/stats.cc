#include "src/core/stats.h"

#include <cstdio>

namespace clsm {

std::string CompactionStats::ToString() const {
  std::string out;
  char buf[256];
  for (int l = 0; l < kMaxLevels; l++) {
    const LevelStats& ls = levels_[l];
    const uint64_t n = ls.compactions.load(std::memory_order_relaxed);
    if (n == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "compact L%d: count=%llu moves=%llu read=%llu written=%llu micros=%llu\n", l,
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(ls.trivial_moves.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(ls.bytes_read.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(ls.bytes_written.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(ls.micros.load(std::memory_order_relaxed)));
    out.append(buf);
  }
  if (out.empty()) {
    out = "compact: none\n";
  }
  const uint64_t flushes = flush_count.load(std::memory_order_relaxed);
  if (flushes > 0) {
    std::snprintf(buf, sizeof(buf), "flush: count=%llu written=%llu micros=%llu write_amp=%.2f\n",
                  static_cast<unsigned long long>(flushes),
                  static_cast<unsigned long long>(flush_bytes_written.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(flush_micros.load(std::memory_order_relaxed)),
                  EstimatedWriteAmp());
    out.append(buf);
  }
  return out;
}

std::string DbStats::ToString() const {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "gets: total=%llu mem=%llu imm=%llu disk=%llu\n"
      "writes: puts=%llu deletes=%llu batches=%llu\n"
      "rmw: total=%llu conflicts=%llu noop=%llu\n"
      "snapshots: acquired=%llu iterators=%llu getts_rollbacks=%llu\n"
      "maintenance: rolls=%llu flushes=%llu compactions=%llu throttle_waits=%llu\n"
      "stalls: slowdown_waits=%llu slowdown_micros=%llu stall_micros=%llu\n"
      "slow_ops: total=%llu reported=%llu\n",
      static_cast<unsigned long long>(gets_total.load()),
      static_cast<unsigned long long>(gets_from_mem.load()),
      static_cast<unsigned long long>(gets_from_imm.load()),
      static_cast<unsigned long long>(gets_from_disk.load()),
      static_cast<unsigned long long>(puts_total.load()),
      static_cast<unsigned long long>(deletes_total.load()),
      static_cast<unsigned long long>(batches_total.load()),
      static_cast<unsigned long long>(rmw_total.load()),
      static_cast<unsigned long long>(rmw_conflicts.load()),
      static_cast<unsigned long long>(rmw_noop.load()),
      static_cast<unsigned long long>(snapshots_acquired.load()),
      static_cast<unsigned long long>(iterators_created.load()),
      static_cast<unsigned long long>(getts_rollbacks.load()),
      static_cast<unsigned long long>(memtable_rolls.load()),
      static_cast<unsigned long long>(flushes.load()),
      static_cast<unsigned long long>(compactions.load()),
      static_cast<unsigned long long>(throttle_waits.load()),
      static_cast<unsigned long long>(slowdown_waits.load()),
      static_cast<unsigned long long>(slowdown_micros.load()),
      static_cast<unsigned long long>(stall_micros.load()),
      static_cast<unsigned long long>(slow_ops_total.load()),
      static_cast<unsigned long long>(slow_ops_reported.load()));
  return buf;
}

void DbStats::Reset() {
  for (std::atomic<uint64_t>* c :
       {&gets_total, &gets_from_mem, &gets_from_imm, &gets_from_disk, &puts_total,
        &deletes_total, &batches_total, &rmw_total, &rmw_conflicts, &rmw_noop,
        &snapshots_acquired, &iterators_created, &getts_rollbacks, &memtable_rolls, &flushes,
        &compactions, &throttle_waits, &slowdown_waits, &slowdown_micros, &stall_micros,
        &slow_ops_total, &slow_ops_reported}) {
    c->store(0, std::memory_order_relaxed);
  }
}

}  // namespace clsm
