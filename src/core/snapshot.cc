#include "src/core/snapshot.h"

// SnapshotList is header-only; this translation unit anchors the vtable of
// SnapshotImpl.
namespace clsm {}  // namespace clsm
