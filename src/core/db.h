// Public key-value store interface (paper §2.1): atomic put/get/delete,
// consistent snapshot scans with range queries, and general atomic
// read-modify-write. Implemented by ClsmDb (the paper's contribution) and
// by the baseline concurrency architectures in src/baselines.
#ifndef CLSM_CORE_DB_H_
#define CLSM_CORE_DB_H_

#include <functional>
#include <optional>
#include <string>

#include "src/table/iterator.h"
#include "src/util/options.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace clsm {

class WriteBatch;

// Handle to a consistent point-in-time view (paper §3.2.1). Obtained from
// GetSnapshot(); readable via ReadOptions::snapshot; must be released.
class Snapshot {
 protected:
  virtual ~Snapshot() = default;
};

// User function for ReadModifyWrite: receives the current value (nullopt if
// the key is absent or deleted) and returns the new value, or nullopt to
// perform no write (e.g. put-if-absent observing an existing value).
using RmwFunction =
    std::function<std::optional<std::string>(const std::optional<Slice>& current)>;

class DB {
 public:
  DB() = default;
  virtual ~DB() = default;

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  // Stores (key, value); overwrites any previous value.
  virtual Status Put(const WriteOptions& options, const Slice& key, const Slice& value) = 0;

  // Removes key (by storing a deletion marker, the ⊥ of §2.1).
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;

  // Atomically applies a batch of writes (paper §4: batches synchronize
  // coarsely, holding the shared-exclusive lock in exclusive mode).
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  // Reads the value of key (as of options.snapshot when set). Returns
  // NotFound if absent or deleted.
  virtual Status Get(const ReadOptions& options, const Slice& key, std::string* value) = 0;

  // Iterator over a consistent view of the data in key order (a snapshot
  // scan; supports range queries via Seek + Next). The view is the one of
  // options.snapshot if set, else a fresh serializable snapshot.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  // Acquire / release a snapshot handle (getSnap of Algorithm 2).
  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  // Atomic read-modify-write (paper §3.3, Algorithm 3): atomically replaces
  // the value v of key with f(v). If performed is non-null it is set to
  // whether a write happened (false when f returned nullopt).
  virtual Status ReadModifyWrite(const WriteOptions& options, const Slice& key,
                                 const RmwFunction& f, bool* performed = nullptr) = 0;

  // Implementation identifier, e.g. "clsm", "leveldb-singlewriter".
  virtual const char* Name() const = 0;

  // Best-effort stats string for diagnostics and benches.
  virtual std::string GetProperty(const Slice& property) { return std::string(); }

  // Zero the interval-style observability state (DbStats counters, latency
  // histograms, slow-op rate-limiter accounting) so periodic reporters can
  // emit true deltas instead of since-process-start accumulations.
  // Cumulative engine state (levels, write-amp, background errors) is NOT
  // reset. Also reachable via GetProperty("clsm.stats.reset").
  virtual void ResetStats() {}

  // Block until background flushes/compactions have drained (test/bench
  // hook; not part of the paper's API).
  virtual void WaitForMaintenance() {}
};

}  // namespace clsm

#endif  // CLSM_CORE_DB_H_
