#include "src/core/clsm_db.h"

#include <chrono>

#include <algorithm>

#include "src/core/db_iter.h"
#include "src/obs/instrumented_iter.h"
#include "src/obs/stats_export.h"
#include "src/sync/backoff.h"
#include "src/table/merging_iterator.h"

namespace clsm {

Status ClsmDb::Open(const Options& options, const std::string& dbname, DB** dbptr) {
  *dbptr = nullptr;
  std::unique_ptr<ClsmDb> db(new ClsmDb(options, dbname));
  Status s = db->Init();
  if (!s.ok()) {
    return s;
  }
  *dbptr = db.release();
  return Status::OK();
}

ClsmDb::ClsmDb(const Options& options, const std::string& dbname)
    : dbname_(dbname),
      engine_(options, dbname),
      metrics_on_(options.latency_metrics),
      perf_level_(options.perf_level),
      slow_op_threshold_nanos_(options.slow_op_threshold_micros * 1000),
      slow_op_limiter_(options.slow_op_max_per_sec) {
  engine_.SetStatsRegistry(metrics_on_ ? &registry_ : nullptr);
  trace_ops_ = engine_.listeners().has_op_listeners();
  attributed_ops_ = trace_ops_ || slow_op_threshold_nanos_ != 0;
}

Status ClsmDb::Init() {
  MemTable* recovered = nullptr;
  SequenceNumber max_seq = 0;
  Status s = engine_.Open(&recovered, &max_seq);
  if (!s.ok()) {
    if (recovered != nullptr) {
      recovered->Unref();
    }
    return s;
  }
  time_counter_.AdvanceTo(max_seq);
  snap_time_.store(0, std::memory_order_relaxed);

  // Fresh WAL for the new mutable memtable.
  if (!engine_.options().disable_wal) {
    std::unique_ptr<AsyncLogger> logger;
    s = engine_.NewLog(&log_number_, &logger);
    if (!s.ok()) {
      if (recovered != nullptr) {
        recovered->Unref();
      }
      return s;
    }
    logger_.store(logger.release(), std::memory_order_release);
  } else {
    log_number_ = engine_.versions()->NewFileNumber();
  }

  // Publish the recovered timestamp before any manifest edit is written so
  // the edit records the true last sequence (scans after a future reopen
  // depend on it).
  engine_.versions()->SetLastSequence(std::max(engine_.versions()->LastSequence(), max_seq));

  // Flush recovered WAL contents straight to level 0, then retire old logs.
  if (recovered != nullptr && recovered->NumEntries() > 0) {
    s = engine_.FlushMemTable(recovered, log_number_);
  } else {
    // Still record the fresh log in the manifest so the obsolete-file sweep
    // below cannot strand CURRENT pointing at a removed manifest.
    s = engine_.CommitLogRotation(log_number_);
  }
  if (recovered != nullptr) {
    recovered->Unref();
  }
  if (!s.ok()) {
    return s;
  }
  engine_.RemoveObsoleteFiles(log_number_, /*include_tables=*/true);

  mem_.store(new MemTable(*engine_.icmp()), std::memory_order_release);
  maintenance_thread_ = std::thread([this] { MaintenanceLoop(); });
  // Compactions run on the engine's worker pool; the maintenance thread is
  // thereby a dedicated flush thread (§5.3's reserved-thread setup).
  engine_.StartCompactionScheduler(
      engine_.options().compaction_threads, [this] { return SmallestLiveSnapshot(); },
      [this](const Status&) {
        // The engine already latched the error; wake stalled writers so
        // they observe it instead of waiting out the 1ms poll.
        std::lock_guard<std::mutex> l(maintenance_mutex_);
        work_done_cv_.notify_all();
      });
  if (engine_.options().stats_dump_period_sec > 0) {
    reporter_ = std::make_unique<StatsReporter>(
        Name(), engine_.options().stats_dump_period_sec,
        [this] {
          ReporterCounters c;
          c.writes = stats_.puts_total.load(std::memory_order_relaxed) +
                     stats_.deletes_total.load(std::memory_order_relaxed);
          c.gets = stats_.gets_total.load(std::memory_order_relaxed);
          c.flushes = stats_.flushes.load(std::memory_order_relaxed);
          c.compactions = engine_.compaction_stats()->TotalCompactions();
          c.stall_micros = stats_.TotalStallMicros();
          return c;
        },
        [this] { return GetProperty("clsm.stats.json"); },
        engine_.options().stats_dump_deltas ? std::function<void()>([this] { ResetStats(); })
                                            : std::function<void()>());
  }
  return Status::OK();
}

ClsmDb::~ClsmDb() {
  // Stop the reporter first: its callbacks walk stats_/engine_ state.
  reporter_.reset();
  shutting_down_.store(true, std::memory_order_release);
  maintenance_cv_.notify_all();
  if (maintenance_thread_.joinable()) {
    maintenance_thread_.join();
  }
  // Stop the compaction workers before any state their callbacks touch
  // (snapshots_, time_counter_, bg_error_) is torn down.
  engine_.StopCompactionScheduler();

  // Drain and close the WAL so everything enqueued is recoverable.
  AsyncLogger* logger = logger_.exchange(nullptr, std::memory_order_acq_rel);
  delete logger;  // dtor drains, syncs and closes
  imm_logger_.reset();

  MemTable* imm = imm_.exchange(nullptr, std::memory_order_acq_rel);
  if (imm != nullptr) {
    imm->Unref();
  }
  MemTable* mem = mem_.exchange(nullptr, std::memory_order_acq_rel);
  if (mem != nullptr) {
    mem->Unref();
  }
}

SequenceNumber ClsmDb::GetTS() {
  // Algorithm 2, getTS: the rollback closes the Figure-4 race — if a
  // concurrent getSnap already chose a snapshot time at or after our
  // timestamp, writing at this timestamp could make the snapshot
  // inconsistent, so discard it and draw a fresh (larger) one.
  SpinBackoff backoff;
  while (true) {
    SequenceNumber ts = time_counter_.IncAndGet();
    active_.Add(ts);
    if (ts <= snap_time_.load(std::memory_order_seq_cst)) {
      active_.Remove(ts);
      stats_.Bump(stats_.getts_rollbacks);
      // Back off before redrawing: on few cores a hot rollback loop starves
      // the very scanner whose snapTime advance we are trying to clear.
      backoff.Pause();
    } else {
      return ts;
    }
  }
}

SequenceNumber ClsmDb::AcquireScanTimestamp() {
  // Algorithm 2, getSnap lines 9-14.
  SequenceNumber ts = time_counter_.Get();
  if (!engine_.options().linearizable_snapshots) {
    uint64_t tsa = active_.FindMin();
    if (tsa != ActiveTimestampSet::kNone) {
      // Exclude all in-flight puts: their writes may not be visible yet
      // (Figure 3), so the snapshot must predate them.
      ts = tsa - 1;
    }
  }
  // Linearizable mode omits the adjustment (§3.2.1): the snapshot time is
  // at least the counter value at the start of the call, and the wait loop
  // below rides out in-flight puts below it (they either complete or
  // roll back in getTS).
  // Atomically advance snapTime (never backward; concurrent getSnaps race).
  uint64_t cur = snap_time_.load(std::memory_order_seq_cst);
  while (cur < ts && !snap_time_.compare_exchange_weak(cur, ts, std::memory_order_seq_cst)) {
  }
  // Wait until every active put with a timestamp at or below snapTime
  // completes: after this loop all writes the snapshot includes (ts <=
  // snapTime) are visible. In serializable mode no active timestamp can
  // equal snapTime (it was chosen below the Active minimum), so this is the
  // paper's "findMin() < snapTime" wait; in linearizable mode the <= matters
  // — a put in flight at exactly snapTime is part of the snapshot.
  SpinBackoff backoff;
  while (true) {
    uint64_t min_active = active_.FindMin();
    if (min_active == ActiveTimestampSet::kNone ||
        min_active > snap_time_.load(std::memory_order_seq_cst)) {
      break;
    }
    // Back off between scans: the puts we are waiting on need CPU to
    // complete, and on the 1-core host a hot loop here burns the scanner's
    // whole quantum against them.
    backoff.Pause();
  }
  return snap_time_.load(std::memory_order_seq_cst);
}

Status ClsmDb::ThrottleIfNeeded(bool* stalled_out) {
  // cLSM never blocks puts in normal operation; the waits here are (a) Cm
  // full while C'm is still being merged (heavy-compaction mode, §5.3),
  // (b) level 0 past the stop trigger — hard stall until compaction drains
  // it, and (c) level 0 past the slowdown trigger — a single bounded delay
  // per put, trading a little latency for not hitting (b) at all (the
  // gradual-backpressure policy of Luo & Carey's stability analysis).
  bool slowed_down = false;
  // Hard-stall bracketing for the listeners/kRollWait series: the loop
  // below re-checks the triggers every ~1ms, but observers see one
  // Begin/End pair spanning the whole blocked interval.
  bool stalled = false;
  StallReason stall_reason = StallReason::kMemtableFull;
  uint64_t stall_start_nanos = 0;
  auto end_stall = [&] {
    if (stalled) {
      const uint64_t nanos = MonotonicNanos() - stall_start_nanos;
      if (metrics_on_) {
        registry_.Record(OpMetric::kRollWait, nanos);
      }
      // Both hard-stall flavors (Cm full awaiting the roll/merge, and L0
      // past the stop trigger) attribute here: from the put's point of view
      // either way it waited for maintenance to make room.
      CLSM_PERF_TIMER_ADD(memtable_roll_wait_nanos, nanos);
      engine_.listeners().NotifyStallEnd(stall_reason, nanos / 1000);
      stalled = false;
    }
  };
  while (!shutting_down_.load(std::memory_order_acquire)) {
    MemTable* m = mem_.load(std::memory_order_acquire);
    const bool mem_full = m->ApproximateMemoryUsage() >= engine_.options().write_buffer_size;
    const int l0_files = engine_.NumLevelFiles(0);
    const bool l0_stuffed = l0_files >= engine_.options().l0_stop_trigger;
    if ((mem_full && imm_exists_.load(std::memory_order_acquire)) || l0_stuffed) {
      if (!stalled) {
        stalled = true;
        if (stalled_out != nullptr) {
          *stalled_out = true;
        }
        stall_reason = l0_stuffed ? StallReason::kL0Stop : StallReason::kMemtableFull;
        stall_start_nanos = MonotonicNanos();
        engine_.listeners().NotifyStallBegin(stall_reason);
      }
      stats_.Bump(stats_.throttle_waits);
      const auto t0 = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> l(maintenance_mutex_);
      if (!engine_.bg_error()->ok()) {
        // Maintenance cannot drain the pipeline; waiting would stall
        // writers forever. Surface the error to the caller (as LevelDB
        // does), cleared only by reopening the store. Even a soft error
        // (failed compaction) ends the stall: the stall exists because
        // the pipeline is not draining.
        l.unlock();
        end_stall();
        return engine_.bg_error()->status();
      }
      maintenance_cv_.notify_one();
      engine_.SignalCompaction();
      work_done_cv_.wait_for(l, std::chrono::milliseconds(1));
      l.unlock();
      stats_.Add(stats_.stall_micros,
                 std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
      continue;
    }
    end_stall();
    if (!slowed_down && l0_files >= engine_.options().l0_slowdown_trigger) {
      // Bounded slowdown: delay this put once by ~1ms so compaction gains
      // on the writers before the stop trigger is reached.
      slowed_down = true;
      if (stalled_out != nullptr) {
        *stalled_out = true;
      }
      stats_.Bump(stats_.slowdown_waits);
      engine_.SignalCompaction();
      engine_.listeners().NotifyStallBegin(StallReason::kL0Slowdown);
      const auto t0 = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const auto slow_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
      stats_.Add(stats_.slowdown_micros, slow_micros);
      CLSM_PERF_TIMER_ADD(l0_slowdown_sleep_nanos, static_cast<uint64_t>(slow_micros) * 1000);
      engine_.listeners().NotifyStallEnd(StallReason::kL0Slowdown,
                                         static_cast<uint64_t>(slow_micros));
      continue;  // re-check: L0 may have crossed the stop trigger meanwhile
    }
    if (mem_full) {
      // Ask the maintenance thread to roll; no need to wait.
      maintenance_cv_.notify_one();
    }
    break;
  }
  end_stall();
  return Status::OK();
}

void ClsmDb::FinishOp(DbOpType op, const Slice& key, uint32_t value_size, OpOutcome outcome,
                      uint64_t start_ticks, bool stalled) {
  // start_ticks == 0 means no attribution sink asked for timing at op
  // entry; there is nothing coherent to report.
  if (start_ticks == 0) {
    return;
  }
  const uint64_t total_nanos = LatencyClock::ToNanos(LatencyClock::Ticks() - start_ticks);
  PerfContext& ctx = tls_perf_context;
  if (ctx.timers_enabled()) {
    ctx.total_nanos = total_nanos;
  }
  if (!attributed_ops_) {
    return;
  }
  const uint64_t latency_micros = total_nanos / 1000;
  if (trace_ops_) {
    OperationInfo info;
    info.op = op;
    info.key = key;
    info.value_size = value_size;
    info.outcome = outcome;
    info.latency_micros = latency_micros;
    engine_.listeners().NotifyOperation(info);
  }
  if (slow_op_threshold_nanos_ != 0 && total_nanos >= slow_op_threshold_nanos_) {
    stats_.Bump(stats_.slow_ops_total);
    if (slow_op_limiter_.Admit(engine_.env()->NowMicros())) {
      // The record carries the PerfContext snapshot as-is; its `level`
      // field tells consumers whether the counters/timers were populated
      // for this op (at "off" they are not meaningful).
      SlowOpInfo info;
      info.op = op;
      info.key_prefix_hash = SlowOpKeyPrefixHash(key);
      info.latency_micros = latency_micros;
      info.perf = ctx;
      info.l0_files = engine_.NumLevelFiles(0);
      info.stalled = stalled;
      info.suppressed = slow_op_limiter_.suppressed();
      engine_.listeners().NotifySlowOperation(info);
      stats_.Bump(stats_.slow_ops_reported);
    }
  }
}

Status ClsmDb::PutInternal(const WriteOptions& options, ValueType type, const Slice& key,
                           const Slice& value) {
  stats_.Bump(type == kTypeValue ? stats_.puts_total : stats_.deletes_total);
  // Degraded read-only mode: a latched hard error means new writes can no
  // longer be made durable — fail them at the door (one lock-free load on
  // the happy path) instead of only when the pipeline backs up.
  if (engine_.bg_error()->writes_blocked()) {
    return engine_.bg_error()->status();
  }
  // Per-op attribution prologue: publish the perf level (resetting the
  // thread-local context) and take the entry timestamp once for all sinks
  // — latency histograms, PerfContext timers, slow-op logging, op tracing.
  PerfContextStartOp(perf_level_);
  const bool pt = tls_perf_context.timers_enabled();
  const bool timing = metrics_on_ || attributed_ops_ || pt;
  const DbOpType op = type == kTypeValue ? DbOpType::kPut : DbOpType::kDelete;
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  bool op_stalled = false;
  Status throttle_status = ThrottleIfNeeded(&op_stalled);
  if (!throttle_status.ok()) {
    FinishOp(op, key, static_cast<uint32_t>(value.size()), OpOutcome::kError, t0, op_stalled);
    return throttle_status;
  }
  // Phase boundaries: [t0, pt_a) throttle, [pt_a, t1) lock + getTS,
  // [t1, t2) memtable insert, [t2, t3) WAL append. The four segments are
  // contiguous, so their PerfContext timers sum to total_nanos (within
  // clock-read overhead) — the attribution invariant perf_context_test
  // checks.
  const uint64_t pt_a = pt ? LatencyClock::Ticks() : 0;

  // Algorithm 2, put.
  lock_.LockShared();
  SequenceNumber ts = GetTS();
  MemTable* mem = mem_.load(std::memory_order_acquire);
  const uint64_t t1 = (metrics_on_ || pt) ? LatencyClock::Ticks() : 0;
  mem->Add(ts, type, key, value);
  const uint64_t t2 = (metrics_on_ || pt) ? LatencyClock::Ticks() : 0;
  if (!engine_.options().disable_wal) {
    std::string record;
    EncodeWalRecord(&record, ts, type, key, value);
    AsyncLogger* logger = logger_.load(std::memory_order_acquire);
    if (options.sync || engine_.options().sync_logging) {
      Status s = logger->AddRecordSync(std::move(record));
      if (!s.ok()) {
        active_.Remove(ts);
        lock_.UnlockShared();
        FinishOp(op, key, static_cast<uint32_t>(value.size()), OpOutcome::kError, t0, op_stalled);
        return s;
      }
    } else {
      logger->AddRecordAsync(std::move(record));
    }
  }
  active_.Remove(ts);
  lock_.UnlockShared();
  if (metrics_on_ || pt) {
    const uint64_t t3 = LatencyClock::Ticks();
    if (metrics_on_) {
      registry_.Record(OpMetric::kMemInsert, LatencyClock::ToNanos(t2 - t1));
      registry_.Record(OpMetric::kWalAppend, LatencyClock::ToNanos(t3 - t2));
      registry_.Record(type == kTypeValue ? OpMetric::kPut : OpMetric::kDelete,
                       LatencyClock::ToNanos(t3 - t0));
    }
    if (pt) {
      PerfContext& ctx = tls_perf_context;
      ctx.throttle_nanos += LatencyClock::ToNanos(pt_a - t0);
      ctx.lock_getts_nanos += LatencyClock::ToNanos(t1 - pt_a);
      ctx.mem_insert_nanos += LatencyClock::ToNanos(t2 - t1);
      ctx.wal_append_nanos += LatencyClock::ToNanos(t3 - t2);
    }
  }
  FinishOp(op, key, static_cast<uint32_t>(value.size()), OpOutcome::kOk, t0, op_stalled);
  return Status::OK();
}

Status ClsmDb::Put(const WriteOptions& options, const Slice& key, const Slice& value) {
  return PutInternal(options, kTypeValue, key, value);
}

Status ClsmDb::Delete(const WriteOptions& options, const Slice& key) {
  return PutInternal(options, kTypeDeletion, key, Slice());
}

Status ClsmDb::Write(const WriteOptions& options, WriteBatch* updates) {
  stats_.Bump(stats_.batches_total);
  if (engine_.bg_error()->writes_blocked()) {
    return engine_.bg_error()->status();
  }
  PerfContextStartOp(perf_level_);
  const bool timing = metrics_on_ || attributed_ops_ || tls_perf_context.timers_enabled();
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  // Trace records carry the batch's total payload bytes in value_size (the
  // per-op key/value breakdown is not traced; replay skips kWrite records).
  // Summed in 64 bits — a >= 4 GiB batch used to wrap the accumulator and
  // attribute garbage sizes — and clamped only at the 32-bit trace-record
  // boundary.
  uint64_t batch_bytes = 0;
  for (const WriteBatch::Op& op : updates->ops()) {
    batch_bytes += op.key.size() + op.value.size();
  }
  const uint32_t traced_bytes =
      static_cast<uint32_t>(std::min<uint64_t>(batch_bytes, UINT32_MAX));
  bool op_stalled = false;
  Status throttle_status = ThrottleIfNeeded(&op_stalled);
  if (!throttle_status.ok()) {
    FinishOp(DbOpType::kWrite, Slice(), traced_bytes, OpOutcome::kError, t0, op_stalled);
    return throttle_status;
  }

  // Batches synchronize coarsely: exclusive mode excludes all puts and the
  // merge hooks, making the batch atomic with respect to snapshots (§4).
  lock_.LockExclusive();
  MemTable* mem = mem_.load(std::memory_order_acquire);
  AsyncLogger* logger = logger_.load(std::memory_order_acquire);
  SequenceNumber last_ts = 0;
  // The whole batch becomes one WAL record, so recovery replays it
  // all-or-nothing even if the crash tears the log tail.
  std::string record;
  for (const WriteBatch::Op& op : updates->ops()) {
    last_ts = time_counter_.IncAndGet();
    mem->Add(last_ts, op.type, op.key, op.value);
    if (!engine_.options().disable_wal) {
      EncodeWalRecord(&record, last_ts, op.type, op.key, op.value);
    }
  }
  Status s;
  if (!engine_.options().disable_wal && !record.empty()) {
    if (options.sync || engine_.options().sync_logging) {
      s = logger->AddRecordSync(std::move(record));
    } else {
      logger->AddRecordAsync(std::move(record));
    }
  }
  lock_.UnlockExclusive();
  FinishOp(DbOpType::kWrite, Slice(), traced_bytes, s.ok() ? OpOutcome::kOk : OpOutcome::kError,
           t0, op_stalled);
  return s;
}

Status ClsmDb::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  PerfContextStartOp(perf_level_);
  const bool pt = tls_perf_context.timers_enabled();
  const bool timing = metrics_on_ || attributed_ops_ || pt;
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  SequenceNumber seq = kMaxSequenceNumber;
  if (options.snapshot != nullptr) {
    seq = static_cast<const SnapshotImpl*>(options.snapshot)->timestamp();
  }
  LookupKey lkey(key, seq);

  // Algorithm 1, get: read the component pointers without any blocking.
  // The epoch guard covers only the pointer loads + refcount bumps; the
  // (potentially disk-bound) searches run outside any critical section.
  MemTable* mem;
  MemTable* imm;
  {
    EpochGuard guard(*engine_.epochs());
    mem = mem_.load(std::memory_order_acquire);
    mem->Ref();
    imm = imm_.load(std::memory_order_acquire);
    if (imm != nullptr) {
      imm->Ref();
    }
  }

  stats_.Bump(stats_.gets_total);
  // Attribution split: mem_search covers the Cm/C'm probes, disk_search the
  // engine (table) lookup; for memtable hits the whole search is mem_search.
  const uint64_t search_t0 = pt ? LatencyClock::Ticks() : 0;
  Status s;
  if (mem->Get(lkey, value, &s)) {
    stats_.Bump(stats_.gets_from_mem);
    if (pt) {
      tls_perf_context.mem_search_nanos += LatencyClock::ToNanos(LatencyClock::Ticks() - search_t0);
    }
  } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
    stats_.Bump(stats_.gets_from_imm);
    if (pt) {
      tls_perf_context.mem_search_nanos += LatencyClock::ToNanos(LatencyClock::Ticks() - search_t0);
    }
  } else {
    const uint64_t disk_t0 = pt ? LatencyClock::Ticks() : 0;
    if (pt) {
      tls_perf_context.mem_search_nanos += LatencyClock::ToNanos(disk_t0 - search_t0);
    }
    s = engine_.Get(options, lkey, value);
    stats_.Bump(stats_.gets_from_disk);
    if (pt) {
      tls_perf_context.disk_search_nanos += LatencyClock::ToNanos(LatencyClock::Ticks() - disk_t0);
    }
  }

  mem->Unref();
  if (imm != nullptr) {
    imm->Unref();
  }
  if (metrics_on_) {
    registry_.Record(OpMetric::kGet, LatencyClock::ToNanos(LatencyClock::Ticks() - t0));
  }
  FinishOp(DbOpType::kGet, key, s.ok() ? static_cast<uint32_t>(value->size()) : 0,
           s.ok() ? OpOutcome::kOk : (s.IsNotFound() ? OpOutcome::kNotFound : OpOutcome::kError),
           t0, /*stalled=*/false);
  return s;
}

namespace {
struct IterState {
  MemTable* mem;
  MemTable* imm;
  Version* version;
};

void CleanupIterState(void* arg1, void* arg2) {
  IterState* state = reinterpret_cast<IterState*>(arg1);
  state->mem->Unref();
  if (state->imm != nullptr) {
    state->imm->Unref();
  }
  if (state->version != nullptr) {
    state->version->Unref();
  }
  delete state;
}
}  // namespace

Iterator* ClsmDb::NewIterator(const ReadOptions& options) {
  stats_.Bump(stats_.iterators_created);
  SequenceNumber seq;
  if (options.snapshot != nullptr) {
    seq = static_cast<const SnapshotImpl*>(options.snapshot)->timestamp();
  } else {
    // Fresh serializable snapshot (not installed: the iterator protects its
    // own data by pinning the components; installation is only needed for
    // handles that outlive this call — see GetSnapshot). Acquired under the
    // shared lock, like getSnap, so the timestamp cannot land in the middle
    // of an exclusive-mode atomic batch.
    lock_.LockShared();
    seq = AcquireScanTimestamp();
    lock_.UnlockShared();
  }

  IterState* state = new IterState{nullptr, nullptr, nullptr};
  std::vector<Iterator*> children;
  {
    EpochGuard guard(*engine_.epochs());
    state->mem = mem_.load(std::memory_order_acquire);
    state->mem->Ref();
    state->imm = imm_.load(std::memory_order_acquire);
    if (state->imm != nullptr) {
      state->imm->Ref();
    }
  }
  children.push_back(state->mem->NewIterator());
  if (state->imm != nullptr) {
    children.push_back(state->imm->NewIterator());
  }
  state->version = engine_.AddVersionIterators(options, &children);

  Iterator* internal =
      NewMergingIterator(engine_.icmp(), children.data(), static_cast<int>(children.size()));
  internal->RegisterCleanup(&CleanupIterState, state, nullptr);
  return NewLatencyRecordingIterator(NewDBIterator(engine_.icmp()->user_comparator(), internal, seq),
                                     metrics_on_ ? &registry_ : nullptr);
}

const Snapshot* ClsmDb::GetSnapshot() {
  // Algorithm 2, getSnap. The shared lock excludes the beforeMerge hook, so
  // installing the handle cannot race with the merge observing the list.
  stats_.Bump(stats_.snapshots_acquired);
  lock_.LockShared();
  SequenceNumber ts = AcquireScanTimestamp();
  const Snapshot* s = snapshots_.New(ts);
  lock_.UnlockShared();
  return s;
}

void ClsmDb::ReleaseSnapshot(const Snapshot* snapshot) { snapshots_.Release(snapshot); }

bool ClsmDb::GetLatest(const Slice& key, std::string* value, ValueType* type,
                       SequenceNumber* seq) {
  // Caller holds the shared lock, so Pm/P'm are stable — no epoch needed.
  LookupKey lkey(key, kMaxSequenceNumber);
  Status s;
  *seq = 0;
  MemTable* mem = mem_.load(std::memory_order_acquire);
  if (mem->Get(lkey, value, &s, seq)) {
    *type = s.ok() ? kTypeValue : kTypeDeletion;
    return true;
  }
  MemTable* imm = imm_.load(std::memory_order_acquire);
  if (imm != nullptr && imm->Get(lkey, value, &s, seq)) {
    *type = s.ok() ? kTypeValue : kTypeDeletion;
    return true;
  }
  ReadOptions ro;
  s = engine_.Get(ro, lkey, value, seq);
  if (s.ok()) {
    *type = kTypeValue;
    return true;
  }
  if (s.IsNotFound() && *seq != 0) {
    *type = kTypeDeletion;
    return true;
  }
  return false;
}

Status ClsmDb::ReadModifyWrite(const WriteOptions& options, const Slice& key,
                               const RmwFunction& f, bool* performed) {
  if (performed != nullptr) {
    *performed = false;
  }
  stats_.Bump(stats_.rmw_total);
  if (engine_.bg_error()->writes_blocked()) {
    return engine_.bg_error()->status();
  }
  PerfContextStartOp(perf_level_);
  const bool timing = metrics_on_ || attributed_ops_ || tls_perf_context.timers_enabled();
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  bool op_stalled = false;
  Status throttle_status = ThrottleIfNeeded(&op_stalled);
  if (!throttle_status.ok()) {
    FinishOp(DbOpType::kRmw, key, 0, OpOutcome::kError, t0, op_stalled);
    return throttle_status;
  }

  // Algorithm 3: optimistic concurrency control. Holding the lock in shared
  // mode keeps the component pointers stable for the whole read-validate-
  // write attempt; conflicts with other writers are detected at the skip
  // list's bottom level and resolved by restarting with a fresh timestamp.
  lock_.LockShared();
  Status result;
  bool did_write = false;
  uint32_t written_bytes = 0;
  while (true) {
    std::string current;
    ValueType type = kTypeDeletion;
    SequenceNumber ts_read = 0;
    const bool found = GetLatest(key, &current, &type, &ts_read);

    std::optional<Slice> current_opt;
    if (found && type == kTypeValue) {
      current_opt = Slice(current);
    }
    std::optional<std::string> next = f(current_opt);
    if (!next.has_value()) {
      // User chose not to write; linearizes at the read.
      stats_.Bump(stats_.rmw_noop);
      break;
    }

    SequenceNumber tsn = GetTS();
    MemTable* mem = mem_.load(std::memory_order_acquire);
    if (mem->AddIfNoConflict(tsn, kTypeValue, key, *next, ts_read)) {
      if (!engine_.options().disable_wal) {
        std::string record;
        EncodeWalRecord(&record, tsn, kTypeValue, key, *next);
        AsyncLogger* logger = logger_.load(std::memory_order_acquire);
        if (options.sync || engine_.options().sync_logging) {
          result = logger->AddRecordSync(std::move(record));
        } else {
          logger->AddRecordAsync(std::move(record));
        }
      }
      active_.Remove(tsn);
      did_write = true;
      written_bytes = static_cast<uint32_t>(next->size());
      if (performed != nullptr) {
        *performed = true;
      }
      break;
    }
    // Conflict (Algorithm 3 lines 6/8/12): some concurrent operation
    // interfered between our read and our update. Retry; each retry implies
    // another operation made progress, preserving lock-freedom.
    stats_.Bump(stats_.rmw_conflicts);
    active_.Remove(tsn);
  }
  lock_.UnlockShared();
  if (metrics_on_) {
    registry_.Record(OpMetric::kRmw, LatencyClock::ToNanos(LatencyClock::Ticks() - t0));
  }
  // Trace outcome doubles as the replay decision: kOk means the user
  // function wrote (replay re-applies it), kNotFound means it declined.
  FinishOp(DbOpType::kRmw, key, written_bytes,
           !result.ok() ? OpOutcome::kError : (did_write ? OpOutcome::kOk : OpOutcome::kNotFound),
           t0, op_stalled);
  return result;
}

SequenceNumber ClsmDb::SmallestLiveSnapshot() {
  // Obsolete-version GC bound (§3.2.1): versions at or below the oldest
  // installed snapshot that are shadowed by newer ones may be discarded.
  return snapshots_.OldestTimestamp(time_counter_.Get());
}

void ClsmDb::RollMemTable() {
  // beforeMerge (Algorithm 1/2): prepare the new component and WAL outside
  // the exclusive section so puts are blocked only for the pointer swaps.
  std::unique_ptr<AsyncLogger> fresh_logger;
  uint64_t fresh_log = 0;
  if (!engine_.options().disable_wal) {
    Status s = engine_.NewLog(&fresh_log, &fresh_logger);
    if (!s.ok()) {
      engine_.RecordBackgroundError(BgErrorReason::kMemtableRoll, s);
      return;
    }
  } else {
    fresh_log = engine_.versions()->NewFileNumber();
  }
  MemTable* fresh_mem = new MemTable(*engine_.icmp());

  stats_.Bump(stats_.memtable_rolls);
  lock_.LockExclusive();
  MemTable* old_mem = mem_.load(std::memory_order_relaxed);
  imm_.store(old_mem, std::memory_order_release);   // P'm <- Pm
  mem_.store(fresh_mem, std::memory_order_release); // Pm <- new component
  AsyncLogger* old_logger = logger_.exchange(fresh_logger.release(), std::memory_order_acq_rel);
  imm_log_number_ = log_number_;
  log_number_ = fresh_log;
  imm_exists_.store(true, std::memory_order_release);
  lock_.UnlockExclusive();

  imm_logger_.reset(old_logger);
  engine_.listeners().NotifyMemtableRoll(old_mem->ApproximateMemoryUsage());
}

void ClsmDb::FlushImmutable() {
  // Once a hard error is latched the WAL/flush pipeline can no longer be
  // trusted: leave C'm (and its WAL) in place — reads keep serving it, and
  // the next open replays the WAL.
  if (engine_.bg_error()->writes_blocked()) {
    return;
  }
  MemTable* imm = imm_.load(std::memory_order_acquire);
  assert(imm != nullptr);

  // The flush edit persists the current timestamp counter: recovery
  // restores it as max(manifest last-sequence, replayed WAL timestamps).
  engine_.versions()->SetLastSequence(
      std::max(engine_.versions()->LastSequence(), time_counter_.Get()));

  // Every record of the immutable component must be durably in its WAL
  // before the table build starts: Close() drains the queue, syncs and
  // closes the file — and REPORTS failure. A failed final sync means acked
  // synchronous writes may exist only in this WAL, so the flush must abort
  // before the table build can retire the log (the pre-PR code reset the
  // logger blind and went on to delete the WAL: fsyncgate-style data loss).
  if (imm_logger_ != nullptr) {
    Status wal_status = imm_logger_->Close();
    imm_logger_.reset();
    if (!wal_status.ok()) {
      engine_.RecordBackgroundError(BgErrorReason::kWalSync, wal_status);
      return;
    }
  }
  stats_.Bump(stats_.flushes);

  Status s = engine_.FlushMemTable(imm, log_number_);
  if (!s.ok()) {
    // FlushMemTable latched the error; C'm stays resident for reads.
    return;
  }

  // afterMerge: Pd was already switched by the version install inside
  // FlushMemTable; now clear P'm and retire the old component once all
  // concurrent readers are done with it.
  lock_.LockExclusive();
  imm_.store(nullptr, std::memory_order_release);
  imm_exists_.store(false, std::memory_order_release);
  lock_.UnlockExclusive();

  engine_.epochs()->Synchronize();
  imm->Unref();

  engine_.RemoveObsoleteFiles(log_number_);
  // The new level-0 file may have made a compaction pickable.
  engine_.SignalCompaction();
}

void ClsmDb::MaintenanceLoop() {
  // Rolls and flushes only — this thread is §5.3's reserved flush thread.
  // Compactions are picked and dispatched by the engine's worker pool
  // (StartCompactionScheduler), so a long merge never delays the
  // Cm -> C'm roll. Version-set mutation stays serialized because
  // LogAndApply itself is internally locked.
  while (true) {
    bool need_roll = false;
    bool need_flush = false;
    {
      std::unique_lock<std::mutex> l(maintenance_mutex_);
      while (!shutting_down_.load(std::memory_order_acquire)) {
        // With a hard error latched there is nothing useful to do: rolling
        // would orphan more WALs and flushing would retire a log whose
        // durability is unknown. Park until shutdown (or reopen).
        const bool blocked = engine_.bg_error()->writes_blocked();
        MemTable* mem = mem_.load(std::memory_order_acquire);
        need_flush = !blocked && imm_exists_.load(std::memory_order_acquire);
        need_roll = !blocked && !need_flush && mem != nullptr &&
                    mem->ApproximateMemoryUsage() >= engine_.options().write_buffer_size;
        if (need_roll || need_flush) {
          break;
        }
        maintenance_cv_.wait_for(l, std::chrono::milliseconds(2));
      }
    }
    if (shutting_down_.load(std::memory_order_acquire)) {
      // Final drain: flush nothing (WAL provides durability), just exit.
      return;
    }
    if (need_roll) {
      RollMemTable();
    }
    if (imm_exists_.load(std::memory_order_acquire) &&
        !engine_.bg_error()->writes_blocked()) {
      FlushImmutable();
    }
    work_done_cv_.notify_all();
  }
}

void ClsmDb::WaitForMaintenance() {
  while (true) {
    bool busy = imm_exists_.load(std::memory_order_acquire) || !engine_.CompactionsIdle();
    if (!busy) {
      // Pin the memtable while probing its size: the maintenance thread
      // frees rolled memtables only after an epoch Synchronize.
      EpochGuard guard(*engine_.epochs());
      MemTable* mem = mem_.load(std::memory_order_acquire);
      busy = mem != nullptr && mem->ApproximateMemoryUsage() >= engine_.options().write_buffer_size;
    }
    if (!busy) {
      return;
    }
    std::unique_lock<std::mutex> l(maintenance_mutex_);
    if (!engine_.bg_error()->ok()) {
      return;  // maintenance is wedged; nothing further to wait for
    }
    maintenance_cv_.notify_one();
    engine_.SignalCompaction();
    work_done_cv_.wait_for(l, std::chrono::milliseconds(1));
  }
}

std::string ClsmDb::GetProperty(const Slice& property) {
  if (property == Slice("clsm.levels")) {
    return engine_.versions()->LevelSummary();
  }
  if (property == Slice("clsm.mem-usage")) {
    MemTable* mem = mem_.load(std::memory_order_acquire);
    return std::to_string(mem != nullptr ? mem->ApproximateMemoryUsage() : 0);
  }
  if (property == Slice("clsm.last-ts")) {
    return std::to_string(time_counter_.Get());
  }
  if (property == Slice("clsm.stats")) {
    // Compactions are counted by the engine's scheduler; mirror the total
    // into the legacy counter so the "maintenance:" line stays truthful.
    stats_.compactions.store(engine_.compaction_stats()->TotalCompactions(),
                             std::memory_order_relaxed);
    return stats_.ToString() + engine_.compaction_stats()->ToString();
  }
  if (property == Slice("clsm.stats.json")) {
    stats_.compactions.store(engine_.compaction_stats()->TotalCompactions(),
                             std::memory_order_relaxed);
    StatsJsonSource src;
    src.db = Name();
    src.counters = &stats_;
    src.registry = &registry_;
    src.engine = &engine_;
    src.active_set = &active_;
    return BuildStatsJson(src);
  }
  if (property == Slice("clsm.perf.json")) {
    // The calling thread's per-op attribution context: the last operation
    // this thread ran against any DB with perf_level enabled.
    return tls_perf_context.ToJson();
  }
  if (property == Slice("clsm.stats.reset")) {
    ResetStats();
    return "OK";
  }
  if (property == Slice("clsm.stall-micros")) {
    return std::to_string(stats_.TotalStallMicros());
  }
  if (property == Slice("clsm.compaction-overlaps")) {
    return std::to_string(engine_.versions()->InFlightOverlapViolations());
  }
  if (property == Slice("clsm.compactions-inflight")) {
    return std::to_string(engine_.versions()->NumInFlightCompactions());
  }
  if (property == Slice("clsm.background-error")) {
    return engine_.bg_error()->ToString();
  }
  if (property == Slice("clsm.bg-error")) {
    // Baseline-compatible spelling: just the status string.
    return engine_.bg_error()->status().ToString();
  }
  return std::string();
}

void ClsmDb::ResetStats() {
  stats_.Reset();
  registry_.Reset();
  slow_op_limiter_.Reset();
}

}  // namespace clsm
