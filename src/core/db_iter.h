// User-facing iterator: turns a merged internal-key iterator (memtables +
// disk version) into a snapshot view — for each user key, the newest
// version with timestamp <= the snapshot timestamp; deletion markers hide
// older versions (the next-operation filtering of §3.2.1).
#ifndef CLSM_CORE_DB_ITER_H_
#define CLSM_CORE_DB_ITER_H_

#include "src/lsm/dbformat.h"
#include "src/table/iterator.h"

namespace clsm {

// Takes ownership of internal_iter. The returned iterator yields user keys
// and values as of `sequence`.
Iterator* NewDBIterator(const Comparator* user_comparator, Iterator* internal_iter,
                        SequenceNumber sequence);

}  // namespace clsm

#endif  // CLSM_CORE_DB_ITER_H_
