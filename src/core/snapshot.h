// Snapshot handles and the active-snapshot list (paper §3.2.1). A snapshot
// is just a timestamp; the list lets the merge process compute the maximal
// timestamp below which obsolete versions may be discarded.
#ifndef CLSM_CORE_SNAPSHOT_H_
#define CLSM_CORE_SNAPSHOT_H_

#include <cassert>
#include <mutex>

#include "src/core/db.h"
#include "src/lsm/dbformat.h"

namespace clsm {

class SnapshotList;

class SnapshotImpl final : public Snapshot {
 public:
  explicit SnapshotImpl(SequenceNumber ts) : ts_(ts) {}

  SequenceNumber timestamp() const { return ts_; }

 private:
  friend class SnapshotList;
  ~SnapshotImpl() override = default;

  const SequenceNumber ts_;
  SnapshotImpl* prev_ = nullptr;
  SnapshotImpl* next_ = nullptr;
};

// Doubly-linked list of installed snapshots, oldest first. Internally
// synchronized: getSnap installs under the DB's shared lock, beforeMerge
// queries under the exclusive lock, so the list itself still needs its own
// (tiny) mutex to serialize concurrent getSnap calls.
class SnapshotList {
 public:
  SnapshotList() {
    head_.prev_ = &head_;
    head_.next_ = &head_;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> l(mutex_);
    return head_.next_ == &head_;
  }

  // Oldest installed timestamp; fallback if none installed.
  SequenceNumber OldestTimestamp(SequenceNumber fallback) const {
    std::lock_guard<std::mutex> l(mutex_);
    if (head_.next_ == &head_) {
      return fallback;
    }
    return head_.next_->ts_;
  }

  const SnapshotImpl* New(SequenceNumber ts) {
    std::lock_guard<std::mutex> l(mutex_);
    // Timestamps are monotone, so appending at the tail keeps order.
    SnapshotImpl* s = new SnapshotImpl(ts);
    s->next_ = &head_;
    s->prev_ = head_.prev_;
    s->prev_->next_ = s;
    s->next_->prev_ = s;
    return s;
  }

  void Release(const Snapshot* snapshot) {
    std::lock_guard<std::mutex> l(mutex_);
    const SnapshotImpl* s = static_cast<const SnapshotImpl*>(snapshot);
    SnapshotImpl* mutable_s = const_cast<SnapshotImpl*>(s);
    mutable_s->prev_->next_ = mutable_s->next_;
    mutable_s->next_->prev_ = mutable_s->prev_;
    delete mutable_s;
  }

  ~SnapshotList() {
    // Unreleased snapshots are a caller bug, but do not leak them.
    std::lock_guard<std::mutex> l(mutex_);
    SnapshotImpl* s = head_.next_;
    while (s != &head_) {
      SnapshotImpl* next = s->next_;
      delete s;
      s = next;
    }
  }

 private:
  mutable std::mutex mutex_;
  SnapshotImpl head_{0};
};

}  // namespace clsm

#endif  // CLSM_CORE_SNAPSHOT_H_
