// Lightweight operation counters for observability and ablation studies.
// All counters are relaxed atomics bumped on hot paths; reading them is
// racy-by-design (monitoring data). Exposed via DB::GetProperty("clsm.stats").
#ifndef CLSM_CORE_STATS_H_
#define CLSM_CORE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace clsm {

class DbStats {
 public:
  // --- read path ---
  std::atomic<uint64_t> gets_total{0};
  std::atomic<uint64_t> gets_from_mem{0};   // served by Cm
  std::atomic<uint64_t> gets_from_imm{0};   // served by C'm
  std::atomic<uint64_t> gets_from_disk{0};  // served by Cd

  // --- write path ---
  std::atomic<uint64_t> puts_total{0};
  std::atomic<uint64_t> deletes_total{0};
  std::atomic<uint64_t> batches_total{0};

  // --- RMW (Algorithm 3) ---
  std::atomic<uint64_t> rmw_total{0};
  std::atomic<uint64_t> rmw_conflicts{0};  // retries due to detected conflicts
  std::atomic<uint64_t> rmw_noop{0};       // user function returned nullopt

  // --- snapshots / scans ---
  std::atomic<uint64_t> snapshots_acquired{0};
  std::atomic<uint64_t> iterators_created{0};
  std::atomic<uint64_t> getts_rollbacks{0};  // getTS retried (ts <= snapTime)

  // --- maintenance ---
  std::atomic<uint64_t> memtable_rolls{0};
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> throttle_waits{0};  // put delayed by backpressure

  void Bump(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  // Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace clsm

#endif  // CLSM_CORE_STATS_H_
