// Lightweight operation counters for observability and ablation studies.
// All counters are relaxed atomics bumped on hot paths; reading them is
// racy-by-design (monitoring data). Exposed via DB::GetProperty("clsm.stats").
#ifndef CLSM_CORE_STATS_H_
#define CLSM_CORE_STATS_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>

namespace clsm {

// Per-level compaction accounting kept by the storage engine's compaction
// scheduler. Sized for the deepest supported tree (kNumLevels <= kMaxLevels
// is static_asserted where the two meet).
class CompactionStats {
 public:
  static constexpr int kMaxLevels = 8;

  struct LevelStats {
    std::atomic<uint64_t> compactions{0};    // jobs whose inputs start here
    std::atomic<uint64_t> trivial_moves{0};  // of which: pure file moves
    std::atomic<uint64_t> bytes_read{0};     // input bytes (both levels)
    std::atomic<uint64_t> bytes_written{0};  // output bytes
    std::atomic<uint64_t> micros{0};         // wall time spent compacting
  };

  LevelStats& level(int l) { return levels_[CheckLevel(l)]; }
  const LevelStats& level(int l) const { return levels_[CheckLevel(l)]; }

  uint64_t TotalCompactions() const {
    uint64_t n = 0;
    for (const LevelStats& ls : levels_) {
      n += ls.compactions.load(std::memory_order_relaxed);
    }
    return n;
  }

  uint64_t TotalBytesWritten() const {
    uint64_t n = 0;
    for (const LevelStats& ls : levels_) {
      n += ls.bytes_written.load(std::memory_order_relaxed);
    }
    return n;
  }

  // --- flush (C'm -> level 0) accounting, kept here so write-amplification
  // (flush + compaction writes vs flushed user bytes) derives from one
  // struct ---
  std::atomic<uint64_t> flush_count{0};
  std::atomic<uint64_t> flush_bytes_written{0};  // level-0 output bytes
  std::atomic<uint64_t> flush_micros{0};

  // (flush + compaction bytes written) / flushed bytes; 0 until the first
  // flush lands. The classic estimate of how many times the store rewrites
  // each ingested byte.
  double EstimatedWriteAmp() const {
    const uint64_t flushed = flush_bytes_written.load(std::memory_order_relaxed);
    if (flushed == 0) {
      return 0.0;
    }
    return static_cast<double>(flushed + TotalBytesWritten()) / static_cast<double>(flushed);
  }

  // Multi-line per-level dump (levels with no activity are omitted).
  std::string ToString() const;

 private:
  // An out-of-range level would silently corrupt the adjacent counters;
  // assert in debug builds and clamp to the deepest slot in release so the
  // damage is at worst a misattributed count.
  static int CheckLevel(int l) {
    assert(l >= 0 && l < kMaxLevels);
    return l < 0 ? 0 : (l >= kMaxLevels ? kMaxLevels - 1 : l);
  }

  LevelStats levels_[kMaxLevels];
};

class DbStats {
 public:
  // --- read path ---
  std::atomic<uint64_t> gets_total{0};
  std::atomic<uint64_t> gets_from_mem{0};   // served by Cm
  std::atomic<uint64_t> gets_from_imm{0};   // served by C'm
  std::atomic<uint64_t> gets_from_disk{0};  // served by Cd

  // --- write path ---
  std::atomic<uint64_t> puts_total{0};
  std::atomic<uint64_t> deletes_total{0};
  std::atomic<uint64_t> batches_total{0};

  // --- RMW (Algorithm 3) ---
  std::atomic<uint64_t> rmw_total{0};
  std::atomic<uint64_t> rmw_conflicts{0};  // retries due to detected conflicts
  std::atomic<uint64_t> rmw_noop{0};       // user function returned nullopt

  // --- snapshots / scans ---
  std::atomic<uint64_t> snapshots_acquired{0};
  std::atomic<uint64_t> iterators_created{0};
  std::atomic<uint64_t> getts_rollbacks{0};  // getTS retried (ts <= snapTime)

  // --- maintenance ---
  std::atomic<uint64_t> memtable_rolls{0};
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> throttle_waits{0};  // put stalled by backpressure

  // --- write stalls (L0 backpressure in the put path) ---
  std::atomic<uint64_t> slowdown_waits{0};   // bounded 1ms slowdown sleeps
  std::atomic<uint64_t> slowdown_micros{0};  // time spent in slowdown sleeps
  std::atomic<uint64_t> stall_micros{0};     // time spent in hard stop waits

  // --- slow-op structured logging (Options::slow_op_threshold_micros) ---
  std::atomic<uint64_t> slow_ops_total{0};     // ops over the threshold
  std::atomic<uint64_t> slow_ops_reported{0};  // of which dispatched to listeners

  uint64_t TotalStallMicros() const {
    return slowdown_micros.load(std::memory_order_relaxed) +
           stall_micros.load(std::memory_order_relaxed);
  }

  // Zero every counter (the DB::ResetStats interval-snapshot path). Relaxed
  // stores; concurrent bumps may survive the sweep, which is acceptable for
  // monitoring data.
  void Reset();

  void Bump(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }
  void Add(std::atomic<uint64_t>& counter, uint64_t delta) {
    counter.fetch_add(delta, std::memory_order_relaxed);
  }

  // Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace clsm

#endif  // CLSM_CORE_STATS_H_
