#include "src/core/write_batch.h"

namespace clsm {

void WriteBatch::Put(const Slice& key, const Slice& value) {
  ops_.push_back(Op{kTypeValue, key.ToString(), value.ToString()});
}

void WriteBatch::Delete(const Slice& key) {
  ops_.push_back(Op{kTypeDeletion, key.ToString(), std::string()});
}

void WriteBatch::Clear() { ops_.clear(); }

size_t WriteBatch::ApproximateSize() const {
  size_t total = 0;
  for (const Op& op : ops_) {
    total += sizeof(Op) + op.key.size() + op.value.size();
  }
  return total;
}

}  // namespace clsm
