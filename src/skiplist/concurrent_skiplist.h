// Lock-free concurrent skip list — the in-memory component Cm (paper §3.3).
//
// Properties the cLSM algorithm relies on:
//  * insert/find are thread-safe, non-blocking and atomic (§3.1);
//  * iterators are weakly consistent: an element present for the whole
//    duration of a scan is returned by the scan (§3.2) — guaranteed here
//    because nodes are never unlinked and next pointers only ever change by
//    splicing in new nodes;
//  * the bottom linked list exposes a CAS insertion point, enabling the
//    optimistic-concurrency-control read-modify-write of Algorithm 3 via
//    InsertIfNoConflict().
//
// Keys are opaque byte pointers ordered by a three-way comparator, as in
// LevelDB; entries live in a ConcurrentArena and die with the list.
#ifndef CLSM_SKIPLIST_CONCURRENT_SKIPLIST_H_
#define CLSM_SKIPLIST_CONCURRENT_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "src/arena/arena.h"
#include "src/obs/perf_context.h"
#include "src/util/random.h"

namespace clsm {

template <typename Key, class Comparator>
class ConcurrentSkipList {
 private:
  struct Node;

 public:
  // Comparator must be copyable and provide int operator()(Key a, Key b).
  ConcurrentSkipList(Comparator cmp, ConcurrentArena* arena);

  ConcurrentSkipList(const ConcurrentSkipList&) = delete;
  ConcurrentSkipList& operator=(const ConcurrentSkipList&) = delete;

  // Insert key. Thread-safe, lock-free. key must not compare equal to any
  // key already in the list (internal keys carry unique timestamps).
  void Insert(const Key& key);

  // Algorithm 3 lines 5-12: locate the bottom-level insertion point for key
  // and CAS the node in unless a conflict is detected. The predicate sees
  // both neighbors of the insertion point — the predecessor (line 6 detects
  // a newer version of the same user key, which sorts *before* the new node
  // under newest-first internal-key order) and the successor (line 8).
  // Returns false — without inserting — if the predicate reports a conflict
  // or if the CAS loses a race (line 12's failed CAS); the caller treats
  // both as a conflict and restarts with a fresh timestamp.
  // ConflictFn: bool(const Key& prev_key, bool prev_is_head,
  //                  const Key& succ_key, bool succ_at_end).
  template <typename ConflictFn>
  bool InsertIfNoConflict(const Key& key, ConflictFn conflict);

  bool Contains(const Key& key) const;

  // Approximate number of entries (maintained with relaxed increments).
  size_t ApproxCount() const { return count_.load(std::memory_order_relaxed); }

  // Weakly consistent iterator over the bottom list.
  class Iterator {
   public:
    explicit Iterator(const ConcurrentSkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    // Retreats to the previous entry; O(log n) re-descent since nodes hold
    // no back pointers.
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }

    void Seek(const Key& target) { node_ = list_->FindGreaterOrEqual(target, nullptr); }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }

   private:
    const ConcurrentSkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  Node* NewNode(const Key& key, int height);
  int RandomHeight();

  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }
  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return (n != nullptr) && (compare_(n->key, key) < 0);
  }

  // Returns first node >= key; fills prev[0..max_height-1] when non-null.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const;
  Node* FindLessThan(const Key& key) const;
  Node* FindLast() const;

  int GetMaxHeight() const { return max_height_.load(std::memory_order_acquire); }

  // Links node x (of height `height`) into levels [from_level, height) with
  // CAS, recomputing splices on contention.
  void LinkUpperLevels(Node* x, int height, int from_level);

  Comparator const compare_;
  ConcurrentArena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  std::atomic<size_t> count_;
};

template <typename Key, class Comparator>
struct ConcurrentSkipList<Key, Comparator>::Node {
  explicit Node(const Key& k) : key(k) {}

  Key const key;

  Node* Next(int n) {
    assert(n >= 0);
    return next_[n].load(std::memory_order_acquire);
  }
  void SetNext(int n, Node* x) {
    assert(n >= 0);
    next_[n].store(x, std::memory_order_release);
  }
  void NoBarrierSetNext(int n, Node* x) { next_[n].store(x, std::memory_order_relaxed); }
  bool CasNext(int n, Node* expected, Node* x) {
    return next_[n].compare_exchange_strong(expected, x, std::memory_order_acq_rel,
                                            std::memory_order_acquire);
  }

 private:
  // next_[0] is the lowest level link; the array really has the node's
  // height entries (allocated inline by NewNode).
  std::atomic<Node*> next_[1];
};

template <typename Key, class Comparator>
ConcurrentSkipList<Key, Comparator>::ConcurrentSkipList(Comparator cmp, ConcurrentArena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(Key() /* any key will do */, kMaxHeight)),
      max_height_(1),
      count_(0) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
typename ConcurrentSkipList<Key, Comparator>::Node*
ConcurrentSkipList<Key, Comparator>::NewNode(const Key& key, int height) {
  char* mem = arena_->AllocateAligned(sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (mem) Node(key);
}

template <typename Key, class Comparator>
int ConcurrentSkipList<Key, Comparator>::RandomHeight() {
  // Thread-local generator keeps height choice contention-free.
  thread_local Random rnd(0xdeadbeef ^ static_cast<uint32_t>(
                                           reinterpret_cast<uintptr_t>(&rnd) >> 4));
  int height = 1;
  while (height < kMaxHeight && rnd.OneIn(kBranching)) {
    height++;
  }
  assert(height > 0);
  assert(height <= kMaxHeight);
  return height;
}

template <typename Key, class Comparator>
typename ConcurrentSkipList<Key, Comparator>::Node*
ConcurrentSkipList<Key, Comparator>::FindGreaterOrEqual(const Key& key, Node** prev) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  // Per-op attribution: count nodes examined (one per loop iteration —
  // each iteration inspects exactly one successor). Accumulated locally
  // and published once so the search loop itself stays probe-free.
  uint64_t nodes_touched = 0;
  while (true) {
    Node* next = x->Next(level);
    nodes_touched++;
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      if (prev != nullptr) {
        prev[level] = x;
      }
      if (level == 0) {
        CLSM_PERF_COUNT_ADD(skiplist_search_nodes, nodes_touched);
        return next;
      }
      level--;
    }
  }
}

template <typename Key, class Comparator>
typename ConcurrentSkipList<Key, Comparator>::Node*
ConcurrentSkipList<Key, Comparator>::FindLessThan(const Key& key) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next == nullptr || compare_(next->key, key) >= 0) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
typename ConcurrentSkipList<Key, Comparator>::Node*
ConcurrentSkipList<Key, Comparator>::FindLast() const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next == nullptr) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
void ConcurrentSkipList<Key, Comparator>::LinkUpperLevels(Node* x, int height, int from_level) {
  for (int level = from_level; level < height; level++) {
    while (true) {
      // Recompute the splice at this level; concurrent inserts may have
      // changed it.
      Node* prev = head_;
      Node* next = prev->Next(level);
      while (KeyIsAfterNode(x->key, next)) {
        prev = next;
        next = prev->Next(level);
      }
      x->NoBarrierSetNext(level, next);
      if (prev->CasNext(level, next, x)) {
        break;
      }
    }
  }
}

template <typename Key, class Comparator>
void ConcurrentSkipList<Key, Comparator>::Insert(const Key& key) {
  int height = RandomHeight();
  // Raise max height first (benign race: a concurrent raise just wins).
  int max_h = GetMaxHeight();
  while (height > max_h) {
    if (max_height_.compare_exchange_weak(max_h, height, std::memory_order_acq_rel)) {
      break;
    }
  }

  Node* x = NewNode(key, height);
  // Bottom level first: once level 0 is linked the key is logically present.
  while (true) {
    Node* prev[kMaxHeight];
    Node* succ = FindGreaterOrEqual(key, prev);
    assert(succ == nullptr || !Equal(key, succ->key));  // duplicates forbidden
    x->NoBarrierSetNext(0, succ);
    if (prev[0]->CasNext(0, succ, x)) {
      break;
    }
    // Lost a race at the splice point; retry from a fresh search.
  }
  LinkUpperLevels(x, height, 1);
  count_.fetch_add(1, std::memory_order_relaxed);
}

template <typename Key, class Comparator>
template <typename ConflictFn>
bool ConcurrentSkipList<Key, Comparator>::InsertIfNoConflict(const Key& key, ConflictFn conflict) {
  Node* prev[kMaxHeight];
  Node* succ = FindGreaterOrEqual(key, prev);
  const bool prev_is_head = (prev[0] == head_);
  const Key prev_key = prev_is_head ? Key() : prev[0]->key;
  const bool succ_at_end = (succ == nullptr);
  const Key succ_key = succ_at_end ? Key() : succ->key;
  if (conflict(prev_key, prev_is_head, succ_key, succ_at_end)) {
    return false;
  }

  int height = RandomHeight();
  int max_h = GetMaxHeight();
  while (height > max_h) {
    if (max_height_.compare_exchange_weak(max_h, height, std::memory_order_acq_rel)) {
      break;
    }
  }

  Node* x = NewNode(key, height);
  x->NoBarrierSetNext(0, succ);
  // Algorithm 3 line 12: a failed CAS means some insert interleaved between
  // our read and our update — report a conflict rather than retrying here,
  // because the caller must re-read the value and acquire a new timestamp.
  if (!prev[0]->CasNext(0, succ, x)) {
    // The node was never published; its arena storage is simply abandoned.
    return false;
  }
  LinkUpperLevels(x, height, 1);
  count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

template <typename Key, class Comparator>
bool ConcurrentSkipList<Key, Comparator>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace clsm

#endif  // CLSM_SKIPLIST_CONCURRENT_SKIPLIST_H_
