#include "src/lsm/version_set.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/lsm/filename.h"
#include "src/obs/perf_context.h"
#include "src/table/merging_iterator.h"
#include "src/util/coding.h"
#include "src/wal/log_reader.h"

namespace clsm {

static int64_t TotalFileSize(const std::vector<FileRef>& files) {
  int64_t sum = 0;
  for (const auto& f : files) {
    sum += f->file_size;
  }
  return sum;
}

uint64_t VersionSet::MaxFileSizeForLevel(int level) const { return options_->target_file_size; }

static double MaxBytesForLevel(const Options& options, int level) {
  // level-0 is scored by file count, so this is only used for level >= 1.
  double result = static_cast<double>(options.level1_max_bytes);
  for (int l = 1; l < level; l++) {
    result *= 10;
  }
  return result;
}

Version::~Version() = default;  // FileRefs release (and maybe delete) files

int FindFile(const InternalKeyComparator& icmp, const std::vector<FileRef>& files,
             const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    uint32_t mid = (left + right) / 2;
    const FileMetaData* f = files[mid].get();
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      // Key at "mid.largest" is < "target". All files at or before "mid"
      // are uninteresting.
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  return right;
}

static bool AfterFile(const Comparator* ucmp, const Slice* user_key, const FileMetaData* f) {
  // null user_key occurs before all keys and is therefore never after *f.
  return (user_key != nullptr && ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

static bool BeforeFile(const Comparator* ucmp, const Slice* user_key, const FileMetaData* f) {
  return (user_key != nullptr && ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp, bool disjoint_sorted_files,
                           const std::vector<FileRef>& files, const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Need to check against all files.
    for (size_t i = 0; i < files.size(); i++) {
      const FileMetaData* f = files[i].get();
      if (AfterFile(ucmp, smallest_user_key, f) || BeforeFile(ucmp, largest_user_key, f)) {
        // No overlap
      } else {
        return true;
      }
    }
    return false;
  }

  // Binary search over file list.
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    InternalKey small_key(*smallest_user_key, kMaxSequenceNumber, kValueTypeForSeek);
    index = FindFile(icmp, files, small_key.Encode());
  }

  if (index >= files.size()) {
    return false;
  }

  return !BeforeFile(ucmp, largest_user_key, files[index].get());
}

Iterator* Version::NewConcatenatingIterator(const ReadOptions& options, int level) const {
  // Index iterator over the file list; block function opens each file.
  struct LevelFileNumIterator final : public Iterator {
    LevelFileNumIterator(const InternalKeyComparator& icmp, const std::vector<FileRef>* flist)
        : icmp_(icmp), flist_(flist), index_(flist->size()) {}

    bool Valid() const override { return index_ < flist_->size(); }
    void Seek(const Slice& target) override { index_ = FindFile(icmp_, *flist_, target); }
    void SeekToFirst() override { index_ = 0; }
    void SeekToLast() override { index_ = flist_->empty() ? 0 : flist_->size() - 1; }
    void Next() override {
      assert(Valid());
      index_++;
    }
    void Prev() override {
      assert(Valid());
      if (index_ == 0) {
        index_ = flist_->size();  // Marks as invalid
      } else {
        index_--;
      }
    }
    Slice key() const override {
      assert(Valid());
      return (*flist_)[index_]->largest.Encode();
    }
    Slice value() const override {
      assert(Valid());
      EncodeFixed64(value_buf_, (*flist_)[index_]->number);
      EncodeFixed64(value_buf_ + 8, (*flist_)[index_]->file_size);
      return Slice(value_buf_, sizeof(value_buf_));
    }
    Status status() const override { return Status::OK(); }

    const InternalKeyComparator icmp_;
    const std::vector<FileRef>* const flist_;
    size_t index_;
    mutable char value_buf_[16];
  };

  struct Opener {
    static Iterator* Open(void* arg, const ReadOptions& options, const Slice& file_value) {
      TableCache* cache = reinterpret_cast<TableCache*>(arg);
      if (file_value.size() != 16) {
        return NewErrorIterator(Status::Corruption("FileReader invoked with unexpected value"));
      }
      return cache->NewIterator(options, DecodeFixed64(file_value.data()),
                                DecodeFixed64(file_value.data() + 8));
    }
  };

  return NewTwoLevelIterator(new LevelFileNumIterator(vset_->icmp_, &files_[level]),
                             &Opener::Open, vset_->table_cache_, options);
}

void Version::AddIterators(const ReadOptions& options, std::vector<Iterator*>* iters) {
  // Merge all level zero files together since they may overlap.
  for (size_t i = 0; i < files_[0].size(); i++) {
    iters->push_back(
        vset_->table_cache_->NewIterator(options, files_[0][i]->number, files_[0][i]->file_size));
  }

  // For levels > 0, lazily open files with a concatenating iterator.
  for (int level = 1; level < kNumLevels; level++) {
    if (!files_[level].empty()) {
      iters->push_back(NewConcatenatingIterator(options, level));
    }
  }
}

namespace {

enum SaverState {
  kNotFound,
  kFound,
  kDeleted,
  kCorrupt,
};
struct Saver {
  SaverState state;
  const Comparator* ucmp;
  Slice user_key;
  std::string* value;
  SequenceNumber seq_found;
};

void SaveValue(void* arg, const Slice& ikey, const Slice& v) {
  Saver* s = reinterpret_cast<Saver*>(arg);
  ParsedInternalKey parsed_key;
  if (!ParseInternalKey(ikey, &parsed_key)) {
    s->state = kCorrupt;
    return;
  }
  if (s->ucmp->Compare(parsed_key.user_key, s->user_key) == 0) {
    s->seq_found = parsed_key.sequence;
    s->state = (parsed_key.type == kTypeValue) ? kFound : kDeleted;
    if (s->state == kFound) {
      s->value->assign(v.data(), v.size());
    }
  }
}

}  // namespace

Status Version::Get(const ReadOptions& options, const LookupKey& k, std::string* value,
                    SequenceNumber* seq_found) {
  const Slice ikey = k.internal_key();
  const Slice user_key = k.user_key();
  const Comparator* ucmp = vset_->icmp_.user_comparator();

  Saver saver;
  saver.ucmp = ucmp;
  saver.user_key = user_key;
  saver.value = value;

  // Level-0 files may overlap; collect candidates and probe newest first.
  std::vector<const FileMetaData*> tmp;
  tmp.reserve(files_[0].size());
  for (const auto& f : files_[0]) {
    if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
        ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
      tmp.push_back(f.get());
    }
  }
  std::sort(tmp.begin(), tmp.end(),
            [](const FileMetaData* a, const FileMetaData* b) { return a->number > b->number; });
  // In normal operation level-0 files have disjoint timestamp ranges that
  // grow with the file number, so the first hit is the newest. After a
  // RepairDb, however, all surviving tables land in level 0 with arbitrary
  // number-vs-recency order — so probe every candidate and keep the hit
  // with the highest timestamp.
  SaverState best_state = kNotFound;
  SequenceNumber best_seq = 0;
  std::string best_value;
  for (const FileMetaData* f : tmp) {
    std::string candidate;
    saver.state = kNotFound;
    saver.value = &candidate;
    CLSM_PERF_COUNT_ADD(table_reads_per_level[0], 1);
    Status s = vset_->table_cache_->Get(options, f->number, f->file_size, ikey, &saver,
                                        &SaveValue);
    if (!s.ok()) {
      return s;
    }
    if (saver.state == kCorrupt) {
      return Status::Corruption("corrupted key for ", user_key);
    }
    if (saver.state != kNotFound && saver.seq_found >= best_seq) {
      best_state = saver.state;
      best_seq = saver.seq_found;
      best_value = std::move(candidate);
    }
  }
  saver.value = value;
  if (best_state == kFound) {
    *value = std::move(best_value);
    if (seq_found != nullptr) {
      *seq_found = best_seq;
    }
    return Status::OK();
  }
  if (best_state == kDeleted) {
    if (seq_found != nullptr) {
      *seq_found = best_seq;
    }
    return Status::NotFound(Slice());
  }

  // Deeper levels: at most one candidate file per level.
  for (int level = 1; level < kNumLevels; level++) {
    const std::vector<FileRef>& files = files_[level];
    if (files.empty()) {
      continue;
    }
    uint32_t index = FindFile(vset_->icmp_, files, ikey);
    if (index >= files.size()) {
      continue;
    }
    const FileMetaData* f = files[index].get();
    if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) {
      continue;
    }
    saver.state = kNotFound;
    static_assert(kNumLevels <= PerfContext::kMaxLevels,
                  "per-level table-read attribution array too small");
    CLSM_PERF_COUNT_ADD(table_reads_per_level[level], 1);
    Status s = vset_->table_cache_->Get(options, f->number, f->file_size, ikey, &saver,
                                        &SaveValue);
    if (!s.ok()) {
      return s;
    }
    switch (saver.state) {
      case kNotFound:
        break;
      case kFound:
        if (seq_found != nullptr) {
          *seq_found = saver.seq_found;
        }
        return s;
      case kDeleted:
        if (seq_found != nullptr) {
          *seq_found = saver.seq_found;
        }
        return Status::NotFound(Slice());
      case kCorrupt:
        return Status::Corruption("corrupted key for ", user_key);
    }
  }

  return Status::NotFound(Slice());
}

int64_t Version::NumBytes(int level) const { return TotalFileSize(files_[level]); }

std::string Version::DebugString() const {
  std::string r;
  for (int level = 0; level < kNumLevels; level++) {
    r.append("--- level ");
    r.append(std::to_string(level));
    r.append(" ---\n");
    for (const auto& f : files_[level]) {
      r.push_back(' ');
      r.append(std::to_string(f->number));
      r.push_back(':');
      r.append(std::to_string(f->file_size));
      r.append("[");
      r.append(f->smallest.user_key().ToString());
      r.append(" .. ");
      r.append(f->largest.user_key().ToString());
      r.append("]\n");
    }
  }
  return r;
}

// Builder: accumulates edits on top of a base version.
class VersionSet::Builder {
 public:
  Builder(VersionSet* vset, Version* base) : vset_(vset), base_(base) {
    base_->Ref();
    for (int level = 0; level < kNumLevels; level++) {
      levels_[level].added_files = base_->files_[level];
      for (const FileRef& f : base_->files_[level]) {
        base_by_number_.emplace(f->number, f);
      }
    }
  }

  ~Builder() { base_->Unref(); }

  // Apply all of the edits in *edit to the accumulated state.
  void Apply(const VersionEdit* edit) {
    // Update compaction pointers (under pick_mutex_: concurrent compaction
    // workers read these while picking).
    if (!edit->compact_pointers_.empty()) {
      std::lock_guard<std::mutex> pick_lock(vset_->pick_mutex_);
      for (size_t i = 0; i < edit->compact_pointers_.size(); i++) {
        const int level = edit->compact_pointers_[i].first;
        vset_->compact_pointer_[level] = edit->compact_pointers_[i].second.Encode().ToString();
      }
    }

    // Apply deletions.
    for (const auto& deleted_file_set_kvp : edit->deleted_files_) {
      const int level = deleted_file_set_kvp.first;
      const uint64_t number = deleted_file_set_kvp.second;
      auto& files = levels_[level].added_files;
      files.erase(std::remove_if(files.begin(), files.end(),
                                 [number](const FileRef& f) { return f->number == number; }),
                  files.end());
    }

    // Apply additions. A trivial move re-adds a file number that already
    // exists in the base version OR in an earlier edit applied to this same
    // builder (manifest recovery replays the whole history through one
    // builder); reuse the existing FileRef so the file keeps a single
    // ownership group. A second group would delete the file from disk when
    // the first one died — e.g. replaying add/delete/re-add would remove a
    // perfectly live table during recovery.
    for (size_t i = 0; i < edit->new_files_.size(); i++) {
      const int level = edit->new_files_[i].first;
      const FileMetaData& meta = edit->new_files_[i].second;
      auto existing = base_by_number_.find(meta.number);
      if (existing != base_by_number_.end()) {
        levels_[level].added_files.push_back(existing->second);
      } else {
        FileRef ref = vset_->MakeFileRef(meta);
        base_by_number_.emplace(meta.number, ref);  // pin across delete/re-add
        levels_[level].added_files.push_back(std::move(ref));
      }
    }
  }

  // Save the accumulated state in *v.
  void SaveTo(Version* v) {
    for (int level = 0; level < kNumLevels; level++) {
      v->files_[level] = levels_[level].added_files;
      auto& files = v->files_[level];
      if (level == 0) {
        // Newest (largest number) first for probe order; AddIterators and
        // compaction picking rely on this too.
        std::sort(files.begin(), files.end(),
                  [](const FileRef& a, const FileRef& b) { return a->number > b->number; });
      } else {
        const InternalKeyComparator& icmp = vset_->icmp_;
        std::sort(files.begin(), files.end(), [&icmp](const FileRef& a, const FileRef& b) {
          return icmp.Compare(a->smallest.Encode(), b->smallest.Encode()) < 0;
        });
#ifndef NDEBUG
        // Disjointness invariant.
        for (size_t i = 1; i < files.size(); i++) {
          assert(icmp.Compare(files[i - 1]->largest.Encode(), files[i]->smallest.Encode()) < 0);
        }
#endif
      }
    }
  }

 private:
  struct LevelState {
    std::vector<FileRef> added_files;
  };

  VersionSet* vset_;
  Version* base_;
  LevelState levels_[kNumLevels];
  std::map<uint64_t, FileRef> base_by_number_;
};

VersionSet::VersionSet(const std::string& dbname, const Options* options,
                       TableCache* table_cache, const InternalKeyComparator* cmp,
                       EpochManager* epochs)
    : env_(options->env),
      dbname_(dbname),
      options_(options),
      table_cache_(table_cache),
      icmp_(*cmp),
      epochs_(epochs),
      next_file_number_(2),
      manifest_file_number_(0),
      last_sequence_(0),
      log_number_(0),
      current_(nullptr),
      delete_unreferenced_files_(true) {
  current_.store(new Version(this), std::memory_order_release);
}

VersionSet::~VersionSet() {
  // All files are live at shutdown; keep them.
  SetFileDeletionEnabled(false);
  Version* v = current_.load(std::memory_order_acquire);
  if (v != nullptr) {
    v->Unref();
  }
  descriptor_log_.reset();
  if (descriptor_file_ != nullptr) {
    descriptor_file_->Close();
  }
}

FileRef VersionSet::MakeFileRef(const FileMetaData& meta) {
  FileMetaData* f = new FileMetaData(meta);
  VersionSet* vset = this;
  return FileRef(f, [vset](FileMetaData* m) { vset->OnFileUnreferenced(m); });
}

void VersionSet::OnFileUnreferenced(FileMetaData* meta) {
  if (delete_unreferenced_files_.load(std::memory_order_acquire)) {
    table_cache_->Evict(meta->number);
    env_->RemoveFile(TableFileName(dbname_, meta->number));
  }
  delete meta;
}

Version* VersionSet::GetCurrent() {
  // Pd read path: epoch-protected pointer load + refcount bump, never
  // blocking (paper §3.1).
  EpochGuard guard(*epochs_);
  Version* v = current_.load(std::memory_order_acquire);
  v->Ref();
  return v;
}

void VersionSet::InstallVersion(Version* v) {
  Version* old = current_.exchange(v, std::memory_order_acq_rel);
  // Grace period: wait until every reader that might have loaded `old`
  // without yet bumping its refcount has exited its critical section.
  epochs_->Synchronize();
  if (old != nullptr) {
    old->Unref();
  }
}

bool VersionSet::NeedsCompaction() const {
  EpochGuard guard(*epochs_);
  return current_.load(std::memory_order_acquire)->compaction_score_ >= 1;
}

int VersionSet::NumLevelFiles(int level) const {
  EpochGuard guard(*epochs_);
  return current_.load(std::memory_order_acquire)->NumFiles(level);
}

int64_t VersionSet::NumLevelBytes(int level) const {
  EpochGuard guard(*epochs_);
  return current_.load(std::memory_order_acquire)->NumBytes(level);
}

double VersionSet::LevelScore(int level) const {
  EpochGuard guard(*epochs_);
  return current_.load(std::memory_order_acquire)->level_scores_[level];
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  std::lock_guard<std::mutex> apply_lock(apply_mutex_);
  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_.load(std::memory_order_relaxed));
  } else {
    edit->SetLogNumber(log_number_.load(std::memory_order_relaxed));
  }
  edit->SetNextFile(next_file_number_.load(std::memory_order_relaxed));
  edit->SetLastSequence(last_sequence_.load(std::memory_order_relaxed));

  Version* v = new Version(this);
  {
    Builder builder(this, current_unlocked());
    builder.Apply(edit);
    builder.SaveTo(v);
  }
  Finalize(v);

  // Initialize new descriptor log file if necessary by creating a temporary
  // file that contains a snapshot of the current version.
  Status s;
  std::string new_manifest_file;
  if (descriptor_log_ == nullptr) {
    assert(descriptor_file_ == nullptr);
    manifest_file_number_ = NewFileNumber();
    new_manifest_file = DescriptorFileName(dbname_, manifest_file_number_);
    s = env_->NewWritableFile(new_manifest_file, &descriptor_file_);
    if (s.ok()) {
      descriptor_log_ = std::make_unique<log::Writer>(descriptor_file_.get());
      s = WriteSnapshot(descriptor_log_.get());
    }
  }

  // Write new record to the manifest log.
  if (s.ok()) {
    std::string record;
    edit->EncodeTo(&record);
    s = descriptor_log_->AddRecord(record);
    if (s.ok()) {
      s = descriptor_file_->Sync();
    }
  }

  // If we just created a new descriptor file, install it by writing a new
  // CURRENT file that points to it.
  if (s.ok() && !new_manifest_file.empty()) {
    s = SetCurrentFile(env_, dbname_, manifest_file_number_);
  }

  // Install the new version.
  if (s.ok()) {
    log_number_.store(edit->log_number_, std::memory_order_release);
    InstallVersion(v);
  } else {
    v->Ref();
    v->Unref();  // delete v
    if (!new_manifest_file.empty()) {
      descriptor_log_.reset();
      descriptor_file_.reset();
      env_->RemoveFile(new_manifest_file);
    }
  }

  return s;
}

Status VersionSet::Recover() {
  // No file may be removed from disk while replaying history: intermediate
  // reference-count transitions during the replay do not reflect liveness.
  // The orphan sweep at open time (after recovery) removes true garbage.
  SetFileDeletionEnabled(false);
  struct ReenableDeletion {
    VersionSet* vset;
    ~ReenableDeletion() { vset->SetFileDeletionEnabled(true); }
  } reenable{this};

  // Read "CURRENT" file, which contains a pointer to the current manifest.
  std::string current;
  Status s = ReadFileToString(env_, CurrentFileName(dbname_), &current);
  if (!s.ok()) {
    return s;
  }
  if (current.empty() || current[current.size() - 1] != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current.resize(current.size() - 1);

  std::string dscname = dbname_ + "/" + current;
  std::unique_ptr<SequentialFile> file;
  s = env_->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent file", s.ToString());
    }
    return s;
  }

  bool have_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t last_sequence = 0;
  uint64_t log_number = 0;
  Builder builder(this, current_unlocked());
  int read_records = 0;

  Status reader_status;
  {
    struct LogReporter : public log::Reader::Reporter {
      Status* status;
      void Corruption(size_t bytes, const Status& s) override {
        if (this->status->ok()) {
          *this->status = s;
        }
      }
    };
    LogReporter reporter;
    reporter.status = &reader_status;
    log::Reader reader(file.get(), &reporter, true /*checksum*/, 0 /*initial_offset*/);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok()) {
      ++read_records;
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (s.ok()) {
        if (edit.has_comparator_ && edit.comparator_ != icmp_.user_comparator()->Name()) {
          s = Status::InvalidArgument(
              edit.comparator_ + " does not match existing comparator ",
              icmp_.user_comparator()->Name());
        }
      }

      if (s.ok()) {
        builder.Apply(&edit);
      }

      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }
      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }
      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
    }
  }

  if (s.ok() && !reader_status.ok()) {
    // The manifest's unsynced tail can be torn by a crash mid-record. Every
    // durably installed edit was synced by LogAndApply before it was acted
    // on, so the readable prefix is a consistent (if slightly old) state.
    // Only paranoid mode refuses to open on a damaged tail; the meta-entry
    // checks below still reject a manifest whose prefix is unusable.
    if (options_->paranoid_checks) {
      s = reader_status;
    }
  }

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no meta-nextfile entry in descriptor");
    } else if (!have_log_number) {
      s = Status::Corruption("no meta-lognumber entry in descriptor");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence-number entry in descriptor");
    }
  }

  if (s.ok()) {
    Version* v = new Version(this);
    builder.SaveTo(v);
    Finalize(v);
    InstallVersion(v);
    manifest_file_number_ = next_file;
    next_file_number_.store(next_file + 1, std::memory_order_relaxed);
    last_sequence_.store(last_sequence, std::memory_order_relaxed);
    log_number_.store(log_number, std::memory_order_release);
  }

  return s;
}

void VersionSet::Finalize(Version* v) {
  // Precomputed best level for next compaction.
  int best_level = -1;
  double best_score = -1;

  for (int level = 0; level < kNumLevels - 1; level++) {
    double score;
    if (level == 0) {
      // Level-0 is scored by file count rather than bytes: files must be
      // merged (not just searched) and with a small write buffer we would
      // otherwise do too many tiny compactions.
      score = v->files_[level].size() / static_cast<double>(options_->l0_compaction_trigger);
    } else {
      const uint64_t level_bytes = TotalFileSize(v->files_[level]);
      score = static_cast<double>(level_bytes) / MaxBytesForLevel(*options_, level);
    }
    v->level_scores_[level] = score;

    if (score > best_score) {
      best_level = level;
      best_score = score;
    }
  }

  v->compaction_level_ = best_level;
  v->compaction_score_ = best_score;
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  // Save metadata. The snapshot record is self-describing: it carries the
  // next-file/log-number/last-sequence meta entries too, so a manifest
  // whose trailing edit is lost to a torn tail still decodes to a usable
  // state (recovery then replays every WAL from the older log number).
  VersionEdit edit;
  edit.SetComparatorName(icmp_.user_comparator()->Name());
  edit.SetNextFile(next_file_number_.load(std::memory_order_acquire));
  edit.SetLogNumber(log_number_.load(std::memory_order_acquire));
  edit.SetLastSequence(last_sequence_.load(std::memory_order_acquire));

  // Save compaction pointers.
  {
    std::lock_guard<std::mutex> pick_lock(pick_mutex_);
    for (int level = 0; level < kNumLevels; level++) {
      if (!compact_pointer_[level].empty()) {
        InternalKey key;
        key.DecodeFrom(compact_pointer_[level]);
        edit.SetCompactPointer(level, key);
      }
    }
  }

  // Save files.
  Version* current = current_unlocked();
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& f : current->files_[level]) {
      edit.AddFile(level, f->number, f->file_size, f->smallest, f->largest);
    }
  }

  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(record);
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) {
  // Compaction workers install versions concurrently, so pin the current
  // version (epoch-protected ref) instead of reading it raw.
  Version* v = GetCurrent();
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& f : v->files_[level]) {
      live->insert(f->number);
    }
  }
  v->Unref();
}

std::string VersionSet::LevelSummary() const {
  std::string r = "files[";
  for (int level = 0; level < kNumLevels; level++) {
    r.append(std::to_string(NumLevelFiles(level)));
    r.push_back(level + 1 < kNumLevels ? ' ' : ']');
  }
  return r;
}

void VersionSet::GetRange(const std::vector<FileRef>& inputs, InternalKey* smallest,
                          InternalKey* largest) {
  assert(!inputs.empty());
  smallest->Clear();
  largest->Clear();
  for (size_t i = 0; i < inputs.size(); i++) {
    const FileMetaData* f = inputs[i].get();
    if (i == 0) {
      *smallest = f->smallest;
      *largest = f->largest;
    } else {
      if (icmp_.Compare(f->smallest.Encode(), smallest->Encode()) < 0) {
        *smallest = f->smallest;
      }
      if (icmp_.Compare(f->largest.Encode(), largest->Encode()) > 0) {
        *largest = f->largest;
      }
    }
  }
}

void VersionSet::GetRange2(const std::vector<FileRef>& inputs1,
                           const std::vector<FileRef>& inputs2, InternalKey* smallest,
                           InternalKey* largest) {
  std::vector<FileRef> all = inputs1;
  all.insert(all.end(), inputs2.begin(), inputs2.end());
  GetRange(all, smallest, largest);
}

void VersionSet::GetOverlappingInputs(Version* v, int level, const InternalKey* begin,
                                      const InternalKey* end, std::vector<FileRef>* inputs) {
  assert(level >= 0);
  assert(level < kNumLevels);
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) {
    user_begin = begin->user_key();
  }
  if (end != nullptr) {
    user_end = end->user_key();
  }
  const Comparator* user_cmp = icmp_.user_comparator();
  for (size_t i = 0; i < v->files_[level].size();) {
    FileRef f = v->files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // "f" is completely before specified range; skip it.
    } else if (end != nullptr && user_cmp->Compare(file_start, user_end) > 0) {
      // "f" is completely after specified range; skip it.
    } else {
      inputs->push_back(f);
      if (level == 0) {
        // Level-0 files may overlap each other. So check if the newly
        // added file has expanded the range. If so, restart search.
        if (begin != nullptr && user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr && user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

Compaction* VersionSet::PickCompaction() {
  std::lock_guard<std::mutex> pick_lock(pick_mutex_);
  // Pin the version first (epoch-protected): the flush thread or another
  // compaction worker may install a new version concurrently. Files seen in
  // this version at a non-busy level cannot disappear before we register:
  // only a compaction owning that level removes them, and completed jobs
  // release their levels (under pick_mutex_) strictly after installing
  // their edit.
  Version* v = GetCurrent();
  // Best-scoring level whose job would be disjoint from every in-flight
  // one. A job at level L reads L and L+1, so both must be free.
  int level = -1;
  double best_score = 0;
  for (int l = 0; l < kNumLevels - 1; l++) {
    if (v->level_scores_[l] >= 1 && !level_busy_[l] && !level_busy_[l + 1] &&
        v->level_scores_[l] > best_score) {
      level = l;
      best_score = v->level_scores_[l];
    }
  }
  if (level < 0 || v->files_[level].empty()) {
    v->Unref();
    return nullptr;
  }
  assert(level + 1 < kNumLevels);
  Compaction* c = new Compaction(options_, level, MaxFileSizeForLevel(level + 1));

  // Pick the first file that comes after compact_pointer_[level].
  for (size_t i = 0; i < v->files_[level].size(); i++) {
    FileRef f = v->files_[level][i];
    if (compact_pointer_[level].empty() ||
        icmp_.Compare(f->largest.Encode(), compact_pointer_[level]) > 0) {
      c->inputs_[0].push_back(f);
      break;
    }
  }
  if (c->inputs_[0].empty()) {
    // Wrap-around to the beginning of the key space.
    c->inputs_[0].push_back(v->files_[level][0]);
  }

  c->input_version_ = v;  // transfers the reference taken above

  // Files in level 0 may overlap each other, so pick up all overlapping ones.
  if (level == 0) {
    InternalKey smallest, largest;
    GetRange(c->inputs_[0], &smallest, &largest);
    // Note that the next call will discard the file we placed in
    // c->inputs_[0] earlier and replace it with an overlapping set
    // which will include the picked file.
    GetOverlappingInputs(v, 0, &smallest, &largest, &c->inputs_[0]);
    assert(!c->inputs_[0].empty());
  }

  SetupOtherInputs(c);
  RegisterInFlight(c);

  return c;
}

void VersionSet::RegisterInFlight(Compaction* c) {
  // pick_mutex_ held by PickCompaction.
  c->vset_ = this;
  level_busy_[c->level()] = true;
  level_busy_[c->level() + 1] = true;
  for (uint64_t number : c->InputFileNumbers()) {
    if (!inflight_files_.insert(number).second) {
      // Two in-flight jobs would read the same file — must be impossible.
      inflight_overlaps_.fetch_add(1, std::memory_order_relaxed);
      assert(false && "compaction input file already owned by another job");
    }
  }
  inflight_compactions_.fetch_add(1, std::memory_order_acq_rel);
}

void VersionSet::UnregisterInFlight(Compaction* c) {
  std::lock_guard<std::mutex> pick_lock(pick_mutex_);
  level_busy_[c->level()] = false;
  level_busy_[c->level() + 1] = false;
  for (uint64_t number : c->InputFileNumbers()) {
    inflight_files_.erase(number);
  }
  inflight_compactions_.fetch_sub(1, std::memory_order_acq_rel);
}

void VersionSet::SetupOtherInputs(Compaction* c) {
  const int level = c->level();
  InternalKey smallest, largest;
  GetRange(c->inputs_[0], &smallest, &largest);

  GetOverlappingInputs(c->input_version_, level + 1, &smallest, &largest, &c->inputs_[1]);

  // Compute the full key range covered by this compaction.
  InternalKey all_start, all_limit;
  GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);

  // Update the place where we will do the next compaction for this level
  // right away rather than waiting for the VersionEdit to be applied: the
  // caller holds pick_mutex_ and at most one compaction per level is in
  // flight, so no other picker can observe a torn value.
  compact_pointer_[level] = largest.Encode().ToString();
  c->edit_.SetCompactPointer(level, largest);
}

Iterator* VersionSet::MakeInputIterator(Compaction* c) {
  ReadOptions options;
  options.verify_checksums = options_->paranoid_checks;
  options.fill_cache = false;

  // One iterator per input file; compaction input sets are small, so a flat
  // k-way merge is as good as LevelDB's concatenate-then-merge and simpler.
  const int space = c->num_input_files(0) + c->num_input_files(1);
  Iterator** list = new Iterator*[space];
  int num = 0;
  for (int which = 0; which < 2; which++) {
    for (const auto& f : c->inputs_[which]) {
      list[num++] = table_cache_->NewIterator(options, f->number, f->file_size);
    }
  }
  assert(num == space);
  Iterator* result = NewMergingIterator(&icmp_, list, num);
  delete[] list;
  return result;
}

Compaction::Compaction(const Options* options, int level, uint64_t max_output_file_size)
    : level_(level),
      max_output_file_size_(max_output_file_size),
      input_version_(nullptr) {
  for (int i = 0; i < kNumLevels; i++) {
    level_ptrs_[i] = 0;
  }
}

Compaction::~Compaction() {
  // Release level ownership only now — strictly after the job's edit (if
  // any) was installed by LogAndApply, so a new pick at these levels always
  // sees a version reflecting the result.
  if (vset_ != nullptr) {
    vset_->UnregisterInFlight(this);
  }
  if (input_version_ != nullptr) {
    input_version_->Unref();
  }
}

int64_t Compaction::TotalInputBytes() const {
  int64_t total = 0;
  for (int which = 0; which < 2; which++) {
    for (const auto& f : inputs_[which]) {
      total += f->file_size;
    }
  }
  return total;
}

std::vector<uint64_t> Compaction::InputFileNumbers() const {
  std::vector<uint64_t> numbers;
  numbers.reserve(inputs_[0].size() + inputs_[1].size());
  for (int which = 0; which < 2; which++) {
    for (const auto& f : inputs_[which]) {
      numbers.push_back(f->number);
    }
  }
  return numbers;
}

bool Compaction::IsTrivialMove() const {
  // A single input file with nothing to merge with below can simply be
  // relocated one level down.
  return (num_input_files(0) == 1 && num_input_files(1) == 0);
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    for (size_t i = 0; i < inputs_[which].size(); i++) {
      edit->RemoveFile(level_ + which, inputs_[which][i]->number);
    }
  }
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key) {
  // Maybe use binary search to find right entry instead of linear search?
  const Comparator* user_cmp = input_version_->vset_->icmp_.user_comparator();
  for (int lvl = level_ + 2; lvl < kNumLevels; lvl++) {
    const std::vector<FileRef>& files = input_version_->files_[lvl];
    while (level_ptrs_[lvl] < files.size()) {
      FileMetaData* f = files[level_ptrs_[lvl]].get();
      if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
        // We've advanced far enough.
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0) {
          // Key falls in this file's range, so definitely not base level.
          return false;
        }
        break;
      }
      level_ptrs_[lvl]++;
    }
  }
  return true;
}

void Compaction::ReleaseInputs() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
    input_version_ = nullptr;
  }
}

}  // namespace clsm
