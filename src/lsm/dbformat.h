// Internal key format shared by the memtable, SSTables and compaction.
//
// Every stored entry is a (user key, timestamp, type) triple — the paper's
// key-timestamp-value multi-versioning (§3.2). Timestamps are the 56-bit
// sequence numbers produced by the global time counter; the low byte tags
// the entry as a value or a deletion marker (the ⊥ of §2.1). Internal keys
// order by user key ascending, then timestamp DESCENDING, so the newest
// version of a key is encountered first.
#ifndef CLSM_LSM_DBFORMAT_H_
#define CLSM_LSM_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "src/table/bloom.h"
#include "src/util/coding.h"
#include "src/util/comparator.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace clsm {

typedef uint64_t SequenceNumber;

// Number of on-disk levels (C1..Cn of §2.3). Fixed at compile time; the
// Options level-sizing knobs control how they fill.
constexpr int kNumLevels = 7;
// Level-0 compaction triggers (paper/LevelDB defaults; overridable).
constexpr int kL0CompactionTrigger = 4;

// Leaves room for the type tag in the packed 64-bit form.
static const SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};
// When seeking, newest-first order means kTypeValue (the higher tag) sorts
// first among same-sequence entries; using it in lookup keys finds all
// entries with sequence <= the lookup sequence.
static const ValueType kValueTypeForSeek = kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;

  ParsedInternalKey() {}
  ParsedInternalKey(const Slice& u, const SequenceNumber& seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

inline size_t InternalKeyEncodingLength(const ParsedInternalKey& key) {
  return key.user_key.size() + 8;
}

void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

// Returns false on malformed input.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractTag(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractTag(internal_key) >> 8;
}

// Orders internal keys by (user key asc, sequence desc, type desc).
class InternalKeyComparator final : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* c) : user_comparator_(c) {}
  const char* Name() const override { return "clsm.InternalKeyComparator"; }
  int Compare(const Slice& a, const Slice& b) const override;
  void FindShortestSeparator(std::string* start, const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

// Owned internal key, convenient for file metadata boundaries.
class InternalKey {
 public:
  InternalKey() {}
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool DecodeFrom(const Slice& s) {
    rep_.assign(s.data(), s.size());
    return !rep_.empty();
  }

  Slice Encode() const { return rep_; }
  Slice user_key() const { return ExtractUserKey(rep_); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

// Filter policy wrapper that builds filters over user keys (the sequence
// tag would otherwise defeat Bloom lookups).
class InternalFilterPolicy final : public FilterPolicy {
 public:
  explicit InternalFilterPolicy(const FilterPolicy* p) : user_policy_(p) {}
  const char* Name() const override { return user_policy_->Name(); }
  void CreateFilter(const Slice* keys, int n, std::string* dst) const override;
  bool KeyMayMatch(const Slice& key, const Slice& filter) const override;

 private:
  const FilterPolicy* const user_policy_;
};

// Helper for memtable lookups: bundles the memtable entry prefix
// (varint key length + internal key) for a (user key, sequence) probe.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  // Key formatted for the memtable skip list (length-prefixed).
  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  // Internal key (userkey + tag).
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // avoids allocation for short keys
};

}  // namespace clsm

#endif  // CLSM_LSM_DBFORMAT_H_
