// BackgroundErrorState: severity-aware sticky error for the write pipeline
// (LevelDB's bg_error_ generalized along the lines of RocksDB's error
// handler). Background work — the WAL logger, flush, compaction, manifest
// writes — records failures here; write entry points check it and fail
// fast once the severity says writes can no longer be made durable.
//
// Severity ladder (see BgErrorSeverity in src/obs/event_listener.h):
//  * kSoft   — retryable, no data at risk (failed compaction). Background
//              work keeps retrying; foreground writes keep flowing, but a
//              writer that is already stalled surfaces the error rather
//              than waiting on a pipeline that cannot drain.
//  * kHard   — durability is broken (WAL append/sync, flush, manifest
//              write). Writes are rejected; reads, iterators and snapshots
//              keep serving the already-accepted data (degraded read-only
//              mode). A reopen re-runs recovery and clears the state.
//  * kFatal  — persisted state may be inconsistent (Corruption from a
//              background job). Same blocking as kHard; the distinction is
//              surfaced to operators via properties/listeners.
//
// The latch is sticky per severity: severity only escalates, and the first
// status observed at the top severity is kept.
#ifndef CLSM_LSM_BG_ERROR_H_
#define CLSM_LSM_BG_ERROR_H_

#include <atomic>
#include <mutex>
#include <string>

#include "src/obs/event_listener.h"
#include "src/util/status.h"

namespace clsm {

class BackgroundErrorState {
 public:
  BackgroundErrorState() = default;
  BackgroundErrorState(const BackgroundErrorState&) = delete;
  BackgroundErrorState& operator=(const BackgroundErrorState&) = delete;

  // Maps (reason, status) to a severity. Corruption anywhere is fatal;
  // compaction failures are soft (inputs are still live, the job retries);
  // everything else in the durability path is hard.
  static BgErrorSeverity Classify(BgErrorReason reason, const Status& s);

  // Latches the error (severity-max, first-at-severity wins) and returns
  // the severity this event classified to. Thread-safe.
  BgErrorSeverity Record(BgErrorReason reason, const Status& s);

  // True iff nothing has been latched. Lock-free.
  bool ok() const { return severity_.load(std::memory_order_acquire) == 0; }

  BgErrorSeverity severity() const {
    return static_cast<BgErrorSeverity>(severity_.load(std::memory_order_acquire));
  }

  // True once writes must be rejected (severity >= kHard). Lock-free:
  // this is the per-write fast-path check.
  bool writes_blocked() const {
    return severity_.load(std::memory_order_acquire) >=
           static_cast<int>(BgErrorSeverity::kHard);
  }

  // The latched status (OK if nothing latched).
  Status status() const;

  // The reason of the latched status (meaningless while ok()).
  BgErrorReason reason() const;

  // "OK" or "<severity>(<reason>): <status>"; for properties.
  std::string ToString() const;

 private:
  // severity_ is the lock-free view; status_/reason_ hold the details and
  // are guarded. severity_ is published after the details so a reader that
  // sees a non-zero severity also sees a consistent status under mutex_.
  std::atomic<int> severity_{0};
  mutable std::mutex mutex_;
  Status status_;
  BgErrorReason reason_ = BgErrorReason::kWalAppend;
};

}  // namespace clsm

#endif  // CLSM_LSM_BG_ERROR_H_
