// StorageEngine: the disk component and merge machinery shared by cLSM and
// every baseline DB variant. It owns the version set, table/block caches,
// WAL files, compaction logic and the background compaction scheduler; the
// DB variants on top differ only in their in-memory concurrency control —
// exactly the variable the paper's evaluation isolates (§5: all systems
// inherit the same disk-side modules).
//
// Thread contract: Get/AddVersionIterators are safe from any thread and
// never block (epoch-protected version access). FlushMemTable/LogAndApply
// must be called from a single flush/maintenance thread. Compactions run
// either synchronously through CompactOnce (single maintenance thread) or
// on the engine's own worker pool (StartCompactionScheduler) — the two
// modes must not be mixed.
#ifndef CLSM_LSM_STORAGE_ENGINE_H_
#define CLSM_LSM_STORAGE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/stats.h"
#include "src/lsm/bg_error.h"
#include "src/lsm/dbformat.h"
#include "src/lsm/memtable.h"
#include "src/lsm/version_set.h"
#include "src/obs/event_listener.h"
#include "src/obs/metrics.h"
#include "src/sync/ref_guard.h"
#include "src/wal/async_logger.h"

namespace clsm {

// Serialization of operations into / out of WAL records. Each operation
// carries its cLSM timestamp so recovery can restore the correct order even
// though the asynchronous logger may write records out of order (paper §4).
// A WAL record holds ONE OR MORE operations: atomic batches append all
// their operations into a single record, making the batch all-or-nothing
// across crashes (a log record is the unit of torn-tail discard).
void EncodeWalRecord(std::string* dst, SequenceNumber seq, ValueType type, const Slice& key,
                     const Slice& value);
// Parses one operation from *input, advancing it. Returns false on
// malformed data.
bool DecodeWalOpFrom(Slice* input, SequenceNumber* seq, ValueType* type, Slice* key,
                     Slice* value);
// Single-operation record convenience (requires the record to contain
// exactly one operation).
bool DecodeWalRecord(Slice input, SequenceNumber* seq, ValueType* type, Slice* key, Slice* value);

class StorageEngine {
 public:
  StorageEngine(const Options& options, const std::string& dbname);

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  ~StorageEngine();

  // Creates/recovers the store. On return *recovered_mem (Ref'd, may be
  // null if nothing to recover) holds WAL entries replayed in timestamp
  // order, and *max_seq the largest recovered timestamp.
  Status Open(MemTable** recovered_mem, SequenceNumber* max_seq);

  // Point lookup in the disk component as of the sequence in lookup_key.
  Status Get(const ReadOptions& options, const LookupKey& lookup_key, std::string* value,
             SequenceNumber* seq_found = nullptr);

  // Appends iterators over the current disk version to *iters and returns
  // the version with a reference the caller must Unref (after the iterators
  // are destroyed).
  Version* AddVersionIterators(const ReadOptions& options, std::vector<Iterator*>* iters);

  // --- Maintenance-thread-only operations ---

  // Writes the (immutable) memtable to a level-0 table and logs the edit.
  // log_number: WAL files strictly older than this become obsolete.
  Status FlushMemTable(MemTable* mem, uint64_t log_number);

  // Persists a new current log number (empty version edit). Required after
  // opening a fresh WAL with nothing to flush: it rewrites the manifest so
  // RemoveObsoleteFiles never strands CURRENT pointing at a GC'd manifest.
  Status CommitLogRotation(uint64_t log_number);

  // Runs at most one compaction step. did_work reports whether anything ran.
  // smallest_snapshot: versions at or below this sequence that are shadowed
  // by newer ones can be discarded (paper §3.2.1's obsolete-version GC).
  // Single-maintenance-thread mode only (do not mix with the scheduler).
  Status CompactOnce(SequenceNumber smallest_snapshot, bool* did_work);

  // --- Parallel compaction scheduler (paper §5.3's multi-threaded
  // background compaction configuration) ---

  // Starts num_threads workers that repeatedly pick disjoint compactions
  // (VersionSet::PickCompaction excludes in-flight levels/files) and run
  // them concurrently; LogAndApply serializes the installs. smallest_snapshot
  // is polled per job for the obsolete-version GC bound; on_error (may be
  // null) latches background failures. Idempotent per engine lifetime.
  void StartCompactionScheduler(int num_threads,
                                std::function<SequenceNumber()> smallest_snapshot,
                                std::function<void(const Status&)> on_error);

  // Stops and joins the workers; in-flight jobs finish first. Safe to call
  // multiple times (the destructor also calls it).
  void StopCompactionScheduler();

  // Wakes the workers (e.g. after a flush created new level-0 files).
  void SignalCompaction();

  // True when no compaction is running and none is needed. Advisory (racy);
  // used by WaitForMaintenance-style polling.
  bool CompactionsIdle() const {
    return versions_->NumInFlightCompactions() == 0 && !NeedsCompaction();
  }

  bool NeedsCompaction() const { return versions_->NeedsCompaction(); }
  int NumLevelFiles(int level) const { return versions_->NumLevelFiles(level); }

  // Per-level compaction accounting (bytes read/written, job counts, time).
  CompactionStats* compaction_stats() { return &compaction_stats_; }

  // Event-listener fan-out (built from Options::listeners). The owning DB
  // also dispatches its own events (rolls, stalls) through this set.
  const ListenerSet& listeners() const { return listeners_; }

  // Sticky background error shared by the engine and the owning DB. Write
  // entry points check bg_error()->writes_blocked(); background work calls
  // RecordBackgroundError on failure.
  BackgroundErrorState* bg_error() { return &bg_error_; }
  const BackgroundErrorState* bg_error() const { return &bg_error_; }

  // Latch s into the sticky state and notify listeners. No-op when s is OK.
  void RecordBackgroundError(BgErrorReason reason, const Status& s);

  // Best-effort file removal for error paths and obsolete-file sweeps:
  // failures bump the cleanup-failure gauge and notify listeners (kSoft)
  // but do NOT latch the sticky error — a leaked file loses no data.
  void RemoveFileTracked(const std::string& fname);

  uint64_t cleanup_failures() const {
    return cleanup_failures_.load(std::memory_order_relaxed);
  }
  // WAL records dropped as unreadable during recovery (torn/corrupt tails
  // tolerated when !paranoid_checks).
  uint64_t wal_recovery_drops() const {
    return wal_recovery_drops_.load(std::memory_order_relaxed);
  }

  // Attach the owning DB's latency registry so the engine records its
  // internal phases (flush, compaction) there. Must be set before
  // background work starts; null (default) disables phase recording.
  void SetStatsRegistry(StatsRegistry* registry) { registry_ = registry; }

  // Creates a fresh WAL (<number>.log) with an asynchronous group logger.
  Status NewLog(uint64_t* log_number, std::unique_ptr<AsyncLogger>* logger);

  // Deletes files no longer referenced by the current state (called after
  // recovery and after log rotation). Table files are swept only when
  // include_tables is true (safe at open time only: during runtime, retired
  // versions pinned by live iterators may still read files that are absent
  // from the current version — their deletion is owned by the FileRef
  // reference counts instead).
  void RemoveObsoleteFiles(uint64_t min_live_log_number, bool include_tables = false);

  VersionSet* versions() { return versions_.get(); }
  const InternalKeyComparator* icmp() const { return &icmp_; }
  EpochManager* epochs() { return &epochs_; }
  Env* env() { return env_; }
  const Options& options() const { return options_; }
  const std::string& dbname() const { return dbname_; }

 private:
  Status NewDB();
  Status RecoverLogFile(uint64_t log_number, MemTable* mem, SequenceNumber* max_seq);
  Status BuildTable(Iterator* iter, FileMetaData* meta);
  // Runs one already-picked compaction (trivial move or full merge) and
  // records its per-level stats. Used by both CompactOnce and the workers.
  Status RunCompaction(Compaction* c, SequenceNumber smallest_snapshot);
  // fail_reason reports which stage failed (kCompaction for table I/O,
  // kManifestWrite for the edit install) when the result is not OK.
  Status DoCompactionWork(Compaction* c, SequenceNumber smallest_snapshot,
                          uint64_t* bytes_written, BgErrorReason* fail_reason);
  void CompactionWorkerLoop();

  Options options_;
  const std::string dbname_;
  Env* env_;
  InternalKeyComparator icmp_;
  std::unique_ptr<const FilterPolicy> user_filter_policy_;
  std::unique_ptr<InternalFilterPolicy> filter_policy_;
  std::unique_ptr<Cache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;
  EpochManager epochs_;
  std::unique_ptr<VersionSet> versions_;

  // Observability: listener fan-out + (optional) owning DB's registry.
  ListenerSet listeners_;
  StatsRegistry* registry_ = nullptr;

  // Error handling (see src/lsm/bg_error.h and DESIGN.md "Error handling
  // & crash consistency").
  BackgroundErrorState bg_error_;
  std::atomic<uint64_t> cleanup_failures_{0};
  std::atomic<uint64_t> wal_recovery_drops_{0};

  // Compaction scheduler state.
  CompactionStats compaction_stats_;
  std::mutex sched_mutex_;
  std::condition_variable sched_cv_;
  std::atomic<bool> sched_shutdown_{false};
  std::function<SequenceNumber()> sched_smallest_snapshot_;
  std::function<void(const Status&)> sched_on_error_;
  std::vector<std::thread> compaction_workers_;
};

}  // namespace clsm

#endif  // CLSM_LSM_STORAGE_ENGINE_H_
