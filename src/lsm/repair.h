// RepairDb: best-effort reconstruction of a store whose manifest is lost
// or corrupt. Scans the directory for table and log files, recovers the
// key range and maximal timestamp of every readable table, converts
// surviving WAL records into fresh tables, and writes a new manifest with
// everything placed in level 0 (multi-version correctness is preserved
// because reads resolve newest-first by timestamp regardless of level).
#ifndef CLSM_LSM_REPAIR_H_
#define CLSM_LSM_REPAIR_H_

#include <string>

#include "src/util/options.h"
#include "src/util/status.h"

namespace clsm {

// Rebuilds dbname's metadata in place. Existing CURRENT/MANIFEST files are
// ignored and replaced. Unreadable tables are skipped (logged to stderr).
Status RepairDb(const Options& options, const std::string& dbname);

}  // namespace clsm

#endif  // CLSM_LSM_REPAIR_H_
