// Naming scheme for the files that make up a store directory.
#ifndef CLSM_LSM_FILENAME_H_
#define CLSM_LSM_FILENAME_H_

#include <cstdint>
#include <string>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace clsm {

class Env;

enum FileType {
  kLogFile,        // <number>.log
  kDBLockFile,     // LOCK
  kTableFile,      // <number>.sst
  kDescriptorFile, // MANIFEST-<number>
  kCurrentFile,    // CURRENT
  kTempFile,       // <number>.dbtmp
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string DescriptorFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string LockFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);

// If filename is a clsm file, store its type in *type, the number encoded
// in it (0 for CURRENT/LOCK) in *number, and return true.
bool ParseFileName(const std::string& filename, uint64_t* number, FileType* type);

// Make CURRENT point to the descriptor file with the given number.
Status SetCurrentFile(Env* env, const std::string& dbname, uint64_t descriptor_number);

}  // namespace clsm

#endif  // CLSM_LSM_FILENAME_H_
