// Cache of open SSTable readers, keyed by file number. Thread-safe; the
// read path of every DB variant funnels disk probes through here.
#ifndef CLSM_LSM_TABLE_CACHE_H_
#define CLSM_LSM_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/lsm/dbformat.h"
#include "src/table/cache.h"
#include "src/table/table.h"
#include "src/util/env.h"
#include "src/util/options.h"

namespace clsm {

class TableCache {
 public:
  TableCache(const std::string& dbname, const Options& options,
             const InternalKeyComparator* icmp, const FilterPolicy* filter_policy,
             Cache* block_cache, int entries);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  ~TableCache();

  // Iterator over the named file; if tableptr is non-null it receives the
  // underlying Table (owned by the cache, valid while the iterator lives).
  Iterator* NewIterator(const ReadOptions& options, uint64_t file_number, uint64_t file_size,
                        Table** tableptr = nullptr);

  // Point lookup inside the named file (see Table::InternalGet).
  Status Get(const ReadOptions& options, uint64_t file_number, uint64_t file_size,
             const Slice& internal_key, void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&));

  // Drop any cached entry for the file (called when the file is deleted).
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size, Cache::Handle**);

  Env* const env_;
  const std::string dbname_;
  const Options& options_;
  const InternalKeyComparator* icmp_;
  const FilterPolicy* filter_policy_;
  Cache* block_cache_;
  Cache* cache_;
};

}  // namespace clsm

#endif  // CLSM_LSM_TABLE_CACHE_H_
