#include "src/lsm/bg_error.h"

namespace clsm {

BgErrorSeverity BackgroundErrorState::Classify(BgErrorReason reason, const Status& s) {
  if (s.ok()) {
    return BgErrorSeverity::kNone;
  }
  if (s.IsCorruption()) {
    return BgErrorSeverity::kFatal;
  }
  switch (reason) {
    case BgErrorReason::kCompaction:
    case BgErrorReason::kFileCleanup:
      return BgErrorSeverity::kSoft;
    case BgErrorReason::kWalAppend:
    case BgErrorReason::kWalSync:
    case BgErrorReason::kMemtableRoll:
    case BgErrorReason::kFlush:
    case BgErrorReason::kManifestWrite:
      return BgErrorSeverity::kHard;
  }
  return BgErrorSeverity::kHard;
}

BgErrorSeverity BackgroundErrorState::Record(BgErrorReason reason, const Status& s) {
  const BgErrorSeverity sev = Classify(reason, s);
  if (sev == BgErrorSeverity::kNone) {
    return sev;
  }
  std::lock_guard<std::mutex> l(mutex_);
  if (static_cast<int>(sev) > severity_.load(std::memory_order_relaxed)) {
    status_ = s;
    reason_ = reason;
    severity_.store(static_cast<int>(sev), std::memory_order_release);
  }
  return sev;
}

Status BackgroundErrorState::status() const {
  if (ok()) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> l(mutex_);
  return status_;
}

BgErrorReason BackgroundErrorState::reason() const {
  std::lock_guard<std::mutex> l(mutex_);
  return reason_;
}

std::string BackgroundErrorState::ToString() const {
  std::lock_guard<std::mutex> l(mutex_);
  const int sev = severity_.load(std::memory_order_relaxed);
  if (sev == 0) {
    return "OK";
  }
  std::string out = BgErrorSeverityName(static_cast<BgErrorSeverity>(sev));
  out += "(";
  out += BgErrorReasonName(reason_);
  out += "): ";
  out += status_.ToString();
  return out;
}

}  // namespace clsm
