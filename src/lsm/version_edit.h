// A VersionEdit records a delta to the disk component's file set; the
// manifest is a log of these edits. Applying the manifest in order rebuilds
// the exact multi-level structure (paper §2.3: the series of on-disk
// components C1..Cn and their evolution under merges).
#ifndef CLSM_LSM_VERSION_EDIT_H_
#define CLSM_LSM_VERSION_EDIT_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/lsm/dbformat.h"

namespace clsm {

struct FileMetaData {
  int refs = 0;
  uint64_t number = 0;
  uint64_t file_size = 0;
  InternalKey smallest;
  InternalKey largest;
};

class VersionEdit {
 public:
  VersionEdit() { Clear(); }

  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFile(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }
  void SetCompactPointer(int level, const InternalKey& key) {
    compact_pointers_.push_back(std::make_pair(level, key));
  }

  // Add the specified file at the specified level.
  void AddFile(int level, uint64_t file, uint64_t file_size, const InternalKey& smallest,
               const InternalKey& largest) {
    FileMetaData f;
    f.number = file;
    f.file_size = file_size;
    f.smallest = smallest;
    f.largest = largest;
    new_files_.push_back(std::make_pair(level, f));
  }

  void RemoveFile(int level, uint64_t file) {
    deleted_files_.insert(std::make_pair(level, file));
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  std::string DebugString() const;

 private:
  friend class VersionSet;

  typedef std::set<std::pair<int, uint64_t>> DeletedFileSet;

  std::string comparator_;
  uint64_t log_number_;
  uint64_t next_file_number_;
  SequenceNumber last_sequence_;
  bool has_comparator_;
  bool has_log_number_;
  bool has_next_file_number_;
  bool has_last_sequence_;

  std::vector<std::pair<int, InternalKey>> compact_pointers_;
  DeletedFileSet deleted_files_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
};

}  // namespace clsm

#endif  // CLSM_LSM_VERSION_EDIT_H_
