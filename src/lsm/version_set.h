// The disk component Cd: a multi-level set of SSTables evolving under
// background merges (paper §2.3). A Version is an immutable snapshot of the
// file set; the current Version pointer is the Pd of Figure 2b. Readers
// obtain it without blocking via the same epoch-protected refcount scheme
// used for memory components (§3.1).
//
// Mutation is multi-threaded: a pool of compaction workers plus the flush
// thread all apply edits. PickCompaction hands out jobs on disjoint work —
// a job owns its input level L and output level L+1 until it is destroyed,
// and levels owned by an in-flight job are excluded from picking — while
// LogAndApply serializes the actual version installs.
#ifndef CLSM_LSM_VERSION_SET_H_
#define CLSM_LSM_VERSION_SET_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/lsm/dbformat.h"
#include "src/lsm/table_cache.h"
#include "src/lsm/version_edit.h"
#include "src/sync/ref_guard.h"
#include "src/table/iterator.h"
#include "src/wal/log_writer.h"

namespace clsm {

class Compaction;
class VersionSet;

using FileRef = std::shared_ptr<FileMetaData>;

// Returns files in `files` whose range may contain user_key.
int FindFile(const InternalKeyComparator& icmp, const std::vector<FileRef>& files,
             const Slice& internal_key);

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp, bool disjoint_sorted_files,
                           const std::vector<FileRef>& files, const Slice* smallest_user_key,
                           const Slice* largest_user_key);

class Version : public RefCounted {
 public:
  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  // Append iterators over this version's contents to *iters (for merged
  // scans). Caller must hold a reference for the iterators' lifetime; the
  // iterators additionally pin table-cache entries themselves.
  void AddIterators(const ReadOptions&, std::vector<Iterator*>* iters);

  // Point lookup as of lookup_key's embedded sequence. Returns OK with
  // *value, NotFound, or an error. If seq_found is non-null it receives the
  // timestamp of the version found (when one is found).
  Status Get(const ReadOptions&, const LookupKey& lookup_key, std::string* value,
             SequenceNumber* seq_found = nullptr);

  int NumFiles(int level) const { return static_cast<int>(files_[level].size()); }
  int64_t NumBytes(int level) const;

  std::string DebugString() const;

 private:
  friend class VersionSet;
  friend class Compaction;

  explicit Version(VersionSet* vset) : vset_(vset), compaction_score_(-1), compaction_level_(-1) {}
  ~Version() override;

  Iterator* NewConcatenatingIterator(const ReadOptions&, int level) const;

  VersionSet* vset_;
  // Files per level; level 0 is ordered newest-first (descending file
  // number), deeper levels are sorted by key range and disjoint.
  std::vector<FileRef> files_[kNumLevels];

  // Level that should be compacted next and its score (>= 1 means
  // compaction is needed). Filled by VersionSet::Finalize().
  double compaction_score_;
  int compaction_level_;
  // Score of every level (same formula), so the picker can fall through to
  // the next-best level when the best one is already being compacted.
  double level_scores_[kNumLevels] = {0};
};

class VersionSet {
 public:
  VersionSet(const std::string& dbname, const Options* options, TableCache* table_cache,
             const InternalKeyComparator* cmp, EpochManager* epochs);

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  ~VersionSet();

  // Apply *edit to the current version and install the result as the new
  // current version, persisting the edit to the manifest. Thread-safe:
  // internally serialized (the flush thread and every compaction worker
  // apply edits concurrently).
  Status LogAndApply(VersionEdit* edit);

  // Recover the last saved descriptor from persistent storage.
  Status Recover();

  // Reader access to the current version: non-blocking (epoch-protected
  // load + refcount bump). Caller must Unref() when done.
  Version* GetCurrent();

  // Current version without ref or epoch protection: safe ONLY while the
  // caller can rule out a concurrent InstallVersion (e.g. from inside
  // LogAndApply itself, or before background threads start).
  Version* current_unlocked() const { return current_.load(std::memory_order_acquire); }

  uint64_t NewFileNumber() { return next_file_number_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t ManifestFileNumber() const { return manifest_file_number_; }

  SequenceNumber LastSequence() const { return last_sequence_.load(std::memory_order_acquire); }
  void SetLastSequence(SequenceNumber s) { last_sequence_.store(s, std::memory_order_release); }

  uint64_t LogNumber() const { return log_number_.load(std::memory_order_acquire); }

  // Pick inputs for a new compaction; nullptr if none needed OR if every
  // level needing compaction is already owned by an in-flight job. Caller
  // owns the returned object (which pins the input version and files); the
  // job's levels stay excluded from picking until the object is destroyed,
  // so concurrent compactions never share an input file. Thread-safe.
  Compaction* PickCompaction();

  // Number of picked-but-not-yet-released compactions.
  int NumInFlightCompactions() const {
    return inflight_compactions_.load(std::memory_order_acquire);
  }

  // Times a newly picked job's input set intersected an in-flight job's —
  // a violation of the disjointness invariant. Always 0 by construction;
  // exported so stress tests can assert it.
  uint64_t InFlightOverlapViolations() const {
    return inflight_overlaps_.load(std::memory_order_relaxed);
  }

  // Iterator reading the entries of a compaction's inputs in merged order.
  Iterator* MakeInputIterator(Compaction* c);

  // The following readers are callable from any thread; they hold an epoch
  // guard across the pointer load + field read so a concurrent version
  // install cannot free the version under them.
  bool NeedsCompaction() const;
  int NumLevelFiles(int level) const;
  int64_t NumLevelBytes(int level) const;
  // Compaction-pressure score of level (>= 1 means compaction needed); the
  // per-level gauge exported in "clsm.stats.json".
  double LevelScore(int level) const;

  void AddLiveFiles(std::set<uint64_t>* live);

  // Once disabled, dropping the last reference to a file no longer removes
  // it from disk (used at shutdown: all files are live).
  void SetFileDeletionEnabled(bool enabled) {
    delete_unreferenced_files_.store(enabled, std::memory_order_release);
  }

  std::string LevelSummary() const;

  uint64_t MaxFileSizeForLevel(int level) const;

 private:
  class Builder;
  friend class Version;
  friend class Compaction;

  // Wrap a FileMetaData so that when the last Version referencing it dies,
  // the underlying table file is deleted (unless disabled).
  FileRef MakeFileRef(const FileMetaData& meta);
  void OnFileUnreferenced(FileMetaData* meta);

  void Finalize(Version* v);
  void InstallVersion(Version* v);
  Status WriteSnapshot(log::Writer* log);

  void GetRange(const std::vector<FileRef>& inputs, InternalKey* smallest, InternalKey* largest);
  void GetRange2(const std::vector<FileRef>& inputs1, const std::vector<FileRef>& inputs2,
                 InternalKey* smallest, InternalKey* largest);
  void GetOverlappingInputs(Version* v, int level, const InternalKey* begin,
                            const InternalKey* end, std::vector<FileRef>* inputs);
  void SetupOtherInputs(Compaction* c);

  // Registers c's levels/files as in-flight (pick_mutex_ held) /
  // releases them (called from ~Compaction).
  void RegisterInFlight(Compaction* c);
  void UnregisterInFlight(Compaction* c);

  Env* const env_;
  const std::string dbname_;
  const Options* const options_;
  TableCache* const table_cache_;
  const InternalKeyComparator icmp_;
  EpochManager* const epochs_;

  std::atomic<uint64_t> next_file_number_;
  uint64_t manifest_file_number_;
  std::atomic<SequenceNumber> last_sequence_;
  // Written under apply_mutex_ (LogAndApply) but read lock-free by the
  // maintenance thread (RemoveObsoleteFiles, log rotation bookkeeping).
  std::atomic<uint64_t> log_number_;

  // Opened lazily.
  std::unique_ptr<WritableFile> descriptor_file_;
  std::unique_ptr<log::Writer> descriptor_log_;

  std::atomic<Version*> current_;
  std::atomic<bool> delete_unreferenced_files_;
  // Serializes LogAndApply (manifest append + version install) across the
  // flush and compaction threads.
  std::mutex apply_mutex_;

  // Guards compaction picking: level_busy_, inflight_files_ and the
  // compact pointers. Never held across IO. Ordering: may be taken while
  // apply_mutex_ is held (Builder::Apply), never the other way around.
  mutable std::mutex pick_mutex_;
  // Levels owned by an in-flight compaction (a job at level L owns L and
  // L+1). Guarded by pick_mutex_.
  bool level_busy_[kNumLevels] = {false};
  // File numbers read by in-flight compactions (invariant checking).
  // Guarded by pick_mutex_.
  std::set<uint64_t> inflight_files_;
  std::atomic<int> inflight_compactions_{0};
  std::atomic<uint64_t> inflight_overlaps_{0};

  // Per-level key at which the next size-compaction should start.
  // Guarded by pick_mutex_.
  std::string compact_pointer_[kNumLevels];
};

// A compaction in progress (or picked and about to run).
class Compaction {
 public:
  ~Compaction();

  Compaction(const Compaction&) = delete;
  Compaction& operator=(const Compaction&) = delete;

  // Level being compacted: inputs_[0] from level(), inputs_[1] from
  // level()+1.
  int level() const { return level_; }

  VersionEdit* edit() { return &edit_; }

  int num_input_files(int which) const { return static_cast<int>(inputs_[which].size()); }
  FileMetaData* input(int which, int i) const { return inputs_[which][i].get(); }

  // Total bytes across both input levels.
  int64_t TotalInputBytes() const;

  // Numbers of every input file (both levels), for disjointness checks.
  std::vector<uint64_t> InputFileNumbers() const;

  uint64_t MaxOutputFileSize() const { return max_output_file_size_; }

  // True if the compaction can be implemented by moving a single input file
  // one level down without merging.
  bool IsTrivialMove() const;

  // Add all inputs as deletions to *edit.
  void AddInputDeletions(VersionEdit* edit);

  // True if all data for user_key at levels deeper than level()+1 is absent,
  // so a deletion marker surviving to level()+1 may be dropped.
  bool IsBaseLevelForKey(const Slice& user_key);

  void ReleaseInputs();

 private:
  friend class VersionSet;

  Compaction(const Options* options, int level, uint64_t max_output_file_size);

  int level_;
  uint64_t max_output_file_size_;
  VersionSet* vset_ = nullptr;  // for in-flight release at destruction
  Version* input_version_;
  VersionEdit edit_;

  std::vector<FileRef> inputs_[2];

  // State for IsBaseLevelForKey: position in each deeper level.
  size_t level_ptrs_[kNumLevels];
};

}  // namespace clsm

#endif  // CLSM_LSM_VERSION_SET_H_
