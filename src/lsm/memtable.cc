#include "src/lsm/memtable.h"

#include "src/obs/perf_context.h"
#include "src/util/coding.h"

namespace clsm {

static Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);  // +5: we assume p is not corrupted
  return Slice(p, len);
}

MemTable::MemTable(const InternalKeyComparator& comparator)
    : comparator_(comparator), table_(comparator_, &arena_) {}

int MemTable::KeyComparator::operator()(const char* aptr, const char* bptr) const {
  // Internal keys are encoded as length-prefixed strings.
  Slice a = GetLengthPrefixedSliceAt(aptr);
  Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

const char* MemTable::EncodeEntry(SequenceNumber seq, ValueType type, const Slice& key,
                                  const Slice& value) {
  // Format of an entry is concatenation of:
  //  key_size     : varint32 of internal_key.size()
  //  key bytes    : char[internal_key.size()]
  //  tag          : uint64((sequence << 8) | type)
  //  value_size   : varint32 of value.size()
  //  value bytes  : char[value.size()]
  size_t key_size = key.size();
  size_t val_size = value.size();
  size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) + internal_key_size +
                             VarintLength(val_size) + val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  std::memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  std::memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  return buf;
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key, const Slice& value) {
  table_.Insert(EncodeEntry(seq, type, key, value));
}

bool MemTable::AddIfNoConflict(SequenceNumber seq, ValueType type, const Slice& key,
                               const Slice& value, SequenceNumber read_seq) {
  const char* entry = EncodeEntry(seq, type, key, value);
  const Comparator* ucmp = comparator_.comparator.user_comparator();
  // Conflict detection per Algorithm 3: under newest-first internal-key
  // order, a version of `key` newer than `seq` sits at the predecessor and
  // one in (read_seq, seq) at the successor of the insertion point.
  auto conflict = [&](const char* prev, bool prev_is_head, const char* succ,
                      bool succ_at_end) -> bool {
    if (!prev_is_head) {
      Slice prev_ikey = GetLengthPrefixedSliceAt(prev);
      if (ucmp->Compare(ExtractUserKey(prev_ikey), key) == 0) {
        // Line 6: a newer version (seq' > seq >= read_seq) was inserted.
        return true;
      }
    }
    if (!succ_at_end) {
      Slice succ_ikey = GetLengthPrefixedSliceAt(succ);
      if (ucmp->Compare(ExtractUserKey(succ_ikey), key) == 0 &&
          ExtractSequence(succ_ikey) > read_seq) {
        // Line 8: a version newer than what we read was inserted.
        return true;
      }
    }
    return false;
  };
  return table_.InsertIfNoConflict(entry, conflict);
}

bool MemTable::Get(const LookupKey& lookup_key, std::string* value, Status* s,
                   SequenceNumber* seq_found) {
  CLSM_PERF_COUNT_ADD(memtable_probes, 1);
  Slice memkey = lookup_key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (iter.Valid()) {
    // The entry is the first with (user key >= lookup key's user key) and
    // sequence <= the lookup sequence. Check that the user key matches.
    const char* entry = iter.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    if (comparator_.comparator.user_comparator()->Compare(Slice(key_ptr, key_length - 8),
                                                          lookup_key.user_key()) == 0) {
      const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
      if (seq_found != nullptr) {
        *seq_found = tag >> 8;
      }
      switch (static_cast<ValueType>(tag & 0xff)) {
        case kTypeValue: {
          Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
          value->assign(v.data(), v.size());
          *s = Status::OK();
          return true;
        }
        case kTypeDeletion:
          *s = Status::NotFound(Slice());
          return true;
      }
    }
  }
  return false;
}

// Iterator over memtable entries, exposing internal keys and values.
class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  MemTableIterator(const MemTableIterator&) = delete;
  MemTableIterator& operator=(const MemTableIterator&) = delete;

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override {
    // Re-encode the internal key as a memtable key (length prefix).
    tmp_.clear();
    PutVarint32(&tmp_, static_cast<uint32_t>(k.size()));
    tmp_.append(k.data(), k.size());
    iter_.Seek(tmp_.data());
  }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixedSliceAt(iter_.key()); }
  Slice value() const override {
    Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }

  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string tmp_;  // For passing to Seek
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_); }

}  // namespace clsm
