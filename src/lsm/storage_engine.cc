#include "src/lsm/storage_engine.h"

#include <algorithm>
#include <chrono>

#include "src/lsm/filename.h"
#include "src/table/table_builder.h"
#include "src/util/coding.h"
#include "src/wal/log_reader.h"

namespace clsm {

static_assert(kNumLevels <= CompactionStats::kMaxLevels,
              "CompactionStats cannot hold per-level counters for every level");

void EncodeWalRecord(std::string* dst, SequenceNumber seq, ValueType type, const Slice& key,
                     const Slice& value) {
  PutVarint64(dst, seq);
  dst->push_back(static_cast<char>(type));
  PutLengthPrefixedSlice(dst, key);
  PutLengthPrefixedSlice(dst, value);
}

bool DecodeWalOpFrom(Slice* input, SequenceNumber* seq, ValueType* type, Slice* key,
                     Slice* value) {
  if (!GetVarint64(input, seq)) {
    return false;
  }
  if (input->empty()) {
    return false;
  }
  uint8_t t = static_cast<uint8_t>((*input)[0]);
  if (t > kTypeValue) {
    return false;
  }
  *type = static_cast<ValueType>(t);
  input->remove_prefix(1);
  return GetLengthPrefixedSlice(input, key) && GetLengthPrefixedSlice(input, value);
}

bool DecodeWalRecord(Slice input, SequenceNumber* seq, ValueType* type, Slice* key, Slice* value) {
  return DecodeWalOpFrom(&input, seq, type, key, value) && input.empty();
}

StorageEngine::StorageEngine(const Options& options, const std::string& dbname)
    : options_(options),
      dbname_(dbname),
      env_(options.env != nullptr ? options.env : Env::Default()),
      icmp_(options.comparator != nullptr ? options.comparator : BytewiseComparator()),
      listeners_(options.listeners) {
  options_.env = env_;
  options_.comparator = icmp_.user_comparator();
  if (options_.bloom_bits_per_key > 0) {
    user_filter_policy_.reset(NewBloomFilterPolicy(options_.bloom_bits_per_key));
    filter_policy_ = std::make_unique<InternalFilterPolicy>(user_filter_policy_.get());
  }
  if (options_.block_cache_size > 0) {
    block_cache_.reset(NewLRUCache(options_.block_cache_size));
  }
  table_cache_ = std::make_unique<TableCache>(dbname_, options_, &icmp_, filter_policy_.get(),
                                              block_cache_.get(), 1000);
  versions_ = std::make_unique<VersionSet>(dbname_, &options_, table_cache_.get(), &icmp_,
                                           &epochs_);
}

StorageEngine::~StorageEngine() { StopCompactionScheduler(); }

void StorageEngine::RecordBackgroundError(BgErrorReason reason, const Status& s) {
  if (s.ok()) {
    return;
  }
  const BgErrorSeverity sev = bg_error_.Record(reason, s);
  listeners_.NotifyBackgroundError(BackgroundErrorInfo{reason, sev, s});
}

void StorageEngine::RemoveFileTracked(const std::string& fname) {
  Status s = env_->RemoveFile(fname);
  if (!s.ok()) {
    // A leaked file loses no data: report (gauge + listener) but do not
    // latch — latching would wrongly push the store read-only.
    cleanup_failures_.fetch_add(1, std::memory_order_relaxed);
    listeners_.NotifyBackgroundError(
        BackgroundErrorInfo{BgErrorReason::kFileCleanup, BgErrorSeverity::kSoft, s});
  }
}

void StorageEngine::StartCompactionScheduler(int num_threads,
                                             std::function<SequenceNumber()> smallest_snapshot,
                                             std::function<void(const Status&)> on_error) {
  assert(compaction_workers_.empty());
  sched_smallest_snapshot_ = std::move(smallest_snapshot);
  sched_on_error_ = std::move(on_error);
  sched_shutdown_.store(false, std::memory_order_release);
  const int n = std::max(1, num_threads);
  compaction_workers_.reserve(n);
  for (int i = 0; i < n; i++) {
    compaction_workers_.emplace_back([this] { CompactionWorkerLoop(); });
  }
}

void StorageEngine::StopCompactionScheduler() {
  sched_shutdown_.store(true, std::memory_order_release);
  sched_cv_.notify_all();
  for (std::thread& w : compaction_workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  compaction_workers_.clear();
}

void StorageEngine::SignalCompaction() { sched_cv_.notify_all(); }

void StorageEngine::CompactionWorkerLoop() {
  int idle_rounds = 0;
  while (!sched_shutdown_.load(std::memory_order_acquire)) {
    // Picking marks the job's levels in-flight, so concurrent workers
    // always obtain disjoint file sets (or nullptr).
    std::unique_ptr<Compaction> c(versions_->PickCompaction());
    if (c == nullptr) {
      std::unique_lock<std::mutex> l(sched_mutex_);
      if (sched_shutdown_.load(std::memory_order_acquire)) {
        return;
      }
      // Re-check under the lock is pointless (picking is independently
      // locked); the timed wait doubles as a poll for work that became
      // pickable without a signal. Back off while idle so surplus workers
      // don't burn cycles re-picking nothing — flushes and stalled writers
      // signal immediately when work appears.
      idle_rounds = std::min(idle_rounds + 1, 10);
      sched_cv_.wait_for(l, std::chrono::milliseconds(2 * idle_rounds));
      continue;
    }
    idle_rounds = 0;
    const SequenceNumber smallest_snapshot =
        sched_smallest_snapshot_ ? sched_smallest_snapshot_() : kMaxSequenceNumber;
    Status s = RunCompaction(c.get(), smallest_snapshot);
    c.reset();  // releases the in-flight levels (after the edit install)
    if (!s.ok()) {
      // RunCompaction already latched the background error; the callback
      // only wakes the owning DB (stalled writers re-check the state).
      if (sched_on_error_) {
        sched_on_error_(s);
      }
      // Back off instead of hot-looping on a persistent failure (the level
      // stays pickable because its score never dropped).
      std::unique_lock<std::mutex> l(sched_mutex_);
      sched_cv_.wait_for(l, std::chrono::milliseconds(10));
      continue;
    }
    // The result may have made a deeper level pickable for an idle peer.
    sched_cv_.notify_one();
  }
}

Status StorageEngine::NewDB() {
  VersionEdit new_db;
  new_db.SetComparatorName(icmp_.user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(manifest, &file);
  if (!s.ok()) {
    return s;
  }
  {
    log::Writer log(file.get());
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(record);
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
  }
  if (s.ok()) {
    // Make "CURRENT" file that points to the new manifest file.
    s = SetCurrentFile(env_, dbname_, 1);
  } else {
    RemoveFileTracked(manifest);
  }
  return s;
}

Status StorageEngine::Open(MemTable** recovered_mem, SequenceNumber* max_seq) {
  *recovered_mem = nullptr;
  *max_seq = 0;

  env_->CreateDir(dbname_);
  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (!options_.create_if_missing) {
      return Status::InvalidArgument(dbname_, "does not exist (create_if_missing is false)");
    }
    Status s = NewDB();
    if (!s.ok()) {
      return s;
    }
  } else if (options_.error_if_exists) {
    return Status::InvalidArgument(dbname_, "exists (error_if_exists is true)");
  }

  Status s = versions_->Recover();
  if (!s.ok()) {
    return s;
  }

  // Replay WAL files newer than the version set's log number, oldest first.
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) {
    return s;
  }
  std::vector<uint64_t> logs;
  for (const auto& filename : filenames) {
    uint64_t number;
    FileType type;
    if (ParseFileName(filename, &number, &type) && type == kLogFile &&
        number >= versions_->LogNumber()) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());

  SequenceNumber seq = versions_->LastSequence();
  MemTable* mem = nullptr;
  for (uint64_t log_number : logs) {
    if (mem == nullptr) {
      mem = new MemTable(icmp_);
    }
    s = RecoverLogFile(log_number, mem, &seq);
    if (!s.ok()) {
      mem->Unref();
      return s;
    }
  }
  if (seq > versions_->LastSequence()) {
    versions_->SetLastSequence(seq);
  }
  *recovered_mem = mem;
  *max_seq = seq;
  return Status::OK();
}

Status StorageEngine::RecoverLogFile(uint64_t log_number, MemTable* mem, SequenceNumber* max_seq) {
  struct LogReporter : public log::Reader::Reporter {
    Status* status;
    uint64_t dropped_bytes = 0;
    void Corruption(size_t bytes, const Status& s) override {
      dropped_bytes += bytes;
      if (status->ok()) {
        *status = s;
      }
    }
  };

  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }

  Status corruption_status;
  LogReporter reporter;
  reporter.status = &corruption_status;
  log::Reader reader(file.get(), &reporter, true /*checksum*/, 0);

  // The asynchronous logger writes records out of order; collect them all,
  // sort by timestamp, and replay (paper §4: "the correct order is easily
  // restored upon recovery" from the cLSM-generated timestamps).
  struct Op {
    SequenceNumber seq;
    ValueType type;
    std::string key;
    std::string value;
  };
  std::vector<Op> ops;

  Slice record;
  std::string scratch;
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.empty()) {
      // Zero-length records are durability barriers emitted by synchronous
      // group commits; they carry no operation.
      continue;
    }
    // A record may hold several operations (atomic batch): all or nothing.
    Slice rest = record;
    std::vector<Op> record_ops;
    while (!rest.empty()) {
      SequenceNumber seq;
      ValueType type;
      Slice key, value;
      if (!DecodeWalOpFrom(&rest, &seq, &type, &key, &value)) {
        return Status::Corruption("malformed WAL record", fname);
      }
      record_ops.push_back(Op{seq, type, key.ToString(), value.ToString()});
    }
    ops.insert(ops.end(), record_ops.begin(), record_ops.end());
  }
  if (!corruption_status.ok()) {
    // A crash can tear the unsynced tail of the last WAL mid-block; the
    // reader resyncs and reports the damaged span. Acked synchronous
    // writes are always in the synced prefix, so dropping the tail loses
    // nothing the store promised to keep. Only paranoid mode refuses to
    // open; otherwise count what was dropped and recover the rest.
    if (options_.paranoid_checks) {
      return corruption_status;
    }
    wal_recovery_drops_.fetch_add(reporter.dropped_bytes > 0 ? reporter.dropped_bytes : 1,
                                  std::memory_order_relaxed);
  }

  std::stable_sort(ops.begin(), ops.end(), [](const Op& a, const Op& b) { return a.seq < b.seq; });
  for (const Op& op : ops) {
    mem->Add(op.seq, op.type, op.key, op.value);
    if (op.seq > *max_seq) {
      *max_seq = op.seq;
    }
  }
  return Status::OK();
}

Status StorageEngine::Get(const ReadOptions& options, const LookupKey& lookup_key,
                          std::string* value, SequenceNumber* seq_found) {
  Version* v = versions_->GetCurrent();
  Status s = v->Get(options, lookup_key, value, seq_found);
  v->Unref();
  return s;
}

Version* StorageEngine::AddVersionIterators(const ReadOptions& options,
                                            std::vector<Iterator*>* iters) {
  Version* v = versions_->GetCurrent();
  v->AddIterators(options, iters);
  return v;
}

Status StorageEngine::BuildTable(Iterator* iter, FileMetaData* meta) {
  meta->file_size = 0;
  iter->SeekToFirst();
  if (!iter->Valid()) {
    return Status::OK();  // empty: caller checks file_size == 0
  }

  std::string fname = TableFileName(dbname_, meta->number);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }

  TableBuilder builder(options_, &icmp_, filter_policy_.get(), file.get());
  meta->smallest.DecodeFrom(iter->key());
  Slice key;
  for (; iter->Valid(); iter->Next()) {
    key = iter->key();
    builder.Add(key, iter->value());
  }
  if (!key.empty()) {
    meta->largest.DecodeFrom(key);
  }

  s = builder.Finish();
  if (s.ok()) {
    meta->file_size = builder.FileSize();
    assert(meta->file_size > 0);
  }

  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (s.ok()) {
    s = iter->status();
  }
  if (!s.ok() || meta->file_size == 0) {
    RemoveFileTracked(fname);
  }
  return s;
}

Status StorageEngine::FlushMemTable(MemTable* mem, uint64_t log_number) {
  FlushJobInfo info;
  info.memtable_entries = mem->NumEntries();
  info.memtable_bytes = mem->ApproximateMemoryUsage();
  listeners_.NotifyFlushBegin(info);
  const uint64_t t0 = MonotonicNanos();

  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  std::unique_ptr<Iterator> iter(mem->NewIterator());

  Status s = BuildTable(iter.get(), &meta);
  if (!s.ok()) {
    RecordBackgroundError(BgErrorReason::kFlush, s);
  } else {
    VersionEdit edit;
    if (meta.file_size > 0) {
      edit.AddFile(0, meta.number, meta.file_size, meta.smallest, meta.largest);
    }
    edit.SetLogNumber(log_number);
    s = versions_->LogAndApply(&edit);
    if (!s.ok()) {
      RecordBackgroundError(BgErrorReason::kManifestWrite, s);
    }
  }

  const uint64_t nanos = MonotonicNanos() - t0;
  compaction_stats_.flush_count.fetch_add(1, std::memory_order_relaxed);
  compaction_stats_.flush_bytes_written.fetch_add(meta.file_size, std::memory_order_relaxed);
  compaction_stats_.flush_micros.fetch_add(nanos / 1000, std::memory_order_relaxed);
  if (registry_ != nullptr) {
    registry_->Record(OpMetric::kFlush, nanos);
  }
  info.output_file_size = meta.file_size;
  info.micros = nanos / 1000;
  listeners_.NotifyFlushEnd(info);
  return s;
}

Status StorageEngine::CommitLogRotation(uint64_t log_number) {
  VersionEdit edit;
  edit.SetLogNumber(log_number);
  Status s = versions_->LogAndApply(&edit);
  if (!s.ok()) {
    RecordBackgroundError(BgErrorReason::kManifestWrite, s);
  }
  return s;
}

Status StorageEngine::CompactOnce(SequenceNumber smallest_snapshot, bool* did_work) {
  *did_work = false;
  std::unique_ptr<Compaction> c(versions_->PickCompaction());
  if (c == nullptr) {
    return Status::OK();
  }
  *did_work = true;
  return RunCompaction(c.get(), smallest_snapshot);
}

Status StorageEngine::RunCompaction(Compaction* c, SequenceNumber smallest_snapshot) {
  CompactionStats::LevelStats& stats = compaction_stats_.level(c->level());
  const uint64_t t0 = MonotonicNanos();
  stats.compactions.fetch_add(1, std::memory_order_relaxed);

  CompactionJobInfo info;
  info.level = c->level();
  info.trivial_move = c->IsTrivialMove();
  info.bytes_read = info.trivial_move ? 0 : static_cast<uint64_t>(c->TotalInputBytes());
  listeners_.NotifyCompactionBegin(info);

  Status s;
  BgErrorReason fail_reason = BgErrorReason::kCompaction;
  if (c->IsTrivialMove()) {
    // Move the file down one level without rewriting it (no IO: the move
    // contributes to the job count but not to bytes read/written).
    FileMetaData* f = c->input(0, 0);
    c->edit()->RemoveFile(c->level(), f->number);
    c->edit()->AddFile(c->level() + 1, f->number, f->file_size, f->smallest, f->largest);
    stats.trivial_moves.fetch_add(1, std::memory_order_relaxed);
    s = versions_->LogAndApply(c->edit());
    fail_reason = BgErrorReason::kManifestWrite;
  } else {
    uint64_t bytes_written = 0;
    stats.bytes_read.fetch_add(info.bytes_read, std::memory_order_relaxed);
    s = DoCompactionWork(c, smallest_snapshot, &bytes_written, &fail_reason);
    stats.bytes_written.fetch_add(bytes_written, std::memory_order_relaxed);
    info.bytes_written = bytes_written;
  }
  if (!s.ok()) {
    RecordBackgroundError(fail_reason, s);
  }

  const uint64_t nanos = MonotonicNanos() - t0;
  stats.micros.fetch_add(nanos / 1000, std::memory_order_relaxed);
  if (registry_ != nullptr) {
    registry_->Record(OpMetric::kCompaction, nanos);
  }
  info.micros = nanos / 1000;
  listeners_.NotifyCompactionEnd(info);
  return s;
}

Status StorageEngine::DoCompactionWork(Compaction* c, SequenceNumber smallest_snapshot,
                                       uint64_t* bytes_written, BgErrorReason* fail_reason) {
  *bytes_written = 0;
  *fail_reason = BgErrorReason::kCompaction;
  // kMaxSequenceNumber doubles as the "newest entry seen so far" sentinel in
  // the drop rule below; a caller passing it as "no snapshots" must not make
  // the sentinel itself satisfy last_sequence_for_key <= smallest_snapshot.
  if (smallest_snapshot >= kMaxSequenceNumber) {
    smallest_snapshot = kMaxSequenceNumber - 1;
  }
  std::unique_ptr<Iterator> input(versions_->MakeInputIterator(c));
  input->SeekToFirst();

  Status s;
  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  std::unique_ptr<WritableFile> outfile;
  std::unique_ptr<TableBuilder> builder;
  FileMetaData output_meta;
  std::vector<FileMetaData> outputs;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) {
      return Status::OK();
    }
    Status fs = builder->Finish();
    if (fs.ok()) {
      output_meta.file_size = builder->FileSize();
      fs = outfile->Sync();
    }
    if (fs.ok()) {
      fs = outfile->Close();
    }
    if (fs.ok() && output_meta.file_size > 0) {
      outputs.push_back(output_meta);
    }
    builder.reset();
    outfile.reset();
    return fs;
  };

  const Comparator* ucmp = icmp_.user_comparator();
  for (; input->Valid() && s.ok(); input->Next()) {
    Slice key = input->key();

    bool drop = false;
    ParsedInternalKey ikey;
    if (!ParseInternalKey(key, &ikey)) {
      // Do not hide corruption: pass it through.
      current_user_key.clear();
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!has_current_user_key || ucmp->Compare(ikey.user_key, Slice(current_user_key)) != 0) {
        // First occurrence (newest version) of this user key.
        current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }

      if (last_sequence_for_key <= smallest_snapshot) {
        // Hidden by a newer entry that is itself visible at or below the
        // oldest snapshot — no snapshot can observe this version (§3.2.1:
        // for every key and snapshot, keep only the latest version not
        // exceeding the snapshot's timestamp).
        drop = true;
      } else if (ikey.type == kTypeDeletion && ikey.sequence <= smallest_snapshot &&
                 c->IsBaseLevelForKey(ikey.user_key)) {
        // The deletion marker is invisible to all snapshots and there is no
        // older version underneath it to resurrect: drop the marker itself.
        drop = true;
      }

      last_sequence_for_key = ikey.sequence;
    }

    if (!drop) {
      // Open output file if necessary.
      if (builder == nullptr) {
        output_meta = FileMetaData();
        output_meta.number = versions_->NewFileNumber();
        std::string fname = TableFileName(dbname_, output_meta.number);
        s = env_->NewWritableFile(fname, &outfile);
        if (!s.ok()) {
          break;
        }
        builder = std::make_unique<TableBuilder>(options_, &icmp_, filter_policy_.get(),
                                                 outfile.get());
        output_meta.smallest.DecodeFrom(key);
      }
      output_meta.largest.DecodeFrom(key);
      builder->Add(key, input->value());

      if (builder->FileSize() >= c->MaxOutputFileSize()) {
        s = finish_output();
        if (!s.ok()) {
          break;
        }
      }
    }
  }

  if (s.ok()) {
    s = input->status();
  }
  if (s.ok()) {
    s = finish_output();
  } else if (builder != nullptr) {
    builder->Abandon();
    builder.reset();
    outfile.reset();
  }
  input.reset();

  if (s.ok()) {
    c->AddInputDeletions(c->edit());
    for (const FileMetaData& out : outputs) {
      c->edit()->AddFile(c->level() + 1, out.number, out.file_size, out.smallest, out.largest);
      *bytes_written += out.file_size;
    }
    s = versions_->LogAndApply(c->edit());
    if (!s.ok()) {
      *fail_reason = BgErrorReason::kManifestWrite;
    }
  }
  if (!s.ok()) {
    // Discard any outputs we managed to write; they were never installed.
    for (const FileMetaData& out : outputs) {
      RemoveFileTracked(TableFileName(dbname_, out.number));
    }
  }
  c->ReleaseInputs();
  return s;
}

Status StorageEngine::NewLog(uint64_t* log_number, std::unique_ptr<AsyncLogger>* logger) {
  *log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(LogFileName(dbname_, *log_number), &file);
  if (!s.ok()) {
    return s;
  }
  *logger = std::make_unique<AsyncLogger>(std::move(file));
  if (!listeners_.empty()) {
    // Safe: set before the logger is published to writers, and the engine
    // (hence listeners_) outlives every WAL it hands out.
    (*logger)->set_sync_hook([this](uint64_t records, uint64_t micros) {
      listeners_.NotifyWalSync(WalSyncInfo{records, micros});
    });
  }
  // The first append or sync failure on the logger thread latches the
  // store's background error even when no writer ever reads a Status
  // (async appends have no caller to return to).
  (*logger)->set_error_hook([this](const Status& es, bool sync_path) {
    RecordBackgroundError(sync_path ? BgErrorReason::kWalSync : BgErrorReason::kWalAppend, es);
  });
  return Status::OK();
}

void StorageEngine::RemoveObsoleteFiles(uint64_t min_live_log_number, bool include_tables) {
  std::set<uint64_t> live;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  env_->GetChildren(dbname_, &filenames);
  for (const std::string& filename : filenames) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(filename, &number, &type)) {
      continue;
    }
    bool keep = true;
    switch (type) {
      case kLogFile:
        keep = (number >= min_live_log_number && number >= versions_->LogNumber());
        break;
      case kDescriptorFile:
        keep = (number >= versions_->ManifestFileNumber());
        break;
      case kTableFile:
        keep = !include_tables || (live.find(number) != live.end());
        break;
      case kTempFile:
        keep = false;
        break;
      case kCurrentFile:
      case kDBLockFile:
        keep = true;
        break;
    }
    if (!keep) {
      if (type == kTableFile) {
        table_cache_->Evict(number);
      }
      RemoveFileTracked(dbname_ + "/" + filename);
    }
  }
}

}  // namespace clsm
