#include "src/lsm/repair.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/lsm/dbformat.h"
#include "src/lsm/filename.h"
#include "src/lsm/memtable.h"
#include "src/lsm/storage_engine.h"
#include "src/lsm/version_edit.h"
#include "src/table/table.h"
#include "src/table/table_builder.h"
#include "src/util/env.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace clsm {

namespace {

class Repairer {
 public:
  Repairer(const Options& options, const std::string& dbname)
      : options_(options),
        dbname_(dbname),
        env_(options.env != nullptr ? options.env : Env::Default()),
        icmp_(options.comparator != nullptr ? options.comparator : BytewiseComparator()),
        next_file_number_(1),
        max_sequence_(0) {
    options_.env = env_;
    options_.comparator = icmp_.user_comparator();
  }

  Status Run() {
    Status s = FindFiles();
    if (!s.ok()) {
      return s;
    }
    ConvertLogFilesToTables();
    ScanTables();
    s = WriteDescriptor();
    if (s.ok()) {
      fprintf(stderr, "repair: recovered %zu tables, max timestamp %llu\n", tables_.size(),
              static_cast<unsigned long long>(max_sequence_));
    }
    return s;
  }

 private:
  struct TableInfo {
    uint64_t number;
    uint64_t file_size;
    InternalKey smallest;
    InternalKey largest;
    SequenceNumber max_sequence;
  };

  Status FindFiles() {
    std::vector<std::string> filenames;
    Status s = env_->GetChildren(dbname_, &filenames);
    if (!s.ok()) {
      return s;
    }
    if (filenames.empty()) {
      return Status::IOError(dbname_, "repair found no files");
    }
    for (const std::string& f : filenames) {
      uint64_t number;
      FileType type;
      if (!ParseFileName(f, &number, &type)) {
        continue;
      }
      next_file_number_ = std::max(next_file_number_, number + 1);
      if (type == kLogFile) {
        logs_.push_back(number);
      } else if (type == kTableFile) {
        table_numbers_.push_back(number);
      }
      // Old descriptors are ignored; a new one is written at the end.
    }
    std::sort(logs_.begin(), logs_.end());
    return Status::OK();
  }

  void ConvertLogFilesToTables() {
    for (uint64_t log_number : logs_) {
      Status s = ConvertOneLog(log_number);
      if (!s.ok()) {
        fprintf(stderr, "repair: skipping log %llu: %s\n",
                static_cast<unsigned long long>(log_number), s.ToString().c_str());
      }
      // Keep the log file; the obsolete-file sweep at the next open removes
      // it once the new manifest's log number supersedes it.
    }
  }

  Status ConvertOneLog(uint64_t log_number) {
    std::string fname = LogFileName(dbname_, log_number);
    std::unique_ptr<SequentialFile> file;
    Status s = env_->NewSequentialFile(fname, &file);
    if (!s.ok()) {
      return s;
    }

    struct IgnoreReporter : public log::Reader::Reporter {
      void Corruption(size_t bytes, const Status& status) override {
        fprintf(stderr, "repair: log corruption, %zu bytes dropped: %s\n", bytes,
                status.ToString().c_str());
      }
    };
    IgnoreReporter reporter;
    log::Reader reader(file.get(), &reporter, false /*tolerate bad checksums*/, 0);

    MemTable* mem = new MemTable(icmp_);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      Slice rest = record;
      while (!rest.empty()) {
        SequenceNumber seq;
        ValueType type;
        Slice key, value;
        if (!DecodeWalOpFrom(&rest, &seq, &type, &key, &value)) {
          break;  // salvage what we already decoded from this record
        }
        mem->Add(seq, type, key, value);
        max_sequence_ = std::max(max_sequence_, seq);
      }
    }

    if (mem->NumEntries() == 0) {
      mem->Unref();
      return Status::OK();
    }

    // Build a table from the salvaged entries.
    TableInfo info;
    info.number = next_file_number_++;
    std::string table_name = TableFileName(dbname_, info.number);
    std::unique_ptr<WritableFile> out;
    s = env_->NewWritableFile(table_name, &out);
    if (!s.ok()) {
      mem->Unref();
      return s;
    }
    {
      TableBuilder builder(options_, &icmp_, nullptr, out.get());
      std::unique_ptr<Iterator> iter(mem->NewIterator());
      iter->SeekToFirst();
      info.smallest.DecodeFrom(iter->key());
      Slice last;
      for (; iter->Valid(); iter->Next()) {
        last = iter->key();
        builder.Add(iter->key(), iter->value());
      }
      info.largest.DecodeFrom(last);
      s = builder.Finish();
      info.file_size = builder.FileSize();
    }
    if (s.ok()) {
      s = out->Sync();
    }
    if (s.ok()) {
      s = out->Close();
    }
    mem->Unref();
    if (s.ok()) {
      info.max_sequence = max_sequence_;
      tables_.push_back(info);
    } else {
      env_->RemoveFile(table_name);
    }
    return s;
  }

  void ScanTables() {
    for (uint64_t number : table_numbers_) {
      TableInfo info;
      info.number = number;
      Status s = ScanOneTable(&info);
      if (s.ok()) {
        tables_.push_back(info);
      } else {
        fprintf(stderr, "repair: skipping unreadable table %llu: %s\n",
                static_cast<unsigned long long>(number), s.ToString().c_str());
      }
    }
  }

  Status ScanOneTable(TableInfo* info) {
    std::string fname = TableFileName(dbname_, info->number);
    Status s = env_->GetFileSize(fname, &info->file_size);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<RandomAccessFile> file;
    s = env_->NewRandomAccessFile(fname, &file);
    if (!s.ok()) {
      return s;
    }
    Table* table = nullptr;
    s = Table::Open(options_, &icmp_, nullptr, nullptr, file.get(), info->file_size, &table);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<Table> owned(table);

    ReadOptions ro;
    ro.verify_checksums = true;
    std::unique_ptr<Iterator> iter(table->NewIterator(ro));
    bool first = true;
    SequenceNumber table_max = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(iter->key(), &parsed)) {
        return Status::Corruption("unparsable internal key in table", fname);
      }
      if (first) {
        info->smallest.DecodeFrom(iter->key());
        first = false;
      }
      info->largest.DecodeFrom(iter->key());
      table_max = std::max(table_max, parsed.sequence);
    }
    if (first) {
      return Status::Corruption("empty or unreadable table", fname);
    }
    if (!iter->status().ok()) {
      return iter->status();
    }
    info->max_sequence = table_max;
    max_sequence_ = std::max(max_sequence_, table_max);
    return Status::OK();
  }

  Status WriteDescriptor() {
    VersionEdit edit;
    edit.SetComparatorName(icmp_.user_comparator()->Name());
    // Fresh log number: every scavenged log is now superseded.
    const uint64_t new_log_number = next_file_number_++;
    edit.SetLogNumber(new_log_number);
    edit.SetLastSequence(max_sequence_);

    // Everything goes to level 0; newest-first probing is by file number,
    // so order tables by their max timestamp via renumbering if needed. We
    // keep original numbers — level-0 probe order (descending number) may
    // differ from timestamp order, but Get() at a given snapshot is still
    // correct because each probe filters by sequence; only a same-key
    // same-sequence duplicate could mislead, which cannot occur (timestamps
    // are unique).
    for (const TableInfo& t : tables_) {
      edit.AddFile(0, t.number, t.file_size, t.smallest, t.largest);
    }
    const uint64_t manifest_number = next_file_number_++;
    edit.SetNextFile(next_file_number_);

    std::string manifest_name = DescriptorFileName(dbname_, manifest_number);
    std::unique_ptr<WritableFile> manifest_file;
    Status s = env_->NewWritableFile(manifest_name, &manifest_file);
    if (!s.ok()) {
      return s;
    }
    {
      log::Writer writer(manifest_file.get());
      std::string record;
      edit.EncodeTo(&record);
      s = writer.AddRecord(record);
    }
    if (s.ok()) {
      s = manifest_file->Sync();
    }
    if (s.ok()) {
      s = manifest_file->Close();
    }
    if (!s.ok()) {
      env_->RemoveFile(manifest_name);
      return s;
    }
    return SetCurrentFile(env_, dbname_, manifest_number);
  }

  Options options_;
  const std::string dbname_;
  Env* env_;
  InternalKeyComparator icmp_;

  std::vector<uint64_t> logs_;
  std::vector<uint64_t> table_numbers_;
  std::vector<TableInfo> tables_;
  uint64_t next_file_number_;
  SequenceNumber max_sequence_;
};

}  // namespace

Status RepairDb(const Options& options, const std::string& dbname) {
  Repairer repairer(options, dbname);
  return repairer.Run();
}

}  // namespace clsm
