// The in-memory component Cm: a multi-versioned map over the lock-free
// concurrent skip list. Thread-safe lock-free Add/Get (paper §3.1), plus
// the Algorithm-3 conditional insert used by atomic read-modify-write.
// Reference-counted: the store holds one reference; readers and iterators
// take additional ones under epoch protection (§3.1's per-component
// reference counters).
#ifndef CLSM_LSM_MEMTABLE_H_
#define CLSM_LSM_MEMTABLE_H_

#include <string>

#include "src/arena/arena.h"
#include "src/lsm/dbformat.h"
#include "src/skiplist/concurrent_skiplist.h"
#include "src/sync/ref_guard.h"
#include "src/table/iterator.h"

namespace clsm {

class MemTable : public RefCounted {
 public:
  explicit MemTable(const InternalKeyComparator& comparator);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Approximate bytes in use (drives the roll to an immutable component).
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  size_t NumEntries() const { return table_.ApproxCount(); }

  // Iterator over internal keys (for flush-to-disk and snapshot scans).
  // The caller must hold a reference to the memtable for the iterator's
  // lifetime. Weakly consistent under concurrent Adds.
  Iterator* NewIterator();

  // Insert an entry for (key, seq, type) mapping to value. Thread-safe,
  // lock-free; concurrent Adds for the same user key are fine because each
  // carries a unique timestamp.
  void Add(SequenceNumber seq, ValueType type, const Slice& key, const Slice& value);

  // Point lookup as of the sequence embedded in lookup_key: if a version
  // exists, returns true and sets *s to OK with *value filled (kTypeValue)
  // or to NotFound (kTypeDeletion). If no version exists, returns false.
  // If seq_found is non-null it receives the version's timestamp.
  bool Get(const LookupKey& lookup_key, std::string* value, Status* s,
           SequenceNumber* seq_found = nullptr);

  // Algorithm 3 support: insert (key, seq, type, value) only if no version
  // of key newer than read_seq exists (and loses no race). Returns false on
  // conflict; the caller re-reads and retries with a fresh timestamp.
  bool AddIfNoConflict(SequenceNumber seq, ValueType type, const Slice& key, const Slice& value,
                       SequenceNumber read_seq);

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    // Entries are length-prefixed internal keys followed by values.
    int operator()(const char* a, const char* b) const;
  };

  typedef ConcurrentSkipList<const char*, KeyComparator> Table;

  ~MemTable() override = default;  // only via Unref()

  // Encodes an entry into the arena; returns the entry pointer.
  const char* EncodeEntry(SequenceNumber seq, ValueType type, const Slice& key,
                          const Slice& value);

  KeyComparator comparator_;
  ConcurrentArena arena_;
  Table table_;
};

}  // namespace clsm

#endif  // CLSM_LSM_MEMTABLE_H_
