#include "src/util/fault_env.h"

#include <chrono>
#include <thread>

namespace clsm {

namespace {
Status PowerOff(const char* op) {
  return Status::IOError("simulated power loss", op);
}
}  // namespace

// ---- wrapped file types ----------------------------------------------

class FaultInjectionEnv::FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(FaultInjectionEnv* env, std::string fname,
                     std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    if (env_->CheckCrash()) {
      return PowerOff("Append");
    }
    if (env_->ShouldFailWrite()) {
      return Status::IOError("injected fault: Append");
    }
    Status s = base_->Append(data);
    if (s.ok()) {
      env_->RecordAppend(fname_, data.size());
    }
    return s;
  }
  Status Close() override {
    // Always close the base file (release the fd) even when "crashed" —
    // the process is still alive, only the simulated disk is gone.
    Status s = base_->Close();
    if (env_->crashed()) {
      return PowerOff("Close");
    }
    return s;
  }
  Status Flush() override {
    if (env_->CheckCrash()) {
      return PowerOff("Flush");
    }
    if (env_->ShouldFailWrite()) {
      return Status::IOError("injected fault: Flush");
    }
    return base_->Flush();
  }
  Status Sync() override {
    if (env_->CheckCrash()) {
      return PowerOff("Sync");
    }
    if (env_->ShouldFailWrite() || env_->ShouldFailSync()) {
      return Status::IOError("injected fault: Sync");
    }
    env_->MaybeDelaySync();
    Status s = base_->Sync();
    if (s.ok()) {
      env_->RecordSync(fname_);
    }
    return s;
  }

 private:
  FaultInjectionEnv* env_;
  std::string fname_;
  std::unique_ptr<WritableFile> base_;
};

class FaultInjectionEnv::FaultySequentialFile final : public SequentialFile {
 public:
  FaultySequentialFile(FaultInjectionEnv* env, std::unique_ptr<SequentialFile> base)
      : env_(env), base_(std::move(base)) {}
  Status Read(size_t n, Slice* result, char* scratch) override {
    if (env_->ShouldFailRead()) {
      return Status::IOError("injected fault: Read");
    }
    return base_->Read(n, result, scratch);
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<SequentialFile> base_;
};

class FaultInjectionEnv::FaultyRandomAccessFile final : public RandomAccessFile {
 public:
  FaultyRandomAccessFile(FaultInjectionEnv* env, std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}
  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    if (env_->ShouldFailRead()) {
      return Status::IOError("injected fault: Read");
    }
    return base_->Read(offset, n, result, scratch);
  }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
};

// ---- injector internals ----------------------------------------------

bool FaultInjectionEnv::CheckCrash() {
  if (crashed_.load(std::memory_order_acquire)) {
    return true;
  }
  if (kill_armed_.load(std::memory_order_acquire)) {
    if (kill_countdown_.fetch_sub(1, std::memory_order_acq_rel) <= 1) {
      SimulateCrash();
      return true;
    }
  }
  return false;
}

bool FaultInjectionEnv::ShouldFailWrite() {
  if (!fail_writes_.load(std::memory_order_acquire)) {
    return false;
  }
  if (write_countdown_.fetch_sub(1, std::memory_order_acq_rel) <= 1) {
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjectionEnv::ShouldFailSync() {
  int left = sync_failures_left_.load(std::memory_order_acquire);
  while (left > 0) {
    if (sync_failures_left_.compare_exchange_weak(left, left - 1,
                                                  std::memory_order_acq_rel)) {
      write_failures_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void FaultInjectionEnv::MaybeDelaySync() {
  const uint64_t micros = sync_delay_micros_.load(std::memory_order_acquire);
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

void FaultInjectionEnv::RecordAppend(const std::string& fname, uint64_t bytes) {
  std::lock_guard<std::mutex> l(files_mutex_);
  files_[fname].pos += bytes;
}

void FaultInjectionEnv::RecordSync(const std::string& fname) {
  std::lock_guard<std::mutex> l(files_mutex_);
  FileState& st = files_[fname];
  st.synced_pos = st.pos;
  st.ever_synced = true;
}

// ---- crash recovery ---------------------------------------------------

Status FaultInjectionEnv::ReactivateAfterCrash(uint32_t torn_tail_seed) {
  crashed_.store(false, std::memory_order_release);
  Heal();
  return DropUnsyncedFileData(torn_tail_seed);
}

Status FaultInjectionEnv::DropUnsyncedFileData(uint32_t torn_tail_seed) {
  std::unordered_map<std::string, FileState> snapshot;
  {
    std::lock_guard<std::mutex> l(files_mutex_);
    snapshot = files_;
  }
  uint32_t rnd = torn_tail_seed;
  for (const auto& [fname, st] : snapshot) {
    if (!base_->FileExists(fname)) {
      std::lock_guard<std::mutex> l(files_mutex_);
      files_.erase(fname);
      continue;
    }
    if (!st.ever_synced) {
      // Never fsync'ed: the file's directory entry data is gone with the
      // page cache. (Metadata simplification: we drop the whole file.)
      Status s = base_->RemoveFile(fname);
      if (!s.ok()) {
        return s;
      }
      std::lock_guard<std::mutex> l(files_mutex_);
      files_.erase(fname);
      continue;
    }
    if (st.synced_pos >= st.pos) {
      continue;  // fully durable
    }
    uint64_t keep = st.synced_pos;
    if (torn_tail_seed != 0) {
      // Torn tail: keep a pseudo-random prefix of the unsynced region.
      rnd = rnd * 1664525u + 1013904223u;
      keep += rnd % (st.pos - st.synced_pos + 1);
    }
    std::string data;
    Status s = ReadFileToString(base_, fname, &data);
    if (!s.ok()) {
      return s;
    }
    if (data.size() > keep) {
      data.resize(keep);
    }
    std::unique_ptr<WritableFile> f;
    s = base_->NewWritableFile(fname, &f);
    if (!s.ok()) {
      return s;
    }
    s = f->Append(Slice(data));
    if (s.ok()) {
      s = f->Sync();
    }
    if (s.ok()) {
      s = f->Close();
    } else {
      f->Close();
    }
    if (!s.ok()) {
      return s;
    }
    std::lock_guard<std::mutex> l(files_mutex_);
    FileState& cur = files_[fname];
    cur.pos = keep;
    cur.synced_pos = keep;
    cur.ever_synced = true;
  }
  return Status::OK();
}

// ---- Env forwarding ---------------------------------------------------

Status FaultInjectionEnv::NewSequentialFile(const std::string& fname,
                                            std::unique_ptr<SequentialFile>* result) {
  if (ShouldFailRead()) {
    return Status::IOError("injected fault: NewSequentialFile", fname);
  }
  std::unique_ptr<SequentialFile> base_file;
  Status s = base_->NewSequentialFile(fname, &base_file);
  if (!s.ok()) {
    return s;
  }
  result->reset(new FaultySequentialFile(this, std::move(base_file)));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(const std::string& fname,
                                              std::unique_ptr<RandomAccessFile>* result) {
  if (ShouldFailRead()) {
    return Status::IOError("injected fault: NewRandomAccessFile", fname);
  }
  std::unique_ptr<RandomAccessFile> base_file;
  Status s = base_->NewRandomAccessFile(fname, &base_file);
  if (!s.ok()) {
    return s;
  }
  result->reset(new FaultyRandomAccessFile(this, std::move(base_file)));
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(const std::string& fname,
                                          std::unique_ptr<WritableFile>* result) {
  if (CheckCrash()) {
    return PowerOff("NewWritableFile");
  }
  if (fail_new_files_.load(std::memory_order_acquire)) {
    return Status::IOError("injected fault: NewWritableFile", fname);
  }
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) {
    return s;
  }
  {
    // The base open truncates; reset durability tracking for this name.
    std::lock_guard<std::mutex> l(files_mutex_);
    files_[fname] = FileState{};
  }
  result->reset(new FaultyWritableFile(this, fname, std::move(base_file)));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  if (crashed_.load(std::memory_order_acquire)) {
    return false;
  }
  return base_->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  if (crashed_.load(std::memory_order_acquire)) {
    return PowerOff("GetChildren");
  }
  return base_->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  if (CheckCrash()) {
    return PowerOff("RemoveFile");
  }
  Status s = base_->RemoveFile(fname);
  if (s.ok()) {
    std::lock_guard<std::mutex> l(files_mutex_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  if (CheckCrash()) {
    return PowerOff("CreateDir");
  }
  if (fail_create_dir_.load(std::memory_order_acquire)) {
    return Status::IOError("injected fault: CreateDir", dirname);
  }
  return base_->CreateDir(dirname);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dirname) {
  if (CheckCrash()) {
    return PowerOff("RemoveDir");
  }
  return base_->RemoveDir(dirname);
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname, uint64_t* file_size) {
  if (crashed_.load(std::memory_order_acquire)) {
    return PowerOff("GetFileSize");
  }
  return base_->GetFileSize(fname, file_size);
}

Status FaultInjectionEnv::RenameFile(const std::string& src, const std::string& target) {
  if (CheckCrash()) {
    return PowerOff("RenameFile");
  }
  if (fail_renames_.load(std::memory_order_acquire)) {
    return Status::IOError("injected fault: RenameFile", src);
  }
  Status s = base_->RenameFile(src, target);
  if (s.ok()) {
    std::lock_guard<std::mutex> l(files_mutex_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      files_[target] = it->second;
      files_.erase(it);
    }
  }
  return s;
}

// ---- helpers ----------------------------------------------------------

Status TruncateFileTail(Env* env, const std::string& fname, uint64_t remove_bytes) {
  std::string data;
  Status s = ReadFileToString(env, fname, &data);
  if (!s.ok()) {
    return s;
  }
  if (remove_bytes >= data.size()) {
    data.clear();
  } else {
    data.resize(data.size() - remove_bytes);
  }
  std::unique_ptr<WritableFile> f;
  s = env->NewWritableFile(fname, &f);
  if (!s.ok()) {
    return s;
  }
  s = f->Append(Slice(data));
  if (s.ok()) {
    s = f->Sync();
  }
  if (s.ok()) {
    return f->Close();
  }
  f->Close();
  return s;
}

}  // namespace clsm
