// Status: result of fallible operations across the store. A cheap
// value type: OK status carries no allocation; errors carry a code and a
// message. Modeled on LevelDB's Status per the paper's substrate.
#ifndef CLSM_UTIL_STATUS_H_
#define CLSM_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

#include "src/util/slice.h"

namespace clsm {

class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kBusy, msg, msg2);
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == kNotFound; }
  bool IsCorruption() const { return code() == kCorruption; }
  bool IsIOError() const { return code() == kIOError; }
  bool IsNotSupported() const { return code() == kNotSupported; }
  bool IsInvalidArgument() const { return code() == kInvalidArgument; }
  bool IsBusy() const { return code() == kBusy; }

  std::string ToString() const;

 private:
  enum Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
  };

  struct Rep {
    Code code;
    std::string msg;
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code() const { return rep_ == nullptr ? kOk : rep_->code; }

  std::shared_ptr<Rep> rep_;  // null means OK
};

}  // namespace clsm

#endif  // CLSM_UTIL_STATUS_H_
