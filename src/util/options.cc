#include "src/util/options.h"

// Options is a plain aggregate; this translation unit exists so the library
// has a stable home for future out-of-line option helpers.
namespace clsm {}  // namespace clsm
