// Minimal filesystem environment: sequential/random-access/writable files
// plus directory utilities. POSIX-backed; all store I/O funnels through
// these interfaces so tests can measure and fault-inject at one seam.
#ifndef CLSM_UTIL_ENV_H_
#define CLSM_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace clsm {

// Sequential read of a file from the beginning (WAL/manifest recovery).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  // Read up to n bytes. Sets *result to data read (may point into scratch).
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// Random-access read (SSTable blocks). Thread-safe: concurrent Reads allowed.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const = 0;
};

// Append-only writer (WAL, SSTable build, manifest).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  static Env* Default();

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir, std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* file_size) = 0;
  virtual Status RenameFile(const std::string& src, const std::string& target) = 0;

  virtual uint64_t NowMicros() = 0;
};

// Convenience: read an entire file into *data.
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);
// Convenience: atomically (write + rename) write data to fname.
Status WriteStringToFileSync(Env* env, const Slice& data, const std::string& fname);

}  // namespace clsm

#endif  // CLSM_UTIL_ENV_H_
