// Latency histogram with logarithmic-ish fixed buckets, used by the
// benchmark harness to report the percentile series the paper plots
// (e.g. 90th-percentile latency in Figs 5b/6b).
#ifndef CLSM_UTIL_HISTOGRAM_H_
#define CLSM_UTIL_HISTOGRAM_H_

#include <string>

namespace clsm {

class Histogram {
 public:
  Histogram() { Clear(); }

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  double Median() const;
  double Percentile(double p) const;
  double Average() const;
  double StandardDeviation() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  double Num() const { return num_; }

  std::string ToString() const;

 private:
  enum { kNumBuckets = 154 };
  static const double kBucketLimit[kNumBuckets];

  double min_;
  double max_;
  double num_;
  double sum_;
  double sum_squares_;

  double buckets_[kNumBuckets];
};

}  // namespace clsm

#endif  // CLSM_UTIL_HISTOGRAM_H_
