// Latency histogram with logarithmic-ish fixed buckets, used by the
// benchmark harness to report the percentile series the paper plots
// (e.g. 90th-percentile latency in Figs 5b/6b).
#ifndef CLSM_UTIL_HISTOGRAM_H_
#define CLSM_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>

namespace clsm {

class Histogram {
 public:
  // Bucket geometry is shared with the lock-free sharded histograms in
  // src/obs (they count into the same bucket domain and merge here for
  // percentile math).
  static constexpr int kNumBuckets = 154;

  Histogram() { Clear(); }

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  // Index of the bucket value falls into (binary search over the limits).
  static int BucketIndex(double value);
  // Upper bound of bucket b (its values lie in (BucketLimit(b-1), limit]).
  static double BucketLimit(int b) { return kBucketLimit[b]; }

  // Merge a raw per-bucket count array (same kBucketLimit domain) plus its
  // moments, as accumulated by an external sharded histogram. sum_squares
  // is unknown for such sources; StandardDeviation becomes meaningless
  // after this call, the percentile series stays exact to bucket width.
  void MergeBucketCounts(const uint64_t counts[kNumBuckets], uint64_t num, double sum, double min,
                         double max);

  double Median() const;
  double Percentile(double p) const;
  double Average() const;
  double StandardDeviation() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  double Num() const { return num_; }

  std::string ToString() const;

 private:
  static const double kBucketLimit[kNumBuckets];

  double min_;
  double max_;
  double num_;
  double sum_;
  double sum_squares_;

  double buckets_[kNumBuckets];
};

}  // namespace clsm

#endif  // CLSM_UTIL_HISTOGRAM_H_
