// Key ordering abstraction. The table and LSM layers are generic over the
// comparator (paper §3: the algorithm is decoupled from the component
// implementations); the default orders bytewise.
#ifndef CLSM_UTIL_COMPARATOR_H_
#define CLSM_UTIL_COMPARATOR_H_

#include <string>

#include "src/util/slice.h"

namespace clsm {

class Comparator {
 public:
  virtual ~Comparator() = default;

  // Three-way comparison: <0 iff a < b, 0 iff a == b, >0 iff a > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  virtual const char* Name() const = 0;

  // Advanced: used to shrink index entries in SSTables.
  // If *start < limit, change *start to a short string in [start,limit).
  virtual void FindShortestSeparator(std::string* start, const Slice& limit) const = 0;
  // Change *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

// Singleton comparing byte-wise (lexicographic, unsigned).
const Comparator* BytewiseComparator();

}  // namespace clsm

#endif  // CLSM_UTIL_COMPARATOR_H_
