// Store-wide configuration knobs. Defaults mirror the paper's experimental
// setup (§5): 128 MiB memtable (scaled down by benchmarks when appropriate),
// 64 KiB blocks, Bloom filters, asynchronous logging.
#ifndef CLSM_UTIL_OPTIONS_H_
#define CLSM_UTIL_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

// Header-only by design (no clsm_obs link dependency): defines PerfLevel
// and the thread-local context behind Options::perf_level.
#include "src/obs/perf_context.h"

namespace clsm {

class Comparator;
class Env;
class EventListener;
class Snapshot;
class BlockCache;

struct Options {
  // Comparator used to order user keys. Must outlive the DB.
  const Comparator* comparator = nullptr;  // nullptr => BytewiseComparator()

  Env* env = nullptr;  // nullptr => Env::Default()

  bool create_if_missing = true;
  bool error_if_exists = false;
  // Verify SSTable block checksums on every read.
  bool paranoid_checks = false;

  // Size threshold (bytes) at which the mutable memtable Cm is sealed and
  // handed to the merge (flush) process. Paper default: 128 MiB.
  size_t write_buffer_size = 4 * 1024 * 1024;

  // Approximate SSTable data-block size before compression framing.
  size_t block_size = 4 * 1024;
  int block_restart_interval = 16;

  // Bloom filter bits per key; 0 disables filters.
  int bloom_bits_per_key = 10;

  // Capacity of the shared block cache in bytes; 0 disables caching.
  size_t block_cache_size = 8 * 1024 * 1024;

  // Target file size for level-1 files; level L targets grow by
  // level_size_multiplier per level.
  uint64_t target_file_size = 2 * 1024 * 1024;
  int num_levels = 7;
  // Total-bytes target of level 1; each deeper level is 10x larger.
  uint64_t level1_max_bytes = 10 * 1024 * 1024;
  // Number of L0 files that triggers a compaction into L1.
  int l0_compaction_trigger = 4;
  // Number of L0 files at which writers are slowed / stalled.
  int l0_slowdown_trigger = 8;
  int l0_stop_trigger = 12;

  // If true, every put is durably logged before returning (synchronous
  // logging). If false (paper default), log records are queued and written
  // by a background logger thread; a crash may lose the most recent writes.
  bool sync_logging = false;
  // Disable the write-ahead log entirely (benchmarks that measure pure
  // in-memory concurrency use this, as in-memory rate is the subject of
  // study and both systems pay the same logging cost otherwise).
  bool disable_wal = false;

  // Number of background compaction worker threads. Workers pick disjoint
  // jobs (a job owns its input and output level until it completes), so
  // compactions at different levels proceed concurrently and sustained
  // write throughput scales with cores instead of serializing behind one
  // compactor. The paper uses 1 everywhere except §5.3 where RocksDB uses
  // several. Values < 1 are clamped to 1.
  int compaction_threads = 1;

  // Historical knob: memtable flushes now always run on their own thread
  // (the maintenance thread), separate from the compaction worker pool, so
  // heavy disk compactions never delay the Cm -> C'm roll (the "some
  // thread is always reserved for flushing" RocksDB configuration of
  // §5.3/§6 is permanently in effect). Retained for option-sweep
  // compatibility; has no behavioral effect anymore.
  bool dedicated_flush_thread = false;

  // --- observability (src/obs) ---

  // Record per-op / per-phase latency histograms into the DB's sharded
  // StatsRegistry (exported via GetProperty("clsm.stats.json")). Costs a
  // few steady-clock reads per operation; turn off to measure the store's
  // absolute ceiling (the instrumentation-overhead microbench does).
  bool latency_metrics = true;

  // Lifecycle hooks (memtable roll, flush, compaction, stall, WAL sync)
  // invoked from internal threads. Hooks must be non-blocking and
  // exception-free; see src/obs/event_listener.h for the full contract.
  std::vector<std::shared_ptr<EventListener>> listeners;

  // If > 0, a background StatsReporter thread logs interval counter deltas
  // plus the full JSON stats snapshot to stderr every this-many seconds.
  unsigned stats_dump_period_sec = 0;

  // When true the StatsReporter resets the DB's counters and latency
  // histograms after every dump (via DB::ResetStats), so each reported
  // snapshot covers exactly one interval instead of accumulating since
  // process start. Off by default: a reset is visible to every other
  // stats consumer (GetProperty, benches), so opting in is deliberate.
  bool stats_dump_deltas = false;

  // Per-operation attribution depth (thread-local PerfContext; see
  // src/obs/perf_context.h for the cost model). Off by default; "counts"
  // bumps pure counters, "counts+timers" also records phase timers.
  // Exported via GetPerfContext() and GetProperty("clsm.perf.json").
  PerfLevel perf_level = PerfLevel::kDisabled;

  // If > 0, operations slower than this many microseconds emit one
  // structured slow-op record (op type, key-prefix hash, latency, full
  // PerfContext snapshot, L0/stall state) through the OnSlowOperation
  // listener hook — rate-bounded by slow_op_max_per_sec. Slow-op timing
  // is independent of perf_level, but snapshots only carry phase detail
  // at kEnableTimers.
  uint64_t slow_op_threshold_micros = 0;

  // Upper bound on OnSlowOperation dispatches per second (per DB); excess
  // records are counted (slow_ops_suppressed) but not dispatched, so a
  // pathological tail cannot turn the listener into its own bottleneck.
  uint32_t slow_op_max_per_sec = 32;

  // Make snapshot acquisition linearizable instead of merely serializable:
  // getSnap waits until it can choose a snapshot time no smaller than the
  // time counter at the start of the call (paper §3.2.1: achieved by
  // omitting the Active-set adjustment, at the cost of waiting out
  // in-flight puts). Off by default, matching the paper's evaluation.
  bool linearizable_snapshots = false;
};

struct ReadOptions {
  bool verify_checksums = false;
  bool fill_cache = true;
  // If non-null, read as of this snapshot; otherwise read latest state.
  const Snapshot* snapshot = nullptr;
};

struct WriteOptions {
  // Overrides Options::sync_logging per write when true.
  bool sync = false;
};

}  // namespace clsm

#endif  // CLSM_UTIL_OPTIONS_H_
