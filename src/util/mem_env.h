// In-memory Env: a complete filesystem implementation backed by RAM.
// Useful for hermetic, disk-free tests and for measuring pure in-memory
// concurrency without any I/O variance (the paper's CPU-bound regime,
// §5.1, taken to its limit).
#ifndef CLSM_UTIL_MEM_ENV_H_
#define CLSM_UTIL_MEM_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/env.h"

namespace clsm {

// Creates a fresh, empty in-memory environment. Thread-safe. base_env is
// used only for NowMicros. Caller owns the result.
Env* NewMemEnv(Env* base_env);

}  // namespace clsm

#endif  // CLSM_UTIL_MEM_ENV_H_
