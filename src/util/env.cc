#include "src/util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace clsm {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context, strerror(err));
  }
  return Status::IOError(context, strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ::ssize_t read_size = ::read(fd_, scratch, n);
      if (read_size < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, read_size);
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, n, SEEK_CUR) == static_cast<off_t>(-1)) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    ::ssize_t read_size = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (read_size < 0) {
      *result = Slice(scratch, 0);
      return PosixError(fname_, errno);
    }
    *result = Slice(scratch, read_size);
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd) : fname_(std::move(fname)), fd_(fd), pos_(0) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      Close();
    }
  }

  Status Append(const Slice& data) override {
    size_t write_size = data.size();
    const char* write_data = data.data();

    // Fit as much as possible into buffer.
    size_t copy_size = std::min(write_size, kBufSize - pos_);
    memcpy(buf_ + pos_, write_data, copy_size);
    write_data += copy_size;
    write_size -= copy_size;
    pos_ += copy_size;
    if (write_size == 0) {
      return Status::OK();
    }

    Status s = FlushBuffer();
    if (!s.ok()) {
      return s;
    }
    if (write_size < kBufSize) {
      memcpy(buf_, write_data, write_size);
      pos_ = write_size;
      return Status::OK();
    }
    return WriteUnbuffered(write_data, write_size);
  }

  Status Close() override {
    Status s = FlushBuffer();
    if (fd_ >= 0 && ::close(fd_) < 0 && s.ok()) {
      s = PosixError(fname_, errno);
    }
    fd_ = -1;
    return s;
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status s = FlushBuffer();
    if (!s.ok()) {
      return s;
    }
    if (::fdatasync(fd_) < 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  Status FlushBuffer() {
    Status s = WriteUnbuffered(buf_, pos_);
    pos_ = 0;
    return s;
  }

  Status WriteUnbuffered(const char* data, size_t size) {
    while (size > 0) {
      ::ssize_t write_result = ::write(fd_, data, size);
      if (write_result < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      data += write_result;
      size -= write_result;
    }
    return Status::OK();
  }

  static constexpr size_t kBufSize = 64 * 1024;
  const std::string fname_;
  int fd_;
  char buf_[kBufSize];
  size_t pos_;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixSequentialFile(fname, fd));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixRandomAccessFile(fname, fd));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixWritableFile(fname, fd));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override { return ::access(fname.c_str(), F_OK) == 0; }

  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override {
    result->clear();
    ::DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return PosixError(dir, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      result->emplace_back(entry->d_name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct ::stat file_stat;
    if (::stat(fname.c_str(), &file_stat) != 0) {
      *size = 0;
      return PosixError(fname, errno);
    }
    *size = file_stat.st_size;
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError(from, errno);
    }
    return Status::OK();
  }

  uint64_t NowMicros() override {
    struct ::timeval tv;
    ::gettimeofday(&tv, nullptr);
    return static_cast<uint64_t>(tv.tv_sec) * 1000000 + tv.tv_usec;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status ReadFileToString(Env* env, const std::string& fname, std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  static const int kBufferSize = 8192;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok()) {
      break;
    }
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) {
      break;
    }
  }
  return s;
}

Status WriteStringToFileSync(Env* env, const Slice& data, const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(data);
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (!s.ok()) {
    env->RemoveFile(fname);
  }
  return s;
}

}  // namespace clsm
