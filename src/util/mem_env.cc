#include "src/util/mem_env.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace clsm {

namespace {

// Reference-counted file contents: open readers keep a file alive even if
// it is concurrently removed (POSIX unlink semantics).
class FileState {
 public:
  FileState() : refs_(0) {}

  FileState(const FileState&) = delete;
  FileState& operator=(const FileState&) = delete;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }

  uint64_t Size() const {
    std::lock_guard<std::mutex> l(mutex_);
    return data_.size();
  }

  void Truncate() {
    std::lock_guard<std::mutex> l(mutex_);
    data_.clear();
  }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const {
    std::lock_guard<std::mutex> l(mutex_);
    if (offset > data_.size()) {
      return Status::IOError("offset past end of file");
    }
    const size_t available = data_.size() - static_cast<size_t>(offset);
    n = std::min(n, available);
    if (n > 0) {
      memcpy(scratch, data_.data() + offset, n);
    }
    *result = Slice(scratch, n);
    return Status::OK();
  }

  Status Append(const Slice& data) {
    std::lock_guard<std::mutex> l(mutex_);
    data_.append(data.data(), data.size());
    return Status::OK();
  }

 private:
  ~FileState() = default;

  mutable std::mutex mutex_;
  std::string data_;
  std::atomic<int> refs_;
};

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(FileState* file) : file_(file), pos_(0) { file_->Ref(); }
  ~MemSequentialFile() override { file_->Unref(); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = file_->Read(pos_, n, result, scratch);
    if (s.ok()) {
      pos_ += result->size();
    }
    return s;
  }

  Status Skip(uint64_t n) override {
    if (pos_ > file_->Size()) {
      return Status::IOError("pos_ > file_->Size()");
    }
    const uint64_t available = file_->Size() - pos_;
    pos_ += std::min(n, available);
    return Status::OK();
  }

 private:
  FileState* file_;
  uint64_t pos_;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(FileState* file) : file_(file) { file_->Ref(); }
  ~MemRandomAccessFile() override { file_->Unref(); }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const override {
    return file_->Read(offset, n, result, scratch);
  }

 private:
  FileState* file_;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(FileState* file) : file_(file) { file_->Ref(); }
  ~MemWritableFile() override { file_->Unref(); }

  Status Append(const Slice& data) override { return file_->Append(data); }
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }

 private:
  FileState* file_;
};

class MemEnv final : public Env {
 public:
  explicit MemEnv(Env* base_env) : base_env_(base_env) {}

  ~MemEnv() override {
    for (auto& [path, file] : files_) {
      file->Unref();
    }
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    std::lock_guard<std::mutex> l(mutex_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      result->reset();
      return Status::NotFound(fname, "file not found");
    }
    result->reset(new MemSequentialFile(it->second));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override {
    std::lock_guard<std::mutex> l(mutex_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      result->reset();
      return Status::NotFound(fname, "file not found");
    }
    result->reset(new MemRandomAccessFile(it->second));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::lock_guard<std::mutex> l(mutex_);
    auto it = files_.find(fname);
    FileState* file;
    if (it == files_.end()) {
      file = new FileState();
      file->Ref();  // map's reference
      files_[fname] = file;
    } else {
      file = it->second;
      file->Truncate();
    }
    result->reset(new MemWritableFile(file));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    std::lock_guard<std::mutex> l(mutex_);
    return files_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override {
    std::lock_guard<std::mutex> l(mutex_);
    result->clear();
    const std::string prefix = dir + "/";
    for (const auto& [path, file] : files_) {
      if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
          path.find('/', prefix.size()) == std::string::npos) {
        result->push_back(path.substr(prefix.size()));
      }
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    std::lock_guard<std::mutex> l(mutex_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::NotFound(fname, "file not found");
    }
    it->second->Unref();
    files_.erase(it);
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override { return Status::OK(); }
  Status RemoveDir(const std::string& dirname) override { return Status::OK(); }

  Status GetFileSize(const std::string& fname, uint64_t* file_size) override {
    std::lock_guard<std::mutex> l(mutex_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::NotFound(fname, "file not found");
    }
    *file_size = it->second->Size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    std::lock_guard<std::mutex> l(mutex_);
    auto it = files_.find(src);
    if (it == files_.end()) {
      return Status::NotFound(src, "file not found");
    }
    auto existing = files_.find(target);
    if (existing != files_.end()) {
      existing->second->Unref();
      files_.erase(existing);
    }
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  uint64_t NowMicros() override { return base_env_->NowMicros(); }

 private:
  Env* base_env_;
  std::mutex mutex_;
  std::map<std::string, FileState*> files_;
};

}  // namespace

Env* NewMemEnv(Env* base_env) { return new MemEnv(base_env); }

}  // namespace clsm
