// CRC32C (Castagnoli) checksums guarding WAL records and SSTable blocks.
// Software table-driven implementation; masked form matches LevelDB so that
// stored CRCs of CRC-bearing data stay robust.
#ifndef CLSM_UTIL_CRC32C_H_
#define CLSM_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace clsm {
namespace crc32c {

// Returns the crc32c of concat(A, data[0,n-1]) where init_crc is the
// crc32c of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

static const uint32_t kMaskDelta = 0xa282ead8ul;

// Return a masked representation of crc. Stored CRCs are masked because
// computing the CRC of a string that itself contains CRCs is error-prone.
inline uint32_t Mask(uint32_t crc) { return ((crc >> 15) | (crc << 17)) + kMaskDelta; }

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace clsm

#endif  // CLSM_UTIL_CRC32C_H_
