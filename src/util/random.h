// Fast pseudo-random generators used by the skip list (height choice) and
// the workload generators. Deterministic given a seed, so tests and
// benchmarks are reproducible.
#ifndef CLSM_UTIL_RANDOM_H_
#define CLSM_UTIL_RANDOM_H_

#include <cstdint>

namespace clsm {

// Linear-congruential generator over the prime 2^31-1 (LevelDB's Random).
class Random {
 public:
  explicit Random(uint32_t s) : seed_(s & 0x7fffffffu) {
    if (seed_ == 0 || seed_ == 2147483647L) {
      seed_ = 1;
    }
  }

  uint32_t Next() {
    static const uint32_t M = 2147483647L;  // 2^31-1
    static const uint64_t A = 16807;        // bits 14, 8, 7, 5, 2, 1, 0
    uint64_t product = seed_ * A;
    seed_ = static_cast<uint32_t>((product >> 31) + (product & M));
    if (seed_ > M) {
      seed_ -= M;
    }
    return seed_;
  }

  // Uniform in [0, n-1]; n must be > 0.
  uint32_t Uniform(int n) { return Next() % n; }

  bool OneIn(int n) { return (Next() % n) == 0; }

  // Skewed: pick base in [0, max_log], return uniform in [0, 2^base - 1].
  uint32_t Skewed(int max_log) { return Uniform(1 << Uniform(max_log + 1)); }

 private:
  uint32_t seed_;
};

// xorshift128+ 64-bit generator for high-rate workload generation.
class Random64 {
 public:
  explicit Random64(uint64_t seed) {
    s0_ = seed * 0x9e3779b97f4a7c15ull + 1;
    s1_ = (seed ^ 0xda3e39cb94b95bdbull) * 0xbf58476d1ce4e5b9ull + 1;
    // Warm up.
    for (int i = 0; i < 8; i++) {
      Next();
    }
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / (1ull << 53)); }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace clsm

#endif  // CLSM_UTIL_RANDOM_H_
