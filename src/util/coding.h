// Varint and fixed-width integer encodings used by the WAL record format,
// SSTable blocks, and the manifest. Little-endian fixed encodings match
// LevelDB's on-disk formats.
#ifndef CLSM_UTIL_CODING_H_
#define CLSM_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/util/slice.h"

namespace clsm {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Parsing: advance *input past the parsed value; return false on underflow
// or malformed varint.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// Pointer-style varint decoders: return pointer past the value or nullptr.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v);

int VarintLength(uint64_t v);

char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);

inline void EncodeFixed32(char* dst, uint32_t value) { memcpy(dst, &value, sizeof(value)); }
inline void EncodeFixed64(char* dst, uint64_t value) { memcpy(dst, &value, sizeof(value)); }

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

}  // namespace clsm

#endif  // CLSM_UTIL_CODING_H_
