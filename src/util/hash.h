// Non-cryptographic hashing for Bloom filters, cache sharding, and
// lock striping.
#ifndef CLSM_UTIL_HASH_H_
#define CLSM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "src/util/slice.h"

namespace clsm {

uint32_t Hash(const char* data, size_t n, uint32_t seed);

inline uint32_t Hash(const Slice& s, uint32_t seed = 0xbc9f1d34) {
  return Hash(s.data(), s.size(), seed);
}

}  // namespace clsm

#endif  // CLSM_UTIL_HASH_H_
