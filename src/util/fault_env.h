// Fault-injecting Env wrapper: forwards to a real Env but can be armed to
// fail writes, syncs, renames, directory creation, reads or file creation,
// and can simulate a power cut — "kill" the process's I/O at an arbitrary
// operation, then drop every byte that was never fsync'ed, exactly the
// state a machine reboot would leave behind. Used by the crash-loop and
// fault tests to prove that acked synchronous writes survive crashes and
// that I/O errors surface as background errors instead of corrupting
// in-memory state.
//
// Crash model (documented simplifications):
//  * data: a byte is durable iff a successful Sync() covered it; at
//    reactivation, unsynced tails are truncated away and files that were
//    never synced are deleted;
//  * metadata: renames, deletes and directory creation are treated as
//    immediately durable (no directory-fsync modeling);
//  * while "crashed", every operation fails with IOError and nothing
//    reaches the base Env — the power is off.
#ifndef CLSM_UTIL_FAULT_ENV_H_
#define CLSM_UTIL_FAULT_ENV_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/util/env.h"

namespace clsm {

class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // ---- error injection -------------------------------------------------
  // Arm/disarm failures. When armed, the countdown decrements on each
  // write-ish operation and the operation failing is the one that drops the
  // counter to zero (and every one after it while armed).
  void FailAfterWrites(int countdown) {
    write_countdown_.store(countdown, std::memory_order_release);
    fail_writes_.store(true, std::memory_order_release);
  }
  // Fail only Sync() calls: the next `count` syncs return IOError, then the
  // injector disarms itself. Targets the flush-boundary final sync.
  void FailSyncs(int count) { sync_failures_left_.store(count, std::memory_order_release); }
  // Slow (but do not fail) every Sync() by `micros` while armed: a degraded
  // device rather than a broken one. Used to drive latency-attribution
  // paths (slow-op logging) deterministically. 0 disarms.
  void DelaySyncs(uint64_t micros) {
    sync_delay_micros_.store(micros, std::memory_order_release);
  }
  void FailNewFiles(bool enabled) { fail_new_files_.store(enabled, std::memory_order_release); }
  void FailRenames(bool enabled) { fail_renames_.store(enabled, std::memory_order_release); }
  void FailCreateDir(bool enabled) { fail_create_dir_.store(enabled, std::memory_order_release); }
  void FailReads(bool enabled) { fail_reads_.store(enabled, std::memory_order_release); }
  // Disarm every injector (does not clear a simulated crash — use
  // ReactivateAfterCrash for that).
  void Heal() {
    fail_writes_.store(false, std::memory_order_release);
    fail_new_files_.store(false, std::memory_order_release);
    fail_renames_.store(false, std::memory_order_release);
    fail_create_dir_.store(false, std::memory_order_release);
    fail_reads_.store(false, std::memory_order_release);
    sync_failures_left_.store(0, std::memory_order_release);
    sync_delay_micros_.store(0, std::memory_order_release);
    kill_armed_.store(false, std::memory_order_release);
  }

  uint64_t write_failures() const { return write_failures_.load(std::memory_order_acquire); }
  uint64_t kills() const { return kills_.load(std::memory_order_acquire); }

  // ---- crash simulation ------------------------------------------------
  // Arm a kill point: the countdown-th write-ish I/O operation from now
  // (append/flush/sync/new-file/remove/rename) cuts the power — it and
  // every operation after it fail with IOError and nothing reaches disk.
  void KillAfterIos(int countdown) {
    kill_countdown_.store(countdown, std::memory_order_release);
    kill_armed_.store(true, std::memory_order_release);
  }
  // Cut the power right now.
  void SimulateCrash() {
    kill_armed_.store(false, std::memory_order_release);
    if (!crashed_.exchange(true, std::memory_order_acq_rel)) {
      kills_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // "Reboot": drop all unsynced data (power-cut semantics above) and allow
  // I/O again. With a non-zero torn_tail_seed, each file keeps a
  // pseudo-random prefix of its unsynced tail instead of losing all of it —
  // a torn final block, the worst case recovery must tolerate.
  Status ReactivateAfterCrash(uint32_t torn_tail_seed = 0);

  // Apply power-cut data loss without having been crashed (for tests that
  // want the on-disk state a cut would leave while keeping the Env usable).
  Status DropUnsyncedFileData(uint32_t torn_tail_seed = 0);

  // ---- Env -------------------------------------------------------------
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir, std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* file_size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  uint64_t NowMicros() override { return base_->NowMicros(); }

 private:
  friend class FaultyWritableFile;

  struct FileState {
    uint64_t pos = 0;         // bytes appended since creation
    uint64_t synced_pos = 0;  // bytes covered by a successful Sync
    bool ever_synced = false;
  };

  class FaultyWritableFile;
  class FaultySequentialFile;
  class FaultyRandomAccessFile;

  // Counts a write-ish op against the kill countdown; returns true if the
  // power is (now) off.
  bool CheckCrash();
  bool ShouldFailWrite();
  bool ShouldFailSync();
  void MaybeDelaySync();
  bool ShouldFailRead() const {
    return crashed_.load(std::memory_order_acquire) ||
           fail_reads_.load(std::memory_order_acquire);
  }

  void RecordAppend(const std::string& fname, uint64_t bytes);
  void RecordSync(const std::string& fname);

  Env* base_;
  std::atomic<bool> fail_writes_{false};
  std::atomic<bool> fail_new_files_{false};
  std::atomic<bool> fail_renames_{false};
  std::atomic<bool> fail_create_dir_{false};
  std::atomic<bool> fail_reads_{false};
  std::atomic<int> write_countdown_{0};
  std::atomic<int> sync_failures_left_{0};
  std::atomic<uint64_t> sync_delay_micros_{0};
  std::atomic<uint64_t> write_failures_{0};

  std::atomic<bool> kill_armed_{false};
  std::atomic<int> kill_countdown_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> kills_{0};

  std::mutex files_mutex_;
  std::unordered_map<std::string, FileState> files_;
};

// Truncate the last remove_bytes bytes of fname in place (read + rewrite,
// since Env has no Truncate). For torn-tail tests on closed files.
Status TruncateFileTail(Env* env, const std::string& fname, uint64_t remove_bytes);

}  // namespace clsm

#endif  // CLSM_UTIL_FAULT_ENV_H_
