#include "src/baselines/baseline_db.h"
#include "src/baselines/variants.h"

namespace clsm {

namespace {

// The base class *is* the original LevelDB architecture; this variant only
// names it.
class LevelStyleDb final : public BaselineDbBase {
 public:
  LevelStyleDb(const Options& options, const std::string& dbname)
      : BaselineDbBase(options, dbname) {}

  const char* Name() const override { return "leveldb"; }

  using BaselineDbBase::Init;
};

}  // namespace

Status OpenLevelStyleDb(const Options& options, const std::string& dbname, DB** dbptr) {
  *dbptr = nullptr;
  auto db = std::make_unique<LevelStyleDb>(options, dbname);
  Status s = db->Init();
  if (!s.ok()) {
    return s;
  }
  *dbptr = db.release();
  return Status::OK();
}

}  // namespace clsm
