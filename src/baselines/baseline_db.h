// Shared chassis for the competitor concurrency architectures the paper
// evaluates against (§5): LevelDB, HyperLevelDB, RocksDB and bLSM. All
// variants run on the same StorageEngine (disk component, caches, merge
// machinery) as cLSM, so benchmark differences isolate the in-memory
// synchronization design — the paper's variable under test.
//
// The base implements the original LevelDB architecture faithfully:
//  * a global mutex protects critical sections at the beginning and end of
//    each read and write;
//  * writes are funneled through a single-writer queue with group commit;
//  * snapshots are a bare sequence read under the mutex (no Active set —
//    safe because writes are serialized).
// Subclasses override hooks to model each competitor's deviation.
#ifndef CLSM_BASELINES_BASELINE_DB_H_
#define CLSM_BASELINES_BASELINE_DB_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/db.h"
#include "src/core/snapshot.h"
#include "src/core/stats.h"
#include "src/core/write_batch.h"
#include "src/lsm/storage_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_context.h"
#include "src/obs/slow_op.h"
#include "src/obs/stats_reporter.h"

namespace clsm {

class BaselineDbBase : public DB {
 public:
  ~BaselineDbBase() override;

  Status Put(const WriteOptions& options, const Slice& key, const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status ReadModifyWrite(const WriteOptions& options, const Slice& key, const RmwFunction& f,
                         bool* performed) override;
  std::string GetProperty(const Slice& property) override;
  void ResetStats() override;
  void WaitForMaintenance() override;

 protected:
  BaselineDbBase(const Options& options, const std::string& dbname);

  Status Init();

  // --- variant hooks ---
  // True: readers take the global mutex briefly (LevelDB, HyperLevelDB).
  // False: readers use epoch-protected pointer loads (RocksDB's thread-
  // local metadata caching, which avoids locks on the read path).
  virtual bool ReadersTakeMutex() const { return true; }

  // Called with mutex_ held when level 0 is past the slowdown trigger; the
  // bLSM variant overrides to bound the stall (its merge scheduler bounds
  // write blocking).
  virtual void SlowdownWait(std::unique_lock<std::mutex>& lock);

  // --- shared machinery ---
  struct Writer {
    explicit Writer(WriteBatch* b, bool s) : batch(b), sync(s) {}
    WriteBatch* batch;
    bool sync;
    bool done = false;
    Status status;
    std::condition_variable cv;
  };

  // stalled_out (when non-null) is set to true if this writer, as queue
  // head, waited in MakeRoomForWrite. Followers in the group-commit queue
  // report false: their queue wait is ordinary contention, not backpressure.
  Status WriteLocked(const WriteOptions& options, WriteBatch* updates,
                     bool* stalled_out = nullptr);
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock, bool* stalled_out = nullptr);
  virtual void RollMemTableLocked();  // requires mutex_
  void FlushImmutable();      // maintenance thread
  void MaintenanceLoop();
  SequenceNumber SmallestLiveSnapshot();
  void RefComponents(MemTable** mem, MemTable** imm);

  Status GetInternal(const ReadOptions& options, const Slice& key, std::string* value,
                     SequenceNumber seq, SequenceNumber* seq_found);

  // Per-op attribution epilogue — same contract as ClsmDb::FinishOp: closes
  // the PerfContext, emits rate-bounded slow-op records, appends trace
  // records. No-op when start_ticks is 0.
  void FinishOp(DbOpType op, const Slice& key, uint32_t value_size, OpOutcome outcome,
                uint64_t start_ticks, bool stalled);
  // Latest-version lookup with mutex_ already held (RMW read step).
  Status GetLatestLocked(const ReadOptions& options, const Slice& key, std::string* value,
                         SequenceNumber* seq_found);

  const std::string dbname_;
  StorageEngine engine_;

  std::mutex mutex_;  // LevelDB's global lock
  std::atomic<SequenceNumber> last_sequence_{0};

  std::atomic<MemTable*> mem_{nullptr};
  std::atomic<MemTable*> imm_{nullptr};
  std::atomic<AsyncLogger*> logger_{nullptr};
  // Written by rollers under mutex_, read lock-free by the maintenance
  // thread when flushing/GCing.
  std::atomic<uint64_t> log_number_{0};
  std::unique_ptr<AsyncLogger> imm_logger_;
  std::atomic<bool> imm_exists_{false};

  std::deque<Writer*> writers_;  // guarded by mutex_

  SnapshotList snapshots_;

  std::condition_variable maintenance_cv_;
  std::condition_variable work_done_cv_;
  std::atomic<bool> shutting_down_{false};
  // Sticky background error: engine_.bg_error() (shared with the engine's
  // compaction path, checked lock-free at write entry).
  std::thread maintenance_thread_;

  // Observability: same counters/latency series as ClsmDb so every variant
  // exports the identical "clsm.stats.json" schema.
  DbStats stats_;
  StatsRegistry registry_;
  bool metrics_on_ = true;  // cached Options::latency_metrics
  std::unique_ptr<StatsReporter> reporter_;

  // --- per-op attribution, cached at open (see ClsmDb) ---
  PerfLevel perf_level_ = PerfLevel::kDisabled;
  uint64_t slow_op_threshold_nanos_ = 0;
  bool trace_ops_ = false;
  bool attributed_ops_ = false;
  SlowOpRateLimiter slow_op_limiter_;
};

}  // namespace clsm

#endif  // CLSM_BASELINES_BASELINE_DB_H_
