#include "src/baselines/factory.h"

#include "src/baselines/variants.h"
#include "src/core/clsm_db.h"

namespace clsm {

const char* VariantName(DbVariant variant) {
  switch (variant) {
    case DbVariant::kClsm:
      return "clsm";
    case DbVariant::kLevelDb:
      return "leveldb";
    case DbVariant::kHyperLevelDb:
      return "hyperleveldb";
    case DbVariant::kRocksDb:
      return "rocksdb";
    case DbVariant::kBlsm:
      return "blsm";
    case DbVariant::kStripedRmw:
      return "striped-rmw";
  }
  return "unknown";
}

bool ParseVariant(const std::string& name, DbVariant* variant) {
  for (DbVariant v : AllVariants()) {
    if (name == VariantName(v)) {
      *variant = v;
      return true;
    }
  }
  return false;
}

std::vector<DbVariant> AllVariants() {
  return {DbVariant::kRocksDb,      DbVariant::kBlsm, DbVariant::kLevelDb,
          DbVariant::kHyperLevelDb, DbVariant::kClsm, DbVariant::kStripedRmw};
}

Status OpenDb(DbVariant variant, const Options& options, const std::string& dbname, DB** dbptr) {
  switch (variant) {
    case DbVariant::kClsm:
      return ClsmDb::Open(options, dbname, dbptr);
    case DbVariant::kLevelDb:
      return OpenLevelStyleDb(options, dbname, dbptr);
    case DbVariant::kHyperLevelDb:
      return OpenHyperStyleDb(options, dbname, dbptr);
    case DbVariant::kRocksDb:
      return OpenRocksStyleDb(options, dbname, dbptr);
    case DbVariant::kBlsm:
      return OpenBlsmStyleDb(options, dbname, dbptr);
    case DbVariant::kStripedRmw:
      return OpenStripedRmwDb(options, dbname, dbptr);
  }
  return Status::InvalidArgument("unknown variant");
}

}  // namespace clsm
