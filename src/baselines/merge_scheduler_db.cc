#include <chrono>
#include <thread>

#include "src/baselines/baseline_db.h"
#include "src/baselines/variants.h"

namespace clsm {

namespace {

// bLSM (paper §6): a single-writer prototype whose merge scheduler bounds
// the time a merge may block writes. We keep the base's single-writer queue
// and replace LevelDB's unbounded backpressure stalls with short, bounded
// delays proportional to how far level 0 has overshot its trigger — spring
// throttling in place of hard gates.
class BlsmStyleDb final : public BaselineDbBase {
 public:
  BlsmStyleDb(const Options& options, const std::string& dbname)
      : BaselineDbBase(options, dbname) {}

  const char* Name() const override { return "blsm"; }

  using BaselineDbBase::Init;

 protected:
  void SlowdownWait(std::unique_lock<std::mutex>& lock) override {
    // Bounded, proportional delay: the scheduler never blocks a write for
    // longer than a few hundred microseconds at a time.
    const int l0 = engine_.NumLevelFiles(0);
    const int over = l0 - engine_.options().l0_slowdown_trigger;
    const int micros = std::min(500, 50 * std::max(1, over));
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
    lock.lock();
  }
};

}  // namespace

Status OpenBlsmStyleDb(const Options& options, const std::string& dbname, DB** dbptr) {
  *dbptr = nullptr;
  auto db = std::make_unique<BlsmStyleDb>(options, dbname);
  Status s = db->Init();
  if (!s.ok()) {
    return s;
  }
  *dbptr = db.release();
  return Status::OK();
}

}  // namespace clsm
