// Uniform opener for every DB variant, used by tests, examples and the
// benchmark harness to run the same workload against all systems.
#ifndef CLSM_BASELINES_FACTORY_H_
#define CLSM_BASELINES_FACTORY_H_

#include <string>
#include <vector>

#include "src/core/db.h"

namespace clsm {

enum class DbVariant {
  kClsm,          // the paper's contribution
  kLevelDb,       // single-writer, global mutex
  kHyperLevelDb,  // fine-grained write locking
  kRocksDb,       // single-writer, lock-free reads
  kBlsm,          // single-writer, bounded merge stalls
  kStripedRmw,    // LevelDB + lock-striping RMW baseline
};

// Human-readable id used in benchmark tables ("clsm", "leveldb", ...).
const char* VariantName(DbVariant variant);

// Parses a VariantName back; returns false on unknown names.
bool ParseVariant(const std::string& name, DbVariant* variant);

// All variants, in the order the paper's figures list them.
std::vector<DbVariant> AllVariants();

Status OpenDb(DbVariant variant, const Options& options, const std::string& dbname, DB** dbptr);

}  // namespace clsm

#endif  // CLSM_BASELINES_FACTORY_H_
