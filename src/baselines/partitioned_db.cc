#include "src/baselines/partitioned_db.h"

#include "src/core/write_batch.h"
#include "src/table/merging_iterator.h"
#include "src/util/env.h"
#include "src/util/hash.h"

namespace clsm {

struct PartitionedDb::CompositeSnapshot : public Snapshot {
  // One handle per partition, taken sequentially — deliberately NOT an
  // atomic cut across partitions (paper §2.2: "consistent snapshot scans do
  // not span multiple partitions").
  std::vector<const Snapshot*> parts;
};

Status PartitionedDb::Open(DbVariant variant, const Options& options, const std::string& dbname,
                           int partitions, DB** dbptr) {
  *dbptr = nullptr;
  if (partitions < 1) {
    return Status::InvalidArgument("partitions must be >= 1");
  }
  Env* env = options.env != nullptr ? options.env : Env::Default();
  env->CreateDir(dbname);

  Options part_options = options;
  part_options.write_buffer_size =
      std::max<size_t>(64 << 10, options.write_buffer_size / partitions);
  part_options.block_cache_size = options.block_cache_size / partitions;

  std::vector<std::unique_ptr<DB>> dbs;
  for (int p = 0; p < partitions; p++) {
    DB* raw = nullptr;
    Status s = OpenDb(variant, part_options, dbname + "/part" + std::to_string(p), &raw);
    if (!s.ok()) {
      return s;
    }
    dbs.emplace_back(raw);
  }
  *dbptr = new PartitionedDb(std::move(dbs));
  return Status::OK();
}

size_t PartitionedDb::PartitionFor(const Slice& key) const {
  return Hash(key, 0x9e3779b9) % dbs_.size();
}

Status PartitionedDb::Put(const WriteOptions& options, const Slice& key, const Slice& value) {
  return dbs_[PartitionFor(key)]->Put(options, key, value);
}

Status PartitionedDb::Delete(const WriteOptions& options, const Slice& key) {
  return dbs_[PartitionFor(key)]->Delete(options, key);
}

Status PartitionedDb::Write(const WriteOptions& options, WriteBatch* updates) {
  // Split the batch by partition. Atomicity holds only within each
  // partition — the cross-partition atomicity loss is inherent to the
  // partitioned design (a full fix needs a 2PC-style protocol, §2.2's
  // "costly transactions across shards").
  std::vector<WriteBatch> per_partition(dbs_.size());
  for (const WriteBatch::Op& op : updates->ops()) {
    size_t p = PartitionFor(op.key);
    if (op.type == kTypeDeletion) {
      per_partition[p].Delete(op.key);
    } else {
      per_partition[p].Put(op.key, op.value);
    }
  }
  Status result;
  for (size_t p = 0; p < dbs_.size(); p++) {
    if (per_partition[p].Count() > 0) {
      Status s = dbs_[p]->Write(options, &per_partition[p]);
      if (!s.ok() && result.ok()) {
        result = s;
      }
    }
  }
  return result;
}

Status PartitionedDb::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  size_t p = PartitionFor(key);
  ReadOptions part_options = options;
  if (options.snapshot != nullptr) {
    part_options.snapshot =
        static_cast<const CompositeSnapshot*>(options.snapshot)->parts[p];
  }
  return dbs_[p]->Get(part_options, key, value);
}

Iterator* PartitionedDb::NewIterator(const ReadOptions& options) {
  std::vector<Iterator*> children;
  children.reserve(dbs_.size());
  for (size_t p = 0; p < dbs_.size(); p++) {
    ReadOptions part_options = options;
    if (options.snapshot != nullptr) {
      part_options.snapshot =
          static_cast<const CompositeSnapshot*>(options.snapshot)->parts[p];
    }
    children.push_back(dbs_[p]->NewIterator(part_options));
  }
  // Children yield user keys; hash partitioning makes their key sets
  // disjoint, so a plain user-key merge suffices.
  return NewMergingIterator(BytewiseComparator(), children.data(),
                            static_cast<int>(children.size()));
}

const Snapshot* PartitionedDb::GetSnapshot() {
  auto* snap = new CompositeSnapshot();
  snap->parts.reserve(dbs_.size());
  for (auto& db : dbs_) {
    snap->parts.push_back(db->GetSnapshot());
  }
  return snap;
}

void PartitionedDb::ReleaseSnapshot(const Snapshot* snapshot) {
  const auto* snap = static_cast<const CompositeSnapshot*>(snapshot);
  for (size_t p = 0; p < dbs_.size(); p++) {
    dbs_[p]->ReleaseSnapshot(snap->parts[p]);
  }
  delete snap;
}

Status PartitionedDb::ReadModifyWrite(const WriteOptions& options, const Slice& key,
                                      const RmwFunction& f, bool* performed) {
  return dbs_[PartitionFor(key)]->ReadModifyWrite(options, key, f, performed);
}

std::string PartitionedDb::GetProperty(const Slice& property) {
  // Aggregate by concatenation; per-partition metadata growth is one of the
  // §2.2 drawbacks this makes visible.
  std::string result;
  for (size_t p = 0; p < dbs_.size(); p++) {
    std::string part = dbs_[p]->GetProperty(property);
    if (part.empty()) {
      continue;
    }
    result += "part" + std::to_string(p) + ": " + part;
    if (result.back() != '\n') {
      result += '\n';
    }
  }
  return result;
}

void PartitionedDb::WaitForMaintenance() {
  for (auto& db : dbs_) {
    db->WaitForMaintenance();
  }
}

}  // namespace clsm
