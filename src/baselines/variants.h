// Open functions for the competitor concurrency architectures (paper §5).
// Every variant shares cLSM's disk substrate; see baseline_db.h.
#ifndef CLSM_BASELINES_VARIANTS_H_
#define CLSM_BASELINES_VARIANTS_H_

#include <string>

#include "src/core/db.h"

namespace clsm {

// Original LevelDB: global mutex, single-writer queue with group commit,
// reads take the mutex briefly. Does not scale with threads (§5.1).
Status OpenLevelStyleDb(const Options& options, const std::string& dbname, DB** dbptr);

// HyperLevelDB: fine-grained locking on the write path (concurrent memtable
// inserts under striped locks), LevelDB-style reads. Scales to ~4 writers.
Status OpenHyperStyleDb(const Options& options, const std::string& dbname, DB** dbptr);

// RocksDB (2014-era): single-writer queue, but lock-free reads via
// thread-locally cached metadata. Reads scale; writes do not.
Status OpenRocksStyleDb(const Options& options, const std::string& dbname, DB** dbptr);

// bLSM: single-writer with a merge scheduler that bounds how long merges
// may block writes (gentler backpressure than LevelDB's hard stalls).
Status OpenBlsmStyleDb(const Options& options, const std::string& dbname, DB** dbptr);

// LevelDB + textbook lock-striping RMW (the Fig 9 baseline): every write
// and read-modify-write holds an exclusive per-key-stripe lock.
Status OpenStripedRmwDb(const Options& options, const std::string& dbname, DB** dbptr);

}  // namespace clsm

#endif  // CLSM_BASELINES_VARIANTS_H_
