#include <shared_mutex>

#include "src/baselines/baseline_db.h"
#include "src/baselines/variants.h"
#include "src/util/hash.h"

namespace clsm {

namespace {

// HyperLevelDB's key improvement over LevelDB (paper §6): fine-grained
// locking lets multiple writers insert into the memtable concurrently.
// Writers assign sequence numbers atomically and serialize only per key
// stripe; the memtable roll excludes in-flight inserts with a
// shared-exclusive latch. The read path stays LevelDB's (brief global
// mutex), which is why this variant stops scaling on read-heavy loads.
class HyperStyleDb final : public BaselineDbBase {
 public:
  HyperStyleDb(const Options& options, const std::string& dbname)
      : BaselineDbBase(options, dbname) {}

  const char* Name() const override { return "hyperleveldb"; }

  Status Put(const WriteOptions& options, const Slice& key, const Slice& value) override {
    return ConcurrentWrite(options, kTypeValue, key, value);
  }

  Status Delete(const WriteOptions& options, const Slice& key) override {
    return ConcurrentWrite(options, kTypeDeletion, key, Slice());
  }

  using BaselineDbBase::Init;

 private:
  static constexpr int kStripes = 16;

  Status ConcurrentWrite(const WriteOptions& options, ValueType type, const Slice& key,
                         const Slice& value) {
    // This fast path bypasses BaselineDbBase::Put/WriteLocked, so it keeps
    // its own books: the same op counters and latency series every other
    // variant records.
    stats_.Bump(type == kTypeValue ? stats_.puts_total : stats_.deletes_total);
    ScopedLatency probe(metrics_on_ ? &registry_ : nullptr,
                        type == kTypeValue ? OpMetric::kPut : OpMetric::kDelete);
    // Slow path only when backpressure thresholds are near: take the global
    // mutex and run LevelDB's room-making logic (including the roll).
    MemTable* mem_probe = mem_.load(std::memory_order_acquire);
    if (mem_probe->ApproximateMemoryUsage() >= engine_.options().write_buffer_size ||
        engine_.NumLevelFiles(0) >= engine_.options().l0_slowdown_trigger) {
      std::unique_lock<std::mutex> l(mutex_);
      Status s = MakeRoomForWrite(l);
      if (!s.ok()) {
        return s;
      }
    }

    // Fast path: concurrent insert under the roll latch + key stripe.
    std::shared_lock<std::shared_mutex> roll_guard(roll_latch_);
    MemTable* mem = mem_.load(std::memory_order_acquire);
    SequenceNumber seq = last_sequence_.fetch_add(1, std::memory_order_acq_rel) + 1;
    const uint64_t t0 = metrics_on_ ? LatencyClock::Ticks() : 0;
    {
      std::lock_guard<std::mutex> stripe(stripes_[Hash(key) % kStripes]);
      mem->Add(seq, type, key, value);
    }
    const uint64_t t1 = metrics_on_ ? LatencyClock::Ticks() : 0;
    if (metrics_on_) {
      registry_.Record(OpMetric::kMemInsert, LatencyClock::ToNanos(t1 - t0));
    }
    if (!engine_.options().disable_wal) {
      std::string record;
      EncodeWalRecord(&record, seq, type, key, value);
      AsyncLogger* logger = logger_.load(std::memory_order_acquire);
      Status s;
      if (options.sync || engine_.options().sync_logging) {
        s = logger->AddRecordSync(std::move(record));
      } else {
        logger->AddRecordAsync(std::move(record));
      }
      if (metrics_on_) {
        registry_.Record(OpMetric::kWalAppend,
                         LatencyClock::ToNanos(LatencyClock::Ticks() - t1));
      }
      return s;
    }
    return Status::OK();
  }

  void RollMemTableLocked() override {
    // Exclude in-flight fast-path inserts so none lands in a retired
    // memtable after the flush has scanned past it.
    std::unique_lock<std::shared_mutex> ex(roll_latch_);
    BaselineDbBase::RollMemTableLocked();
  }

  std::shared_mutex roll_latch_;
  std::mutex stripes_[kStripes];
};

}  // namespace

Status OpenHyperStyleDb(const Options& options, const std::string& dbname, DB** dbptr) {
  *dbptr = nullptr;
  auto db = std::make_unique<HyperStyleDb>(options, dbname);
  Status s = db->Init();
  if (!s.ok()) {
    return s;
  }
  *dbptr = db.release();
  return Status::OK();
}

}  // namespace clsm
