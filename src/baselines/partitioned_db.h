// PartitionedDb: the "resource-isolated" configuration of paper §2.2 as a
// first-class wrapper — N independent sub-stores, keys hash-partitioned
// across them. This is how one scales a single-writer store horizontally
// on one machine, and it exhibits exactly the drawbacks the paper argues
// motivate cLSM's consolidation:
//   * snapshot scans do NOT span partitions atomically (a composite
//     snapshot is taken partition-by-partition, so cross-partition
//     invariants can be observed torn);
//   * resources (write buffers, maintenance pipelines) are statically
//     split, wasting headroom under skew;
//   * metadata multiplies with the partition count.
#ifndef CLSM_BASELINES_PARTITIONED_DB_H_
#define CLSM_BASELINES_PARTITIONED_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/factory.h"
#include "src/core/db.h"

namespace clsm {

class PartitionedDb final : public DB {
 public:
  // Opens `partitions` sub-stores of `variant` under dbname/partN. The
  // per-partition write buffer is options.write_buffer_size / partitions
  // (static resource split, as a real deployment would configure).
  static Status Open(DbVariant variant, const Options& options, const std::string& dbname,
                     int partitions, DB** dbptr);

  ~PartitionedDb() override = default;

  Status Put(const WriteOptions& options, const Slice& key, const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status ReadModifyWrite(const WriteOptions& options, const Slice& key, const RmwFunction& f,
                         bool* performed) override;
  const char* Name() const override { return "partitioned"; }
  std::string GetProperty(const Slice& property) override;
  void WaitForMaintenance() override;

  int partitions() const { return static_cast<int>(dbs_.size()); }

 private:
  struct CompositeSnapshot;

  explicit PartitionedDb(std::vector<std::unique_ptr<DB>> dbs) : dbs_(std::move(dbs)) {}

  size_t PartitionFor(const Slice& key) const;

  std::vector<std::unique_ptr<DB>> dbs_;
};

}  // namespace clsm

#endif  // CLSM_BASELINES_PARTITIONED_DB_H_
