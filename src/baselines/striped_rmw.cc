#include <mutex>

#include "src/baselines/baseline_db.h"
#include "src/baselines/variants.h"
#include "src/util/hash.h"

namespace clsm {

namespace {

// The Fig 9 baseline: LevelDB augmented with a textbook read-modify-write
// built on lock striping (Gray & Reuter). Every write and RMW holds an
// exclusive granular lock for its key's stripe; reads are unchanged. The
// paper measures cLSM's optimistic RMW at ~2.5x this design.
class StripedRmwDb final : public BaselineDbBase {
 public:
  StripedRmwDb(const Options& options, const std::string& dbname)
      : BaselineDbBase(options, dbname) {}

  const char* Name() const override { return "leveldb-striped-rmw"; }

  Status Put(const WriteOptions& options, const Slice& key, const Slice& value) override {
    std::lock_guard<std::mutex> stripe(stripes_[StripeFor(key)]);
    return BaselineDbBase::Put(options, key, value);
  }

  Status Delete(const WriteOptions& options, const Slice& key) override {
    std::lock_guard<std::mutex> stripe(stripes_[StripeFor(key)]);
    return BaselineDbBase::Delete(options, key);
  }

  Status ReadModifyWrite(const WriteOptions& options, const Slice& key, const RmwFunction& f,
                         bool* performed) override {
    if (performed != nullptr) {
      *performed = false;
    }
    stats_.Bump(stats_.rmw_total);
    ScopedLatency probe(metrics_on_ ? &registry_ : nullptr, OpMetric::kRmw);
    // Read-compute-write is atomic for this key because every writer of the
    // key serializes on the same stripe.
    std::lock_guard<std::mutex> stripe(stripes_[StripeFor(key)]);
    std::string current;
    ReadOptions ro;
    Status s = Get(ro, key, &current);
    std::optional<Slice> cur;
    if (s.ok()) {
      cur = Slice(current);
    } else if (!s.IsNotFound()) {
      return s;
    }
    std::optional<std::string> next = f(cur);
    if (!next.has_value()) {
      return Status::OK();
    }
    s = BaselineDbBase::Put(options, key, *next);
    if (s.ok() && performed != nullptr) {
      *performed = true;
    }
    return s;
  }

  using BaselineDbBase::Init;

 private:
  static constexpr int kStripes = 256;

  size_t StripeFor(const Slice& key) const { return Hash(key) % kStripes; }

  std::mutex stripes_[kStripes];
};

}  // namespace

Status OpenStripedRmwDb(const Options& options, const std::string& dbname, DB** dbptr) {
  *dbptr = nullptr;
  auto db = std::make_unique<StripedRmwDb>(options, dbname);
  Status s = db->Init();
  if (!s.ok()) {
    return s;
  }
  *dbptr = db.release();
  return Status::OK();
}

}  // namespace clsm
