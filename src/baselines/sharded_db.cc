#include "src/baselines/baseline_db.h"
#include "src/baselines/variants.h"

namespace clsm {

namespace {

// 2014-era RocksDB (paper §6): much effort went into reducing read-side
// critical sections — readers cache metadata in thread-local storage and
// avoid locks — while the write path remained a single-writer queue. We
// model the read optimization with the epoch-protected pointer loads and
// keep the base's write queue, matching the paper's observed shape: reads
// scale far past the hardware thread count (Fig 6a), writes stay flat
// (Fig 5a).
class RocksStyleDb final : public BaselineDbBase {
 public:
  RocksStyleDb(const Options& options, const std::string& dbname)
      : BaselineDbBase(options, dbname) {}

  const char* Name() const override { return "rocksdb"; }

  using BaselineDbBase::Init;

 protected:
  bool ReadersTakeMutex() const override { return false; }
};

}  // namespace

Status OpenRocksStyleDb(const Options& options, const std::string& dbname, DB** dbptr) {
  *dbptr = nullptr;
  auto db = std::make_unique<RocksStyleDb>(options, dbname);
  Status s = db->Init();
  if (!s.ok()) {
    return s;
  }
  *dbptr = db.release();
  return Status::OK();
}

}  // namespace clsm
