#include "src/baselines/baseline_db.h"

#include <chrono>

#include "src/core/db_iter.h"
#include "src/obs/instrumented_iter.h"
#include "src/obs/stats_export.h"
#include "src/table/merging_iterator.h"

namespace clsm {

BaselineDbBase::BaselineDbBase(const Options& options, const std::string& dbname)
    : dbname_(dbname),
      engine_(options, dbname),
      metrics_on_(options.latency_metrics),
      perf_level_(options.perf_level),
      slow_op_threshold_nanos_(options.slow_op_threshold_micros * 1000),
      slow_op_limiter_(options.slow_op_max_per_sec) {
  engine_.SetStatsRegistry(metrics_on_ ? &registry_ : nullptr);
  trace_ops_ = engine_.listeners().has_op_listeners();
  attributed_ops_ = trace_ops_ || slow_op_threshold_nanos_ != 0;
}

Status BaselineDbBase::Init() {
  MemTable* recovered = nullptr;
  SequenceNumber max_seq = 0;
  Status s = engine_.Open(&recovered, &max_seq);
  if (!s.ok()) {
    if (recovered != nullptr) {
      recovered->Unref();
    }
    return s;
  }
  last_sequence_.store(std::max(engine_.versions()->LastSequence(), max_seq));

  if (!engine_.options().disable_wal) {
    std::unique_ptr<AsyncLogger> logger;
    uint64_t log_number = 0;
    s = engine_.NewLog(&log_number, &logger);
    log_number_ = log_number;
    if (!s.ok()) {
      if (recovered != nullptr) {
        recovered->Unref();
      }
      return s;
    }
    logger_.store(logger.release(), std::memory_order_release);
  } else {
    log_number_ = engine_.versions()->NewFileNumber();
  }

  engine_.versions()->SetLastSequence(
      std::max(engine_.versions()->LastSequence(), last_sequence_.load()));
  if (recovered != nullptr && recovered->NumEntries() > 0) {
    s = engine_.FlushMemTable(recovered, log_number_);
  } else {
    s = engine_.CommitLogRotation(log_number_);
  }
  if (recovered != nullptr) {
    recovered->Unref();
  }
  if (!s.ok()) {
    return s;
  }
  engine_.RemoveObsoleteFiles(log_number_, /*include_tables=*/true);

  mem_.store(new MemTable(*engine_.icmp()), std::memory_order_release);
  maintenance_thread_ = std::thread([this] { MaintenanceLoop(); });
  if (engine_.options().stats_dump_period_sec > 0) {
    reporter_ = std::make_unique<StatsReporter>(
        Name(), engine_.options().stats_dump_period_sec,
        [this] {
          ReporterCounters c;
          c.writes = stats_.puts_total.load(std::memory_order_relaxed) +
                     stats_.deletes_total.load(std::memory_order_relaxed);
          c.gets = stats_.gets_total.load(std::memory_order_relaxed);
          c.flushes = stats_.flushes.load(std::memory_order_relaxed);
          c.compactions = engine_.compaction_stats()->TotalCompactions();
          c.stall_micros = stats_.TotalStallMicros();
          return c;
        },
        [this] { return GetProperty("clsm.stats.json"); },
        engine_.options().stats_dump_deltas ? std::function<void()>([this] { ResetStats(); })
                                            : std::function<void()>());
  }
  return Status::OK();
}

BaselineDbBase::~BaselineDbBase() {
  // Stop the reporter first: its callbacks walk stats_/engine_ state.
  reporter_.reset();
  shutting_down_.store(true, std::memory_order_release);
  maintenance_cv_.notify_all();
  if (maintenance_thread_.joinable()) {
    maintenance_thread_.join();
  }
  AsyncLogger* logger = logger_.exchange(nullptr, std::memory_order_acq_rel);
  delete logger;
  imm_logger_.reset();
  MemTable* imm = imm_.exchange(nullptr, std::memory_order_acq_rel);
  if (imm != nullptr) {
    imm->Unref();
  }
  MemTable* mem = mem_.exchange(nullptr, std::memory_order_acq_rel);
  if (mem != nullptr) {
    mem->Unref();
  }
}

Status BaselineDbBase::Put(const WriteOptions& options, const Slice& key, const Slice& value) {
  stats_.Bump(stats_.puts_total);
  PerfContextStartOp(perf_level_);
  const bool timing = metrics_on_ || attributed_ops_ || tls_perf_context.timers_enabled();
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  WriteBatch batch;
  batch.Put(key, value);
  bool op_stalled = false;
  Status s = WriteLocked(options, &batch, &op_stalled);
  if (metrics_on_) {
    registry_.Record(OpMetric::kPut, LatencyClock::ToNanos(LatencyClock::Ticks() - t0));
  }
  FinishOp(DbOpType::kPut, key, static_cast<uint32_t>(value.size()),
           s.ok() ? OpOutcome::kOk : OpOutcome::kError, t0, op_stalled);
  return s;
}

Status BaselineDbBase::Delete(const WriteOptions& options, const Slice& key) {
  stats_.Bump(stats_.deletes_total);
  PerfContextStartOp(perf_level_);
  const bool timing = metrics_on_ || attributed_ops_ || tls_perf_context.timers_enabled();
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  WriteBatch batch;
  batch.Delete(key);
  bool op_stalled = false;
  Status s = WriteLocked(options, &batch, &op_stalled);
  if (metrics_on_) {
    registry_.Record(OpMetric::kDelete, LatencyClock::ToNanos(LatencyClock::Ticks() - t0));
  }
  FinishOp(DbOpType::kDelete, key, 0, s.ok() ? OpOutcome::kOk : OpOutcome::kError, t0,
           op_stalled);
  return s;
}

Status BaselineDbBase::Write(const WriteOptions& options, WriteBatch* updates) {
  stats_.Bump(stats_.batches_total);
  PerfContextStartOp(perf_level_);
  const bool timing = metrics_on_ || attributed_ops_ || tls_perf_context.timers_enabled();
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  uint32_t batch_bytes = 0;
  for (const WriteBatch::Op& op : updates->ops()) {
    batch_bytes += static_cast<uint32_t>(op.key.size() + op.value.size());
  }
  bool op_stalled = false;
  Status s = WriteLocked(options, updates, &op_stalled);
  FinishOp(DbOpType::kWrite, Slice(), batch_bytes, s.ok() ? OpOutcome::kOk : OpOutcome::kError,
           t0, op_stalled);
  return s;
}

// LevelDB's single-writer queue with group commit: every writer enqueues
// and blocks; the queue head makes room, claims sequence numbers, applies
// the batch (and any batches grouped behind it) outside the mutex, then
// wakes the group. This is the "single synchronization point" whose
// contention the paper measures (§5.1: throughput decreases as threads
// contend for the writers queue).
Status BaselineDbBase::WriteLocked(const WriteOptions& options, WriteBatch* updates,
                                   bool* stalled_out) {
  // Degraded read-only mode: fail writes at the door once a hard error is
  // latched (not only when MakeRoomForWrite happens to run).
  if (engine_.bg_error()->writes_blocked()) {
    return engine_.bg_error()->status();
  }
  Writer w(updates, options.sync || engine_.options().sync_logging);

  std::unique_lock<std::mutex> lock(mutex_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.wait(lock);
  }
  if (w.done) {
    return w.status;
  }

  Status status = MakeRoomForWrite(lock, stalled_out);
  Writer* last_writer = &w;
  std::vector<Writer*> group;
  if (status.ok()) {
    // Group the queue's current contents into one logical write.
    size_t size = 0;
    for (Writer* candidate : writers_) {
      group.push_back(candidate);
      size += candidate->batch->ApproximateSize();
      last_writer = candidate;
      if (size > 1 << 20) {
        break;
      }
    }

    MemTable* mem = mem_.load(std::memory_order_acquire);
    AsyncLogger* logger = logger_.load(std::memory_order_acquire);
    const bool use_wal = !engine_.options().disable_wal;

    lock.unlock();
    // Single writer beyond this point (queue heads are serialized).
    bool any_sync = false;
    SequenceNumber seq = last_sequence_.load(std::memory_order_relaxed);
    for (Writer* member : group) {
      any_sync = any_sync || member->sync;
      // One WAL record per member batch: each user batch recovers
      // all-or-nothing. Phase latencies are per member batch: mem_insert
      // covers the memtable adds (plus record encoding), wal_append the
      // logger enqueue.
      const bool pt = tls_perf_context.timers_enabled();
      const uint64_t t0 = (metrics_on_ || pt) ? LatencyClock::Ticks() : 0;
      std::string record;
      for (const WriteBatch::Op& op : member->batch->ops()) {
        ++seq;
        mem->Add(seq, op.type, op.key, op.value);
        if (use_wal) {
          EncodeWalRecord(&record, seq, op.type, op.key, op.value);
        }
      }
      const uint64_t t1 = (metrics_on_ || pt) ? LatencyClock::Ticks() : 0;
      if (use_wal && !record.empty()) {
        logger->AddRecordAsync(std::move(record));
      }
      if (metrics_on_) {
        registry_.Record(OpMetric::kMemInsert, LatencyClock::ToNanos(t1 - t0));
        registry_.Record(OpMetric::kWalAppend,
                         LatencyClock::ToNanos(LatencyClock::Ticks() - t1));
      }
      if (pt && member == &w) {
        // PerfContext is thread-local: only the group head's own batch can
        // be attributed to it. Followers' batches applied here belong to
        // threads parked in the queue; their contexts only see total time.
        tls_perf_context.mem_insert_nanos += LatencyClock::ToNanos(t1 - t0);
        tls_perf_context.wal_append_nanos += LatencyClock::ToNanos(LatencyClock::Ticks() - t1);
      }
    }
    // Publish once, after every entry of every batch in the group is in the
    // memtable: a snapshot taken mid-group reads at the old sequence and can
    // never observe a torn batch.
    last_sequence_.store(seq, std::memory_order_release);
    if (use_wal && any_sync) {
      status = logger->AddRecordSync(std::string());
    }
    lock.lock();
  }

  // Wake the whole group.
  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) {
      break;
    }
  }
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  }
  return status;
}

void BaselineDbBase::SlowdownWait(std::unique_lock<std::mutex>& lock) {
  // LevelDB's 1ms write-delay once the slowdown trigger is reached.
  lock.unlock();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  lock.lock();
}

Status BaselineDbBase::MakeRoomForWrite(std::unique_lock<std::mutex>& lock, bool* stalled_out) {
  bool allow_delay = true;
  // Bracket the whole blocked interval with one StallBegin/End pair (see
  // ClsmDb::ThrottleIfNeeded) and account it in stats_.
  bool stalled = false;
  StallReason stall_reason = StallReason::kMemtableFull;
  uint64_t stall_start_nanos = 0;
  auto end_stall = [&] {
    if (stalled) {
      const uint64_t nanos = MonotonicNanos() - stall_start_nanos;
      if (metrics_on_) {
        registry_.Record(OpMetric::kRollWait, nanos);
      }
      CLSM_PERF_TIMER_ADD(memtable_roll_wait_nanos, nanos);
      stats_.Add(stats_.stall_micros, static_cast<uint64_t>(nanos / 1000));
      engine_.listeners().NotifyStallEnd(stall_reason, nanos / 1000);
      stalled = false;
    }
  };
  auto begin_stall = [&](StallReason reason) {
    if (!stalled) {
      stalled = true;
      if (stalled_out != nullptr) {
        *stalled_out = true;
      }
      stall_reason = reason;
      stall_start_nanos = MonotonicNanos();
      stats_.Bump(stats_.throttle_waits);
      engine_.listeners().NotifyStallBegin(reason);
    }
  };
  while (true) {
    if (!engine_.bg_error()->ok()) {
      // Any latched error (even a soft compaction failure) ends the wait:
      // the pipeline this writer is waiting on may never drain. This
      // matches LevelDB, where every bg_error_ fails writers.
      end_stall();
      return engine_.bg_error()->status();
    }
    if (allow_delay &&
        engine_.NumLevelFiles(0) >= engine_.options().l0_slowdown_trigger) {
      allow_delay = false;
      // A hard stall may be open if an earlier iteration blocked before L0
      // crossed the slowdown trigger; stalls never nest, so close it first.
      end_stall();
      if (stalled_out != nullptr) {
        *stalled_out = true;
      }
      stats_.Bump(stats_.slowdown_waits);
      engine_.listeners().NotifyStallBegin(StallReason::kL0Slowdown);
      const uint64_t t0 = MonotonicNanos();
      SlowdownWait(lock);
      const uint64_t slow_nanos = MonotonicNanos() - t0;
      const uint64_t slow_micros = slow_nanos / 1000;
      CLSM_PERF_TIMER_ADD(l0_slowdown_sleep_nanos, slow_nanos);
      stats_.Add(stats_.slowdown_micros, slow_micros);
      engine_.listeners().NotifyStallEnd(StallReason::kL0Slowdown, slow_micros);
      continue;
    }
    MemTable* mem = mem_.load(std::memory_order_acquire);
    if (mem->ApproximateMemoryUsage() < engine_.options().write_buffer_size) {
      end_stall();
      return Status::OK();
    }
    if (imm_exists_.load(std::memory_order_acquire)) {
      // Previous memtable still being flushed: the single-writer stalls.
      begin_stall(StallReason::kMemtableFull);
      maintenance_cv_.notify_one();
      work_done_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    if (engine_.NumLevelFiles(0) >= engine_.options().l0_stop_trigger) {
      begin_stall(StallReason::kL0Stop);
      maintenance_cv_.notify_one();
      work_done_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    end_stall();
    RollMemTableLocked();
    maintenance_cv_.notify_one();
  }
}

void BaselineDbBase::RollMemTableLocked() {
  std::unique_ptr<AsyncLogger> fresh_logger;
  uint64_t fresh_log = 0;
  if (!engine_.options().disable_wal) {
    Status s = engine_.NewLog(&fresh_log, &fresh_logger);
    if (!s.ok()) {
      engine_.RecordBackgroundError(BgErrorReason::kMemtableRoll, s);
      return;
    }
  } else {
    fresh_log = engine_.versions()->NewFileNumber();
  }

  MemTable* old_mem = mem_.load(std::memory_order_relaxed);
  imm_.store(old_mem, std::memory_order_release);
  mem_.store(new MemTable(*engine_.icmp()), std::memory_order_release);
  AsyncLogger* old_logger = logger_.exchange(fresh_logger.release(), std::memory_order_acq_rel);
  imm_logger_.reset(old_logger);
  log_number_ = fresh_log;
  imm_exists_.store(true, std::memory_order_release);
  stats_.Bump(stats_.memtable_rolls);
  engine_.listeners().NotifyMemtableRoll(old_mem->ApproximateMemoryUsage());
}

void BaselineDbBase::FlushImmutable() {
  if (engine_.bg_error()->writes_blocked()) {
    return;  // degraded mode: keep C'm (and its WAL) for reads/recovery
  }
  MemTable* imm = imm_.load(std::memory_order_acquire);
  assert(imm != nullptr);

  // The retired WAL must be durable before the table build retires it; a
  // failed drain/sync/close aborts the flush (see ClsmDb::FlushImmutable).
  if (imm_logger_ != nullptr) {
    Status wal_status = imm_logger_->Close();
    imm_logger_.reset();
    if (!wal_status.ok()) {
      engine_.RecordBackgroundError(BgErrorReason::kWalSync, wal_status);
      return;
    }
  }
  stats_.Bump(stats_.flushes);

  // Persist the sequence counter with the flush edit (see ClsmDb note).
  engine_.versions()->SetLastSequence(
      std::max(engine_.versions()->LastSequence(), last_sequence_.load()));
  Status s = engine_.FlushMemTable(imm, log_number_);
  {
    std::lock_guard<std::mutex> l(mutex_);
    if (!s.ok()) {
      // FlushMemTable latched the background error.
      return;
    }
    imm_.store(nullptr, std::memory_order_release);
    imm_exists_.store(false, std::memory_order_release);
  }
  engine_.epochs()->Synchronize();
  imm->Unref();
  engine_.RemoveObsoleteFiles(log_number_);
}

void BaselineDbBase::MaintenanceLoop() {
  std::mutex loop_mutex;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    const bool blocked = engine_.bg_error()->writes_blocked();
    bool need_flush = !blocked && imm_exists_.load(std::memory_order_acquire);
    bool need_compact = !blocked && engine_.NeedsCompaction();
    if (!need_flush && !need_compact) {
      std::unique_lock<std::mutex> l(loop_mutex);
      maintenance_cv_.wait_for(l, std::chrono::milliseconds(2));
      continue;
    }
    if (need_flush) {
      FlushImmutable();
    }
    if (need_compact && engine_.NeedsCompaction()) {
      bool did_work = false;
      // Failures latch inside RunCompaction (kCompaction/kManifestWrite).
      engine_.CompactOnce(SmallestLiveSnapshot(), &did_work);
    }
    work_done_cv_.notify_all();
  }
}

SequenceNumber BaselineDbBase::SmallestLiveSnapshot() {
  return snapshots_.OldestTimestamp(last_sequence_.load(std::memory_order_acquire));
}

void BaselineDbBase::RefComponents(MemTable** mem, MemTable** imm) {
  if (ReadersTakeMutex()) {
    // Original LevelDB: the global mutex guards the pointer fetch — reads
    // block whenever a writer or the merge holds it.
    std::lock_guard<std::mutex> l(mutex_);
    *mem = mem_.load(std::memory_order_acquire);
    (*mem)->Ref();
    *imm = imm_.load(std::memory_order_acquire);
    if (*imm != nullptr) {
      (*imm)->Ref();
    }
  } else {
    // RocksDB-style: readers cache metadata without locks.
    EpochGuard guard(*engine_.epochs());
    *mem = mem_.load(std::memory_order_acquire);
    (*mem)->Ref();
    *imm = imm_.load(std::memory_order_acquire);
    if (*imm != nullptr) {
      (*imm)->Ref();
    }
  }
}

Status BaselineDbBase::GetInternal(const ReadOptions& options, const Slice& key,
                                   std::string* value, SequenceNumber seq,
                                   SequenceNumber* seq_found) {
  LookupKey lkey(key, seq);
  MemTable* mem;
  MemTable* imm;
  RefComponents(&mem, &imm);

  const bool pt = tls_perf_context.timers_enabled();
  const uint64_t search_t0 = pt ? LatencyClock::Ticks() : 0;
  Status s;
  if (mem->Get(lkey, value, &s, seq_found)) {
    stats_.Bump(stats_.gets_from_mem);
    if (pt) {
      tls_perf_context.mem_search_nanos += LatencyClock::ToNanos(LatencyClock::Ticks() - search_t0);
    }
  } else if (imm != nullptr && imm->Get(lkey, value, &s, seq_found)) {
    stats_.Bump(stats_.gets_from_imm);
    if (pt) {
      tls_perf_context.mem_search_nanos += LatencyClock::ToNanos(LatencyClock::Ticks() - search_t0);
    }
  } else {
    const uint64_t disk_t0 = pt ? LatencyClock::Ticks() : 0;
    if (pt) {
      tls_perf_context.mem_search_nanos += LatencyClock::ToNanos(disk_t0 - search_t0);
    }
    s = engine_.Get(options, lkey, value, seq_found);
    stats_.Bump(stats_.gets_from_disk);
    if (pt) {
      tls_perf_context.disk_search_nanos += LatencyClock::ToNanos(LatencyClock::Ticks() - disk_t0);
    }
  }
  mem->Unref();
  if (imm != nullptr) {
    imm->Unref();
  }
  return s;
}

Status BaselineDbBase::GetLatestLocked(const ReadOptions& options, const Slice& key,
                                       std::string* value, SequenceNumber* seq_found) {
  // Caller holds mutex_, so the component pointers are stable and the roll
  // cannot retire them mid-read; no reference counting needed.
  LookupKey lkey(key, kMaxSequenceNumber);
  MemTable* mem = mem_.load(std::memory_order_acquire);
  MemTable* imm = imm_.load(std::memory_order_acquire);
  Status s;
  if (mem->Get(lkey, value, &s, seq_found)) {
    return s;
  }
  if (imm != nullptr && imm->Get(lkey, value, &s, seq_found)) {
    return s;
  }
  return engine_.Get(options, lkey, value, seq_found);
}

Status BaselineDbBase::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  stats_.Bump(stats_.gets_total);
  PerfContextStartOp(perf_level_);
  const bool timing = metrics_on_ || attributed_ops_ || tls_perf_context.timers_enabled();
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  SequenceNumber seq;
  if (options.snapshot != nullptr) {
    seq = static_cast<const SnapshotImpl*>(options.snapshot)->timestamp();
  } else {
    seq = last_sequence_.load(std::memory_order_acquire);
  }
  Status s = GetInternal(options, key, value, seq, nullptr);
  if (metrics_on_) {
    registry_.Record(OpMetric::kGet, LatencyClock::ToNanos(LatencyClock::Ticks() - t0));
  }
  FinishOp(DbOpType::kGet, key, s.ok() ? static_cast<uint32_t>(value->size()) : 0,
           s.ok() ? OpOutcome::kOk : (s.IsNotFound() ? OpOutcome::kNotFound : OpOutcome::kError),
           t0, /*stalled=*/false);
  return s;
}

namespace {
struct IterState {
  MemTable* mem;
  MemTable* imm;
  Version* version;
};

void CleanupIterState(void* arg1, void* arg2) {
  IterState* state = reinterpret_cast<IterState*>(arg1);
  state->mem->Unref();
  if (state->imm != nullptr) {
    state->imm->Unref();
  }
  if (state->version != nullptr) {
    state->version->Unref();
  }
  delete state;
}
}  // namespace

Iterator* BaselineDbBase::NewIterator(const ReadOptions& options) {
  stats_.Bump(stats_.iterators_created);
  SequenceNumber seq;
  if (options.snapshot != nullptr) {
    seq = static_cast<const SnapshotImpl*>(options.snapshot)->timestamp();
  } else {
    seq = last_sequence_.load(std::memory_order_acquire);
  }

  IterState* state = new IterState{nullptr, nullptr, nullptr};
  RefComponents(&state->mem, &state->imm);
  std::vector<Iterator*> children;
  children.push_back(state->mem->NewIterator());
  if (state->imm != nullptr) {
    children.push_back(state->imm->NewIterator());
  }
  state->version = engine_.AddVersionIterators(options, &children);

  Iterator* internal =
      NewMergingIterator(engine_.icmp(), children.data(), static_cast<int>(children.size()));
  internal->RegisterCleanup(&CleanupIterState, state, nullptr);
  return NewLatencyRecordingIterator(NewDBIterator(engine_.icmp()->user_comparator(), internal, seq),
                                     metrics_on_ ? &registry_ : nullptr);
}

const Snapshot* BaselineDbBase::GetSnapshot() {
  // LevelDB-style: writes are serialized, so the published last sequence is
  // itself a consistent cut — no Active-set machinery needed.
  stats_.Bump(stats_.snapshots_acquired);
  std::lock_guard<std::mutex> l(mutex_);
  return snapshots_.New(last_sequence_.load(std::memory_order_acquire));
}

void BaselineDbBase::ReleaseSnapshot(const Snapshot* snapshot) { snapshots_.Release(snapshot); }

Status BaselineDbBase::ReadModifyWrite(const WriteOptions& options, const Slice& key,
                                       const RmwFunction& f, bool* performed) {
  // Coarse default: atomicity via the global mutex (writes are serialized
  // anyway). The lock-striping variant (Fig 9's baseline) overrides this.
  if (performed != nullptr) {
    *performed = false;
  }
  stats_.Bump(stats_.rmw_total);
  if (engine_.bg_error()->writes_blocked()) {
    return engine_.bg_error()->status();
  }
  PerfContextStartOp(perf_level_);
  const bool timing = metrics_on_ || attributed_ops_ || tls_perf_context.timers_enabled();
  const uint64_t t0 = timing ? LatencyClock::Ticks() : 0;
  bool did_write = false;
  uint32_t written_bytes = 0;
  {
    std::lock_guard<std::mutex> l(mutex_);
    std::string current;
    SequenceNumber seq_found = 0;
    ReadOptions ro;
    Status s = GetLatestLocked(ro, key, &current, &seq_found);
    std::optional<Slice> cur;
    if (s.ok()) {
      cur = Slice(current);
    }
    std::optional<std::string> next = f(cur);
    if (next.has_value()) {
      MemTable* mem = mem_.load(std::memory_order_acquire);
      SequenceNumber seq = last_sequence_.load(std::memory_order_relaxed) + 1;
      mem->Add(seq, kTypeValue, key, *next);
      if (!engine_.options().disable_wal) {
        std::string record;
        EncodeWalRecord(&record, seq, kTypeValue, key, *next);
        logger_.load(std::memory_order_acquire)->AddRecordAsync(std::move(record));
      }
      last_sequence_.store(seq, std::memory_order_release);
      did_write = true;
      written_bytes = static_cast<uint32_t>(next->size());
      if (performed != nullptr) {
        *performed = true;
      }
    }
  }
  if (metrics_on_) {
    registry_.Record(OpMetric::kRmw, LatencyClock::ToNanos(LatencyClock::Ticks() - t0));
  }
  FinishOp(DbOpType::kRmw, key, written_bytes,
           did_write ? OpOutcome::kOk : OpOutcome::kNotFound, t0, /*stalled=*/false);
  return Status::OK();
}

std::string BaselineDbBase::GetProperty(const Slice& property) {
  if (property == Slice("clsm.levels")) {
    return engine_.versions()->LevelSummary();
  }
  if (property == Slice("clsm.last-ts")) {
    return std::to_string(last_sequence_.load());
  }
  if (property == Slice("clsm.stats")) {
    stats_.compactions.store(engine_.compaction_stats()->TotalCompactions(),
                             std::memory_order_relaxed);
    return stats_.ToString() + engine_.compaction_stats()->ToString();
  }
  if (property == Slice("clsm.stats.json")) {
    stats_.compactions.store(engine_.compaction_stats()->TotalCompactions(),
                             std::memory_order_relaxed);
    StatsJsonSource src;
    src.db = Name();
    src.counters = &stats_;
    src.registry = &registry_;
    src.engine = &engine_;
    return BuildStatsJson(src);
  }
  if (property == Slice("clsm.perf.json")) {
    return tls_perf_context.ToJson();
  }
  if (property == Slice("clsm.stats.reset")) {
    ResetStats();
    return "OK";
  }
  if (property == Slice("clsm.bg-error")) {
    return engine_.bg_error()->status().ToString();
  }
  if (property == Slice("clsm.background-error")) {
    return engine_.bg_error()->ToString();
  }
  return std::string();
}

void BaselineDbBase::ResetStats() {
  stats_.Reset();
  registry_.Reset();
  slow_op_limiter_.Reset();
}

void BaselineDbBase::FinishOp(DbOpType op, const Slice& key, uint32_t value_size,
                              OpOutcome outcome, uint64_t start_ticks, bool stalled) {
  if (start_ticks == 0) {
    return;
  }
  const uint64_t total_nanos = LatencyClock::ToNanos(LatencyClock::Ticks() - start_ticks);
  PerfContext& ctx = tls_perf_context;
  if (ctx.timers_enabled()) {
    ctx.total_nanos = total_nanos;
  }
  if (!attributed_ops_) {
    return;
  }
  const uint64_t latency_micros = total_nanos / 1000;
  if (trace_ops_) {
    OperationInfo info;
    info.op = op;
    info.key = key;
    info.value_size = value_size;
    info.outcome = outcome;
    info.latency_micros = latency_micros;
    engine_.listeners().NotifyOperation(info);
  }
  if (slow_op_threshold_nanos_ != 0 && total_nanos >= slow_op_threshold_nanos_) {
    stats_.Bump(stats_.slow_ops_total);
    if (slow_op_limiter_.Admit(engine_.env()->NowMicros())) {
      SlowOpInfo info;
      info.op = op;
      info.key_prefix_hash = SlowOpKeyPrefixHash(key);
      info.latency_micros = latency_micros;
      info.perf = ctx;
      info.l0_files = engine_.NumLevelFiles(0);
      info.stalled = stalled;
      info.suppressed = slow_op_limiter_.suppressed();
      engine_.listeners().NotifySlowOperation(info);
      stats_.Bump(stats_.slow_ops_reported);
    }
  }
}

void BaselineDbBase::WaitForMaintenance() {
  while (true) {
    if (!engine_.bg_error()->ok()) {
      return;  // maintenance is wedged; nothing further to wait for
    }
    MemTable* mem = mem_.load(std::memory_order_acquire);
    bool busy = imm_exists_.load(std::memory_order_acquire) || engine_.NeedsCompaction() ||
                (mem != nullptr &&
                 mem->ApproximateMemoryUsage() >= engine_.options().write_buffer_size);
    if (!busy) {
      return;
    }
    maintenance_cv_.notify_one();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace clsm
