file(REMOVE_RECURSE
  "CMakeFiles/compaction_stress_test.dir/compaction_stress_test.cc.o"
  "CMakeFiles/compaction_stress_test.dir/compaction_stress_test.cc.o.d"
  "compaction_stress_test"
  "compaction_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
