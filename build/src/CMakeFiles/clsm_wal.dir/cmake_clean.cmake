file(REMOVE_RECURSE
  "CMakeFiles/clsm_wal.dir/wal/async_logger.cc.o"
  "CMakeFiles/clsm_wal.dir/wal/async_logger.cc.o.d"
  "CMakeFiles/clsm_wal.dir/wal/log_reader.cc.o"
  "CMakeFiles/clsm_wal.dir/wal/log_reader.cc.o.d"
  "CMakeFiles/clsm_wal.dir/wal/log_writer.cc.o"
  "CMakeFiles/clsm_wal.dir/wal/log_writer.cc.o.d"
  "libclsm_wal.a"
  "libclsm_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
