# Empty compiler generated dependencies file for clsm_wal.
# This may be replaced when dependencies are built.
