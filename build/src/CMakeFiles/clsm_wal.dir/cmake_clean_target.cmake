file(REMOVE_RECURSE
  "libclsm_wal.a"
)
