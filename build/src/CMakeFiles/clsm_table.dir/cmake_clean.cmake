file(REMOVE_RECURSE
  "CMakeFiles/clsm_table.dir/table/block.cc.o"
  "CMakeFiles/clsm_table.dir/table/block.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/block_builder.cc.o"
  "CMakeFiles/clsm_table.dir/table/block_builder.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/bloom.cc.o"
  "CMakeFiles/clsm_table.dir/table/bloom.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/cache.cc.o"
  "CMakeFiles/clsm_table.dir/table/cache.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/filter_block.cc.o"
  "CMakeFiles/clsm_table.dir/table/filter_block.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/format.cc.o"
  "CMakeFiles/clsm_table.dir/table/format.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/iterator.cc.o"
  "CMakeFiles/clsm_table.dir/table/iterator.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/merging_iterator.cc.o"
  "CMakeFiles/clsm_table.dir/table/merging_iterator.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/table.cc.o"
  "CMakeFiles/clsm_table.dir/table/table.cc.o.d"
  "CMakeFiles/clsm_table.dir/table/table_builder.cc.o"
  "CMakeFiles/clsm_table.dir/table/table_builder.cc.o.d"
  "libclsm_table.a"
  "libclsm_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
