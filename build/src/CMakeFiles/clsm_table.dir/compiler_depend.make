# Empty compiler generated dependencies file for clsm_table.
# This may be replaced when dependencies are built.
