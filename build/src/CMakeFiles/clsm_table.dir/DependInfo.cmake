
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/block.cc" "src/CMakeFiles/clsm_table.dir/table/block.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/block.cc.o.d"
  "/root/repo/src/table/block_builder.cc" "src/CMakeFiles/clsm_table.dir/table/block_builder.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/block_builder.cc.o.d"
  "/root/repo/src/table/bloom.cc" "src/CMakeFiles/clsm_table.dir/table/bloom.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/bloom.cc.o.d"
  "/root/repo/src/table/cache.cc" "src/CMakeFiles/clsm_table.dir/table/cache.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/cache.cc.o.d"
  "/root/repo/src/table/filter_block.cc" "src/CMakeFiles/clsm_table.dir/table/filter_block.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/filter_block.cc.o.d"
  "/root/repo/src/table/format.cc" "src/CMakeFiles/clsm_table.dir/table/format.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/format.cc.o.d"
  "/root/repo/src/table/iterator.cc" "src/CMakeFiles/clsm_table.dir/table/iterator.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/iterator.cc.o.d"
  "/root/repo/src/table/merging_iterator.cc" "src/CMakeFiles/clsm_table.dir/table/merging_iterator.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/merging_iterator.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/clsm_table.dir/table/table.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/table.cc.o.d"
  "/root/repo/src/table/table_builder.cc" "src/CMakeFiles/clsm_table.dir/table/table_builder.cc.o" "gcc" "src/CMakeFiles/clsm_table.dir/table/table_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clsm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_arena.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
