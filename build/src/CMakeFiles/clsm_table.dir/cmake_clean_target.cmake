file(REMOVE_RECURSE
  "libclsm_table.a"
)
