# Empty compiler generated dependencies file for clsm_baselines.
# This may be replaced when dependencies are built.
