file(REMOVE_RECURSE
  "libclsm_baselines.a"
)
