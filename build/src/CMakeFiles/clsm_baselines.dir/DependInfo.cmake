
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_db.cc" "src/CMakeFiles/clsm_baselines.dir/baselines/baseline_db.cc.o" "gcc" "src/CMakeFiles/clsm_baselines.dir/baselines/baseline_db.cc.o.d"
  "/root/repo/src/baselines/factory.cc" "src/CMakeFiles/clsm_baselines.dir/baselines/factory.cc.o" "gcc" "src/CMakeFiles/clsm_baselines.dir/baselines/factory.cc.o.d"
  "/root/repo/src/baselines/fine_grained_db.cc" "src/CMakeFiles/clsm_baselines.dir/baselines/fine_grained_db.cc.o" "gcc" "src/CMakeFiles/clsm_baselines.dir/baselines/fine_grained_db.cc.o.d"
  "/root/repo/src/baselines/merge_scheduler_db.cc" "src/CMakeFiles/clsm_baselines.dir/baselines/merge_scheduler_db.cc.o" "gcc" "src/CMakeFiles/clsm_baselines.dir/baselines/merge_scheduler_db.cc.o.d"
  "/root/repo/src/baselines/partitioned_db.cc" "src/CMakeFiles/clsm_baselines.dir/baselines/partitioned_db.cc.o" "gcc" "src/CMakeFiles/clsm_baselines.dir/baselines/partitioned_db.cc.o.d"
  "/root/repo/src/baselines/sharded_db.cc" "src/CMakeFiles/clsm_baselines.dir/baselines/sharded_db.cc.o" "gcc" "src/CMakeFiles/clsm_baselines.dir/baselines/sharded_db.cc.o.d"
  "/root/repo/src/baselines/single_writer_db.cc" "src/CMakeFiles/clsm_baselines.dir/baselines/single_writer_db.cc.o" "gcc" "src/CMakeFiles/clsm_baselines.dir/baselines/single_writer_db.cc.o.d"
  "/root/repo/src/baselines/striped_rmw.cc" "src/CMakeFiles/clsm_baselines.dir/baselines/striped_rmw.cc.o" "gcc" "src/CMakeFiles/clsm_baselines.dir/baselines/striped_rmw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
