file(REMOVE_RECURSE
  "CMakeFiles/clsm_baselines.dir/baselines/baseline_db.cc.o"
  "CMakeFiles/clsm_baselines.dir/baselines/baseline_db.cc.o.d"
  "CMakeFiles/clsm_baselines.dir/baselines/factory.cc.o"
  "CMakeFiles/clsm_baselines.dir/baselines/factory.cc.o.d"
  "CMakeFiles/clsm_baselines.dir/baselines/fine_grained_db.cc.o"
  "CMakeFiles/clsm_baselines.dir/baselines/fine_grained_db.cc.o.d"
  "CMakeFiles/clsm_baselines.dir/baselines/merge_scheduler_db.cc.o"
  "CMakeFiles/clsm_baselines.dir/baselines/merge_scheduler_db.cc.o.d"
  "CMakeFiles/clsm_baselines.dir/baselines/partitioned_db.cc.o"
  "CMakeFiles/clsm_baselines.dir/baselines/partitioned_db.cc.o.d"
  "CMakeFiles/clsm_baselines.dir/baselines/sharded_db.cc.o"
  "CMakeFiles/clsm_baselines.dir/baselines/sharded_db.cc.o.d"
  "CMakeFiles/clsm_baselines.dir/baselines/single_writer_db.cc.o"
  "CMakeFiles/clsm_baselines.dir/baselines/single_writer_db.cc.o.d"
  "CMakeFiles/clsm_baselines.dir/baselines/striped_rmw.cc.o"
  "CMakeFiles/clsm_baselines.dir/baselines/striped_rmw.cc.o.d"
  "libclsm_baselines.a"
  "libclsm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
