# Empty dependencies file for clsm_arena.
# This may be replaced when dependencies are built.
