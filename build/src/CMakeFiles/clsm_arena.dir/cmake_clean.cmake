file(REMOVE_RECURSE
  "CMakeFiles/clsm_arena.dir/arena/arena.cc.o"
  "CMakeFiles/clsm_arena.dir/arena/arena.cc.o.d"
  "libclsm_arena.a"
  "libclsm_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
