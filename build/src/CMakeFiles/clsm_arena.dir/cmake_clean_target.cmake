file(REMOVE_RECURSE
  "libclsm_arena.a"
)
