file(REMOVE_RECURSE
  "libclsm_workload.a"
)
