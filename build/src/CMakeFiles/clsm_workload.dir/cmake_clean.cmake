file(REMOVE_RECURSE
  "CMakeFiles/clsm_workload.dir/workload/driver.cc.o"
  "CMakeFiles/clsm_workload.dir/workload/driver.cc.o.d"
  "CMakeFiles/clsm_workload.dir/workload/generator.cc.o"
  "CMakeFiles/clsm_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/clsm_workload.dir/workload/trace.cc.o"
  "CMakeFiles/clsm_workload.dir/workload/trace.cc.o.d"
  "libclsm_workload.a"
  "libclsm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
