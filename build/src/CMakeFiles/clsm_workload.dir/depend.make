# Empty dependencies file for clsm_workload.
# This may be replaced when dependencies are built.
