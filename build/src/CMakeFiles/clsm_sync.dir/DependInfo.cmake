
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/active_set.cc" "src/CMakeFiles/clsm_sync.dir/sync/active_set.cc.o" "gcc" "src/CMakeFiles/clsm_sync.dir/sync/active_set.cc.o.d"
  "/root/repo/src/sync/ref_guard.cc" "src/CMakeFiles/clsm_sync.dir/sync/ref_guard.cc.o" "gcc" "src/CMakeFiles/clsm_sync.dir/sync/ref_guard.cc.o.d"
  "/root/repo/src/sync/shared_exclusive_lock.cc" "src/CMakeFiles/clsm_sync.dir/sync/shared_exclusive_lock.cc.o" "gcc" "src/CMakeFiles/clsm_sync.dir/sync/shared_exclusive_lock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
