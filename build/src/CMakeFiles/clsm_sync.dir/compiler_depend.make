# Empty compiler generated dependencies file for clsm_sync.
# This may be replaced when dependencies are built.
