file(REMOVE_RECURSE
  "libclsm_sync.a"
)
