file(REMOVE_RECURSE
  "CMakeFiles/clsm_sync.dir/sync/active_set.cc.o"
  "CMakeFiles/clsm_sync.dir/sync/active_set.cc.o.d"
  "CMakeFiles/clsm_sync.dir/sync/ref_guard.cc.o"
  "CMakeFiles/clsm_sync.dir/sync/ref_guard.cc.o.d"
  "CMakeFiles/clsm_sync.dir/sync/shared_exclusive_lock.cc.o"
  "CMakeFiles/clsm_sync.dir/sync/shared_exclusive_lock.cc.o.d"
  "libclsm_sync.a"
  "libclsm_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
