file(REMOVE_RECURSE
  "libclsm_util.a"
)
