
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/coding.cc" "src/CMakeFiles/clsm_util.dir/util/coding.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/coding.cc.o.d"
  "/root/repo/src/util/comparator.cc" "src/CMakeFiles/clsm_util.dir/util/comparator.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/comparator.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/clsm_util.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/env.cc" "src/CMakeFiles/clsm_util.dir/util/env.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/env.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/clsm_util.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/hash.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/clsm_util.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/mem_env.cc" "src/CMakeFiles/clsm_util.dir/util/mem_env.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/mem_env.cc.o.d"
  "/root/repo/src/util/options.cc" "src/CMakeFiles/clsm_util.dir/util/options.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/options.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/clsm_util.dir/util/status.cc.o" "gcc" "src/CMakeFiles/clsm_util.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
