file(REMOVE_RECURSE
  "CMakeFiles/clsm_util.dir/util/coding.cc.o"
  "CMakeFiles/clsm_util.dir/util/coding.cc.o.d"
  "CMakeFiles/clsm_util.dir/util/comparator.cc.o"
  "CMakeFiles/clsm_util.dir/util/comparator.cc.o.d"
  "CMakeFiles/clsm_util.dir/util/crc32c.cc.o"
  "CMakeFiles/clsm_util.dir/util/crc32c.cc.o.d"
  "CMakeFiles/clsm_util.dir/util/env.cc.o"
  "CMakeFiles/clsm_util.dir/util/env.cc.o.d"
  "CMakeFiles/clsm_util.dir/util/hash.cc.o"
  "CMakeFiles/clsm_util.dir/util/hash.cc.o.d"
  "CMakeFiles/clsm_util.dir/util/histogram.cc.o"
  "CMakeFiles/clsm_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/clsm_util.dir/util/mem_env.cc.o"
  "CMakeFiles/clsm_util.dir/util/mem_env.cc.o.d"
  "CMakeFiles/clsm_util.dir/util/options.cc.o"
  "CMakeFiles/clsm_util.dir/util/options.cc.o.d"
  "CMakeFiles/clsm_util.dir/util/status.cc.o"
  "CMakeFiles/clsm_util.dir/util/status.cc.o.d"
  "libclsm_util.a"
  "libclsm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
