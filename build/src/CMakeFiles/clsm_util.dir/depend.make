# Empty dependencies file for clsm_util.
# This may be replaced when dependencies are built.
