# Empty dependencies file for clsm_core.
# This may be replaced when dependencies are built.
