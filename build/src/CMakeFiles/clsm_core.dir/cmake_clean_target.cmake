file(REMOVE_RECURSE
  "libclsm_core.a"
)
