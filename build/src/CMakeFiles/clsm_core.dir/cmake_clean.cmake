file(REMOVE_RECURSE
  "CMakeFiles/clsm_core.dir/core/clsm_db.cc.o"
  "CMakeFiles/clsm_core.dir/core/clsm_db.cc.o.d"
  "CMakeFiles/clsm_core.dir/core/db_iter.cc.o"
  "CMakeFiles/clsm_core.dir/core/db_iter.cc.o.d"
  "CMakeFiles/clsm_core.dir/core/snapshot.cc.o"
  "CMakeFiles/clsm_core.dir/core/snapshot.cc.o.d"
  "CMakeFiles/clsm_core.dir/core/stats.cc.o"
  "CMakeFiles/clsm_core.dir/core/stats.cc.o.d"
  "CMakeFiles/clsm_core.dir/core/write_batch.cc.o"
  "CMakeFiles/clsm_core.dir/core/write_batch.cc.o.d"
  "libclsm_core.a"
  "libclsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
