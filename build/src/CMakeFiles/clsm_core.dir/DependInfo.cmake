
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clsm_db.cc" "src/CMakeFiles/clsm_core.dir/core/clsm_db.cc.o" "gcc" "src/CMakeFiles/clsm_core.dir/core/clsm_db.cc.o.d"
  "/root/repo/src/core/db_iter.cc" "src/CMakeFiles/clsm_core.dir/core/db_iter.cc.o" "gcc" "src/CMakeFiles/clsm_core.dir/core/db_iter.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/CMakeFiles/clsm_core.dir/core/snapshot.cc.o" "gcc" "src/CMakeFiles/clsm_core.dir/core/snapshot.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/CMakeFiles/clsm_core.dir/core/stats.cc.o" "gcc" "src/CMakeFiles/clsm_core.dir/core/stats.cc.o.d"
  "/root/repo/src/core/write_batch.cc" "src/CMakeFiles/clsm_core.dir/core/write_batch.cc.o" "gcc" "src/CMakeFiles/clsm_core.dir/core/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clsm_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
