file(REMOVE_RECURSE
  "CMakeFiles/clsm_lsm.dir/lsm/dbformat.cc.o"
  "CMakeFiles/clsm_lsm.dir/lsm/dbformat.cc.o.d"
  "CMakeFiles/clsm_lsm.dir/lsm/filename.cc.o"
  "CMakeFiles/clsm_lsm.dir/lsm/filename.cc.o.d"
  "CMakeFiles/clsm_lsm.dir/lsm/memtable.cc.o"
  "CMakeFiles/clsm_lsm.dir/lsm/memtable.cc.o.d"
  "CMakeFiles/clsm_lsm.dir/lsm/repair.cc.o"
  "CMakeFiles/clsm_lsm.dir/lsm/repair.cc.o.d"
  "CMakeFiles/clsm_lsm.dir/lsm/storage_engine.cc.o"
  "CMakeFiles/clsm_lsm.dir/lsm/storage_engine.cc.o.d"
  "CMakeFiles/clsm_lsm.dir/lsm/table_cache.cc.o"
  "CMakeFiles/clsm_lsm.dir/lsm/table_cache.cc.o.d"
  "CMakeFiles/clsm_lsm.dir/lsm/version_edit.cc.o"
  "CMakeFiles/clsm_lsm.dir/lsm/version_edit.cc.o.d"
  "CMakeFiles/clsm_lsm.dir/lsm/version_set.cc.o"
  "CMakeFiles/clsm_lsm.dir/lsm/version_set.cc.o.d"
  "libclsm_lsm.a"
  "libclsm_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
