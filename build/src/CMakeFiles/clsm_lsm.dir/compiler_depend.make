# Empty compiler generated dependencies file for clsm_lsm.
# This may be replaced when dependencies are built.
