
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/dbformat.cc" "src/CMakeFiles/clsm_lsm.dir/lsm/dbformat.cc.o" "gcc" "src/CMakeFiles/clsm_lsm.dir/lsm/dbformat.cc.o.d"
  "/root/repo/src/lsm/filename.cc" "src/CMakeFiles/clsm_lsm.dir/lsm/filename.cc.o" "gcc" "src/CMakeFiles/clsm_lsm.dir/lsm/filename.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/clsm_lsm.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/clsm_lsm.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/repair.cc" "src/CMakeFiles/clsm_lsm.dir/lsm/repair.cc.o" "gcc" "src/CMakeFiles/clsm_lsm.dir/lsm/repair.cc.o.d"
  "/root/repo/src/lsm/storage_engine.cc" "src/CMakeFiles/clsm_lsm.dir/lsm/storage_engine.cc.o" "gcc" "src/CMakeFiles/clsm_lsm.dir/lsm/storage_engine.cc.o.d"
  "/root/repo/src/lsm/table_cache.cc" "src/CMakeFiles/clsm_lsm.dir/lsm/table_cache.cc.o" "gcc" "src/CMakeFiles/clsm_lsm.dir/lsm/table_cache.cc.o.d"
  "/root/repo/src/lsm/version_edit.cc" "src/CMakeFiles/clsm_lsm.dir/lsm/version_edit.cc.o" "gcc" "src/CMakeFiles/clsm_lsm.dir/lsm/version_edit.cc.o.d"
  "/root/repo/src/lsm/version_set.cc" "src/CMakeFiles/clsm_lsm.dir/lsm/version_set.cc.o" "gcc" "src/CMakeFiles/clsm_lsm.dir/lsm/version_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clsm_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
