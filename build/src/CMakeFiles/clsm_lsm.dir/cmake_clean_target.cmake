file(REMOVE_RECURSE
  "libclsm_lsm.a"
)
