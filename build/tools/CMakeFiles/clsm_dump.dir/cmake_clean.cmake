file(REMOVE_RECURSE
  "CMakeFiles/clsm_dump.dir/clsm_dump.cc.o"
  "CMakeFiles/clsm_dump.dir/clsm_dump.cc.o.d"
  "clsm_dump"
  "clsm_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
