# Empty dependencies file for clsm_dump.
# This may be replaced when dependencies are built.
