# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clsm_bench_cli.
