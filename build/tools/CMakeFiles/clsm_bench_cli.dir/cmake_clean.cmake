file(REMOVE_RECURSE
  "CMakeFiles/clsm_bench_cli.dir/clsm_bench_cli.cc.o"
  "CMakeFiles/clsm_bench_cli.dir/clsm_bench_cli.cc.o.d"
  "clsm_bench_cli"
  "clsm_bench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_bench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
