# Empty compiler generated dependencies file for clsm_bench_cli.
# This may be replaced when dependencies are built.
