file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_rmw.dir/bench_fig9_rmw.cc.o"
  "CMakeFiles/bench_fig9_rmw.dir/bench_fig9_rmw.cc.o.d"
  "bench_fig9_rmw"
  "bench_fig9_rmw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_rmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
