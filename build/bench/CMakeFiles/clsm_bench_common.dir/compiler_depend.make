# Empty compiler generated dependencies file for clsm_bench_common.
# This may be replaced when dependencies are built.
