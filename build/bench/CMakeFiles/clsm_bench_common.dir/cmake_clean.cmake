file(REMOVE_RECURSE
  "CMakeFiles/clsm_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/clsm_bench_common.dir/bench_common.cc.o.d"
  "libclsm_bench_common.a"
  "libclsm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clsm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
