file(REMOVE_RECURSE
  "libclsm_bench_common.a"
)
