# Empty compiler generated dependencies file for bench_scalability_summary.
# This may be replaced when dependencies are built.
