file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_summary.dir/bench_scalability_summary.cc.o"
  "CMakeFiles/bench_scalability_summary.dir/bench_scalability_summary.cc.o.d"
  "bench_scalability_summary"
  "bench_scalability_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
