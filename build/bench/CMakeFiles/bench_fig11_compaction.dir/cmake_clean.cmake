file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_compaction.dir/bench_fig11_compaction.cc.o"
  "CMakeFiles/bench_fig11_compaction.dir/bench_fig11_compaction.cc.o.d"
  "bench_fig11_compaction"
  "bench_fig11_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
