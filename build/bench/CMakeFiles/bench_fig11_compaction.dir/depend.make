# Empty dependencies file for bench_fig11_compaction.
# This may be replaced when dependencies are built.
