# Empty dependencies file for bench_fig8_memsize.
# This may be replaced when dependencies are built.
