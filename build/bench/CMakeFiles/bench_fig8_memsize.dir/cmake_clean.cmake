file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_memsize.dir/bench_fig8_memsize.cc.o"
  "CMakeFiles/bench_fig8_memsize.dir/bench_fig8_memsize.cc.o.d"
  "bench_fig8_memsize"
  "bench_fig8_memsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_memsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
