# Empty compiler generated dependencies file for bench_fig1_partitioning.
# This may be replaced when dependencies are built.
