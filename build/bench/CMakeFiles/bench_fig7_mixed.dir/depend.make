# Empty dependencies file for bench_fig7_mixed.
# This may be replaced when dependencies are built.
