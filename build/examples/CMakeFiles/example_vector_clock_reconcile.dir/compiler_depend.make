# Empty compiler generated dependencies file for example_vector_clock_reconcile.
# This may be replaced when dependencies are built.
