file(REMOVE_RECURSE
  "CMakeFiles/example_vector_clock_reconcile.dir/vector_clock_reconcile.cpp.o"
  "CMakeFiles/example_vector_clock_reconcile.dir/vector_clock_reconcile.cpp.o.d"
  "example_vector_clock_reconcile"
  "example_vector_clock_reconcile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vector_clock_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
