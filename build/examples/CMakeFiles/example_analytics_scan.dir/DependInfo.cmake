
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/analytics_scan.cpp" "examples/CMakeFiles/example_analytics_scan.dir/analytics_scan.cpp.o" "gcc" "examples/CMakeFiles/example_analytics_scan.dir/analytics_scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clsm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
