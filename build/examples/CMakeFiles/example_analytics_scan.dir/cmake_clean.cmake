file(REMOVE_RECURSE
  "CMakeFiles/example_analytics_scan.dir/analytics_scan.cpp.o"
  "CMakeFiles/example_analytics_scan.dir/analytics_scan.cpp.o.d"
  "example_analytics_scan"
  "example_analytics_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_analytics_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
