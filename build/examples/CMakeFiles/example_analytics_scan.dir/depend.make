# Empty dependencies file for example_analytics_scan.
# This may be replaced when dependencies are built.
